#!/bin/bash
# Tier-1 verification: build, test, and prove the experiment engine's result
# cache works end-to-end (a figure binary run twice at the same scale must
# perform zero simulations the second time).
set -eu
cd "$(dirname "$0")/.."

echo "=== cargo build --release ==="
cargo build --release --workspace

echo "=== cargo clippy -D warnings ==="
cargo clippy --workspace --release -- -D warnings

echo "=== cargo test -q ==="
cargo test --workspace -q --release

echo "=== cache check: fig11_cpi twice at tiny scale ==="
CACHE_DIR="$(mktemp -d)"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$OUT_DIR"' EXIT

SVR_CACHE_DIR="$CACHE_DIR" ./target/release/fig11_cpi --scale tiny \
  --json "$OUT_DIR/first.json" > /dev/null
t0=$(date +%s)
SVR_CACHE_DIR="$CACHE_DIR" ./target/release/fig11_cpi --scale tiny \
  --json "$OUT_DIR/second.json" > /dev/null
t1=$(date +%s)

# Budget assertion: a fully cached re-run performs no simulation, so it must
# be quick even on a loaded machine. Catches regressions where the cache key
# accidentally changes between identical invocations.
cached_wall=$((t1 - t0))
echo "cached re-run took ${cached_wall}s"
if [ "$cached_wall" -gt 15 ]; then
  echo "FAIL: cached fig11_cpi re-run took ${cached_wall}s (budget 15s)" >&2
  exit 1
fi

# The JSON report embeds the sweep counters; the second run must be all
# cache hits. Hand-rolled extraction so CI needs nothing beyond a shell.
simulated=$(grep -o '"simulated": *[0-9]*' "$OUT_DIR/second.json" | grep -o '[0-9]*$')
hits=$(grep -o '"cache_hits": *[0-9]*' "$OUT_DIR/second.json" | grep -o '[0-9]*$')
pairs=$(grep -o '"pairs": *[0-9]*' "$OUT_DIR/second.json" | grep -o '[0-9]*$')
echo "second run: pairs=$pairs simulated=$simulated cache_hits=$hits"
if [ "$simulated" != "0" ]; then
  echo "FAIL: second run simulated $simulated points (expected 0)" >&2
  exit 1
fi
if [ "$hits" != "$pairs" ] || [ "$pairs" = "0" ]; then
  echo "FAIL: expected all $pairs points from cache, got $hits hits" >&2
  exit 1
fi
echo CI_OK
