#!/bin/bash
# Tier-1 verification: build, test, and prove the experiment engine's result
# cache works end-to-end (a figure binary run twice at the same scale must
# perform zero simulations the second time), that the watchdog terminates
# livelocked guests promptly, and that a SIGKILLed sweep resumes from its
# journal without recomputation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release ==="
cargo build --release --workspace

echo "=== cargo clippy -D warnings ==="
cargo clippy --workspace --release -- -D warnings

echo "=== cargo test -q ==="
cargo test --workspace -q --release

echo "=== cache check: fig11_cpi twice at tiny scale ==="
CACHE_DIR="$(mktemp -d)"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$OUT_DIR"' EXIT

SVR_CACHE_DIR="$CACHE_DIR" ./target/release/fig11_cpi --scale tiny \
  --json "$OUT_DIR/first.json" > /dev/null
t0=$(date +%s)
SVR_CACHE_DIR="$CACHE_DIR" ./target/release/fig11_cpi --scale tiny \
  --json "$OUT_DIR/second.json" > /dev/null
t1=$(date +%s)

# Budget assertion: a fully cached re-run performs no simulation, so it must
# be quick even on a loaded machine. Catches regressions where the cache key
# accidentally changes between identical invocations.
cached_wall=$((t1 - t0))
echo "cached re-run took ${cached_wall}s"
if [ "$cached_wall" -gt 15 ]; then
  echo "FAIL: cached fig11_cpi re-run took ${cached_wall}s (budget 15s)" >&2
  exit 1
fi

# The JSON report embeds the sweep counters; the second run must be all
# cache hits. Hand-rolled extraction so CI needs nothing beyond a shell.
simulated=$(grep -o '"simulated": *[0-9]*' "$OUT_DIR/second.json" | grep -o '[0-9]*$')
hits=$(grep -o '"cache_hits": *[0-9]*' "$OUT_DIR/second.json" | grep -o '[0-9]*$')
pairs=$(grep -o '"pairs": *[0-9]*' "$OUT_DIR/second.json" | grep -o '[0-9]*$')
echo "second run: pairs=$pairs simulated=$simulated cache_hits=$hits"
if [ "$simulated" != "0" ]; then
  echo "FAIL: second run simulated $simulated points (expected 0)" >&2
  exit 1
fi
if [ "$hits" != "$pairs" ] || [ "$pairs" = "0" ]; then
  echo "FAIL: expected all $pairs points from cache, got $hits hits" >&2
  exit 1
fi

echo "=== trace check: traced run is bit-identical and shows runahead MLP ==="
# --check-identical makes the binary exit non-zero if the traced RunReport
# diverges from the untraced one; the overlap marker proves the Perfetto
# trace captures >= 2 concurrent DRAM-origin misses inside a runahead episode
# (the paper's whole point).
./target/release/svr_trace_dump PR_KR SVR16 --scale tiny \
  --trace="$OUT_DIR/trace.json" --check-identical > "$OUT_DIR/trace_dump.txt"
grep -q '^trace_identical=1$' "$OUT_DIR/trace_dump.txt" || {
  echo "FAIL: traced run diverged from untraced run" >&2; exit 1; }
overlap=$(grep -o '^max_dram_overlap_in_prm=[0-9]*' "$OUT_DIR/trace_dump.txt" \
  | grep -o '[0-9]*$')
echo "max DRAM overlap inside runahead: $overlap"
if [ "${overlap:-0}" -lt 2 ]; then
  echo "FAIL: runahead episodes overlap only ${overlap:-0} DRAM misses (need >= 2)" >&2
  exit 1
fi
# Perfetto files start with the trace_event envelope; a truncated stream
# (writer dropped before finish()) would not.
head -c 32 "$OUT_DIR/trace.json" | grep -q '"displayTimeUnit"' || {
  echo "FAIL: $OUT_DIR/trace.json is not a Chrome trace_event file" >&2; exit 1; }

echo "=== trace overhead: NullSink run fits the untraced wall-time budget ==="
# perf_baseline probes the same pair untraced (NullSink, instrumentation
# monomorphized away) and with the ring sink, and asserts bit-identity
# internally. Budget: the whole tiny-scale binary must stay quick; a blown
# budget means the NullSink path stopped compiling out.
t0=$(date +%s)
SVR_CACHE_DIR="$CACHE_DIR" ./target/release/perf_baseline --scale tiny \
  --json "$OUT_DIR/perf.json" > /dev/null
t1=$(date +%s)
perf_wall=$((t1 - t0))
echo "perf_baseline at tiny took ${perf_wall}s"
if [ "$perf_wall" -gt 60 ]; then
  echo "FAIL: perf_baseline took ${perf_wall}s at tiny scale (budget 60s)" >&2
  exit 1
fi
grep -q '"trace_identical": true' "$OUT_DIR/perf.json" || {
  echo "FAIL: perf_baseline trace probe reported a divergent run" >&2; exit 1; }
# The binary also probes warp vs detailed on the same pair and asserts state
# agreement internally; the JSON must confirm it on this machine too.
grep -q '"warp_state_matches": true' "$OUT_DIR/perf.json" || {
  echo "FAIL: perf_baseline warp probe diverged from the detailed run" >&2; exit 1; }

echo "=== warp check: fig11 sweep in warp mode verifies every workload ==="
# The full Fig. 11 matrix through the functional fast-forward path: the
# binary's assert_verified() is the equivalence smoke (every workload's
# final architectural state passes its check when executed via the
# pre-decoded warp engine). Using the same cache dir also proves warp points
# never alias detailed cache entries: the warp run must simulate, not hit.
SVR_CACHE_DIR="$CACHE_DIR" ./target/release/fig11_cpi --scale tiny --mode warp \
  --json "$OUT_DIR/warp.json" > /dev/null
wsim=$(grep -o '"simulated": *[0-9]*' "$OUT_DIR/warp.json" | grep -o '[0-9]*$')
wfail=$(grep -o '"failed": *[0-9]*' "$OUT_DIR/warp.json" | grep -o '[0-9]*$')
echo "warp fig11: simulated=$wsim failed=$wfail"
if [ "${wsim:-0}" -lt 1 ]; then
  echo "FAIL: warp sweep hit the detailed cache (key collision)" >&2; exit 1
fi
if [ "${wfail:-0}" != "0" ]; then
  echo "FAIL: $wfail warp sweep job(s) failed" >&2; exit 1
fi

echo "=== sampled check: SMARTS estimate tracks detailed CPI ==="
# Accuracy probe: dense sampling (2k measured / 2k warm-up / 6k period, 67%
# coverage) at tiny scale. fig11_cpi re-runs the matrix in detailed mode and
# emits a per-workload "Sampled vs detailed CPI error (%)" section; the three
# workload x two config cells gated below are steady-state at tiny scale
# (short phase-heavy kernels only retire ~20k instructions at tiny, so their
# estimates are legitimately noisy and are not gated).
SVR_CACHE_DIR="$CACHE_DIR" ./target/release/fig11_cpi --scale tiny --mode sampled \
  --sample-interval 2000 --sample-warmup 2000 --sample-period 6000 \
  --json "$OUT_DIR/sampled_acc.json" > /dev/null
# Extracts one cell of the error section: workload row, 0-based config column
# (paper order: InO IMP OoO SVR8 SVR16 SVR32 SVR64 SVR128).
err_cell() {
  awk -v wl="\"$2\"," -v col="$3" '
    /"heading": "Sampled vs detailed CPI error/ { insec = 1 }
    insec && index($0, "\"label\": " wl) { inrow = 1; n = -1; next }
    inrow && /^[[:space:]]*[0-9.eE+-]+,?[[:space:]]*$/ {
      n++; if (n == col) { gsub(/[[:space:],]/, ""); print; exit } }
  ' "$1"
}
err_le() { awk -v v="$1" -v t="$2" 'BEGIN { exit !(v + 0 <= t + 0 && length(v) > 0) }'; }
for probe in "SSSP_KR 0 InO" "SSSP_KR 4 SVR16" \
             "NAS-IS 3 SVR8" "NAS-IS 4 SVR16" \
             "CC_UR 3 SVR8" "CC_UR 7 SVR128"; do
  set -- $probe
  e=$(err_cell "$OUT_DIR/sampled_acc.json" "$1" "$2")
  echo "sampled CPI error: $1 x $3 = ${e:-missing}%"
  err_le "${e:-99}" 3.0 || {
    echo "FAIL: sampled CPI error ${e:-missing}% for $1 x $3 exceeds 3%" >&2
    exit 1; }
done

echo "=== sampled speedup: sparse sampling beats detailed by >= 5x ==="
# Sparse probe (256/256/50000: ~1% detailed coverage) with the cache off so
# both sweeps really simulate; the binary's note reports summed per-point
# simulation time (workload construction excluded) for both modes.
./target/release/fig11_cpi --scale tiny --mode sampled --no-cache \
  --sample-interval 256 --sample-warmup 256 --sample-period 50000 \
  --json "$OUT_DIR/sampled_speed.json" > /dev/null
sspeed=$(grep -o 'speedup [0-9.]*x' "$OUT_DIR/sampled_speed.json" | grep -o '[0-9.]*')
echo "sampled vs detailed simulation-time speedup: ${sspeed:-missing}x"
awk -v v="${sspeed:-0}" 'BEGIN { exit !(v + 0 >= 5.0) }' || {
  echo "FAIL: sampled simulation speedup ${sspeed:-missing}x is below 5x" >&2
  exit 1; }

echo "=== perf gate: committed baseline clears both speedup targets ==="
# results/perf_baseline.json (v2) records the decoded-detailed fig11 sweep
# against the pre-rework wall time, plus the warp-vs-detailed probe
# (warp_speedup is measured against detailed SVR16, the config of record;
# the in-order ratio rides along as warp_speedup_ino). The committed
# numbers must clear their targets: a regeneration that shows the decoded
# engine slower than baseline, or warp under its floor, fails here.
ratio_ok() { awk -v v="$1" -v t="$2" 'BEGIN { exit !(v + 0 >= t + 0) }'; }
b_speed=$(grep -o '"speedup": *[0-9.]*' results/perf_baseline.json | grep -o '[0-9.]*$')
b_target=$(grep -o '"target_speedup": *[0-9.]*' results/perf_baseline.json | grep -o '[0-9.]*$')
w_speed=$(grep -o '"warp_speedup": *[0-9.]*' results/perf_baseline.json | grep -o '[0-9.]*$')
w_target=$(grep -o '"warp_target_speedup": *[0-9.]*' results/perf_baseline.json | grep -o '[0-9.]*$')
echo "baseline: detailed ${b_speed}x (target ${b_target}x), warp ${w_speed}x (target ${w_target}x)"
ratio_ok "${b_speed:-0}" "${b_target:-2}" || {
  echo "FAIL: committed detailed speedup ${b_speed}x is below target ${b_target}x" >&2
  exit 1; }
ratio_ok "${w_speed:-0}" "${w_target:-10}" || {
  echo "FAIL: committed warp speedup ${w_speed}x is below target ${w_target}x" >&2
  exit 1; }
grep -q '"warp_state_matches": true' results/perf_baseline.json || {
  echo "FAIL: committed baseline records a warp/detailed state mismatch" >&2; exit 1; }

echo "=== watchdog smoke: livelocked guest fails fast, not hangs ==="
# DiagSpin is a tight jmp-to-self after a dependent load: without the
# forward-progress watchdog this run would spin until the cycle budget
# (minutes). It must exit non-zero well inside the timeout, with the
# structured no-forward-progress diagnostic; exit 124 means `timeout` had to
# kill a hang, which is exactly the regression this guards against.
rc=0
timeout 60 ./target/release/svr_trace_dump DiagSpin SVR16 --scale tiny \
  > /dev/null 2> "$OUT_DIR/watchdog.txt" || rc=$?
if [ "$rc" -eq 0 ]; then
  echo "FAIL: livelocked DiagSpin run exited 0" >&2; exit 1
fi
if [ "$rc" -eq 124 ]; then
  echo "FAIL: livelocked DiagSpin run hung past the 60s timeout" >&2; exit 1
fi
grep -q "no forward progress" "$OUT_DIR/watchdog.txt" || {
  echo "FAIL: watchdog diagnostic missing from stderr:" >&2
  cat "$OUT_DIR/watchdog.txt" >&2; exit 1; }
echo "watchdog tripped with exit $rc"

echo "=== kill-and-resume: SIGKILLed sweep resumes from its journal ==="
RESUME_CACHE="$(mktemp -d)"
RESUME_OUT="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$OUT_DIR" "$RESUME_CACHE" "$RESUME_OUT"' EXIT
SVR_CACHE_DIR="$RESUME_CACHE" ./target/release/fig11_cpi --scale tiny \
  --json "$RESUME_OUT/killed.json" > /dev/null 2>&1 &
sweep_pid=$!
# Wait until at least two points are committed to the cache, then SIGKILL the
# sweep mid-run. Cache writes are atomic (tmp+rename), so every *.json entry
# counted here is a completed point.
for _ in $(seq 1 600); do
  entries=$(find "$RESUME_CACHE" -maxdepth 1 -name '*.json' 2>/dev/null | wc -l)
  kill -0 "$sweep_pid" 2>/dev/null || break
  [ "$entries" -ge 2 ] && break
  sleep 0.1
done
if kill -9 "$sweep_pid" 2>/dev/null; then
  wait "$sweep_pid" 2>/dev/null || true
  echo "killed sweep after $entries cached points"
  journals=$(find "$RESUME_CACHE/journal" -name '*.journal' 2>/dev/null | wc -l)
  if [ "$journals" -lt 1 ]; then
    echo "FAIL: no journal file survived the SIGKILL" >&2; exit 1
  fi
  SVR_CACHE_DIR="$RESUME_CACHE" ./target/release/fig11_cpi --scale tiny \
    --json "$RESUME_OUT/resumed.json" > /dev/null
  jhits=$(grep -o '"journal_hits": *[0-9]*' "$RESUME_OUT/resumed.json" | grep -o '[0-9]*$')
  echo "resumed run: journal_hits=$jhits"
  if [ "${jhits:-0}" -lt 1 ]; then
    echo "FAIL: resumed sweep replayed no journaled points" >&2; exit 1
  fi
else
  # The sweep finished before we could kill it (fast machine): the resumed
  # run is then simply a full cache hit, which the comparison below and the
  # earlier cache check still validate.
  wait "$sweep_pid" || { echo "FAIL: initial resume-check sweep failed" >&2; exit 1; }
  echo "sweep finished before the kill; falling through to the identity check"
  SVR_CACHE_DIR="$RESUME_CACHE" ./target/release/fig11_cpi --scale tiny \
    --json "$RESUME_OUT/resumed.json" > /dev/null
fi
# The resumed run's figure must be bit-identical to the earlier from-scratch
# run once the per-run sweep counters (wall time, hit/miss split) are
# stripped: resuming changes *where* results come from, never the results.
strip_counters() { awk '/"sweep": \{/{skip=1; next} skip{if (/\}/) skip=0; next} {print}' "$1"; }
strip_counters "$OUT_DIR/second.json" > "$RESUME_OUT/a.stripped"
strip_counters "$RESUME_OUT/resumed.json" > "$RESUME_OUT/b.stripped"
cmp -s "$RESUME_OUT/a.stripped" "$RESUME_OUT/b.stripped" || {
  echo "FAIL: resumed sweep JSON diverged from the from-scratch run" >&2
  diff "$RESUME_OUT/a.stripped" "$RESUME_OUT/b.stripped" | head -20 >&2
  exit 1; }
echo "resumed figure is bit-identical to the from-scratch figure"

echo "=== profiler smoke: attribution conserves, profiling is observation-only ==="
# svr_profile runs the pair unprofiled and profiled: the RunReports must be
# bit-identical (profiling can never change timing) and the per-PC tables
# must sum back to the aggregate CPI stack / MemStats exactly
# (--check-identical and a conservation violation both exit non-zero).
./target/release/svr_profile HJ8 SVR16 --scale tiny --check-identical \
  --json "$OUT_DIR/profile.json" > "$OUT_DIR/profile.txt"
grep -q '^profile_identical=1$' "$OUT_DIR/profile.txt" || {
  echo "FAIL: profiled run diverged from unprofiled run" >&2; exit 1; }
grep -q '^profile_conserved=1$' "$OUT_DIR/profile.txt" || {
  echo "FAIL: per-PC attribution does not reconcile with aggregates" >&2; exit 1; }
# The hot-site table must resolve PCs through the workload's symbol map.
grep -q 'scan' "$OUT_DIR/profile.txt" || {
  echo "FAIL: hot-site table is not symbolized (no 'scan' site)" >&2; exit 1; }

echo "=== golden gate: metrics match the checked-in baseline ==="
# The gate compares headline metrics of a fixed workload x config matrix
# against results/golden/svr_profile.json: integers exactly, floats to 1e-6.
./target/release/svr_profile --golden > "$OUT_DIR/golden.txt" || {
  echo "FAIL: metrics drifted from results/golden/svr_profile.json" >&2
  cat "$OUT_DIR/golden.txt" >&2
  echo "(if intended: svr_profile --golden --bless, and commit the file)" >&2
  exit 1; }
grep -q '^golden_ok=1$' "$OUT_DIR/golden.txt" || {
  echo "FAIL: golden gate did not report golden_ok=1" >&2; exit 1; }
# Tamper demo: the gate must actually *fail* on a one-count drift...
sed 's/"cycles": [0-9]*/"cycles": 1/' results/golden/svr_profile.json \
  > "$OUT_DIR/tampered_golden.json"
if ./target/release/svr_profile --golden \
    --golden-path "$OUT_DIR/tampered_golden.json" > /dev/null 2>&1; then
  echo "FAIL: golden gate passed against a tampered baseline" >&2; exit 1
fi
# ...and pass again after an explicit bless of the same run.
./target/release/svr_profile --golden --bless \
  --golden-path "$OUT_DIR/blessed_golden.json" > /dev/null
./target/release/svr_profile --golden \
  --golden-path "$OUT_DIR/blessed_golden.json" > /dev/null || {
  echo "FAIL: golden gate failed right after --bless" >&2; exit 1; }
echo "golden gate: pass, tamper-fail, bless-pass all verified"

echo "=== server smoke: dedup, streaming, kill+resume, clean drain ==="
SERVE_CACHE="$(mktemp -d)"
SERVE_OUT="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$OUT_DIR" "$RESUME_CACHE" "$RESUME_OUT" "$SERVE_CACHE" "$SERVE_OUT"' EXIT

start_daemon() {
  ./target/release/svr_serve --addr 127.0.0.1:0 --cache-dir "$SERVE_CACHE" \
    --workers 2 --claim-timeout 30 --claim-stale 2 > "$1" 2>&1 &
  serve_pid=$!
  serve_addr=""
  for _ in $(seq 1 100); do
    serve_addr=$(sed -n 's/^listening on //p' "$1")
    [ -n "$serve_addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
  done
  [ -n "$serve_addr" ] || { echo "FAIL: svr_serve did not report its address" >&2
    cat "$1" >&2; exit 1; }
}

start_daemon "$SERVE_OUT/serve1.log"
# Two clients submit overlapping batches concurrently (SVR16 is in both) and
# follow the chunked progress streams to the terminal events.
./target/release/svr_client submit --addr "$serve_addr" --client alice --stream \
  Camel:InO Camel:SVR16 > "$SERVE_OUT/alice.log" 2>&1 &
alice_pid=$!
./target/release/svr_client submit --addr "$serve_addr" --client bob --stream \
  Camel:SVR16 Camel:SVR32 > "$SERVE_OUT/bob.log" 2>&1 &
bob_pid=$!
wait "$alice_pid" || { echo "FAIL: alice's batch failed" >&2
  cat "$SERVE_OUT/alice.log" >&2; exit 1; }
wait "$bob_pid" || { echo "FAIL: bob's batch failed" >&2
  cat "$SERVE_OUT/bob.log" >&2; exit 1; }
# Streamed progress arrived: windowed intervals plus the terminal state line.
grep -q '"event":"interval"' "$SERVE_OUT/alice.log" || {
  echo "FAIL: no streamed interval events reached alice" >&2
  cat "$SERVE_OUT/alice.log" >&2; exit 1; }
grep -q '"state":"done"' "$SERVE_OUT/bob.log" || {
  echo "FAIL: bob never saw a terminal done event" >&2
  cat "$SERVE_OUT/bob.log" >&2; exit 1; }
# Dedup: 4 submissions, 3 unique points — the job-source counters must show
# exactly one simulation per unique point and one join.
./target/release/svr_client status --addr "$serve_addr" > "$SERVE_OUT/status.json"
ssim=$(grep -o '"simulated": *[0-9]*' "$SERVE_OUT/status.json" | grep -o '[0-9]*$')
sacc=$(grep -o '"accepted": *[0-9]*' "$SERVE_OUT/status.json" | grep -o '[0-9]*$')
sjoin=$(grep -o '"joined": *[0-9]*' "$SERVE_OUT/status.json" | grep -o '[0-9]*$')
serr=$(grep -o '"errors": *[0-9]*' "$SERVE_OUT/status.json" | grep -o '[0-9]*$')
echo "server counters: accepted=$sacc joined=$sjoin simulated=$ssim errors=$serr"
if [ "$ssim" != "3" ] || [ "$sacc" != "3" ] || [ "$sjoin" != "1" ] || [ "$serr" != "0" ]; then
  echo "FAIL: expected accepted=3 joined=1 simulated=3 errors=0" >&2
  cat "$SERVE_OUT/status.json" >&2; exit 1
fi

echo "=== metrics smoke: /v1/metrics agrees exactly with client-observed counters ==="
# The registry behind /v1/metrics and the /v1/status counters are the same
# atomics, so the Prometheus scrape must agree exactly with what the
# clients just observed: 3 simulations, 1 join, and (fresh cache) 0 hits.
prom() { awk -v m="$1" '$1 == m { print $2 }' "$2"; }
./target/release/svr_client metrics --addr "$serve_addr" > "$SERVE_OUT/metrics1.txt"
msim=$(prom jobs_simulated_total "$SERVE_OUT/metrics1.txt")
mjoin=$(prom jobs_joined_total "$SERVE_OUT/metrics1.txt")
mhits=$(prom cache_hits_total "$SERVE_OUT/metrics1.txt")
echo "scraped: jobs_simulated_total=$msim jobs_joined_total=$mjoin cache_hits_total=$mhits"
if [ "$msim" != "$ssim" ] || [ "$mjoin" != "$sjoin" ] || [ "$mhits" != "0" ]; then
  echo "FAIL: /v1/metrics disagrees with status (sim $msim/$ssim join $mjoin/$sjoin hits $mhits/0)" >&2
  cat "$SERVE_OUT/metrics1.txt" >&2; exit 1
fi

# Kill the daemon mid-batch: submit fresh points and SIGKILL immediately.
# Unfinished jobs stay journaled in serve-pending/ and a restarted daemon
# must resume them; already-finished points resolve from the shared cache.
./target/release/svr_client submit --addr "$serve_addr" --client carol \
  Camel:SVR7 Camel:SVR9 Camel:SVR11 Camel:SVR13 > /dev/null
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
pending=$(find "$SERVE_CACHE/serve-pending" -name '*.json' 2>/dev/null | wc -l)
echo "killed daemon with $pending journaled pending job(s)"

start_daemon "$SERVE_OUT/serve2.log"
# Wait until the restarted daemon has worked off everything it resumed.
for _ in $(seq 1 600); do
  pending=$(find "$SERVE_CACHE/serve-pending" -name '*.json' 2>/dev/null | wc -l)
  [ "$pending" -eq 0 ] && break
  sleep 0.1
done
if [ "$pending" -ne 0 ]; then
  echo "FAIL: restarted daemon left $pending pending job(s) unresumed" >&2
  cat "$SERVE_OUT/serve2.log" >&2; exit 1
fi
# Every unique point from both phases must now have a cache entry: the
# killed batch was completed by the restart, not lost (3 + 4 points).
cache_entries=$(find "$SERVE_CACHE" -maxdepth 1 -name '*.json' | wc -l)
echo "cache entries after resume: $cache_entries (expected 7)"
if [ "$cache_entries" -ne 7 ]; then
  echo "FAIL: expected 7 cache entries after kill+resume, got $cache_entries" >&2
  cat "$SERVE_OUT/serve2.log" >&2; exit 1
fi
# Warm-cache accounting: resubmitting the original 3 points must resolve
# every one from the shared store, and the scraped deltas must match —
# jobs_cached_total and cache_hits_total each move by exactly 3.
./target/release/svr_client metrics --addr "$serve_addr" > "$SERVE_OUT/metrics2a.txt"
./target/release/svr_client submit --addr "$serve_addr" --client dave --stream \
  Camel:InO Camel:SVR16 Camel:SVR32 > "$SERVE_OUT/dave.log" 2>&1 || {
    echo "FAIL: dave's warm-cache batch failed" >&2
    cat "$SERVE_OUT/dave.log" >&2; exit 1; }
./target/release/svr_client metrics --addr "$serve_addr" > "$SERVE_OUT/metrics2b.txt"
cached_delta=$(( $(prom jobs_cached_total "$SERVE_OUT/metrics2b.txt") \
  - $(prom jobs_cached_total "$SERVE_OUT/metrics2a.txt") ))
hits_delta=$(( $(prom cache_hits_total "$SERVE_OUT/metrics2b.txt") \
  - $(prom cache_hits_total "$SERVE_OUT/metrics2a.txt") ))
echo "warm-cache deltas: jobs_cached_total=+$cached_delta cache_hits_total=+$hits_delta"
if [ "$cached_delta" -ne 3 ] || [ "$hits_delta" -ne 3 ]; then
  echo "FAIL: warm resubmit should move cached and cache-hit counters by 3" >&2
  diff "$SERVE_OUT/metrics2a.txt" "$SERVE_OUT/metrics2b.txt" >&2 || true; exit 1
fi
# Clean lifecycle: a drain requested over the wire must exit 0.
./target/release/svr_client shutdown --addr "$serve_addr" > /dev/null
rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: drained daemon exited $rc (expected 0)" >&2
  cat "$SERVE_OUT/serve2.log" >&2; exit 1
fi
echo "server smoke: dedup, streaming, resume and clean drain all verified"

echo "=== chaos smoke: faulted daemon keeps exactly-once and drains clean ==="
# A fixed fault schedule (seeded, probability-1 rules with per-site caps, so
# the run is fully deterministic) tears a cache store, fails a cache load,
# fires GC mid-claim, panics a worker twice, stalls a worker, lags a
# connection and severs a chunked stream — and the service-tier invariants
# must hold anyway: one simulation per unique point, zero job errors, a
# clean drain, and no claim/tmp/pending/quarantine residue.
CHAOS_CACHE="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$OUT_DIR" "$RESUME_CACHE" "$RESUME_OUT" "$SERVE_CACHE" "$SERVE_OUT" "$CHAOS_CACHE"' EXIT
CHAOS_SPEC='seed=3405691582;stall_ms=20;cache_store_torn=1x1;cache_load_err=1x1'
CHAOS_SPEC="$CHAOS_SPEC;gc_mid_claim=1x1;worker_panic=1x2;worker_stall=1x1"
CHAOS_SPEC="$CHAOS_SPEC;conn_slow_read=1x1;conn_drop_chunk=1x2"
./target/release/svr_serve --addr 127.0.0.1:0 --cache-dir "$CHAOS_CACHE" \
  --workers 2 --claim-timeout 30 --claim-stale 30 --sock-timeout 30 \
  --faults "$CHAOS_SPEC" > "$SERVE_OUT/chaos.log" 2>&1 &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr=$(sed -n 's/^listening on //p' "$SERVE_OUT/chaos.log")
  [ -n "$serve_addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
[ -n "$serve_addr" ] || { echo "FAIL: chaos svr_serve did not report its address" >&2
  cat "$SERVE_OUT/chaos.log" >&2; exit 1; }
./target/release/svr_client submit --addr "$serve_addr" --client chaos-a --stream \
  Camel:InO Camel:SVR16 > "$SERVE_OUT/chaos_a.log" 2>&1 &
ca_pid=$!
./target/release/svr_client submit --addr "$serve_addr" --client chaos-b --stream \
  Camel:SVR16 Camel:SVR32 > "$SERVE_OUT/chaos_b.log" 2>&1 &
cb_pid=$!
wait "$ca_pid" || { echo "FAIL: chaos client a failed" >&2
  cat "$SERVE_OUT/chaos_a.log" >&2; exit 1; }
wait "$cb_pid" || { echo "FAIL: chaos client b failed" >&2
  cat "$SERVE_OUT/chaos_b.log" >&2; exit 1; }
./target/release/svr_client status --addr "$serve_addr" > "$SERVE_OUT/chaos_status.json"
csim=$(grep -o '"simulated": *[0-9]*' "$SERVE_OUT/chaos_status.json" | grep -o '[0-9]*$')
cacc=$(grep -o '"accepted": *[0-9]*' "$SERVE_OUT/chaos_status.json" | grep -o '[0-9]*$')
cjoin=$(grep -o '"joined": *[0-9]*' "$SERVE_OUT/chaos_status.json" | grep -o '[0-9]*$')
cerr=$(grep -o '"errors": *[0-9]*' "$SERVE_OUT/chaos_status.json" | grep -o '[0-9]*$')
echo "chaos counters: accepted=$cacc joined=$cjoin simulated=$csim errors=$cerr"
if [ "$csim" != "3" ] || [ "$cacc" != "3" ] || [ "$cjoin" != "1" ] || [ "$cerr" != "0" ]; then
  echo "FAIL: chaos run broke exactly-once (expected accepted=3 joined=1 simulated=3 errors=0)" >&2
  cat "$SERVE_OUT/chaos_status.json" >&2; exit 1
fi
./target/release/svr_client shutdown --addr "$serve_addr" > /dev/null
rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: faulted daemon exited $rc on drain (expected 0)" >&2
  cat "$SERVE_OUT/chaos.log" >&2; exit 1
fi
# The drain report is a structured log line now: {"event":"faults_fired",...}.
grep -q '"event":"faults_fired"' "$SERVE_OUT/chaos.log" || {
  echo "FAIL: chaos daemon reported no fired faults (schedule never armed?)" >&2
  cat "$SERVE_OUT/chaos.log" >&2; exit 1; }
# A clean run never creates serve-pending leftovers or a quarantine dir at
# all; guard the finds so a missing dir reads as zero residue (pipefail
# would otherwise abort the script on find's nonzero exit).
residue_count() {
  if [ -d "$1" ]; then find "$1" -type f | wc -l; else echo 0; fi
}
litter=$(find "$CHAOS_CACHE" -maxdepth 1 \( -name '*.claim' -o -name '*.tmp.*' \) | wc -l)
pending=$(residue_count "$CHAOS_CACHE/serve-pending")
quarantined=$(residue_count "$CHAOS_CACHE/quarantine")
if [ "$litter" -ne 0 ] || [ "$pending" -ne 0 ] || [ "$quarantined" -ne 0 ]; then
  echo "FAIL: chaos drain left residue (claim/tmp=$litter pending=$pending quarantine=$quarantined)" >&2
  ls -la "$CHAOS_CACHE" >&2; exit 1
fi
echo "chaos smoke: $(grep -o '"event":"faults_fired".*' "$SERVE_OUT/chaos.log" | head -1)"
echo "chaos smoke: exactly-once, clean drain and zero residue under injected faults"

echo "=== loadgen smoke: concurrent clients, one simulation per unique point ==="
# Tiny self-hosted run: 3 clients race over the same 3 points against a
# fresh cache; svr_loadgen exits nonzero if the scraped counter deltas show
# anything but exactly one simulation per unique point and zero errors.
./target/release/svr_loadgen --clients 3 --points 3 \
  --out "$SERVE_OUT/serve_load.json" > "$SERVE_OUT/loadgen.log" 2>&1 || {
    echo "FAIL: svr_loadgen reported a dedup violation or errored" >&2
    cat "$SERVE_OUT/loadgen.log" >&2; exit 1; }
grep -q '"dedup_ok": true' "$SERVE_OUT/serve_load.json" || {
  echo "FAIL: serve_load.json missing dedup_ok=true" >&2
  cat "$SERVE_OUT/serve_load.json" >&2; exit 1; }
grep 'loadgen:' "$SERVE_OUT/loadgen.log"

echo "=== panic-site budget: no new unwrap/expect/panic in library code ==="
# Library entry points (runner, sweep, parser, assembler) are Result-first as
# of the hardening pass; the sites that remain are documented internal
# invariants or deliberate panicking wrappers over try_ forms. This counter
# (non-test, non-comment lines) stops new ones sneaking in — convert to a
# structured error instead of raising the budget.
PANIC_BUDGET=35
panic_sites=$(awk '
  FNR == 1 { in_tests = 0 }
  /#\[cfg\(test\)\]/ { in_tests = 1 }
  !in_tests && $0 !~ /^[[:space:]]*\/\// && (/\.unwrap\(\)/ || /\.expect\(/ || /panic!\(/) { n++ }
  END { print n + 0 }
' $(find crates -name '*.rs' -path '*/src/*'))
echo "panic sites in library code: $panic_sites (budget $PANIC_BUDGET)"
if [ "$panic_sites" -gt "$PANIC_BUDGET" ]; then
  echo "FAIL: $panic_sites unwrap/expect/panic sites exceed the budget of $PANIC_BUDGET" >&2
  exit 1
fi
echo CI_OK
