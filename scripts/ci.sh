#!/bin/bash
# Tier-1 verification: build, test, and prove the experiment engine's result
# cache works end-to-end (a figure binary run twice at the same scale must
# perform zero simulations the second time).
set -eu
cd "$(dirname "$0")/.."

echo "=== cargo build --release ==="
cargo build --release --workspace

echo "=== cargo clippy -D warnings ==="
cargo clippy --workspace --release -- -D warnings

echo "=== cargo test -q ==="
cargo test --workspace -q --release

echo "=== cache check: fig11_cpi twice at tiny scale ==="
CACHE_DIR="$(mktemp -d)"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$OUT_DIR"' EXIT

SVR_CACHE_DIR="$CACHE_DIR" ./target/release/fig11_cpi --scale tiny \
  --json "$OUT_DIR/first.json" > /dev/null
t0=$(date +%s)
SVR_CACHE_DIR="$CACHE_DIR" ./target/release/fig11_cpi --scale tiny \
  --json "$OUT_DIR/second.json" > /dev/null
t1=$(date +%s)

# Budget assertion: a fully cached re-run performs no simulation, so it must
# be quick even on a loaded machine. Catches regressions where the cache key
# accidentally changes between identical invocations.
cached_wall=$((t1 - t0))
echo "cached re-run took ${cached_wall}s"
if [ "$cached_wall" -gt 15 ]; then
  echo "FAIL: cached fig11_cpi re-run took ${cached_wall}s (budget 15s)" >&2
  exit 1
fi

# The JSON report embeds the sweep counters; the second run must be all
# cache hits. Hand-rolled extraction so CI needs nothing beyond a shell.
simulated=$(grep -o '"simulated": *[0-9]*' "$OUT_DIR/second.json" | grep -o '[0-9]*$')
hits=$(grep -o '"cache_hits": *[0-9]*' "$OUT_DIR/second.json" | grep -o '[0-9]*$')
pairs=$(grep -o '"pairs": *[0-9]*' "$OUT_DIR/second.json" | grep -o '[0-9]*$')
echo "second run: pairs=$pairs simulated=$simulated cache_hits=$hits"
if [ "$simulated" != "0" ]; then
  echo "FAIL: second run simulated $simulated points (expected 0)" >&2
  exit 1
fi
if [ "$hits" != "$pairs" ] || [ "$pairs" = "0" ]; then
  echo "FAIL: expected all $pairs points from cache, got $hits hits" >&2
  exit 1
fi

echo "=== trace check: traced run is bit-identical and shows runahead MLP ==="
# --check-identical makes the binary exit non-zero if the traced RunReport
# diverges from the untraced one; the overlap marker proves the Perfetto
# trace captures >= 2 concurrent DRAM-origin misses inside a runahead episode
# (the paper's whole point).
./target/release/svr_trace_dump PR_KR SVR16 --scale tiny \
  --trace="$OUT_DIR/trace.json" --check-identical > "$OUT_DIR/trace_dump.txt"
grep -q '^trace_identical=1$' "$OUT_DIR/trace_dump.txt" || {
  echo "FAIL: traced run diverged from untraced run" >&2; exit 1; }
overlap=$(grep -o '^max_dram_overlap_in_prm=[0-9]*' "$OUT_DIR/trace_dump.txt" \
  | grep -o '[0-9]*$')
echo "max DRAM overlap inside runahead: $overlap"
if [ "${overlap:-0}" -lt 2 ]; then
  echo "FAIL: runahead episodes overlap only ${overlap:-0} DRAM misses (need >= 2)" >&2
  exit 1
fi
# Perfetto files start with the trace_event envelope; a truncated stream
# (writer dropped before finish()) would not.
head -c 32 "$OUT_DIR/trace.json" | grep -q '"displayTimeUnit"' || {
  echo "FAIL: $OUT_DIR/trace.json is not a Chrome trace_event file" >&2; exit 1; }

echo "=== trace overhead: NullSink run fits the untraced wall-time budget ==="
# perf_baseline probes the same pair untraced (NullSink, instrumentation
# monomorphized away) and with the ring sink, and asserts bit-identity
# internally. Budget: the whole tiny-scale binary must stay quick; a blown
# budget means the NullSink path stopped compiling out.
t0=$(date +%s)
SVR_CACHE_DIR="$CACHE_DIR" ./target/release/perf_baseline --scale tiny \
  --json "$OUT_DIR/perf.json" > /dev/null
t1=$(date +%s)
perf_wall=$((t1 - t0))
echo "perf_baseline at tiny took ${perf_wall}s"
if [ "$perf_wall" -gt 60 ]; then
  echo "FAIL: perf_baseline took ${perf_wall}s at tiny scale (budget 60s)" >&2
  exit 1
fi
grep -q '"trace_identical": true' "$OUT_DIR/perf.json" || {
  echo "FAIL: perf_baseline trace probe reported a divergent run" >&2; exit 1; }
echo CI_OK
