#!/usr/bin/env python3
"""Injects results/*.txt into EXPERIMENTS.md placeholders."""
import pathlib, re
root = pathlib.Path(__file__).parent
mapping = {
    "FIG01": "fig01_headline", "FIG03": "fig03_cpi_stacks", "FIG11": "fig11_cpi",
    "FIG12": "fig12_energy", "FIG13": "fig13_accuracy_coverage",
    "FIG14": "fig14_spec_overhead", "FIG15": "fig15_loop_bounds",
    "FIG16": "fig16_vector_units", "FIG17": "fig17_mshr_ptw",
    "FIG18": "fig18_bandwidth", "ABLATION": "ablation_dvr", "EXT": "ext_multicore",
}
text = (root / "EXPERIMENTS.md").read_text()
for key, name in mapping.items():
    f = root / "results" / f"{name}.txt"
    body = f.read_text().strip() if f.exists() else "(not regenerated in this run)"
    text = text.replace(f"<!-- {key} -->", "```\n" + body + "\n```")
(root / "EXPERIMENTS.md").write_text(text)
print("filled")
