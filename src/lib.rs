//! Facade crate re-exporting the SVR reproduction workspace.
pub use svr_core as core;
pub use svr_energy as energy;
pub use svr_isa as isa;
pub use svr_mem as mem;
pub use svr_sim as sim;
pub use svr_trace as trace;
pub use svr_workloads as workloads;
