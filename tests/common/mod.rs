//! Shared helpers for the heavy integration suites (`pipeline.rs`,
//! `paper_properties.rs`).
//!
//! Two levers keep `cargo test -q` fast without weakening the assertions:
//!
//! 1. **Reduced instruction budget.** The paper-scale tests exercise
//!    qualitative properties (orderings, accuracy bands, ablation direction)
//!    that are already stable after a few hundred thousand instructions at
//!    `Scale::Small` working-set sizes. The default budget simulates a
//!    quarter of the full tier; set `SVR_TEST_SCALE=full` to re-run the
//!    original full budget (CI uses the default, releases can opt in).
//! 2. **Workload memoisation.** Building a `Scale::Small` graph input costs
//!    more than simulating it (e.g. ~0.6 s for an ORK-sized CSR), and the
//!    suites re-run the same kernel under many configs. Workloads are built
//!    once per process and cloned out of a cache.

#![allow(dead_code)]

use std::collections::HashMap;
use std::sync::Mutex;

use svr::sim::{run_workload, RunOptions, RunReport, SimConfig};
use svr::workloads::{Kernel, Scale, Workload};

/// Instruction budget for `Scale::Small` paper-property runs.
///
/// Defaults to a quarter of [`Scale::Small::max_insts`]; `SVR_TEST_SCALE=full`
/// restores the full-tier budget.
pub fn small_budget() -> u64 {
    match std::env::var("SVR_TEST_SCALE").as_deref() {
        Ok("full") => Scale::Small.max_insts(),
        _ => Scale::Small.max_insts() / 4,
    }
}

/// The livelocking diagnostic workload: a dependent load followed by a
/// tight jmp-to-self, so the core keeps issuing but never makes
/// architectural progress. The forward-progress watchdog must terminate it.
pub fn livelock_workload() -> Workload {
    Kernel::DiagSpin.build(Scale::Tiny)
}

/// Runs `kernel` at `Scale::Small` under [`small_budget`], memoising the
/// built workload so repeated configs don't rebuild the same inputs.
pub fn run_small(kernel: Kernel, config: &SimConfig) -> RunReport {
    static CACHE: Mutex<Option<HashMap<String, Workload>>> = Mutex::new(None);
    let w = {
        let mut guard = CACHE.lock().unwrap();
        let cache = guard.get_or_insert_with(HashMap::new);
        cache
            .entry(kernel.name().to_string())
            .or_insert_with(|| kernel.build(Scale::Small))
            .clone()
    };
    run_workload(&w, config, &RunOptions::detailed(small_budget())).expect("paper configs are valid")
}
