//! Randomized property tests over the core data structures and cross-crate
//! invariants. Cases are generated with the deterministic in-tree
//! [`Rng64`](svr::workloads::Rng64) (the offline registry has no proptest),
//! so every run exercises exactly the same inputs.

use svr::core::{svr::StrideDetector, IssueSlots, Scoreboard};
use svr::isa::{AluOp, ArchState, DataMemory, Inst, Program, Reg, VecMemory};
use svr::mem::{Access, AccessKind, Cache, CacheConfig, MemConfig, MemImage, MemoryHierarchy};
use svr::sim::{run_workload, RunOptions, SimConfig};
use svr::workloads::{Check, Csr, Rng64, Scale, Workload};

/// Random straight-line ALU/Li program over registers 1..8.
fn straight_line_program(rng: &mut Rng64) -> Vec<Inst> {
    const OPS: [AluOp; 7] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Sltu,
    ];
    let reg = |rng: &mut Rng64| Reg::new(rng.range(1, 8) as u8);
    let len = rng.range(1, 60) as usize;
    (0..len)
        .map(|_| match rng.below(3) {
            0 => Inst::Li {
                dst: reg(rng),
                imm: rng.range(0, 2000) as i64 - 1000,
            },
            1 => Inst::Alu {
                op: OPS[rng.index(OPS.len())],
                dst: reg(rng),
                a: reg(rng),
                b: reg(rng),
            },
            _ => Inst::AluI {
                op: OPS[rng.index(OPS.len())],
                dst: reg(rng),
                src: reg(rng),
                imm: rng.range(0, 128) as i64 - 64,
            },
        })
        .collect()
}

/// Functional execution is deterministic and halts.
#[test]
fn straight_line_execution_is_deterministic() {
    let mut rng = Rng64::new(0xA11CE);
    for _ in 0..64 {
        let mut insts = straight_line_program(&mut rng);
        insts.push(Inst::Halt);
        let p = Program::new("prop", insts);
        let run = || {
            let mut mem = VecMemory::new();
            let mut st = ArchState::new();
            st.run(&p, &mut mem, 10_000);
            (0..8).map(|i| st.reg(Reg::new(i))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

/// The memory image behaves as a flat 64-bit word store.
#[test]
fn mem_image_matches_hashmap_oracle() {
    let mut rng = Rng64::new(0xBEEF);
    for _ in 0..16 {
        let mut img = MemImage::new();
        let mut oracle = std::collections::HashMap::new();
        for _ in 0..rng.range(1, 200) {
            let addr = rng.below(1 << 20) & !7;
            let val = rng.next_u64();
            img.write_u64(addr, val);
            oracle.insert(addr, val);
        }
        for (&addr, &val) in &oracle {
            assert_eq!(img.read_u64(addr), val);
        }
    }
}

/// Cache invariant: after a fill, the line is present until evicted by
/// fills to the same set; a demand access never invents a line.
#[test]
fn cache_presence_invariant() {
    let mut rng = Rng64::new(0xCACE);
    for _ in 0..16 {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 2048,
            ways: 2,
        });
        for _ in 0..rng.range(1, 300) {
            let a = rng.below(1 << 16);
            if !c.access(a, false, true).hit {
                c.fill(a, false, None, true);
            }
            // The just-accessed/filled line must be present.
            assert!(c.probe(a));
        }
    }
}

/// IssueSlots: per-cycle width is never exceeded and times are monotone.
#[test]
fn issue_slots_width_respected() {
    let mut rng = Rng64::new(0x51075);
    for _ in 0..16 {
        let mut s = IssueSlots::new(3);
        let mut counts = std::collections::HashMap::new();
        let mut last = 0;
        for _ in 0..rng.range(1, 200) {
            let r = rng.below(1000);
            let t = s.take(r);
            assert!(t >= last, "monotonic");
            assert!(t >= r);
            last = t;
            let c = counts.entry(t).or_insert(0u32);
            *c += 1;
            assert!(*c <= 3, "width exceeded at {t}");
        }
    }
}

/// Scoreboard never exceeds capacity in flight.
#[test]
fn scoreboard_capacity_respected() {
    let mut rng = Rng64::new(0x5C0);
    for _ in 0..16 {
        let mut sb = Scoreboard::new(8);
        let mut t = 0;
        for _ in 0..rng.range(1, 100) {
            let (gap, dur) = (rng.below(100), rng.range(1, 200));
            t += gap;
            let admitted = sb.admit(t);
            assert!(admitted >= t);
            sb.push(admitted + dur);
            assert!(sb.len() <= 8);
        }
    }
}

/// Stride detector: confident entries always report the true stride of a
/// perfectly striding stream.
#[test]
fn stride_detector_learns_any_stride() {
    let mut rng = Rng64::new(0x57D);
    for _ in 0..128 {
        let stride = if rng.below(2) == 0 {
            rng.range(1, 512) as i64
        } else {
            -(rng.range(1, 512) as i64)
        };
        let start = rng.below(1 << 30);
        let mut sd = StrideDetector::new(8, 2);
        let mut addr = start;
        let mut up = sd.update(7, addr);
        for _ in 0..6 {
            addr = addr.wrapping_add(stride as u64);
            up = sd.update(7, addr);
        }
        assert!(up.striding);
        assert_eq!(up.stride, stride);
        assert!(up.continued);
    }
}

/// CSR construction preserves edges and invariants.
#[test]
fn csr_invariants() {
    let mut rng = Rng64::new(0xC52);
    for _ in 0..32 {
        let edges: Vec<(u64, u64)> = (0..rng.below(300))
            .map(|_| (rng.below(50), rng.below(50)))
            .collect();
        let g = Csr::from_edges(50, &edges);
        assert!(g.check_invariants());
        let non_loops = edges.iter().filter(|(u, v)| u != v).count();
        assert_eq!(g.num_edges(), non_loops);
    }
}

/// SVR transparency: for random gather workloads, final architectural state
/// matches the plain in-order run (runahead never leaks into architecture).
#[test]
fn svr_is_architecturally_transparent_on_random_gathers() {
    let mut rng = Rng64::new(0x7A);
    for _ in 0..12 {
        let (n, mult) = (rng.range(2, 500), rng.range(1, 7919));
        let w = gather_workload(n.max(4), mult);
        let a = run_workload(&w, &SimConfig::inorder(), &RunOptions::default()).expect("valid config");
        let b = run_workload(&w, &SimConfig::svr(16), &RunOptions::default()).expect("valid config");
        assert!(a.verified && b.verified, "n={n} mult={mult}");
        assert_eq!(a.core.retired, b.core.retired);
    }
}

/// Exact CPI stacks: for every core model, the stack's bucket sum equals the
/// cycle count **exactly** on a seeded sample of random gather workloads
/// (the stacks are attribution, not estimation — every cycle is charged to
/// exactly one bucket, including the post-issue drain tail).
#[test]
fn cpi_stack_total_equals_cycles_on_every_core_model() {
    let mut rng = Rng64::new(0x57AC);
    for _ in 0..10 {
        let (n, mult) = (rng.range(4, 400), rng.range(1, 7919));
        let w = gather_workload(n, mult);
        for cfg in [
            SimConfig::inorder(),
            SimConfig::imp(),
            SimConfig::ooo(),
            SimConfig::svr(16),
        ] {
            let r = run_workload(&w, &cfg, &RunOptions::default()).expect("valid config");
            assert_eq!(
                r.core.stack.total(),
                r.core.cycles,
                "inexact CPI stack for n={n} mult={mult} under {}",
                cfg.label()
            );
        }
    }
}

/// Tracing is observation only: attaching a live ring sink never changes the
/// simulated run (`RunReport`s are bit-identical), on any core model.
#[test]
fn attaching_a_trace_sink_never_changes_the_run() {
    use svr::sim::run_workload_traced;
    use svr::trace::RingSink;
    let mut rng = Rng64::new(0xD1CE);
    for _ in 0..6 {
        let (n, mult) = (rng.range(4, 300), rng.range(1, 7919));
        let w = gather_workload(n, mult);
        for cfg in [SimConfig::inorder(), SimConfig::ooo(), SimConfig::svr(16)] {
            let base = run_workload(&w, &cfg, &RunOptions::default()).expect("valid config");
            let mut ring = RingSink::new(1 << 14);
            let traced =
                run_workload_traced(&w, &cfg, &RunOptions::default(), &mut ring).expect("valid config");
            assert_eq!(base, traced, "n={n} mult={mult} under {}", cfg.label());
            assert!(ring.total() > 0, "no events under {}", cfg.label());
        }
    }
}

/// Builds a gather loop `sum += data[(i*mult) % n]` with a verified result.
fn gather_workload(n: u64, mult: u64) -> Workload {
    use svr::isa::{Assembler, Cond};
    let mut img = MemImage::new();
    let idx: Vec<u64> = (0..n).map(|i| (i * mult) % n).collect();
    let data: Vec<u64> = (0..n).map(|i| i * 31 + 7).collect();
    let ib = img.alloc_array(&idx);
    let db = img.alloc_array(&data);
    let (rib, rdb, ri, rn, rt, rv, racc) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
    );
    let mut asm = Assembler::new("gather");
    let top = asm.label();
    asm.bind(top);
    asm.ldx(rt, rib, ri, 3);
    asm.ldx(rv, rdb, rt, 3);
    asm.alu(AluOp::Add, racc, racc, rv);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();
    let expected = idx
        .iter()
        .map(|&t| data[t as usize])
        .fold(0u64, |a, b| a.wrapping_add(b));
    let mut arch = ArchState::new();
    arch.set_reg(rib, ib);
    arch.set_reg(rdb, db);
    arch.set_reg(rn, n);
    Workload {
        name: "gather".into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, expected),
    }
}

/// Hierarchy oracle: completion times are always >= request time, and a
/// second access to the same line after completion is an L1 hit.
#[test]
fn hierarchy_timing_sanity() {
    let mut rng = Rng64::new(0x71E);
    for _ in 0..16 {
        let addrs: Vec<u64> = (0..rng.range(1, 300)).map(|_| rng.below(1 << 22)).collect();
        let mut h = MemoryHierarchy::new(MemConfig::default());
        let mut t = 0u64;
        for &a in &addrs {
            let r = h.access(Access::new(t, a, AccessKind::DemandLoad));
            assert!(r.complete_at > t, "completion after request");
            assert!(r.issued_at >= t);
            t = r.complete_at;
            let r2 = h.access(Access::new(t, a, AccessKind::DemandLoad));
            assert_eq!(r2.complete_at - t, 3, "hot line is an L1 hit");
            t = r2.complete_at;
        }
    }
}

/// The Scale presets build workloads whose checks pass at tiny scale for a
/// sample of the registry (fast smoke; full coverage in pipeline.rs).
#[test]
fn tiny_scale_is_self_consistent() {
    use svr::workloads::Kernel;
    for k in [Kernel::NasCg, Kernel::HashJoin(8)] {
        let w = k.build(Scale::Tiny);
        let (p, mut img, mut arch) = w.instantiate();
        arch.run(&p, &mut img, 50_000_000);
        assert!(arch.halted());
        assert!(w.verify(&img, &arch), "{}", w.name);
    }
}

/// Every suite workload's listing survives Display -> parse -> Display.
#[test]
fn workload_listings_round_trip_through_text_and_binary() {
    use svr::isa::encode::{decode_program, encode_program};
    use svr::isa::parse::parse_program;
    use svr::workloads::irregular_suite;
    for k in irregular_suite() {
        let w = k.build(Scale::Tiny);
        let text = w.program.to_string();
        let parsed =
            parse_program(w.program.name(), &text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(parsed, w.program, "{} text round trip", w.name);
        // The binary format documents a 32-bit immediate limit; kernels
        // using sentinel constants (INF) legitimately exceed it.
        match encode_program(&w.program) {
            Ok(words) => {
                let decoded = decode_program(w.program.name(), &words).expect("decodable");
                // The binary format carries no symbol table; compare the
                // instruction streams.
                assert!(
                    decoded.iter().eq(w.program.iter()),
                    "{} binary round trip",
                    w.name
                );
            }
            Err(e) => assert!(
                e.reason.contains("32 bits"),
                "{}: unexpected encode error {e}",
                w.name
            ),
        }
    }
}
