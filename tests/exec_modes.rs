//! Execution-mode equivalence properties.
//!
//! Warp mode (the pre-decoded functional fast-forward) must be
//! architecturally indistinguishable from detailed simulation: same final
//! registers, flags, PC, halt state, same memory contents, same retired
//! count — on *every* workload in the registry, on both core models. On top
//! of that, the `MemImage` checkpoint/restore machinery must round-trip
//! through real run segments so fast-forward-then-rewind is trustworthy.

use svr::core::{InOrderCore, InOrderConfig, OooConfig, OooCore};
use svr::isa::{DataMemory, DecodedProgram};
use svr::mem::MemConfig;
use svr::sim::{run_workload, ExecMode, RunOptions, SimConfig};
use svr::workloads::{irregular_suite, regular_suite, Kernel, Scale};

/// Every registry kernel (the full matrix both figures sweep).
fn all_kernels() -> Vec<Kernel> {
    let mut all = irregular_suite();
    all.extend(regular_suite());
    all
}

/// Warp execution reaches the same architectural state as the detailed
/// in-order core on every workload: registers, flags, PC, halt, memory
/// contents and retired count all agree.
#[test]
fn warp_matches_detailed_arch_state_on_every_workload() {
    let budget = Scale::Tiny.max_insts();
    for kernel in all_kernels() {
        let w = kernel.build(Scale::Tiny);

        let (program, mut d_image, mut d_arch) = w.instantiate();
        let mut core = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        core.run(&program, &mut d_image, &mut d_arch, budget)
            .expect("detailed run succeeds");
        let retired = core.stats().retired;

        let (_, mut w_image, mut w_arch) = w.instantiate();
        let decoded = DecodedProgram::lower(&program);
        let w_retired = w_arch.run_decoded(&decoded, &mut w_image, budget);

        assert_eq!(w_arch, d_arch, "{}: architectural state diverged", w.name);
        assert_eq!(
            w_image.content_hash(),
            d_image.content_hash(),
            "{}: memory contents diverged",
            w.name
        );
        assert_eq!(w_retired, retired, "{}: retired counts diverged", w.name);
    }
}

/// The same equivalence holds against the out-of-order core (spot-checked:
/// OoO runs are slow, and the functional path is core-independent anyway).
#[test]
fn warp_matches_detailed_ooo_spot_check() {
    let budget = Scale::Tiny.max_insts();
    for kernel in [Kernel::Camel, Kernel::NasIs] {
        let w = kernel.build(Scale::Tiny);

        let (program, mut d_image, mut d_arch) = w.instantiate();
        let mut core = OooCore::new(OooConfig::default(), MemConfig::default());
        core.run(&program, &mut d_image, &mut d_arch, budget)
            .expect("detailed run succeeds");

        let (_, mut w_image, mut w_arch) = w.instantiate();
        let decoded = DecodedProgram::lower(&program);
        w_arch.run_decoded(&decoded, &mut w_image, budget);

        assert_eq!(w_arch, d_arch, "{}: arch state diverged vs OoO", w.name);
        assert_eq!(
            w_image.content_hash(),
            d_image.content_hash(),
            "{}: memory diverged vs OoO",
            w.name
        );
    }
}

/// The public runner agrees too: a warp `run_workload` verifies and retires
/// exactly what the detailed run retires, for every workload.
#[test]
fn warp_run_workload_verifies_every_workload() {
    let cfg = SimConfig::inorder();
    let budget = Scale::Tiny.max_insts();
    for kernel in all_kernels() {
        let w = kernel.build(Scale::Tiny);
        let warp = run_workload(&w, &cfg, &RunOptions::warp(budget)).expect("warp runs");
        let detailed = run_workload(&w, &cfg, &RunOptions::detailed(budget)).expect("detailed runs");
        assert!(warp.verified, "{}: warp failed verification", w.name);
        assert_eq!(warp.core.retired, detailed.core.retired, "{}", w.name);
        assert_eq!(warp.core.cycles, 0, "{}: warp must not model time", w.name);
    }
}

/// Checkpoint/restore round-trips through a real run segment: rewinding the
/// image to the checkpoint restores its exact contents, and replaying from
/// the restored state reproduces the original final state (registers and
/// memory). This is the contract fast-forward-and-rewind workflows rely on.
#[test]
fn checkpoint_restore_round_trips_through_run_segments() {
    for kernel in [Kernel::Camel, Kernel::HashJoin(2), Kernel::NasIs] {
        let w = kernel.build(Scale::Tiny);
        let (program, mut image, arch0) = w.instantiate();
        let decoded = DecodedProgram::lower(&program);

        // Fast-forward partway, checkpoint, then run to completion.
        let mut arch = arch0.clone();
        arch.run_decoded(&decoded, &mut image, 5_000);
        let h_mid = image.content_hash();
        let arch_mid = arch.clone();

        image.begin_tracking();
        arch.run_decoded(&decoded, &mut image, Scale::Tiny.max_insts());
        let h_end = image.content_hash();
        let arch_end = arch.clone();
        let delta = image.take_delta().expect("tracking was on");

        // Rewind: memory is bit-identical to the checkpoint.
        image.restore(&delta);
        assert_eq!(image.content_hash(), h_mid, "{}: rewind diverged", w.name);

        // Replay from the checkpoint: identical final state.
        let mut arch2 = arch_mid.clone();
        arch2.run_decoded(&decoded, &mut image, Scale::Tiny.max_insts());
        assert_eq!(arch2, arch_end, "{}: replay arch diverged", w.name);
        assert_eq!(image.content_hash(), h_end, "{}: replay memory diverged", w.name);
    }
}

/// `read_block` (the bulk checkpoint/warp hook) agrees with a word-by-word
/// loop on real workload images, including unaligned starts and unmapped
/// holes.
#[test]
fn read_block_matches_scalar_reads_on_workload_images() {
    let w = Kernel::Camel.build(Scale::Tiny);
    let (_, image, _) = w.instantiate();
    for &(addr, len) in &[(0u64, 64usize), (8, 513), (4096 - 16, 1024), (1 << 30, 32)] {
        let mut block = vec![0u64; len];
        image.read_block(addr, &mut block);
        for (i, &got) in block.iter().enumerate() {
            let want = image.read_u64(addr + 8 * i as u64);
            assert_eq!(got, want, "mismatch at addr {addr:#x} + 8*{i}");
        }
    }
}

/// `ExecMode` parses the same names it prints (the `--mode` CLI contract).
#[test]
fn exec_mode_cli_names_round_trip() {
    assert_eq!(ExecMode::from_name("warp"), Some(ExecMode::Warp));
    assert_eq!(ExecMode::from_name("detailed"), Some(ExecMode::Detailed));
    assert_eq!(ExecMode::from_name("sampled"), Some(ExecMode::Sampled));
    assert_eq!(ExecMode::default(), ExecMode::Detailed);
}

/// A capped warp segment plus a resumed warp segment equals one uncapped
/// warp run — fast-forward composes (the property `Sweep` warm-up relies
/// on).
#[test]
fn warp_fast_forward_composes_across_caps() {
    let w = Kernel::Camel.build(Scale::Tiny);
    let (program, mut image_a, mut arch_a) = w.instantiate();
    let decoded = DecodedProgram::lower(&program);
    let budget = Scale::Tiny.max_insts();

    let n1 = arch_a.run_decoded(&decoded, &mut image_a, 7_777);
    let n2 = arch_a.run_decoded(&decoded, &mut image_a, budget - n1);

    let (_, mut image_b, mut arch_b) = w.instantiate();
    let n = arch_b.run_decoded(&decoded, &mut image_b, budget);

    assert_eq!(n1 + n2, n, "retired counts must compose");
    assert_eq!(arch_a, arch_b, "split run diverged");
    assert_eq!(image_a.content_hash(), image_b.content_hash());
}
