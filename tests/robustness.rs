//! Robustness integration tests: the hardened harness must terminate
//! livelocked guests via the forward-progress watchdog, surface the failure
//! as a structured [`SimError`], and leave a usable flight-recorder dump
//! behind — all without disturbing healthy jobs in the same sweep.

mod common;

use svr::sim::{run_workload, Json, RunOptions, SimConfig, SimError, Sweep};
use svr::workloads::{Kernel, Scale};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("svr-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The watchdog terminates a tight jmp-to-self loop on every core model and
/// in every execution mode — detailed (quiet cycles), warp (consecutive
/// effect-free retired instructions) and sampled (either, depending on which
/// segment the spin lands in) — and names the livelocked pc, the stall
/// reason and the progress window.
#[test]
fn livelock_terminates_with_no_forward_progress() {
    let w = common::livelock_workload();
    let cap = Scale::Tiny.max_insts();
    let modes = [
        RunOptions::detailed(cap),
        RunOptions::warp(cap),
        RunOptions::sampled(cap),
    ];
    for config in [SimConfig::inorder(), SimConfig::ooo(), SimConfig::svr(16)] {
        for opts in modes {
            let err = run_workload(&w, &config, &opts)
                .expect_err("a jmp-to-self loop must trip the watchdog in every mode");
            match &err {
                SimError::NoForwardProgress {
                    workload,
                    pc,
                    cycle,
                    last_effect,
                    window,
                    ..
                } => {
                    assert_eq!(workload, "DiagSpin");
                    // The spin is the `j @top` right after the dependent load.
                    assert!(*pc >= 1, "pc {pc} should be inside the program");
                    assert_eq!(*window, 100_000, "default progress window");
                    assert!(
                        cycle - last_effect >= *window,
                        "trip only after a full quiet window ({cycle} vs {last_effect})"
                    );
                }
                other => panic!(
                    "expected NoForwardProgress under {} in {:?} mode, got {other}",
                    config.label(),
                    opts.mode
                ),
            }
            let text = err.to_string();
            assert!(text.contains("DiagSpin"), "diagnostic names the workload: {text}");
            assert!(
                text.contains("no forward progress"),
                "diagnostic names the failure: {text}"
            );
        }
    }
}

/// A sweep containing the livelocking guest completes, reports the failure
/// as a per-job error, and writes a non-empty flight-recorder dump while the
/// healthy job in the same sweep still verifies.
#[test]
fn livelocked_sweep_job_leaves_a_flight_recorder_dump() {
    let cache = temp_dir("cache");
    let crash = temp_dir("crash");
    let res = Sweep::new(vec![Kernel::Camel, Kernel::DiagSpin], Scale::Tiny)
        .config(SimConfig::inorder())
        .cache_dir(&cache)
        .crash_dir(&crash)
        .try_run(2)
        .expect("configs are valid");

    assert_eq!(res.stats.failed, 1, "only the livelocked job fails");
    res.try_report(0, 0).expect("Camel still completes and verifies");

    let job = res.try_report(0, 1).expect_err("DiagSpin fails");
    assert!(matches!(job.error, SimError::NoForwardProgress { .. }));
    let dump = job.crash_dump.as_ref().expect("flight recorder wrote a dump");
    let doc = Json::parse(&std::fs::read_to_string(dump).expect("dump readable"))
        .expect("dump is valid JSON");
    assert_eq!(
        doc.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("no_forward_progress")
    );
    let events = doc.get("events").and_then(Json::as_arr).expect("events array");
    assert!(!events.is_empty(), "the dump holds the last-K trace events");

    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&crash);
}
