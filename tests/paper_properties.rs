//! Paper-property tests: assertions that pin down behaviours the paper's
//! evaluation depends on, at test-friendly scales.

use svr::core::svr::bit_budget;
use svr::core::{LoopBoundMode, SvrConfig};
use svr::sim::SimConfig;
use svr::workloads::{GraphInput, Kernel};

mod common;
use common::run_small;

/// Table II is reproduced exactly for the default design point.
#[test]
fn table2_exact() {
    let b = bit_budget(16, 8);
    assert_eq!(b.total_bits(), 17_738);
    for (n, max_kib) in [(8u64, 2.0), (16, 2.5), (32, 3.5), (64, 6.0), (128, 10.5)] {
        let kib = bit_budget(n, 8).total_kib();
        assert!(kib < max_kib, "N={n}: {kib:.2} KiB");
    }
}

/// Waiting mode produces the Fig. 4 cadence: roughly one PRM round per
/// N prefetched iterations, the rest suppressed.
#[test]
fn waiting_mode_cadence() {
    let r = run_small(Kernel::Camel, &SimConfig::svr(16));
    let s = r.core.svr;
    let per_round = s.waiting_suppressed as f64 / s.prm_rounds as f64;
    assert!(
        (10.0..18.0).contains(&per_round),
        "suppressions per round {per_round:.1}, expected ~15"
    );
}

/// §IV-A7: prefetch accuracy stays above the ban threshold on the suite's
/// graph kernels (Fig. 13a shows ≥88% everywhere for SVR-16).
#[test]
fn graph_kernel_accuracy_above_threshold() {
    for k in [
        Kernel::Pr(GraphInput::Ur),
        Kernel::Cc(GraphInput::Kr),
        Kernel::Bfs(GraphInput::Ljn),
    ] {
        let r = run_small(k, &SimConfig::svr(16));
        let acc = r.svr_accuracy().expect("prefetches issued");
        assert!(acc > 0.8, "{} accuracy {acc:.2}", k.name());
        assert_eq!(r.core.svr.banned_suppressed, 0, "{} banned", k.name());
    }
}

/// §VI-D waiting-mode ablation: disabling it floods the pipe with redundant
/// rounds and destroys the speedup (paper: SVR-64 becomes a slowdown).
#[test]
fn no_waiting_mode_collapses() {
    let base = run_small(Kernel::Camel, &SimConfig::inorder());
    let with = run_small(Kernel::Camel, &SimConfig::svr(64));
    let without = run_small(
        Kernel::Camel,
        &SimConfig::svr_with(SvrConfig {
            waiting_mode: false,
            ..SvrConfig::with_length(64)
        }),
    );
    let s_with = base.core.cycles as f64 / with.core.cycles as f64;
    let s_without = base.core.cycles as f64 / without.core.cycles as f64;
    assert!(
        s_without < s_with * 0.75,
        "with={s_with:.2} without={s_without:.2}"
    );
}

/// Fig. 15's LBD+Wait point: DVR-style discovery waiting is slower than the
/// tournament on an in-order core.
#[test]
fn lbd_wait_is_slower_than_tournament() {
    let k = Kernel::Pr(GraphInput::Kr);
    let wait = run_small(
        k,
        &SimConfig::svr_with(SvrConfig {
            loop_bound_mode: LoopBoundMode::LbdWait,
            ..SvrConfig::default()
        }),
    );
    let tournament = run_small(k, &SimConfig::svr(16));
    assert!(
        tournament.core.cycles <= wait.core.cycles,
        "tournament {} vs wait {}",
        tournament.core.cycles,
        wait.core.cycles
    );
}

/// Fig. 18 direction: more bandwidth never hurts, and SVR-64 gains at least
/// as much as SVR-16 from a bandwidth doubling on a bandwidth-hungry kernel.
#[test]
fn bandwidth_direction() {
    let k = Kernel::Randacc;
    let lo16 = run_small(k, &SimConfig::svr(16).with_bandwidth(12.5));
    let hi16 = run_small(k, &SimConfig::svr(16).with_bandwidth(100.0));
    assert!(hi16.core.cycles <= lo16.core.cycles);
    let lo64 = run_small(k, &SimConfig::svr(64).with_bandwidth(12.5));
    let hi64 = run_small(k, &SimConfig::svr(64).with_bandwidth(100.0));
    let g16 = lo16.core.cycles as f64 / hi16.core.cycles as f64;
    let g64 = lo64.core.cycles as f64 / hi64.core.cycles as f64;
    assert!(g64 >= g16 * 0.9, "g16={g16:.2} g64={g64:.2}");
}

/// Fig. 17 direction: a single MSHR strangles SVR relative to 16 MSHRs.
#[test]
fn mshr_starvation_hurts() {
    let k = Kernel::NasIs;
    let one = run_small(k, &SimConfig::svr(16).with_mshrs(1));
    let sixteen = run_small(k, &SimConfig::svr(16).with_mshrs(16));
    assert!(
        one.core.cycles > sixteen.core.cycles * 2,
        "1 MSHR {} vs 16 MSHRs {}",
        one.core.cycles,
        sixteen.core.cycles
    );
}

/// The energy story of Fig. 1: SVR-16 uses materially less whole-system
/// energy than the in-order baseline, and less than the OoO core.
#[test]
fn energy_ordering() {
    let k = Kernel::Kangaroo;
    let ino = run_small(k, &SimConfig::inorder());
    let ooo = run_small(k, &SimConfig::ooo());
    let svr = run_small(k, &SimConfig::svr(16));
    let e_ino = ino.energy.total_nj();
    let e_ooo = ooo.energy.total_nj();
    let e_svr = svr.energy.total_nj();
    assert!(e_svr < e_ino * 0.8, "svr {e_svr:.0} vs ino {e_ino:.0}");
    assert!(e_svr < e_ooo, "svr {e_svr:.0} vs ooo {e_ooo:.0}");
}
