//! Whole-pipeline integration tests spanning every crate: each workload is
//! simulated on each core model and validated against its native reference,
//! and the paper's qualitative orderings are asserted.

use svr::sim::{run_kernel, run_workload, RunOptions, SimConfig};
use svr::workloads::{hpcdb_suite, irregular_suite, GraphInput, Kernel, Scale};

mod common;
use common::run_small;

/// Every irregular workload executes correctly (architectural check passes)
/// on every core model at tiny scale.
#[test]
fn all_workloads_verify_on_all_cores() {
    for k in irregular_suite() {
        let w = k.build(Scale::Tiny);
        for cfg in [
            SimConfig::inorder(),
            SimConfig::imp(),
            SimConfig::ooo(),
            SimConfig::svr(16),
        ] {
            let r = run_workload(&w, &cfg, &RunOptions::default()).expect("valid config");
            assert!(r.verified, "{} failed under {}", w.name, cfg.label());
        }
    }
}

/// The cores are architecturally equivalent: identical cycle-independent
/// results, identical retired instruction counts.
#[test]
fn cores_retire_identical_instruction_counts() {
    for k in hpcdb_suite() {
        let w = k.build(Scale::Tiny);
        let a = run_workload(&w, &SimConfig::inorder(), &RunOptions::default()).expect("valid config");
        let b = run_workload(&w, &SimConfig::ooo(), &RunOptions::default()).expect("valid config");
        let c = run_workload(&w, &SimConfig::svr(16), &RunOptions::default()).expect("valid config");
        assert_eq!(a.core.retired, b.core.retired, "{}", w.name);
        assert_eq!(a.core.retired, c.core.retired, "{}", w.name);
    }
}

/// Determinism: the same run twice yields identical cycle counts.
#[test]
fn runs_are_deterministic() {
    for cfg in [SimConfig::svr(16), SimConfig::ooo()] {
        let a = run_kernel(Kernel::Camel, Scale::Tiny, &cfg, &RunOptions::default()).expect("valid config");
        let b = run_kernel(Kernel::Camel, Scale::Tiny, &cfg, &RunOptions::default()).expect("valid config");
        assert_eq!(a.core.cycles, b.core.cycles);
        assert_eq!(a.mem.dram_reads(), b.mem.dram_reads());
    }
}

/// On DRAM-resident irregular workloads, the orderings the paper relies on
/// hold: OoO beats in-order, and SVR beats in-order.
#[test]
fn qualitative_orderings_hold() {
    for k in [
        Kernel::Kangaroo,
        Kernel::NasIs,
        Kernel::Randacc,
        Kernel::Camel,
        Kernel::Pr(GraphInput::Kr),
    ] {
        let ino = run_small(k, &SimConfig::inorder());
        let ooo = run_small(k, &SimConfig::ooo());
        let svr = run_small(k, &SimConfig::svr(16));
        assert!(
            ooo.core.cycles < ino.core.cycles,
            "{}: OoO {} vs InO {}",
            k.name(),
            ooo.core.cycles,
            ino.core.cycles
        );
        assert!(
            (svr.core.cycles as f64) < ino.core.cycles as f64 * 0.8,
            "{}: SVR {} vs InO {}",
            k.name(),
            svr.core.cycles,
            ino.core.cycles
        );
    }
}

/// SVR prefetching is accurate on the regular-indirect workloads (paper
/// Fig. 13a: high accuracy across the suite).
#[test]
fn svr_accuracy_is_high_on_stride_indirect() {
    for k in [
        Kernel::NasIs,
        Kernel::Randacc,
        Kernel::Camel,
        Kernel::Kangaroo,
    ] {
        let r = run_small(k, &SimConfig::svr(16));
        let acc = r.svr_accuracy().expect("SVR issued prefetches");
        assert!(acc > 0.9, "{} accuracy {acc:.2}", k.name());
    }
}

/// HJ8's divergent bucket scan defeats mask-only control flow (§VI-D):
/// SVR shows no meaningful speedup, unlike HJ2.
#[test]
fn hj8_shows_no_speedup_hj2_does() {
    let base2 = run_small(Kernel::HashJoin(2), &SimConfig::inorder());
    let svr2 = run_small(Kernel::HashJoin(2), &SimConfig::svr(16));
    let base8 = run_small(Kernel::HashJoin(8), &SimConfig::inorder());
    let svr8 = run_small(Kernel::HashJoin(8), &SimConfig::svr(16));
    let s2 = base2.core.cycles as f64 / svr2.core.cycles as f64;
    let s8 = base8.core.cycles as f64 / svr8.core.cycles as f64;
    assert!(s2 > 1.5, "HJ2 speedup {s2:.2}");
    assert!(s8 < 1.15, "HJ8 speedup {s8:.2} should be near 1");
}

/// IMP covers the simple stride-indirect pattern but fails on the value
/// transformation in randacc and the second level in Kangaroo (§VI-A).
#[test]
fn imp_strengths_and_weaknesses() {
    let is_imp = run_small(Kernel::NasIs, &SimConfig::imp());
    let is_ino = run_small(Kernel::NasIs, &SimConfig::inorder());
    assert!(
        (is_imp.core.cycles as f64) < is_ino.core.cycles as f64 * 0.5,
        "IMP should cover NAS-IS"
    );

    let ra_imp = run_small(Kernel::Randacc, &SimConfig::imp());
    let ra_ino = run_small(Kernel::Randacc, &SimConfig::inorder());
    assert!(
        ra_imp.core.cycles as f64 > ra_ino.core.cycles as f64 * 0.9,
        "IMP must not cover randacc"
    );

    let ka_imp = run_small(Kernel::Kangaroo, &SimConfig::imp());
    let ka_svr = run_small(Kernel::Kangaroo, &SimConfig::svr(16));
    assert!(
        ka_svr.core.cycles * 2 < ka_imp.core.cycles,
        "SVR chases both levels of Kangaroo, IMP only one"
    );
}

/// SVR leaves regular workloads essentially untouched (paper Fig. 14: ~1%).
#[test]
fn spec_like_overhead_is_small() {
    for name in ["bwaves", "namd", "xalancbmk", "perlbench"] {
        let k = Kernel::Regular(name);
        let base = run_kernel(k, Scale::Tiny, &SimConfig::inorder(), &RunOptions::default()).expect("valid config");
        let svr = run_kernel(k, Scale::Tiny, &SimConfig::svr(16), &RunOptions::default()).expect("valid config");
        let ratio = svr.core.cycles as f64 / base.core.cycles as f64;
        assert!(
            ratio < 1.08,
            "{name}: SVR adds {:.1}% overhead",
            (ratio - 1.0) * 100.0
        );
    }
}

/// Larger vectors overlap more misses on deep regular-indirect chains.
#[test]
fn longer_vectors_help_on_regular_indirect() {
    let r16 = run_small(Kernel::Kangaroo, &SimConfig::svr(16));
    let r64 = run_small(Kernel::Kangaroo, &SimConfig::svr(64));
    assert!(
        r64.core.cycles <= r16.core.cycles,
        "SVR64 {} vs SVR16 {}",
        r64.core.cycles,
        r16.core.cycles
    );
}
