//! SMARTS sampling estimator properties.
//!
//! Two properties anchor the sampled execution mode:
//!
//! 1. **Convergence**: as the sampling period shrinks to the measured
//!    interval (full coverage, no warp gaps, no warm-up), the estimator
//!    degenerates to detailed simulation run in segments — the measured
//!    sums must equal the detailed run's cycle and retired counts
//!    *exactly*, on every registry workload.
//! 2. **Conservation**: inside each measured interval, the CPI-stack delta
//!    must account for the interval's cycle delta exactly. The runner
//!    enforces this invariant inside the scheduler (a violation fails the
//!    run with `SimError::InvariantViolation`), so sampled runs succeeding
//!    across all three core models *is* the conservation property.

use svr::sim::{run_workload, RunOptions, SimConfig};
use svr::workloads::{irregular_suite, regular_suite, Kernel, Scale};

/// Every registry kernel, capped for runtime (tiny-scale workloads retire
/// well under this, so the cap only bounds the pathological case).
const CAP: u64 = 150_000;

#[test]
fn full_coverage_sampling_equals_detailed_on_every_workload() {
    let cfg = SimConfig::inorder();
    let mut all = irregular_suite();
    all.extend(regular_suite());
    for kernel in all {
        let w = kernel.build(Scale::Tiny);
        let detailed = run_workload(&w, &cfg, &RunOptions::detailed(CAP)).expect("detailed runs");
        let opts = RunOptions::sampled(CAP).with_sampling(4_096, 0, 4_096);
        let sampled = run_workload(&w, &cfg, &opts).expect("sampled runs");
        let s = sampled.sampled.expect("sampled reports carry the estimator");
        assert_eq!(
            s.measured_retired, detailed.core.retired,
            "{}: full coverage must measure every instruction",
            w.name
        );
        assert_eq!(
            s.measured_cycles, detailed.core.cycles,
            "{}: segmented detailed cycles must match one continuous run",
            w.name
        );
        assert!(
            (sampled.cpi() - detailed.cpi()).abs() < 1e-12,
            "{}: estimate {} != detailed {}",
            w.name,
            sampled.cpi(),
            detailed.cpi()
        );
        assert!(sampled.verified, "{}: sampled run must verify", w.name);
    }
}

#[test]
fn interval_stacks_conserve_across_core_models() {
    for cfg in [SimConfig::inorder(), SimConfig::ooo(), SimConfig::svr(16)] {
        for kernel in [Kernel::Camel, Kernel::HashJoin(2), Kernel::NasIs] {
            let w = kernel.build(Scale::Tiny);
            let opts = RunOptions::sampled(CAP).with_sampling(500, 300, 2_000);
            let r = run_workload(&w, &cfg, &opts).unwrap_or_else(|e| {
                panic!(
                    "{} under {}: interval conservation violated: {e}",
                    w.name,
                    cfg.label()
                )
            });
            let s = r.sampled.expect("estimator present");
            assert!(
                s.intervals >= 2,
                "{} under {}: need multiple intervals to exercise the seams",
                w.name,
                cfg.label()
            );
            assert!(s.cpi > 0.0);
            assert!(r.verified);
        }
    }
}
