#!/bin/bash
# Regenerates every table/figure of the paper into results/.
# Usage: ./run_experiments.sh [--scale tiny|small|full]
set -u
SCALE_ARGS="${@:---scale small}"
cd "$(dirname "$0")"
cargo build --release -p svr-bench 2>&1 | tail -1
for bin in table2_overhead fig01_headline fig11_cpi fig13_accuracy_coverage \
           fig15_loop_bounds fig03_cpi_stacks fig12_energy fig14_spec_overhead \
           fig16_vector_units fig18_bandwidth ablation_dvr fig17_mshr_ptw \
           ext_multicore; do
  echo "=== $bin ==="
  ./target/release/$bin $SCALE_ARGS | tee results/$bin.txt
done
echo ALL_EXPERIMENTS_DONE
