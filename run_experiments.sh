#!/bin/bash
# Regenerates every table/figure of the paper into results/ (text tables
# plus structured results/<bin>.json reports; simulation results are cached
# under results/cache/ so re-runs only simulate new design points).
# Usage: ./run_experiments.sh [--check] [--scale tiny|small|full] [--threads N] [--no-cache]
set -u
cd "$(dirname "$0")"
if [ "${1:-}" = "--check" ]; then
  exec scripts/ci.sh
fi
SCALE_ARGS="${@:---scale small}"
cargo build --release -p svr-bench 2>&1 | tail -1
for bin in table2_overhead fig01_headline fig11_cpi fig13_accuracy_coverage \
           fig15_loop_bounds fig03_cpi_stacks fig12_energy fig14_spec_overhead \
           fig16_vector_units fig18_bandwidth ablation_dvr fig17_mshr_ptw \
           ext_multicore; do
  echo "=== $bin ==="
  ./target/release/$bin $SCALE_ARGS | tee results/$bin.txt
done
echo ALL_EXPERIMENTS_DONE
