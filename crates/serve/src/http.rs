//! A deliberately tiny HTTP/1.1 subset over [`std::net::TcpStream`].
//!
//! The registry is vendored and offline, so there is no hyper/axum to lean
//! on; the server needs exactly four things from HTTP and this module
//! provides only those:
//!
//! * parse one request (method, path, headers, `Content-Length` body),
//! * write one fixed-size response,
//! * write a `Transfer-Encoding: chunked` response incrementally (the
//!   progress stream), and
//! * issue a request and read the response back (the client side; chunked
//!   responses are surfaced chunk-by-chunk through a callback so progress
//!   lines appear live).
//!
//! Everything is `Connection: close` — one request per TCP connection. At
//! the simulation server's request rates (humans and scripts, not load
//! balancers) connection reuse buys nothing and keep-alive bookkeeping is
//! where hand-rolled HTTP servers traditionally harbor their bugs.
//!
//! Hard limits: 64 KiB of request head, 16 MiB of body. Everything beyond
//! is a parse error, never a panic (this crate is subject to the repo's
//! panic-site budget).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use svr_sim::fault::{self, FaultSite};
use svr_sim::json::Json;
use svr_workloads::Rng64;

/// Maximum bytes of request line + headers.
const MAX_HEAD: usize = 64 * 1024;
/// Maximum bytes of request/response body.
const MAX_BODY: usize = 16 * 1024 * 1024;

/// Why reading a request failed, classified so the server can answer with
/// the right status and a structured `{kind,...}` body instead of a bare
/// connection drop.
#[derive(Debug)]
pub enum ReadError {
    /// The client took too long to deliver the request (slow-loris or a
    /// stalled socket) — `408`, kind `timeout`.
    Timeout(String),
    /// The head or body exceeded a hard cap — `413`, kind `too_large`.
    TooLarge(String),
    /// Malformed or truncated request — `400`, kind `bad_request`.
    Bad(String),
}

impl ReadError {
    /// `(status, reason, kind)` for the structured error response.
    pub fn status(&self) -> (u16, &'static str, &'static str) {
        match self {
            ReadError::Timeout(_) => (408, "Request Timeout", "timeout"),
            ReadError::TooLarge(_) => (413, "Payload Too Large", "too_large"),
            ReadError::Bad(_) => (400, "Bad Request", "bad_request"),
        }
    }

    /// The human-readable detail.
    pub fn message(&self) -> &str {
        match self {
            ReadError::Timeout(m) | ReadError::TooLarge(m) | ReadError::Bad(m) => m,
        }
    }
}

/// Classifies one socket-read failure: blocking-with-timeout sockets
/// surface an expired timeout as `WouldBlock` or `TimedOut` depending on
/// platform.
fn classify_read_err(e: std::io::Error, what: &str) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ReadError::Timeout(format!("{what}: socket read timed out"))
        }
        _ => ReadError::Bad(format!("{what}: {e}")),
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method ("GET", "POST", ...).
    pub method: String,
    /// Request target as sent (path + optional query, no host).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads head bytes until the `\r\n\r\n` terminator (bounded by
/// [`MAX_HEAD`]), returning the head and any body bytes already read.
///
/// `deadline` is an *overall* budget for the whole head: per-read socket
/// timeouts alone cannot stop a slow-loris client that trickles one byte
/// per interval, so the server passes `now + read_timeout` here and the
/// head as a whole must arrive within it.
fn read_head(
    stream: &mut TcpStream,
    deadline: Option<Instant>,
) -> Result<(Vec<u8>, Vec<u8>), ReadError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = find_terminator(&buf) {
            let rest = buf.split_off(pos + 4);
            buf.truncate(pos);
            return Ok((buf, rest));
        }
        if buf.len() > MAX_HEAD {
            return Err(ReadError::TooLarge("request head exceeds 64 KiB".into()));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ReadError::Timeout(
                "request head did not arrive in time".into(),
            ));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| classify_read_err(e, "read"))?;
        if n == 0 {
            return Err(ReadError::Bad("connection closed before end of head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and parses one request from `stream`. `deadline` bounds the
/// arrival of the *whole* request (head and body); `None` waits on the
/// socket's own timeouts only.
pub fn read_request(
    stream: &mut TcpStream,
    deadline: Option<Instant>,
) -> Result<Request, ReadError> {
    let (head, mut body) = read_head(stream, deadline)?;
    let head =
        String::from_utf8(head).map_err(|_| ReadError::Bad("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_ascii_uppercase(), p.to_string()),
        _ => return Err(ReadError::Bad(format!(
            "malformed request line {request_line:?}"
        ))),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge("request body exceeds 16 MiB".into()));
    }
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ReadError::Timeout(
                "request body did not arrive in time".into(),
            ));
        }
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream
            .read(&mut chunk[..want])
            .map_err(|e| classify_read_err(e, "read body"))?;
        if n == 0 {
            return Err(ReadError::Bad("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Writes a complete fixed-size response and flushes. `extra_headers` are
/// emitted verbatim (e.g. `("Retry-After", "2")`).
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// An in-progress `Transfer-Encoding: chunked` response; one
/// [`Chunked::send`] per progress line.
pub struct Chunked<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> Chunked<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        reason: &str,
        content_type: &str,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(Chunked { stream })
    }

    /// Sends one chunk (a newline is appended so each chunk is one line).
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        let payload = format!("{line}\n");
        let framed = format!("{:x}\r\n{payload}\r\n", payload.len());
        if fault::fires(FaultSite::ConnDropChunk) {
            // Injected mid-stream disconnect: half a frame, then the socket
            // dies. The client must see a transport error (never a clean
            // end-of-stream) and recover by retrying.
            let half = &framed.as_bytes()[..framed.len() / 2];
            let _ = self.stream.write_all(half);
            let _ = self.stream.flush();
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "injected fault: conn_drop_chunk",
            ));
        }
        self.stream.write_all(framed.as_bytes())?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// One parsed HTTP response (client side).
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// The body: for chunked responses, the concatenation of all chunks.
    pub body: Vec<u8>,
    /// Parsed `Retry-After` header (seconds), when the server sent one.
    pub retry_after: Option<u64>,
}

/// Issues `method path` against `addr` with an optional body and reads the
/// full response. For chunked responses, `on_chunk` is called with each
/// chunk as it arrives (progress streaming); pass `|_| {}` when not needed.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
    mut on_chunk: impl FnMut(&str),
) -> Result<ClientResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send {addr}: {e}"))?;

    let (head, rest) =
        read_head(&mut stream, None).map_err(|e| e.message().to_string())?;
    let head = String::from_utf8(head).map_err(|_| "response head not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    let mut chunked = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value.parse::<usize>().ok();
        } else if name == "retry-after" {
            retry_after = value.parse::<u64>().ok();
        } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
    }
    if chunked {
        let body = read_chunked(&mut stream, rest, &mut on_chunk)?;
        return Ok(ClientResponse {
            status,
            body,
            retry_after,
        });
    }
    let len = content_length.unwrap_or(0).min(MAX_BODY);
    let mut body = rest;
    while body.len() < len {
        let mut chunk = [0u8; 4096];
        let want = (len - body.len()).min(chunk.len());
        let n = stream
            .read(&mut chunk[..want])
            .map_err(|e| format!("read response: {e}"))?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(ClientResponse {
        status,
        body,
        retry_after,
    })
}

/// How [`request_with_retry`] behaves: attempt count and the jittered
/// exponential backoff between attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: u32,
    /// First backoff step; doubles per retry.
    pub base: Duration,
    /// Ceiling on any single sleep, including honored `Retry-After` values.
    pub cap: Duration,
    /// Seed for the jitter (use e.g. the pid so concurrent clients
    /// de-synchronize deterministically).
    pub seed: u64,
}

impl RetryPolicy {
    /// The default policy: 5 attempts, 100 ms doubling to a 5 s cap.
    pub fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            seed,
        }
    }
}

/// Whether a response status is worth retrying: the server said "later"
/// (429 queue-full, 503 draining) — anything else is the caller's answer.
fn retryable_status(status: u16) -> bool {
    status == 429 || status == 503
}

/// [`request`] wrapped in bounded retries: transport errors and 429/503
/// responses back off (honoring `Retry-After` when present, jittered
/// exponential otherwise, both capped by the policy) and try again.
/// Returns the last error / non-retryable response. Safe for `POST
/// /v1/jobs` because the server's registry dedups resubmissions by content
/// hash.
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
    policy: &RetryPolicy,
    mut on_chunk: impl FnMut(&str),
) -> Result<ClientResponse, String> {
    let mut rng = Rng64::new(policy.seed);
    let mut backoff = policy.base;
    let attempts = policy.attempts.max(1);
    let mut last_err = String::new();
    for attempt in 1..=attempts {
        let (sleep, why) = match request(addr, method, path, body, timeout, &mut on_chunk) {
            Ok(resp) if retryable_status(resp.status) && attempt < attempts => {
                // Honor the server's Retry-After; fall back to our own
                // backoff schedule when it didn't send one.
                let sleep = resp
                    .retry_after
                    .map(Duration::from_secs)
                    .unwrap_or(backoff)
                    .min(policy.cap);
                last_err = format!("status {}", resp.status);
                (sleep, format!("status {}", resp.status))
            }
            Ok(resp) => return Ok(resp),
            Err(e) if attempt < attempts => {
                last_err = e.clone();
                (backoff.min(policy.cap), e)
            }
            Err(e) => return Err(format!("{e} (after {attempts} attempts)")),
        };
        let jittered = jitter(sleep, &mut rng);
        crate::log::warn(
            "client_retry",
            &[
                ("method", Json::str(method)),
                ("path", Json::str(path)),
                ("why", Json::str(&why)),
                ("delay_ms", Json::u64(jittered.as_millis() as u64)),
                ("attempt", Json::u64(attempt as u64)),
                ("attempts", Json::u64(attempts as u64)),
            ],
        );
        std::thread::sleep(jittered);
        backoff = (backoff * 2).min(policy.cap);
    }
    Err(format!("{last_err} (after {attempts} attempts)"))
}

/// Half the duration plus a random half, so synchronized clients spread out.
fn jitter(d: Duration, rng: &mut Rng64) -> Duration {
    let ms = d.as_millis() as u64;
    let half = ms / 2;
    Duration::from_millis(half + rng.below(half + 1)).max(Duration::from_millis(1))
}

/// Decodes a chunked body, invoking `on_chunk` per chunk.
fn read_chunked(
    stream: &mut TcpStream,
    mut buf: Vec<u8>,
    on_chunk: &mut impl FnMut(&str),
) -> Result<Vec<u8>, String> {
    let mut body = Vec::new();
    loop {
        // Ensure one full size line is buffered.
        let line_end = loop {
            if let Some(pos) = buf.windows(2).position(|w| w == b"\r\n") {
                break pos;
            }
            if !fill(stream, &mut buf)? {
                return Err("connection closed mid-chunk-size".into());
            }
        };
        let size_line = String::from_utf8_lossy(&buf[..line_end]).to_string();
        buf.drain(..line_end + 2);
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            return Ok(body);
        }
        if size > MAX_BODY || body.len() + size > MAX_BODY {
            return Err("chunked body exceeds 16 MiB".into());
        }
        while buf.len() < size + 2 {
            if !fill(stream, &mut buf)? {
                return Err("connection closed mid-chunk".into());
            }
        }
        let chunk: Vec<u8> = buf.drain(..size).collect();
        buf.drain(..2.min(buf.len())); // trailing \r\n
        on_chunk(String::from_utf8_lossy(&chunk).trim_end());
        body.extend_from_slice(&chunk);
    }
}

/// Reads more bytes into `buf`; `Ok(false)` on EOF.
fn fill(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<bool, String> {
    let mut chunk = [0u8; 4096];
    let n = stream
        .read(&mut chunk)
        .map_err(|e| format!("read: {e}"))?;
    buf.extend_from_slice(&chunk[..n]);
    Ok(n > 0)
}
