//! Wire protocol of the simulation server: request parsing, point
//! resolution, and structured error bodies.
//!
//! Everything on the wire is the repo's hand-rolled [`Json`]. A submitted
//! *point* is the JSON form of one (workload, config, scale, mode) design
//! point — exactly the identity the sweep engine hashes, so a point
//! submitted over the socket dedups against cache entries produced by CLI
//! sweeps and vice versa.
//!
//! Error bodies are never bare status lines: every failure renders as
//! `{"kind", "message", "workload", "config", ...}` — the same shape
//! [`svr_sim::SimError::to_json`] produces — so a client can always tell
//! *which* design point went wrong and why (satellite requirement: no bare
//! 500s).
//!
//! Protocol-level `kind`s a client can see, beyond the simulator's own
//! [`svr_sim::SimError`] kinds:
//!
//! | kind          | status | meaning                                        |
//! |---------------|--------|------------------------------------------------|
//! | `bad_request` | 400    | malformed request / unknown point               |
//! | `timeout`     | 408    | the request (head+body) did not arrive in time |
//! | `too_large`   | 413    | head > 64 KiB or body > 16 MiB                 |
//! | `not_found`   | 404    | unknown route or job hash                      |
//! | `queue_full`  | 429    | per-client admission bound; carries `Retry-After` |
//! | `draining`    | 503    | drain in progress, no new submissions          |
//! | `deadline`    | —      | the job outlived `--job-deadline` (job body, not HTTP status) |

use svr_sim::json::Json;
use svr_sim::{RunOptions, SimConfig};
use svr_workloads::{Kernel, Scale};

/// One design point as submitted over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointSpec {
    /// Workload display name (`PR_KR`, `Camel`, ...).
    pub workload: String,
    /// Configuration label (`InO`, `SVR16`, ...).
    pub config: String,
    /// Scale name (`tiny`, `small`, ...).
    pub scale: String,
    /// Execution mode (`detailed`, `warp`, `sampled`).
    pub mode: String,
}

/// A [`PointSpec`] resolved against the registries: everything needed to
/// actually simulate.
#[derive(Debug, Clone)]
pub struct ResolvedPoint {
    /// The workload to build.
    pub kernel: Kernel,
    /// The full simulation configuration.
    pub sim: SimConfig,
    /// The scale.
    pub scale: Scale,
    /// Mode and caps.
    pub options: RunOptions,
}

/// A protocol-level failure: an HTTP status plus a structured JSON body.
#[derive(Debug, Clone)]
pub struct ProtoError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Structured body (`kind`/`message`/`workload`/`config` at minimum).
    pub body: Json,
    /// Client back-off hint in seconds (surfaced as `Retry-After` on 429s).
    pub retry_after: Option<u64>,
}

/// Builds the canonical error body. `workload`/`config` are `null` when the
/// failure is not tied to a point (e.g. a parse error before any point was
/// identified).
pub fn error_body(
    kind: &str,
    message: &str,
    workload: Option<&str>,
    config: Option<&str>,
) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::str(kind)),
        ("message".into(), Json::str(message)),
        ("workload".into(), workload.map_or(Json::Null, Json::str)),
        ("config".into(), config.map_or(Json::Null, Json::str)),
    ])
}

impl ProtoError {
    /// 400 with a structured body.
    pub fn bad_request(message: &str, workload: Option<&str>, config: Option<&str>) -> Self {
        ProtoError {
            status: 400,
            body: error_body("bad_request", message, workload, config),
            retry_after: None,
        }
    }
}

impl PointSpec {
    /// Parses one point object: `workload` and `config` are required,
    /// `scale` defaults to `"tiny"` and `mode` to `"detailed"`.
    pub fn from_json(j: &Json) -> Result<PointSpec, ProtoError> {
        let field = |name: &str| j.get(name).and_then(Json::as_str).map(str::to_string);
        let Some(workload) = field("workload") else {
            return Err(ProtoError::bad_request(
                "point is missing required string field \"workload\"",
                None,
                field("config").as_deref(),
            ));
        };
        let Some(config) = field("config") else {
            return Err(ProtoError::bad_request(
                "point is missing required string field \"config\"",
                Some(&workload),
                None,
            ));
        };
        Ok(PointSpec {
            workload,
            config,
            scale: field("scale").unwrap_or_else(|| "tiny".into()),
            mode: field("mode").unwrap_or_else(|| "detailed".into()),
        })
    }

    /// The JSON form (pending-journal entries and job descriptors).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workload".into(), Json::str(&self.workload)),
            ("config".into(), Json::str(&self.config)),
            ("scale".into(), Json::str(&self.scale)),
            ("mode".into(), Json::str(&self.mode)),
        ])
    }

    /// Resolves names against the workload/config/scale registries and
    /// validates the configuration. Every failure names the point.
    pub fn resolve(&self) -> Result<ResolvedPoint, ProtoError> {
        let wl = Some(self.workload.as_str());
        let cfg = Some(self.config.as_str());
        let Some(kernel) = Kernel::from_name(&self.workload) else {
            return Err(ProtoError::bad_request(
                &format!("unknown workload {:?}", self.workload),
                wl,
                cfg,
            ));
        };
        let Some(sim) = SimConfig::from_label(&self.config) else {
            return Err(ProtoError::bad_request(
                &format!(
                    "unknown config label {:?} (expected InO, IMP, OoO or SVR<1..=128>)",
                    self.config
                ),
                wl,
                cfg,
            ));
        };
        let Some(scale) = Scale::from_name(&self.scale) else {
            return Err(ProtoError::bad_request(
                &format!("unknown scale {:?}", self.scale),
                wl,
                cfg,
            ));
        };
        let options = match self.mode.as_str() {
            "detailed" => RunOptions::default(),
            "warp" => RunOptions::warp(u64::MAX),
            "sampled" => RunOptions::sampled(u64::MAX),
            other => {
                return Err(ProtoError::bad_request(
                    &format!(
                        "unknown mode {other:?} (expected detailed, warp or sampled)"
                    ),
                    wl,
                    cfg,
                ));
            }
        };
        if let Err(e) = sim.validate() {
            // An invalid config reachable through a label would be a bug in
            // `from_label`, but the check is cheap and the error structured.
            return Err(ProtoError {
                status: 400,
                body: svr_sim::SimError::from(e).to_json(),
                retry_after: None,
            });
        }
        Ok(ResolvedPoint {
            kernel,
            sim,
            scale,
            options,
        })
    }
}

/// Parses the body of `POST /v1/jobs`: `{"client": "...", "points": [...]}`.
/// `client` defaults to `"anonymous"`; `points` must be a non-empty array.
pub fn parse_submit(body: &[u8]) -> Result<(String, Vec<PointSpec>), ProtoError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ProtoError::bad_request("request body is not UTF-8", None, None))?;
    let doc = Json::parse(text).map_err(|e| {
        ProtoError::bad_request(&format!("request body is not valid JSON: {e}"), None, None)
    })?;
    let client = doc
        .get("client")
        .and_then(Json::as_str)
        .unwrap_or("anonymous")
        .to_string();
    let Some(points) = doc.get("points").and_then(Json::as_arr) else {
        return Err(ProtoError::bad_request(
            "body is missing required array field \"points\"",
            None,
            None,
        ));
    };
    if points.is_empty() {
        return Err(ProtoError::bad_request(
            "\"points\" must not be empty",
            None,
            None,
        ));
    }
    let specs: Result<Vec<PointSpec>, ProtoError> =
        points.iter().map(PointSpec::from_json).collect();
    Ok((client, specs?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_sim::ExecMode;

    #[test]
    fn submit_round_trip_and_defaults() {
        let body = br#"{"client":"c1","points":[{"workload":"Camel","config":"SVR16"}]}"#;
        let (client, specs) = parse_submit(body).expect("valid");
        assert_eq!(client, "c1");
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].workload, "Camel");
        assert_eq!(specs[0].scale, "tiny");
        assert_eq!(specs[0].mode, "detailed");
        let r = specs[0].resolve().expect("resolves");
        assert_eq!(r.kernel.name(), "Camel");
        assert_eq!(r.sim.label(), "SVR16");
        // JSON round trip preserves the spec.
        let again = PointSpec::from_json(&specs[0].to_json()).expect("round trip");
        assert_eq!(again, specs[0]);
    }

    #[test]
    fn errors_are_structured_and_name_the_point() {
        let spec = PointSpec {
            workload: "NoSuchKernel".into(),
            config: "SVR16".into(),
            scale: "tiny".into(),
            mode: "detailed".into(),
        };
        let err = spec.resolve().expect_err("unknown workload");
        assert_eq!(err.status, 400);
        assert_eq!(err.body.get("kind").and_then(Json::as_str), Some("bad_request"));
        assert_eq!(
            err.body.get("workload").and_then(Json::as_str),
            Some("NoSuchKernel")
        );
        assert_eq!(err.body.get("config").and_then(Json::as_str), Some("SVR16"));
        assert!(err
            .body
            .get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("NoSuchKernel")));

        for (wl, cfg, scale, mode) in [
            ("Camel", "SVR999", "tiny", "detailed"),
            ("Camel", "SVR16", "galactic", "detailed"),
            ("Camel", "SVR16", "tiny", "psychic"),
        ] {
            let err = PointSpec {
                workload: wl.into(),
                config: cfg.into(),
                scale: scale.into(),
                mode: mode.into(),
            }
            .resolve()
            .expect_err("invalid point");
            assert_eq!(err.status, 400);
            assert!(err.body.get("message").and_then(Json::as_str).is_some());
        }

        let err = parse_submit(b"not json").expect_err("parse error");
        assert_eq!(err.body.get("kind").and_then(Json::as_str), Some("bad_request"));
        assert_eq!(err.body.get("workload"), Some(&Json::Null));

        let err = parse_submit(br#"{"points":[]}"#).expect_err("empty points");
        assert!(err
            .body
            .get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("empty")));
    }

    #[test]
    fn modes_map_to_run_options() {
        let mk = |mode: &str| PointSpec {
            workload: "Camel".into(),
            config: "InO".into(),
            scale: "tiny".into(),
            mode: mode.into(),
        };
        assert_eq!(mk("detailed").resolve().expect("ok").options.mode, ExecMode::Detailed);
        assert_eq!(mk("warp").resolve().expect("ok").options.mode, ExecMode::Warp);
        assert_eq!(mk("sampled").resolve().expect("ok").options.mode, ExecMode::Sampled);
    }
}
