//! The simulation daemon: accepts design-point submissions over HTTP,
//! deduplicates, simulates, streams progress, and drains gracefully.
//!
//! ```text
//! svr_serve [--addr HOST:PORT] [--workers N] [--cache-dir DIR]
//!           [--cache-max-bytes N] [--queue-limit N] [--crash-dir DIR]
//!           [--claim-timeout SECS] [--claim-stale SECS] [--no-resume]
//!           [--job-deadline SECS] [--sock-timeout SECS] [--faults SPEC]
//!           [--log-level error|warn|info|debug|off]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; the bound address is
//! printed as `listening on <addr>` (scripts parse this line). SIGINT or
//! SIGTERM begins a drain: in-flight jobs finish, queued jobs stay
//! journaled, and a restarted daemon resumes them (`--no-resume` opts out).
//!
//! `--faults` (or the `SVR_FAULTS` environment variable) installs a seeded
//! deterministic fault-injection schedule — see `svr_sim::fault` for the
//! spec grammar and site catalog. Chaos testing only; never set it on a
//! daemon whose results you are about to trust for latency (results stay
//! correct — that is the point — but injected stalls and retries cost
//! time). Fired faults are reported on stderr at drain.
//!
//! Diagnostics go to stderr as structured JSON lines (see `svr_serve::log`);
//! `--log-level` (or `SVR_LOG`; the flag wins) sets the threshold, default
//! `info`. The stdout `listening on <addr>` line is part of the scriptable
//! interface and is never silenced.

use std::net::TcpListener;
use std::path::PathBuf;
use svr_serve::log;
use svr_serve::{Server, ServerConfig};
use svr_sim::json::Json;
use svr_sim::shutdown;

fn usage() -> String {
    "usage: svr_serve [--addr HOST:PORT] [--workers N] [--cache-dir DIR] \
     [--cache-max-bytes N] [--queue-limit N] [--crash-dir DIR] \
     [--claim-timeout SECS] [--claim-stale SECS] [--no-resume] \
     [--job-deadline SECS] [--sock-timeout SECS] [--faults SPEC] \
     [--log-level error|warn|info|debug|off]"
        .to_string()
}

struct Args {
    addr: String,
    resume: bool,
    faults: Option<String>,
    log_level: Option<Option<log::Level>>,
    cfg: ServerConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        resume: true,
        faults: None,
        log_level: None,
        cfg: ServerConfig::default(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache-dir" => args.cfg.cache_dir = PathBuf::from(value("--cache-dir")?),
            "--cache-max-bytes" => {
                args.cfg.cache_max_bytes = Some(
                    value("--cache-max-bytes")?
                        .parse()
                        .map_err(|e| format!("--cache-max-bytes: {e}"))?,
                );
            }
            "--queue-limit" => {
                args.cfg.queue_limit = value("--queue-limit")?
                    .parse()
                    .map_err(|e| format!("--queue-limit: {e}"))?;
            }
            "--crash-dir" => args.cfg.crash_dir = Some(PathBuf::from(value("--crash-dir")?)),
            // How long to wait on another process's cache claim, and the
            // age at which a claim counts as abandoned (a SIGKILLed daemon
            // cannot remove its claim files; a restarted daemon must be
            // able to steal them promptly).
            "--claim-timeout" => {
                args.cfg.claim_timeout = std::time::Duration::from_secs(
                    value("--claim-timeout")?
                        .parse()
                        .map_err(|e| format!("--claim-timeout: {e}"))?,
                );
            }
            "--claim-stale" => {
                args.cfg.claim_stale = std::time::Duration::from_secs(
                    value("--claim-stale")?
                        .parse()
                        .map_err(|e| format!("--claim-stale: {e}"))?,
                );
            }
            "--no-resume" => args.resume = false,
            // Wall-clock budget per job (acceptance → completion); expired
            // jobs finish with a structured {kind:"deadline"} error.
            "--job-deadline" => {
                args.cfg.job_deadline = Some(std::time::Duration::from_secs(
                    value("--job-deadline")?
                        .parse()
                        .map_err(|e| format!("--job-deadline: {e}"))?,
                ));
            }
            // Socket read AND write timeout per request (also the overall
            // budget for one request to arrive — slow-loris protection).
            "--sock-timeout" => {
                let d = std::time::Duration::from_secs(
                    value("--sock-timeout")?
                        .parse()
                        .map_err(|e| format!("--sock-timeout: {e}"))?,
                );
                args.cfg.read_timeout = d;
                args.cfg.write_timeout = d;
            }
            "--faults" => args.faults = Some(value("--faults")?),
            "--log-level" => {
                let v = value("--log-level")?;
                args.log_level = Some(
                    log::Level::parse(&v)
                        .ok_or_else(|| format!("--log-level: unknown level {v:?}\n{}", usage()))?,
                );
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    // Threshold precedence: --log-level beats SVR_LOG beats the default.
    match args.log_level {
        Some(level) => log::set_level(level),
        None => {
            let _ = log::init_from_env();
        }
    }
    // The --faults flag wins over the SVR_FAULTS environment variable.
    let faulted = match &args.faults {
        Some(spec) => {
            let plan = svr_sim::FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?;
            let armed = !plan.is_empty();
            svr_sim::fault::install(plan);
            armed
        }
        None => svr_sim::fault::install_from_env().map_err(|e| format!("SVR_FAULTS: {e}"))?,
    };
    if faulted {
        log::warn(
            "faults_armed",
            &[(
                "note",
                Json::str("chaos mode; results stay correct, latency does not"),
            )],
        );
    }
    shutdown::install();
    let listener =
        TcpListener::bind(&args.addr).map_err(|e| format!("bind {}: {e}", args.addr))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let server = Server::new(args.cfg.clone());
    let resumed = if args.resume { server.resume_pending() } else { 0 };
    log::info(
        "startup",
        &[
            ("addr", Json::str(bound.to_string())),
            ("workers", Json::u64(args.cfg.workers as u64)),
            (
                "cache_dir",
                Json::str(args.cfg.cache_dir.display().to_string()),
            ),
            ("resumed", Json::u64(resumed as u64)),
        ],
    );
    // Scripts wait for this exact line to learn the ephemeral port.
    println!("listening on {bound}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server
        .serve(listener)
        .map_err(|e| format!("serve: {e}"))?;
    if let Some(report) = svr_sim::fault::report_line() {
        // Keep the legible prefix: scripts grep the fired-fault report.
        log::info("faults_fired", &[("report", Json::str(&report))]);
    }
    log::info("drained", &[]);
    Ok(())
}

fn main() {
    // A zero exit means the drain completed cleanly — queued work is
    // journaled and in-flight work finished.
    if let Err(e) = run() {
        eprintln!("svr_serve: {e}");
        std::process::exit(1);
    }
}
