//! CLI client for the `svr_serve` daemon.
//!
//! ```text
//! svr_client submit   --addr HOST:PORT [--client NAME] [--stream] POINT...
//! svr_client status   --addr HOST:PORT
//! svr_client stats    --addr HOST:PORT
//! svr_client metrics  --addr HOST:PORT
//! svr_client shutdown --addr HOST:PORT
//! svr_client run-local [--cache-dir DIR] POINT
//! ```
//!
//! A `POINT` is `WORKLOAD:CONFIG[:SCALE[:MODE]]`, e.g. `Camel:SVR16` or
//! `PR_KR:OoO:tiny:warp` (scale defaults to `tiny`, mode to `detailed`).
//!
//! `submit` posts a batch; with `--stream` it then follows each job's
//! chunked progress stream to a terminal state, printing every event line,
//! and exits non-zero if any job errored. Transport failures and 429/503
//! responses are retried with jittered exponential backoff, honoring the
//! server's `Retry-After` header — a full queue is a "later", not an error
//! (resubmission is safe: the daemon dedups by content hash).
//! `stats` renders a human-readable summary of the daemon's observability
//! registry (counters, gauges, latency percentiles) from `GET /v1/stats`;
//! `metrics` prints the raw Prometheus text exposition from
//! `GET /v1/metrics` verbatim, for piping into a scraper or `grep`.
//! `run-local` bypasses the daemon
//! entirely: it claims the point in the shared on-disk store and simulates
//! only on a claim win — two racing `run-local` processes (or a `run-local`
//! racing a daemon) cost one simulation; the output line `source=...` says
//! which side this process took.

use std::time::Duration;
use svr_serve::http;
use svr_serve::protocol::PointSpec;
use svr_sim::json::Json;
use svr_sim::{point_key, run_point, Claim, ResultCache};

const TIMEOUT: Duration = Duration::from_secs(600);

/// The retry policy for daemon requests, seeded by pid so concurrent
/// clients jitter apart deterministically.
fn retry_policy() -> http::RetryPolicy {
    http::RetryPolicy::new(u64::from(std::process::id()))
}

fn usage() -> String {
    "usage:\n  svr_client submit   --addr HOST:PORT [--client NAME] [--stream] POINT...\n  \
     svr_client status   --addr HOST:PORT\n  \
     svr_client stats    --addr HOST:PORT\n  \
     svr_client metrics  --addr HOST:PORT\n  \
     svr_client shutdown --addr HOST:PORT\n  \
     svr_client run-local [--cache-dir DIR] POINT\n\
     POINT is WORKLOAD:CONFIG[:SCALE[:MODE]] (e.g. Camel:SVR16)"
        .to_string()
}

/// Parses `WORKLOAD:CONFIG[:SCALE[:MODE]]`.
fn parse_point(arg: &str) -> Result<PointSpec, String> {
    let mut parts = arg.split(':');
    let (Some(workload), Some(config)) = (parts.next(), parts.next()) else {
        return Err(format!("point {arg:?} must be WORKLOAD:CONFIG[:SCALE[:MODE]]"));
    };
    Ok(PointSpec {
        workload: workload.to_string(),
        config: config.to_string(),
        scale: parts.next().unwrap_or("tiny").to_string(),
        mode: parts.next().unwrap_or("detailed").to_string(),
    })
}

fn submit(args: &[String]) -> Result<i32, String> {
    let mut addr = None;
    let mut client = "anonymous".to_string();
    let mut stream = false;
    let mut points = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned(),
            "--client" => {
                client = it.next().cloned().ok_or("--client requires a value")?;
            }
            "--stream" => stream = true,
            other => points.push(parse_point(other)?),
        }
    }
    let addr = addr.ok_or_else(usage)?;
    if points.is_empty() {
        return Err(format!("no points given\n{}", usage()));
    }
    let body = Json::Obj(vec![
        ("client".into(), Json::str(&client)),
        (
            "points".into(),
            Json::Arr(points.iter().map(PointSpec::to_json).collect()),
        ),
    ])
    .pretty();
    let resp = http::request_with_retry(
        &addr,
        "POST",
        "/v1/jobs",
        Some(body.as_bytes()),
        TIMEOUT,
        &retry_policy(),
        |_| {},
    )?;
    let text = String::from_utf8_lossy(&resp.body).to_string();
    if resp.status != 200 {
        eprintln!("submit rejected ({}): {text}", resp.status);
        return Ok(1);
    }
    let doc = Json::parse(&text).map_err(|e| format!("bad response: {e}"))?;
    let jobs: Vec<(String, String)> = doc
        .get("jobs")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|j| {
                    let hash = j.get("hash").and_then(Json::as_str)?;
                    let adm = j.get("admission").and_then(Json::as_str).unwrap_or("?");
                    Some((hash.to_string(), adm.to_string()))
                })
                .collect()
        })
        .unwrap_or_default();
    for (hash, admission) in &jobs {
        println!("job {hash} admission={admission}");
    }
    if !stream {
        return Ok(0);
    }
    let mut failed = 0;
    for (hash, _) in &jobs {
        // A dropped stream is retried whole: the server replays the full
        // event history on re-subscription, so no transition is lost
        // (duplicate lines are possible, missing ones are not).
        let resp = http::request_with_retry(
            &addr,
            "GET",
            &format!("/v1/jobs/{hash}/stream"),
            None,
            TIMEOUT,
            &retry_policy(),
            |line| println!("{line}"),
        )?;
        if resp.status != 200 {
            failed += 1;
            continue;
        }
        // The last state line carried the terminal phase.
        let text = String::from_utf8_lossy(&resp.body);
        let errored = text
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .any(|e| {
                matches!(e.get("state").and_then(Json::as_str), Some("error"))
            });
        if errored {
            failed += 1;
        }
    }
    Ok(if failed > 0 { 1 } else { 0 })
}

fn simple_get(args: &[String], method: &str, path: &str) -> Result<i32, String> {
    let mut addr = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--addr" {
            addr = it.next().cloned();
        }
    }
    let addr = addr.ok_or_else(usage)?;
    let resp = http::request(&addr, method, path, None, TIMEOUT, |_| {})?;
    println!("{}", String::from_utf8_lossy(&resp.body).trim_end());
    Ok(if resp.status == 200 { 0 } else { 1 })
}

/// `GET /v1/stats`, rendered as an aligned human summary: one line per
/// metric, histograms as `count/p50/p99/max`.
fn stats(args: &[String]) -> Result<i32, String> {
    let mut addr = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--addr" {
            addr = it.next().cloned();
        }
    }
    let addr = addr.ok_or_else(usage)?;
    let resp = http::request(&addr, "GET", "/v1/stats", None, TIMEOUT, |_| {})?;
    let text = String::from_utf8_lossy(&resp.body).to_string();
    if resp.status != 200 {
        eprintln!("stats failed ({}): {text}", resp.status);
        return Ok(1);
    }
    let doc = Json::parse(&text).map_err(|e| format!("bad response: {e}"))?;
    if let Some(status) = doc.get("status") {
        let field = |k: &str| status.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "jobs: accepted={} joined={} simulated={} cached={} errors={} rejected={}",
            field("accepted"),
            field("joined"),
            field("simulated"),
            field("cached"),
            field("errors"),
            field("rejected"),
        );
    }
    let entries = doc
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or("response missing metrics array")?;
    for e in entries {
        let Some(name) = e.get("name").and_then(Json::as_str) else {
            continue;
        };
        let labels = match e.get("labels") {
            Some(Json::Obj(pairs)) => {
                let parts: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                    .collect();
                format!("{{{}}}", parts.join(","))
            }
            _ => String::new(),
        };
        match e.get("type").and_then(Json::as_str) {
            Some("histogram") => {
                let f = |k: &str| e.get(k).and_then(Json::as_u64).unwrap_or(0);
                println!(
                    "{name}{labels}: count={} p50={}us p90={}us p99={}us max={}us",
                    f("count"),
                    f("p50"),
                    f("p90"),
                    f("p99"),
                    f("max"),
                );
            }
            _ => {
                let v = e
                    .get("value")
                    .map(|v| match v {
                        Json::Num(n) => n.clone(),
                        other => other.dump(),
                    })
                    .unwrap_or_else(|| "?".into());
                println!("{name}{labels}: {v}");
            }
        }
    }
    Ok(0)
}

fn run_local(args: &[String]) -> Result<i32, String> {
    let mut cache_dir = None;
    let mut point = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache-dir" => cache_dir = it.next().cloned(),
            other => point = Some(parse_point(other)?),
        }
    }
    let spec = point.ok_or_else(|| format!("no point given\n{}", usage()))?;
    let resolved = spec
        .resolve()
        .map_err(|e| format!("invalid point: {}", e.body.pretty()))?;
    let cache = match cache_dir {
        Some(d) => ResultCache::new(d),
        None => ResultCache::default_dir(),
    };
    let key = point_key(&spec.workload, resolved.scale, &resolved.sim, &resolved.options);
    match cache.claim(&key, Duration::from_secs(120), Duration::from_secs(120)) {
        Claim::Hit(report) => {
            println!(
                "source=cached workload={} config={} cycles={}",
                spec.workload, spec.config, report.core.cycles
            );
            Ok(0)
        }
        Claim::Won(guard) => {
            let workload = resolved.kernel.build(resolved.scale);
            match run_point(&workload, &resolved.sim, &key, resolved.scale, &resolved.options, None)
            {
                Ok(report) => {
                    cache.store(&key, resolved.scale, &report);
                    drop(guard);
                    println!(
                        "source=simulated workload={} config={} cycles={}",
                        spec.workload, spec.config, report.core.cycles
                    );
                    Ok(0)
                }
                Err(e) => {
                    drop(guard);
                    eprintln!("{}", e.error.to_json().pretty());
                    Ok(1)
                }
            }
        }
    }
}

fn run() -> Result<i32, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "submit" => submit(rest),
        "status" => simple_get(rest, "GET", "/v1/status"),
        "stats" => stats(rest),
        "metrics" => simple_get(rest, "GET", "/v1/metrics"),
        "shutdown" => simple_get(rest, "POST", "/v1/shutdown"),
        "run-local" => run_local(rest),
        "--help" | "-h" => Err(usage()),
        other => Err(format!("unknown subcommand {other:?}\n{}", usage())),
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("svr_client: {e}");
            std::process::exit(2);
        }
    }
}
