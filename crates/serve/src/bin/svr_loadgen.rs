//! Load generator + p99 latency benchmark for the `svr_serve` daemon.
//!
//! ```text
//! svr_loadgen [--clients N] [--points P] [--addr HOST:PORT]
//!             [--workers N] [--out PATH]
//! ```
//!
//! Drives N concurrent clients over *overlapping* sweep spaces — every
//! client submits the same P design points, one `POST /v1/jobs` each, then
//! streams every job to a terminal state — so the benchmark exercises
//! exactly the contended dedup path the service exists for. Client-side
//! submit latency lands in a shared [`svr_sim::metrics::Histogram`]; the
//! daemon's `/v1/metrics` is scraped before and after the run and the
//! counter *deltas* are the accounting the benchmark judges:
//!
//! * `jobs_errors_total` delta must be 0;
//! * `jobs_simulated_total + jobs_cached_total` delta must equal the
//!   number of unique points (each unique point resolved exactly once);
//! * without `--addr` (self-hosted daemon, fresh cache) the simulated
//!   delta alone must equal unique points: **simulations per unique point
//!   == 1**, no matter how many clients raced.
//!
//! Results go to `results/serve_load.json` (override with `--out`):
//! p50/p90/p99/max submit latency, end-to-end throughput, the dedup
//! verdict. Exit status is nonzero when any invariant fails, so CI can
//! gate on it.
//!
//! Without `--addr` the benchmark hosts its own daemon in-process on an
//! ephemeral port with a fresh temp cache (torn down afterwards); with
//! `--addr` it targets a running daemon and only asserts the weaker
//! warm-cache form of the invariant.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use svr_serve::http;
use svr_serve::protocol::PointSpec;
use svr_serve::{Server, ServerConfig};
use svr_sim::json::Json;
use svr_sim::metrics::{find_sample, parse_exposition, Histogram, Sample};

const TIMEOUT: Duration = Duration::from_secs(600);

/// The benchmark's point space: one workload, swept across configs (the
/// same axis the paper's figures sweep). `--points P` takes the first P.
const CONFIGS: &[&str] = &[
    "InO", "IMP", "OoO", "SVR8", "SVR16", "SVR32", "SVR64", "SVR128",
];

fn usage() -> String {
    "usage: svr_loadgen [--clients N] [--points P] [--addr HOST:PORT] \
     [--workers N] [--out PATH]"
        .to_string()
}

struct Args {
    clients: usize,
    points: usize,
    addr: Option<String>,
    workers: usize,
    out: PathBuf,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        clients: 3,
        points: CONFIGS.len(),
        addr: None,
        workers: 2,
        out: PathBuf::from("results/serve_load.json"),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--points" => {
                args.points = value("--points")?
                    .parse()
                    .map_err(|e| format!("--points: {e}"))?;
            }
            "--addr" => args.addr = Some(value("--addr")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    if args.points == 0 || args.points > CONFIGS.len() {
        return Err(format!("--points must be in 1..={}", CONFIGS.len()));
    }
    Ok(args)
}

/// Scrapes `/v1/metrics` and pulls the benchmark's counters.
fn scrape(addr: &str) -> Result<Vec<Sample>, String> {
    let resp = http::request(addr, "GET", "/v1/metrics", None, TIMEOUT, |_| {})?;
    if resp.status != 200 {
        return Err(format!("/v1/metrics returned {}", resp.status));
    }
    Ok(parse_exposition(&String::from_utf8_lossy(&resp.body)))
}

fn counter(samples: &[Sample], name: &str) -> u64 {
    find_sample(samples, name, &[]).map_or(0, |s| s.value as u64)
}

/// One client's run: submit every point (latency recorded per POST), then
/// stream every job to a terminal state. Returns (submits, errors).
fn run_client(
    addr: &str,
    name: &str,
    specs: &[PointSpec],
    latency: &Histogram,
) -> Result<(u64, u64), String> {
    let policy = http::RetryPolicy::new(u64::from(std::process::id()) ^ name.len() as u64);
    let mut hashes = Vec::new();
    let mut submits = 0u64;
    for spec in specs {
        let body = Json::Obj(vec![
            ("client".into(), Json::str(name)),
            ("points".into(), Json::Arr(vec![spec.to_json()])),
        ])
        .pretty();
        let t0 = Instant::now();
        let resp = http::request_with_retry(
            addr,
            "POST",
            "/v1/jobs",
            Some(body.as_bytes()),
            TIMEOUT,
            &policy,
            |_| {},
        )?;
        latency.record_duration_us(t0.elapsed());
        submits += 1;
        if resp.status != 200 {
            return Err(format!("submit returned {}", resp.status));
        }
        let doc = Json::parse(&String::from_utf8_lossy(&resp.body))
            .map_err(|e| format!("bad submit response: {e}"))?;
        if let Some(jobs) = doc.get("jobs").and_then(Json::as_arr) {
            for j in jobs {
                if let Some(h) = j.get("hash").and_then(Json::as_str) {
                    hashes.push(h.to_string());
                }
            }
        }
    }
    let mut errors = 0u64;
    for hash in &hashes {
        let resp = http::request_with_retry(
            addr,
            "GET",
            &format!("/v1/jobs/{hash}/stream"),
            None,
            TIMEOUT,
            &policy,
            |_| {},
        )?;
        let text = String::from_utf8_lossy(&resp.body);
        let errored = text
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .any(|e| matches!(e.get("state").and_then(Json::as_str), Some("error")));
        if resp.status != 200 || errored {
            errors += 1;
        }
    }
    Ok((submits, errors))
}

fn run() -> Result<i32, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    let specs: Vec<PointSpec> = CONFIGS[..args.points]
        .iter()
        .map(|c| PointSpec {
            workload: "Camel".into(),
            config: (*c).to_string(),
            scale: "tiny".into(),
            mode: "detailed".into(),
        })
        .collect();

    // Self-host a daemon unless one was pointed at. The self-hosted cache
    // is fresh, so every unique point must cost exactly one simulation.
    let self_hosted = args.addr.is_none();
    let mut tmp_cache = None;
    let (addr, server) = match &args.addr {
        Some(a) => (a.clone(), None),
        None => {
            let dir = std::env::temp_dir()
                .join(format!("svr-loadgen-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).map_err(|e| format!("temp cache dir: {e}"))?;
            tmp_cache = Some(dir.clone());
            let listener = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| format!("bind: {e}"))?;
            let addr = listener
                .local_addr()
                .map_err(|e| format!("local_addr: {e}"))?
                .to_string();
            let srv = Arc::new(Server::new(ServerConfig {
                workers: args.workers,
                cache_dir: dir,
                ..ServerConfig::default()
            }));
            let handle = {
                let srv = Arc::clone(&srv);
                std::thread::spawn(move || srv.serve(listener))
            };
            (addr, Some((srv, handle)))
        }
    };

    let before = scrape(&addr)?;
    let latency = Arc::new(Histogram::default());
    let wall = Instant::now();
    let results: Vec<Result<(u64, u64), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|i| {
                let addr = addr.clone();
                let name = format!("loadgen-{i}");
                let specs = &specs;
                let latency = Arc::clone(&latency);
                s.spawn(move || run_client(&addr, &name, specs, &latency))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".into()))
            })
            .collect()
    });
    let wall_ms = wall.elapsed().as_millis() as u64;
    let after = scrape(&addr)?;

    // Tear the self-hosted daemon down before judging, so a failed verdict
    // never leaks a listener thread or the temp cache.
    if let Some((_, handle)) = server {
        let _ = http::request(&addr, "POST", "/v1/shutdown", None, TIMEOUT, |_| {});
        let _ = handle.join();
    }
    if let Some(dir) = tmp_cache {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let mut total_submits = 0u64;
    let mut client_errors = 0u64;
    for r in results {
        let (s, e) = r?;
        total_submits += s;
        client_errors += e;
    }

    let delta = |name: &str| counter(&after, name).saturating_sub(counter(&before, name));
    let simulated = delta("jobs_simulated_total");
    let cached = delta("jobs_cached_total");
    let joined = delta("jobs_joined_total");
    let errors = delta("jobs_errors_total");
    let unique = specs.len() as u64;

    // The invariant the whole service tier exists for: N clients racing on
    // one sweep space cost one resolution per unique point — and, against
    // a fresh cache, exactly one *simulation* per unique point.
    let resolved_once = simulated + cached == unique;
    let dedup_ok = errors == 0
        && client_errors == 0
        && resolved_once
        && (!self_hosted || simulated == unique);
    let sims_per_unique = simulated as f64 / unique as f64;

    let snap = latency.snapshot();
    let secs = (wall_ms as f64 / 1000.0).max(1e-9);
    let report = Json::Obj(vec![
        ("clients".into(), Json::u64(args.clients as u64)),
        ("unique_points".into(), Json::u64(unique)),
        ("total_submits".into(), Json::u64(total_submits)),
        ("wall_ms".into(), Json::u64(wall_ms)),
        (
            "throughput_jobs_per_s".into(),
            Json::f64(total_submits as f64 / secs),
        ),
        (
            "submit_latency_us".into(),
            Json::Obj(vec![
                ("count".into(), Json::u64(snap.count)),
                ("p50".into(), Json::u64(snap.p50())),
                ("p90".into(), Json::u64(snap.p90())),
                ("p99".into(), Json::u64(snap.p99())),
                ("max".into(), Json::u64(snap.max)),
            ]),
        ),
        ("simulated".into(), Json::u64(simulated)),
        ("cached".into(), Json::u64(cached)),
        ("joined".into(), Json::u64(joined)),
        ("errors".into(), Json::u64(errors)),
        ("sims_per_unique_point".into(), Json::f64(sims_per_unique)),
        ("self_hosted".into(), Json::Bool(self_hosted)),
        ("dedup_ok".into(), Json::Bool(dedup_ok)),
    ]);
    if let Some(parent) = args.out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    std::fs::write(&args.out, report.pretty() + "\n")
        .map_err(|e| format!("write {:?}: {e}", args.out))?;
    println!(
        "loadgen: {} clients x {} points -> {} submits in {} ms \
         (p50={}us p99={}us); simulated={simulated} cached={cached} \
         joined={joined} errors={errors} dedup_ok={dedup_ok}",
        args.clients,
        unique,
        total_submits,
        wall_ms,
        snap.p50(),
        snap.p99(),
    );
    println!("wrote {}", args.out.display());
    if !dedup_ok {
        eprintln!(
            "loadgen: DEDUP VIOLATION: simulated={simulated} cached={cached} \
             unique={unique} errors={errors} client_errors={client_errors}"
        );
        return Ok(1);
    }
    Ok(0)
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("svr_loadgen: {e}");
            std::process::exit(2);
        }
    }
}
