//! Leveled structured JSON logging for the service tier.
//!
//! Every line is one JSON object on stderr:
//!
//! ```json
//! {"ts_ms":1234,"level":"info","event":"job_claimed","req":7,"hash":"ab..","queue_wait_us":412}
//! ```
//!
//! * `ts_ms` — milliseconds since process logger start, from a *monotonic*
//!   clock (durations computed between lines are immune to wall-clock
//!   steps).
//! * `level` — `error` < `warn` < `info` < `debug`; the threshold comes
//!   from `--log-level` or the `SVR_LOG` environment variable (flag wins),
//!   default `info`. Disabled levels cost one relaxed atomic load.
//! * `event` — a stable machine-matchable name; the per-job span events
//!   are `job_queued` → `job_claimed` → `job_simulated` → `job_streamed`.
//! * per-connection request IDs (`req`) from [`next_request_id`] tie the
//!   request line to everything that happened while serving it.
//!
//! The sink is a plain process-global level threshold — deliberately the
//! only global here, because log routing (unlike metrics ownership) really
//! is a process-wide concern. Lines are written whole via a locked stderr
//! handle so concurrent connection threads never interleave mid-line.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;
use svr_sim::json::Json;

/// Log severity, ordered `Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The daemon cannot do what it was asked.
    Error = 1,
    /// Degraded but proceeding (retries, torn journal lines).
    Warn = 2,
    /// Lifecycle and span events (default threshold).
    Info = 3,
    /// Per-request detail.
    Debug = 4,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses `error|warn|info|debug|off` (case-insensitive). `off`
    /// silences everything.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "off" | "none" => Some(None),
            _ => None,
        }
    }
}

/// Process-wide threshold: events above this ordinal are dropped.
/// 3 == `Level::Info`, the default; 0 silences everything.
static THRESHOLD: AtomicU8 = AtomicU8::new(3);

/// Monotonic request-ID source (one per accepted connection).
static REQUEST_ID: AtomicU64 = AtomicU64::new(0);

/// Monotonic epoch for `ts_ms`.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Sets the threshold; `None` turns logging off entirely.
pub fn set_level(level: Option<Level>) {
    THRESHOLD.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
    // Pin the epoch early so ts_ms is comparable across the process life.
    let _ = EPOCH.get_or_init(Instant::now);
}

/// Applies `SVR_LOG` (if set and valid). Returns whether it applied.
pub fn init_from_env() -> bool {
    match std::env::var("SVR_LOG").ok().as_deref().and_then(Level::parse) {
        Some(level) => {
            set_level(level);
            true
        }
        None => false,
    }
}

/// Whether `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= THRESHOLD.load(Ordering::Relaxed)
}

/// Milliseconds since the logger's monotonic epoch.
pub fn ts_ms() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// A fresh per-connection request ID.
pub fn next_request_id() -> u64 {
    REQUEST_ID.fetch_add(1, Ordering::Relaxed) + 1
}

/// Emits one structured line (if `level` is enabled). `fields` follow the
/// standard `ts_ms`/`level`/`event` prefix in order.
pub fn log(level: Level, event: &str, fields: &[(&str, Json)]) {
    if !enabled(level) {
        return;
    }
    let mut obj = Vec::with_capacity(3 + fields.len());
    obj.push(("ts_ms".to_string(), Json::u64(ts_ms())));
    obj.push(("level".to_string(), Json::str(level.name())));
    obj.push(("event".to_string(), Json::str(event)));
    for (k, v) in fields {
        obj.push(((*k).to_string(), v.clone()));
    }
    let line = Json::Obj(obj).dump();
    // One locked write per line: concurrent threads never interleave.
    let stderr = std::io::stderr();
    let mut h = stderr.lock();
    let _ = writeln!(h, "{line}");
}

/// [`log`] at [`Level::Error`].
pub fn error(event: &str, fields: &[(&str, Json)]) {
    log(Level::Error, event, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(event: &str, fields: &[(&str, Json)]) {
    log(Level::Warn, event, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(event: &str, fields: &[(&str, Json)]) {
    log(Level::Info, event, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(event: &str, fields: &[(&str, Json)]) {
    log(Level::Debug, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn threshold_gates_levels() {
        // Tests share the process; restore the default when done.
        set_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(None);
        assert!(!enabled(Level::Error));
        set_level(Some(Level::Info));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }

    #[test]
    fn request_ids_are_unique_and_nonzero() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
