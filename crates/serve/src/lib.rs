//! # svr-serve — sweep-as-a-service for the SVR reproduction
//!
//! A long-running simulation daemon (`svr_serve`) and its CLI client
//! (`svr_client`). Clients submit batches of design points as JSON over a
//! hand-rolled HTTP/1.1 socket; the daemon deduplicates them against
//! in-flight work (N clients asking for the same point cost one
//! simulation), resolves them against the same on-disk result store CLI
//! sweeps use, schedules fairly across clients, and streams windowed
//! progress back over chunked responses.
//!
//! The three modules mirror the three concerns:
//!
//! * [`http`] — the minimal `Connection: close` HTTP/1.1 subset (no
//!   external dependencies; the registry is offline);
//! * [`protocol`] — point specs, resolution against the workload/config
//!   registries, and the structured error bodies (no bare 500s);
//! * [`server`] — registry, per-client round-robin queues with bounded
//!   admission, the worker pool, the pending-work journal and drain
//!   lifecycle.

pub mod http;
pub mod log;
pub mod protocol;
pub mod server;

pub use protocol::{PointSpec, ProtoError, ResolvedPoint};
pub use server::{Admission, Job, Phase, Server, ServerConfig};
