//! The simulation server: job registry, dedup, fair scheduling, streaming
//! progress, and graceful lifecycle.
//!
//! # Architecture
//!
//! One [`Server`] owns three pieces of shared state:
//!
//! * a **registry** of every job this daemon has seen, keyed by the design
//!   point's content hash (the same [`svr_sim::point_key`] hash the sweep
//!   engine and on-disk cache use) — N clients submitting the same point
//!   share one [`Job`];
//! * per-client **queues** drained round-robin by the worker pool, so one
//!   client submitting a 500-point batch cannot starve another's single
//!   point; admission is bounded per client (429 + `Retry-After` beyond the
//!   limit);
//! * the shared **result store** ([`svr_sim::ResultCache`]) — the same
//!   directory CLI sweeps use, so server results and sweep results are one
//!   population. Cross-*process* dedup goes through
//!   [`svr_sim::ResultCache::claim`]: two daemons (or a daemon and a sweep)
//!   racing on one point cost one simulation globally.
//!
//! # Lifecycle
//!
//! Accepted-but-unfinished jobs are journaled as one file each under
//! `<cache>/serve-pending/`; the file is removed when the job reaches a
//! terminal state. A drain (SIGTERM/SIGINT via [`svr_sim::shutdown`], or
//! `POST /v1/shutdown`) stops accepting, lets in-flight jobs finish, marks
//! still-queued jobs interrupted (their journal entries remain), and a
//! restarted daemon re-enqueues everything found in the pending directory —
//! points that completed before the kill resolve instantly from the cache.

use crate::log;
use crate::protocol::{error_body, parse_submit, PointSpec, ProtoError, ResolvedPoint};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use svr_sim::fault::{self, FaultSite};
use svr_sim::json::Json;
use svr_sim::metrics::{
    CacheMetrics, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
};
use svr_sim::{
    point_key, report_to_json, run_point_traced, shutdown, Claim, PointKey, ResultCache,
    SimError,
};
use svr_trace::{TraceEvent, TraceSink};

/// Locks a mutex, riding through poisoning (workers catch panics at the job
/// boundary; registry state is updated atomically under the lock).
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads simulating jobs.
    pub workers: usize,
    /// Result-store directory (shared with CLI sweeps).
    pub cache_dir: PathBuf,
    /// When set, [`svr_sim::ResultCache::gc`] runs after each stored result.
    pub cache_max_bytes: Option<u64>,
    /// Crash-dump directory (`None` disables the flight recorder).
    pub crash_dir: Option<PathBuf>,
    /// Maximum queued (not yet running) jobs per client; submissions beyond
    /// this are rejected with 429 + `Retry-After`.
    pub queue_limit: usize,
    /// Suggested client back-off, surfaced in the `Retry-After` header.
    pub retry_after_secs: u64,
    /// How long a worker waits on another process's cache claim before
    /// simulating anyway (duplicated work is safe, just not free).
    pub claim_timeout: Duration,
    /// Age beyond which another process's claim is considered abandoned.
    pub claim_stale: Duration,
    /// Wall-clock budget from acceptance to completion. A job past its
    /// deadline finishes with a structured `{kind:"deadline"}` error instead
    /// of occupying a worker (or, when the simulation already ran, instead
    /// of pretending the answer arrived in time). `None` disables deadlines.
    pub job_deadline: Option<Duration>,
    /// Per-request socket read timeout; also the overall budget for one
    /// request (head + body) to arrive, so slow-loris clients get a 408
    /// instead of a worker-less connection slot forever.
    pub read_timeout: Duration,
    /// Per-request socket write timeout (responses and stream chunks).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let dir = std::env::var("SVR_CACHE_DIR").unwrap_or_else(|_| "results/cache".into());
        ServerConfig {
            workers: 2,
            cache_dir: PathBuf::from(dir),
            cache_max_bytes: None,
            crash_dir: None,
            queue_limit: 64,
            retry_after_secs: 1,
            claim_timeout: Duration::from_secs(600),
            claim_stale: Duration::from_secs(600),
            job_deadline: None,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Job lifecycle states. `Queued → Running → {Done, Error}`; `Interrupted`
/// replaces `Queued` when the daemon drains first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is resolving it (cache lookup or simulation).
    Running,
    /// Finished with a report.
    Done,
    /// Finished with a structured error.
    Error,
    /// The daemon drained before a worker picked it up; its pending-journal
    /// entry survives, so a restarted daemon resumes it.
    Interrupted,
}

impl Phase {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Error => "error",
            Phase::Interrupted => "interrupted",
        }
    }

    /// Whether the job will never change state again (this daemon's
    /// lifetime; `Interrupted` resumes only in a restarted daemon).
    pub fn terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Error | Phase::Interrupted)
    }
}

/// Cap on the per-job event replay buffer. At ~150 bytes per line this
/// bounds a job's history near 150 KiB; older lines are dropped first.
const HISTORY_CAP: usize = 1024;

#[derive(Debug)]
struct JobInner {
    phase: Phase,
    /// "simulated" | "cached" once terminal-done.
    source: Option<&'static str>,
    report: Option<Json>,
    error: Option<Json>,
    subs: Vec<mpsc::Sender<String>>,
    /// Every broadcast line, kept so a subscriber that arrives after the
    /// fact (or after the job finished) still sees the full progress feed.
    history: Vec<String>,
}

impl JobInner {
    /// Sends `line` to live subscribers and appends it to the replay log.
    fn emit(&mut self, line: String) {
        self.subs.retain(|tx| tx.send(line.clone()).is_ok());
        if self.history.len() == HISTORY_CAP {
            self.history.remove(0);
        }
        self.history.push(line);
    }
}

/// One deduplicated design point: every client that submits the same
/// (workload, config, scale, mode) shares this object.
#[derive(Debug)]
pub struct Job {
    /// Content hash (registry key, cache entry name).
    pub hash: u64,
    /// The submitted spec.
    pub spec: PointSpec,
    /// Resolved content key (drives cache load/store/claim).
    pub key: PointKey,
    /// Acceptance time — the zero point of the per-job deadline.
    created: Instant,
    inner: Mutex<JobInner>,
}

impl Job {
    fn new(spec: PointSpec, key: PointKey) -> Self {
        Job {
            hash: key.hash,
            spec,
            key,
            created: Instant::now(),
            inner: Mutex::new(JobInner {
                phase: Phase::Queued,
                source: None,
                report: None,
                error: None,
                subs: Vec::new(),
                history: Vec::new(),
            }),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        lock_ok(&self.inner).phase
    }

    /// Full JSON view: state, source, report/error when terminal.
    pub fn to_json(&self) -> Json {
        let inner = lock_ok(&self.inner);
        Json::Obj(vec![
            ("hash".into(), Json::str(format!("{:016x}", self.hash))),
            ("point".into(), self.spec.to_json()),
            ("state".into(), Json::str(inner.phase.as_str())),
            (
                "source".into(),
                inner.source.map_or(Json::Null, Json::str),
            ),
            (
                "report".into(),
                inner.report.clone().unwrap_or(Json::Null),
            ),
            ("error".into(), inner.error.clone().unwrap_or(Json::Null)),
        ])
    }

    /// Subscribes to this job's event stream. Returns the receiver and a
    /// replay of everything broadcast so far, ending with a state event for
    /// the state at subscription time; the receiver sees every event
    /// emitted after the replay (replay and subscription happen under one
    /// lock, so no transition is lost, and a subscriber that arrives after
    /// the job finished still sees the full progress feed).
    pub fn subscribe(&self) -> (mpsc::Receiver<String>, Vec<String>) {
        let (tx, rx) = mpsc::channel();
        let mut inner = lock_ok(&self.inner);
        let mut replay = inner.history.clone();
        let now = self.state_line(&inner);
        if replay.last() != Some(&now) {
            replay.push(now);
        }
        inner.subs.push(tx);
        (rx, replay)
    }

    /// Renders the state-transition event line for the current state.
    fn state_line(&self, inner: &JobInner) -> String {
        Json::Obj(vec![
            ("event".into(), Json::str("state")),
            ("hash".into(), Json::str(format!("{:016x}", self.hash))),
            ("workload".into(), Json::str(&self.spec.workload)),
            ("config".into(), Json::str(&self.spec.config)),
            ("state".into(), Json::str(inner.phase.as_str())),
            (
                "source".into(),
                inner.source.map_or(Json::Null, Json::str),
            ),
            ("terminal".into(), Json::Bool(inner.phase.terminal())),
        ])
        .dump()
    }

    /// Moves to `phase` and broadcasts the transition.
    fn transition(&self, phase: Phase) {
        let mut inner = lock_ok(&self.inner);
        inner.phase = phase;
        let line = self.state_line(&inner);
        inner.emit(line);
    }

    /// Terminal success.
    fn finish_done(&self, source: &'static str, report: Json) {
        let mut inner = lock_ok(&self.inner);
        inner.phase = Phase::Done;
        inner.source = Some(source);
        inner.report = Some(report);
        let line = self.state_line(&inner);
        inner.emit(line);
        inner.subs.clear();
    }

    /// Terminal failure (or drain interruption) with a structured body.
    fn finish_error(&self, phase: Phase, error: Json) {
        let mut inner = lock_ok(&self.inner);
        inner.phase = phase;
        inner.error = Some(error);
        let line = self.state_line(&inner);
        inner.emit(line);
        inner.subs.clear();
    }

    /// Broadcasts a progress (non-state) event line.
    fn broadcast(&self, line: &str) {
        let mut inner = lock_ok(&self.inner);
        inner.emit(line.to_string());
    }
}

/// Registry + per-client queues (one mutex; workers and the accept path
/// contend only for scheduling decisions, never across a simulation).
#[derive(Debug, Default)]
struct Sched {
    jobs: HashMap<u64, Arc<Job>>,
    /// Round-robin client queues, in first-seen order.
    queues: Vec<(String, std::collections::VecDeque<Arc<Job>>)>,
    rr_next: usize,
}

impl Sched {
    /// Pops the next job, rotating across clients for fairness.
    fn pick(&mut self) -> Option<Arc<Job>> {
        let n = self.queues.len();
        for i in 0..n {
            let idx = (self.rr_next + i) % n;
            if let Some(job) = self.queues[idx].1.pop_front() {
                self.rr_next = (idx + 1) % n;
                return Some(job);
            }
        }
        None
    }

    fn queue_of(&mut self, client: &str) -> &mut std::collections::VecDeque<Arc<Job>> {
        if let Some(idx) = self.queues.iter().position(|(c, _)| c == client) {
            return &mut self.queues[idx].1;
        }
        self.queues
            .push((client.to_string(), std::collections::VecDeque::new()));
        let last = self.queues.len() - 1;
        &mut self.queues[last].1
    }
}

/// Monotonic counters surfaced by `GET /v1/status` (the smoke test's
/// "exactly one simulation per unique point" check reads `simulated` here).
/// The same counters back the registry's `jobs_*_total` Prometheus series:
/// `/v1/status` and `/v1/metrics` can never disagree.
#[derive(Debug)]
pub struct Counters {
    /// New jobs accepted (unique points) — `jobs_accepted_total`.
    pub accepted: Arc<Counter>,
    /// Submissions deduplicated onto an existing job — `jobs_joined_total`.
    pub joined: Arc<Counter>,
    /// Jobs resolved by actually simulating — `jobs_simulated_total`.
    pub simulated: Arc<Counter>,
    /// Jobs resolved from the shared result store — `jobs_cached_total`.
    pub cached: Arc<Counter>,
    /// Jobs that finished with a structured error — `jobs_errors_total`.
    pub errors: Arc<Counter>,
    /// Submissions rejected for a full client queue (429) —
    /// `jobs_rejected_total`.
    pub rejected: Arc<Counter>,
    /// Jobs interrupted by a drain — `jobs_interrupted_total`.
    pub interrupted: Arc<Counter>,
}

impl Counters {
    fn register(reg: &MetricsRegistry) -> Counters {
        Counters {
            accepted: reg.counter("jobs_accepted_total", "New jobs accepted (unique points)"),
            joined: reg.counter(
                "jobs_joined_total",
                "Submissions deduplicated onto an existing job",
            ),
            simulated: reg.counter("jobs_simulated_total", "Jobs resolved by simulating"),
            cached: reg.counter("jobs_cached_total", "Jobs resolved from the result store"),
            errors: reg.counter("jobs_errors_total", "Jobs finished with a structured error"),
            rejected: reg.counter(
                "jobs_rejected_total",
                "Submissions rejected for a full client queue",
            ),
            interrupted: reg.counter("jobs_interrupted_total", "Jobs interrupted by a drain"),
        }
    }

    fn to_json(&self) -> Json {
        let f = |c: &Counter| Json::u64(c.get());
        Json::Obj(vec![
            ("accepted".into(), f(&self.accepted)),
            ("joined".into(), f(&self.joined)),
            ("simulated".into(), f(&self.simulated)),
            ("cached".into(), f(&self.cached)),
            ("errors".into(), f(&self.errors)),
            ("rejected".into(), f(&self.rejected)),
            ("interrupted".into(), f(&self.interrupted)),
        ])
    }
}

/// The service-tier instrument cluster: one registry (behind
/// `GET /v1/metrics` and `GET /v1/stats`) plus hot-path handles. All
/// recording is relaxed atomics; all formatting happens at scrape time.
pub struct ServeMetrics {
    /// The registry everything below is registered in.
    pub registry: MetricsRegistry,
    /// Jobs waiting in client queues (set authoritatively at scrape).
    pub queue_depth: Arc<Gauge>,
    /// Workers currently resolving a job.
    pub workers_busy: Arc<Gauge>,
    /// `POST /v1/jobs` handling latency (µs), client-visible.
    pub submit_latency_us: Arc<Histogram>,
    /// Acceptance → worker pickup (µs).
    pub queue_wait_us: Arc<Histogram>,
    /// Wall time inside the simulator per simulated job (µs).
    pub simulate_us: Arc<Histogram>,
    /// Duration of `GET /v1/jobs/<hash>/stream` responses (µs).
    pub stream_us: Arc<Histogram>,
    /// Cache-tier counters (shared with the [`ResultCache`]).
    pub cache: Arc<CacheMetrics>,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        let registry = MetricsRegistry::new();
        ServeMetrics {
            queue_depth: registry.gauge("queue_depth", "Jobs waiting in client queues"),
            workers_busy: registry.gauge("workers_busy", "Workers currently resolving a job"),
            submit_latency_us: registry
                .histogram("submit_latency_us", "POST /v1/jobs handling latency (us)"),
            queue_wait_us: registry
                .histogram("queue_wait_us", "Job acceptance to worker pickup (us)"),
            simulate_us: registry
                .histogram("simulate_us", "Simulator wall time per simulated job (us)"),
            stream_us: registry
                .histogram("stream_us", "Progress-stream response duration (us)"),
            cache: CacheMetrics::register(&registry),
            registry,
        }
    }

    /// The per-route request counter (`http_requests_total{route=...}`).
    pub fn http_requests(&self, route: &str) -> Arc<Counter> {
        self.registry
            .counter_with("http_requests_total", "HTTP requests by route", &[("route", route)])
    }
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics").finish_non_exhaustive()
    }
}

/// Decrements a gauge on scope exit (worker-busy tracking survives early
/// returns and panics caught at the job boundary).
struct GaugeGuard<'a>(&'a Gauge);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// The long-running simulation server. See the module docs for the
/// architecture; [`Server::serve`] is the entry point.
#[derive(Debug)]
pub struct Server {
    cfg: ServerConfig,
    cache: ResultCache,
    sched: Mutex<Sched>,
    wake: Condvar,
    draining: AtomicBool,
    /// Counters for `/v1/status`.
    pub counters: Counters,
    /// The observability cluster behind `/v1/metrics` and `/v1/stats`.
    pub metrics: ServeMetrics,
}

/// How a submission was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A new job was created and queued.
    New,
    /// Deduplicated onto an existing in-flight or finished job.
    Joined,
}

impl Server {
    /// Creates a server (no threads started yet).
    pub fn new(cfg: ServerConfig) -> Arc<Server> {
        let metrics = ServeMetrics::new();
        let counters = Counters::register(&metrics.registry);
        let cache = ResultCache::new(&cfg.cache_dir).with_metrics(Arc::clone(&metrics.cache));
        Arc::new(Server {
            cfg,
            cache,
            sched: Mutex::new(Sched::default()),
            wake: Condvar::new(),
            draining: AtomicBool::new(false),
            counters,
            metrics,
        })
    }

    /// The pending-journal directory (`<cache>/serve-pending`).
    fn pending_dir(&self) -> PathBuf {
        self.cfg.cache_dir.join("serve-pending")
    }

    fn pending_path(&self, hash: u64) -> PathBuf {
        self.pending_dir().join(format!("{hash:016x}.json"))
    }

    /// Whether a drain has begun (signal, `/v1/shutdown`, or programmatic).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || shutdown::requested()
    }

    /// Begins a drain: stop accepting, finish in-flight work, journal the
    /// rest. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    /// Submits one validated point for `client`. The caller resolves the
    /// spec first (submission is rejected eagerly on bad names, so a queued
    /// job can always be simulated).
    pub fn submit(
        &self,
        client: &str,
        spec: &PointSpec,
        resolved: &ResolvedPoint,
    ) -> Result<(Arc<Job>, Admission), ProtoError> {
        let key = point_key(
            &spec.workload,
            resolved.scale,
            &resolved.sim,
            &resolved.options,
        );
        let mut sched = lock_ok(&self.sched);
        if let Some(job) = sched.jobs.get(&key.hash) {
            self.counters.joined.inc();
            return Ok((Arc::clone(job), Admission::Joined));
        }
        let queue = sched.queue_of(client);
        if queue.len() >= self.cfg.queue_limit {
            self.counters.rejected.inc();
            return Err(ProtoError {
                status: 429,
                body: error_body(
                    "queue_full",
                    &format!(
                        "client {client:?} already has {} queued jobs (limit {}); \
                         retry after the queue drains",
                        queue.len(),
                        self.cfg.queue_limit
                    ),
                    Some(&spec.workload),
                    Some(&spec.config),
                ),
                retry_after: Some(self.cfg.retry_after_secs),
            });
        }
        let job = Arc::new(Job::new(spec.clone(), key));
        queue.push_back(Arc::clone(&job));
        sched.jobs.insert(job.hash, Arc::clone(&job));
        drop(sched);
        self.journal_pending(client, &job);
        self.counters.accepted.inc();
        log::info(
            "job_queued",
            &[
                ("hash", Json::str(format!("{:016x}", job.hash))),
                ("client", Json::str(client)),
                ("workload", Json::str(&spec.workload)),
                ("config", Json::str(&spec.config)),
            ],
        );
        self.wake.notify_one();
        Ok((job, Admission::New))
    }

    /// Writes the pending-journal entry for an accepted job (best-effort;
    /// a lost entry only costs resume coverage, never correctness).
    fn journal_pending(&self, client: &str, job: &Job) {
        let dir = self.pending_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let doc = Json::Obj(vec![
            ("client".into(), Json::str(client)),
            ("point".into(), job.spec.to_json()),
        ]);
        let tmp = dir.join(format!("{:016x}.tmp.{}", job.hash, std::process::id()));
        if std::fs::write(&tmp, doc.pretty()).is_ok() {
            let _ = std::fs::rename(&tmp, self.pending_path(job.hash));
        }
    }

    /// Re-enqueues every job found in the pending journal (a restarted
    /// daemon resuming an interrupted batch). Points that completed before
    /// the kill resolve instantly from the shared cache. Returns how many
    /// jobs were re-enqueued.
    pub fn resume_pending(&self) -> usize {
        let Ok(dir) = std::fs::read_dir(self.pending_dir()) else {
            return 0;
        };
        let mut resumed = 0;
        for entry in dir.flatten() {
            let path = entry.path();
            if path.extension().and_then(|x| x.to_str()) != Some("json") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let Ok(doc) = Json::parse(&text) else {
                // A torn write from a killed daemon; drop it — the client
                // will resubmit, and the result may already be cached.
                let _ = std::fs::remove_file(&path);
                continue;
            };
            let client = doc
                .get("client")
                .and_then(Json::as_str)
                .unwrap_or("resume")
                .to_string();
            let Some(point) = doc.get("point") else {
                let _ = std::fs::remove_file(&path);
                continue;
            };
            let Ok(spec) = PointSpec::from_json(point) else {
                let _ = std::fs::remove_file(&path);
                continue;
            };
            let Ok(resolved) = spec.resolve() else {
                let _ = std::fs::remove_file(&path);
                continue;
            };
            if self.submit(&client, &spec, &resolved).is_ok() {
                resumed += 1;
            }
        }
        resumed
    }

    /// Looks up a job by content hash.
    pub fn job(&self, hash: u64) -> Option<Arc<Job>> {
        lock_ok(&self.sched).jobs.get(&hash).cloned()
    }

    /// `/v1/status` document.
    pub fn status_json(&self) -> Json {
        let sched = lock_ok(&self.sched);
        let queued: u64 = sched.queues.iter().map(|(_, q)| q.len() as u64).sum();
        let clients = sched
            .queues
            .iter()
            .map(|(c, q)| {
                Json::Obj(vec![
                    ("client".into(), Json::str(c)),
                    ("queued".into(), Json::u64(q.len() as u64)),
                ])
            })
            .collect();
        let jobs = sched.jobs.len() as u64;
        drop(sched);
        Json::Obj(vec![
            ("jobs".into(), Json::u64(jobs)),
            ("queued".into(), Json::u64(queued)),
            ("draining".into(), Json::Bool(self.draining())),
            ("counters".into(), self.counters.to_json()),
            ("clients".into(), Json::Arr(clients)),
        ])
    }

    /// Freezes every metric for `/v1/metrics` and `/v1/stats`: gauges are
    /// set from authoritative scheduler state first (no incremental drift),
    /// then armed fault sites are appended as `fault_fired_total{site=...}`
    /// so the fault layer and the metrics layer attest each other.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let queued: i64 = {
            let sched = lock_ok(&self.sched);
            sched.queues.iter().map(|(_, q)| q.len() as i64).sum()
        };
        self.metrics.queue_depth.set(queued);
        let mut snap = self.metrics.registry.snapshot();
        for (site, fired) in fault::fire_counts() {
            snap.push_counter(
                "fault_fired_total",
                "Injected fault-site firings",
                &[("site", site)],
                fired,
            );
        }
        snap
    }

    /// Worker thread body: pick jobs round-robin until a drain begins.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut sched = lock_ok(&self.sched);
                loop {
                    if self.draining() {
                        break None;
                    }
                    if let Some(job) = sched.pick() {
                        break Some(job);
                    }
                    let (guard, _) = self
                        .wake
                        .wait_timeout(sched, Duration::from_millis(200))
                        .unwrap_or_else(|p| p.into_inner());
                    sched = guard;
                }
            };
            let Some(job) = job else { return };
            self.process(&job);
        }
    }

    /// Whether `job` has outlived its wall-clock budget.
    fn past_deadline(&self, job: &Job) -> bool {
        self.cfg
            .job_deadline
            .is_some_and(|d| job.created.elapsed() > d)
    }

    /// The structured `{kind:"deadline"}` error body for `job`.
    fn deadline_body(&self, job: &Job) -> Json {
        let budget = self.cfg.job_deadline.unwrap_or_default();
        error_body(
            "deadline",
            &format!(
                "job exceeded its {} ms deadline ({} ms since acceptance)",
                budget.as_millis(),
                job.created.elapsed().as_millis()
            ),
            Some(&job.spec.workload),
            Some(&job.spec.config),
        )
    }

    /// Resolves one job: cache claim → hit, or simulate with a streaming
    /// progress relay. Terminal state is always set and the pending-journal
    /// entry removed, whatever happens.
    fn process(&self, job: &Arc<Job>) {
        self.metrics.workers_busy.add(1);
        let _busy = GaugeGuard(&self.metrics.workers_busy);
        let queue_wait = job.created.elapsed();
        self.metrics.queue_wait_us.record_duration_us(queue_wait);
        if self.past_deadline(job) {
            // Expired while queued: fail it without occupying a worker.
            self.counters.errors.inc();
            job.finish_error(Phase::Error, self.deadline_body(job));
            let _ = std::fs::remove_file(self.pending_path(job.hash));
            return;
        }
        log::info(
            "job_claimed",
            &[
                ("hash", Json::str(format!("{:016x}", job.hash))),
                ("queue_wait_us", Json::u64(duration_us(queue_wait))),
            ],
        );
        job.transition(Phase::Running);
        let resolved = match job.spec.resolve() {
            Ok(r) => r,
            Err(e) => {
                // Unreachable through submit (which resolves eagerly), but
                // the resume path re-resolves journal entries.
                self.counters.errors.inc();
                job.finish_error(Phase::Error, e.body);
                let _ = std::fs::remove_file(self.pending_path(job.hash));
                return;
            }
        };
        match self
            .cache
            .claim(&job.key, self.cfg.claim_timeout, self.cfg.claim_stale)
        {
            Claim::Hit(report) => {
                self.counters.cached.inc();
                job.finish_done("cached", report_to_json(&report));
                log::info(
                    "job_cached",
                    &[("hash", Json::str(format!("{:016x}", job.hash)))],
                );
            }
            Claim::Won(guard) => {
                self.simulate(job, &resolved);
                drop(guard);
            }
        }
        let _ = std::fs::remove_file(self.pending_path(job.hash));
    }

    /// Runs the simulation for a claimed job, streaming windowed progress.
    fn simulate(&self, job: &Arc<Job>, resolved: &ResolvedPoint) {
        let kernel = resolved.kernel;
        let scale = resolved.scale;
        let built = catch_unwind(AssertUnwindSafe(|| kernel.build(scale)));
        let workload = match built {
            Ok(w) => w,
            Err(_) => {
                self.counters.errors.inc();
                job.finish_error(
                    Phase::Error,
                    SimError::Panic {
                        workload: job.spec.workload.clone(),
                        config: job.spec.config.clone(),
                        message: "workload build panicked".into(),
                    }
                    .to_json(),
                );
                return;
            }
        };
        if let Some(d) = fault::stall(FaultSite::WorkerStall) {
            std::thread::sleep(d);
        }
        let mut relay = ProgressRelay::new(job, resolved.sim.trace.interval.max(1));
        let sim_start = Instant::now();
        let result = run_point_traced(
            &workload,
            &resolved.sim,
            &job.key,
            scale,
            &resolved.options,
            self.cfg.crash_dir.as_deref(),
            &mut relay,
        );
        let sim_wall = sim_start.elapsed();
        self.metrics.simulate_us.record_duration_us(sim_wall);
        match result {
            Ok(report) => {
                // Store first, deadline second: a late result is still a
                // correct result, and caching it means nobody pays for this
                // point again — only *this* job reports the deadline miss.
                self.cache.store(&job.key, scale, &report);
                if let Some(max) = self.cfg.cache_max_bytes {
                    self.cache.gc(max);
                }
                self.counters.simulated.inc();
                log::info(
                    "job_simulated",
                    &[
                        ("hash", Json::str(format!("{:016x}", job.hash))),
                        ("simulate_us", Json::u64(duration_us(sim_wall))),
                        ("cycles", Json::u64(report.core.cycles)),
                    ],
                );
                if self.past_deadline(job) {
                    self.counters.errors.inc();
                    job.finish_error(Phase::Error, self.deadline_body(job));
                } else {
                    job.finish_done("simulated", report_to_json(&report));
                }
            }
            Err(e) => {
                self.counters.errors.inc();
                let mut body = e.error.to_json();
                if let (Json::Obj(fields), Some(dump)) = (&mut body, &e.crash_dump) {
                    fields.push((
                        "crash_dump".into(),
                        Json::str(dump.display().to_string()),
                    ));
                }
                log::warn(
                    "job_error",
                    &[
                        ("hash", Json::str(format!("{:016x}", job.hash))),
                        ("error", body.clone()),
                    ],
                );
                job.finish_error(Phase::Error, body);
            }
        }
    }

    /// Marks every still-queued job interrupted (drain path). Pending
    /// journal entries are deliberately kept: they are what a restarted
    /// daemon resumes from.
    fn interrupt_queued(&self) {
        let drained: Vec<Arc<Job>> = {
            let mut sched = lock_ok(&self.sched);
            let mut all = Vec::new();
            for (_, q) in sched.queues.iter_mut() {
                all.extend(q.drain(..));
            }
            all
        };
        for job in drained {
            self.counters.interrupted.inc();
            job.finish_error(
                Phase::Interrupted,
                SimError::Interrupted {
                    workload: job.spec.workload.clone(),
                    config: job.spec.config.clone(),
                }
                .to_json(),
            );
        }
    }

    /// Runs the server on `listener` until a drain completes: spawns the
    /// worker pool, accepts one-request connections, and on drain joins the
    /// workers and journals unfinished work. Returns only after a clean
    /// drain.
    pub fn serve(self: &Arc<Server>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let workers: Vec<std::thread::JoinHandle<()>> = (0..self.cfg.workers.max(1))
            .map(|_| {
                let srv = Arc::clone(self);
                std::thread::spawn(move || srv.worker_loop())
            })
            .collect();
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.draining() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let srv = Arc::clone(self);
                    conns.push(std::thread::spawn(move || srv.handle_conn(stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
            conns.retain(|h| !h.is_finished());
        }
        self.begin_drain();
        for w in workers {
            let _ = w.join();
        }
        // Workers are joined: no store of ours is in flight, so any of our
        // tmp staging files left in the cache are torn writes — sweep them.
        self.cache.sweep_own_tmp();
        self.interrupt_queued();
        for c in conns {
            let _ = c.join();
        }
        Ok(())
    }

    /// Handles one `Connection: close` request.
    fn handle_conn(&self, mut stream: TcpStream) {
        if let Some(d) = fault::stall(FaultSite::ConnSlowRead) {
            // Injected network latency: the request sits unread for a while
            // (the client's retry/timeout story must absorb this).
            std::thread::sleep(d);
        }
        let _ = stream.set_read_timeout(Some(self.cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
        let deadline = Instant::now() + self.cfg.read_timeout;
        let req = match crate::http::read_request(&mut stream, Some(deadline)) {
            Ok(r) => r,
            Err(e) => {
                // Every malformed/oversized/stalled request gets a
                // structured `{kind,...}` body, never a bare drop.
                let (status, reason, kind) = e.status();
                let body = error_body(kind, e.message(), None, None).pretty();
                let _ = crate::http::respond(
                    &mut stream,
                    status,
                    reason,
                    "application/json",
                    &[],
                    body.as_bytes(),
                );
                return;
            }
        };
        let req_id = log::next_request_id();
        let route = route_label(&req.method, &req.path);
        self.metrics.http_requests(route).inc();
        let t0 = Instant::now();
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/jobs") => self.handle_submit(&mut stream, &req.body),
            ("GET", "/v1/healthz") => {
                // Readiness: 200 while accepting, 503 once draining (load
                // balancers and orchestrators stop routing here). Queue
                // depth and busy-worker count let probes tell "idle" from
                // "saturated".
                let draining = self.draining();
                let queued: u64 = {
                    let sched = lock_ok(&self.sched);
                    sched.queues.iter().map(|(_, q)| q.len() as u64).sum()
                };
                let busy = self.metrics.workers_busy.get().max(0) as u64;
                let body = Json::Obj(vec![
                    (
                        "status".into(),
                        Json::str(if draining { "draining" } else { "ok" }),
                    ),
                    ("draining".into(), Json::Bool(draining)),
                    ("workers".into(), Json::u64(self.cfg.workers as u64)),
                    ("queued".into(), Json::u64(queued)),
                    ("workers_busy".into(), Json::u64(busy)),
                ])
                .pretty();
                let (status, reason) = if draining {
                    (503, "Service Unavailable")
                } else {
                    (200, "OK")
                };
                let _ = crate::http::respond(
                    &mut stream,
                    status,
                    reason,
                    "application/json",
                    &[],
                    body.as_bytes(),
                );
            }
            ("GET", "/v1/status") => {
                let body = self.status_json().pretty();
                let _ = crate::http::respond(
                    &mut stream,
                    200,
                    "OK",
                    "application/json",
                    &[],
                    body.as_bytes(),
                );
            }
            ("GET", "/v1/metrics") => {
                let body = self.metrics_snapshot().to_prometheus();
                let _ = crate::http::respond(
                    &mut stream,
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    &[],
                    body.as_bytes(),
                );
            }
            ("GET", "/v1/stats") => {
                let body = Json::Obj(vec![
                    ("status".into(), self.status_json()),
                    ("metrics".into(), self.metrics_snapshot().to_json()),
                ])
                .pretty();
                let _ = crate::http::respond(
                    &mut stream,
                    200,
                    "OK",
                    "application/json",
                    &[],
                    body.as_bytes(),
                );
            }
            ("POST", "/v1/shutdown") => {
                let body = Json::Obj(vec![("draining".into(), Json::Bool(true))]).pretty();
                let _ = crate::http::respond(
                    &mut stream,
                    200,
                    "OK",
                    "application/json",
                    &[],
                    body.as_bytes(),
                );
                self.begin_drain();
            }
            ("GET", path) if path.starts_with("/v1/jobs/") => {
                self.handle_job_get(&mut stream, path);
            }
            (method, path) => {
                let body = error_body(
                    "not_found",
                    &format!("no route for {method} {path}"),
                    None,
                    None,
                )
                .pretty();
                let _ = crate::http::respond(
                    &mut stream,
                    404,
                    "Not Found",
                    "application/json",
                    &[],
                    body.as_bytes(),
                );
            }
        }
        let dur = t0.elapsed();
        match route {
            "submit" => self.metrics.submit_latency_us.record_duration_us(dur),
            "job_stream" => {
                self.metrics.stream_us.record_duration_us(dur);
                log::info(
                    "job_streamed",
                    &[
                        ("req", Json::u64(req_id)),
                        ("path", Json::str(&req.path)),
                        ("stream_us", Json::u64(duration_us(dur))),
                    ],
                );
            }
            _ => {}
        }
        log::debug(
            "request",
            &[
                ("req", Json::u64(req_id)),
                ("method", Json::str(&req.method)),
                ("path", Json::str(&req.path)),
                ("route", Json::str(route)),
                ("dur_us", Json::u64(duration_us(dur))),
            ],
        );
    }

    /// `POST /v1/jobs`: parse, resolve and admit a batch. All points are
    /// validated before any is admitted, so a bad batch is rejected whole;
    /// admission itself is per-point (a 429 mid-batch leaves earlier points
    /// queued — they are real work the client asked for).
    fn handle_submit(&self, stream: &mut TcpStream, body: &[u8]) {
        if self.draining() {
            let body = error_body(
                "draining",
                "server is draining and no longer accepts submissions",
                None,
                None,
            )
            .pretty();
            let _ = crate::http::respond(
                stream,
                503,
                "Service Unavailable",
                "application/json",
                &[],
                body.as_bytes(),
            );
            return;
        }
        let parsed = parse_submit(body).and_then(|(client, specs)| {
            let resolved: Result<Vec<_>, ProtoError> =
                specs.iter().map(PointSpec::resolve).collect();
            Ok((client, specs, resolved?))
        });
        let (client, specs, resolved) = match parsed {
            Ok(x) => x,
            Err(e) => {
                let _ = respond_proto_error(stream, &e);
                return;
            }
        };
        let mut jobs = Vec::new();
        for (spec, resolved) in specs.iter().zip(&resolved) {
            match self.submit(&client, spec, resolved) {
                Ok((job, admission)) => {
                    jobs.push(Json::Obj(vec![
                        ("hash".into(), Json::str(format!("{:016x}", job.hash))),
                        ("point".into(), spec.to_json()),
                        ("state".into(), Json::str(job.phase().as_str())),
                        (
                            "admission".into(),
                            Json::str(match admission {
                                Admission::New => "new",
                                Admission::Joined => "joined",
                            }),
                        ),
                    ]));
                }
                Err(e) => {
                    let _ = respond_proto_error(stream, &e);
                    return;
                }
            }
        }
        let body = Json::Obj(vec![("jobs".into(), Json::Arr(jobs))]).pretty();
        let _ = crate::http::respond(
            stream,
            200,
            "OK",
            "application/json",
            &[],
            body.as_bytes(),
        );
    }

    /// `GET /v1/jobs/<hash>` and `GET /v1/jobs/<hash>/stream`.
    fn handle_job_get(&self, stream: &mut TcpStream, path: &str) {
        let rest = path.strip_prefix("/v1/jobs/").unwrap_or("");
        let (hash_str, streaming) = match rest.strip_suffix("/stream") {
            Some(h) => (h, true),
            None => (rest, false),
        };
        let Ok(hash) = u64::from_str_radix(hash_str, 16) else {
            let body = error_body(
                "bad_request",
                &format!("malformed job hash {hash_str:?}"),
                None,
                None,
            )
            .pretty();
            let _ = crate::http::respond(
                stream,
                400,
                "Bad Request",
                "application/json",
                &[],
                body.as_bytes(),
            );
            return;
        };
        let Some(job) = self.job(hash) else {
            let body = error_body(
                "not_found",
                &format!("no job {hash:016x} in this daemon"),
                None,
                None,
            )
            .pretty();
            let _ = crate::http::respond(
                stream,
                404,
                "Not Found",
                "application/json",
                &[],
                body.as_bytes(),
            );
            return;
        };
        if !streaming {
            let body = job.to_json().pretty();
            let status = if lock_ok(&job.inner).phase == Phase::Error {
                500
            } else {
                200
            };
            let reason = if status == 500 {
                "Internal Server Error"
            } else {
                "OK"
            };
            let _ = crate::http::respond(
                stream,
                status,
                reason,
                "application/json",
                &[],
                body.as_bytes(),
            );
            return;
        }
        // Streaming: relay events as chunked JSON lines until terminal.
        let _ = stream.set_read_timeout(None);
        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
        let (rx, replay) = job.subscribe();
        let Ok(mut chunked) =
            crate::http::Chunked::start(stream, 200, "OK", "application/x-ndjson")
        else {
            return;
        };
        for line in &replay {
            if chunked.send(line).is_err() {
                return;
            }
        }
        if job.phase().terminal() {
            let _ = chunked.finish();
            return;
        }
        loop {
            match rx.recv_timeout(Duration::from_millis(250)) {
                Ok(line) => {
                    let terminal = line.contains("\"terminal\": true")
                        || line.contains("\"terminal\":true");
                    if chunked.send(&line).is_err() {
                        return;
                    }
                    if terminal {
                        let _ = chunked.finish();
                        return;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if job.phase().terminal() {
                        // Subscribed after the final broadcast raced past.
                        let inner = lock_ok(&job.inner);
                        let line = job.state_line(&inner);
                        drop(inner);
                        let _ = chunked.send(&line);
                        let _ = chunked.finish();
                        return;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    let _ = chunked.finish();
                    return;
                }
            }
        }
    }
}

/// Saturating microseconds of a duration (histogram/log unit).
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Normalizes a request to its `http_requests_total{route=...}` label
/// (job hashes collapse into one label per route family).
fn route_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("POST", "/v1/jobs") => "submit",
        ("GET", "/v1/healthz") => "healthz",
        ("GET", "/v1/status") => "status",
        ("GET", "/v1/metrics") => "metrics",
        ("GET", "/v1/stats") => "stats",
        ("POST", "/v1/shutdown") => "shutdown",
        ("GET", p) if p.starts_with("/v1/jobs/") && p.ends_with("/stream") => "job_stream",
        ("GET", p) if p.starts_with("/v1/jobs/") => "job_get",
        _ => "other",
    }
}

/// Writes a [`ProtoError`] response (429s carry `Retry-After`).
fn respond_proto_error(stream: &mut TcpStream, e: &ProtoError) -> std::io::Result<()> {
    let reason = match e.status {
        400 => "Bad Request",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let retry = e.retry_after.map(|s| s.to_string());
    let headers: Vec<(&str, &str)> = match &retry {
        Some(s) => vec![("Retry-After", s.as_str())],
        None => Vec::new(),
    };
    let body = e.body.pretty();
    crate::http::respond(
        stream,
        e.status,
        reason,
        "application/json",
        &headers,
        body.as_bytes(),
    )
}

/// A [`TraceSink`] that folds per-cycle CPI-stack attribution into windowed
/// intervals and broadcasts one progress event per window to the job's
/// subscribers — the PR-3 trace machinery reused as a live progress feed.
#[derive(Debug)]
struct ProgressRelay<'a> {
    job: &'a Job,
    interval: u64,
    next_emit: u64,
    last_cycle: u64,
    window_base: u64,
    window_stall: u64,
    intervals_sent: u64,
}

impl<'a> ProgressRelay<'a> {
    fn new(job: &'a Job, interval: u64) -> Self {
        ProgressRelay {
            job,
            interval,
            next_emit: interval,
            last_cycle: 0,
            window_base: 0,
            window_stall: 0,
            intervals_sent: 0,
        }
    }

    fn emit_window(&mut self, cycle: u64) {
        self.intervals_sent += 1;
        let line = Json::Obj(vec![
            ("event".into(), Json::str("interval")),
            ("hash".into(), Json::str(format!("{:016x}", self.job.hash))),
            ("cycle".into(), Json::u64(cycle)),
            ("base_cycles".into(), Json::u64(self.window_base)),
            ("stall_cycles".into(), Json::u64(self.window_stall)),
            ("interval".into(), Json::u64(self.interval)),
            ("seq".into(), Json::u64(self.intervals_sent)),
        ])
        .dump();
        self.job.broadcast(&line);
        self.window_base = 0;
        self.window_stall = 0;
    }
}

impl TraceSink for ProgressRelay<'_> {
    fn emit(&mut self, ev: &TraceEvent) {
        if let TraceEvent::Attrib {
            cycle, base, stall, ..
        } = *ev
        {
            if cycle < self.last_cycle {
                // The panic-isolated retry restarted the run from cycle 0.
                self.next_emit = self.interval;
                self.window_base = 0;
                self.window_stall = 0;
            }
            self.last_cycle = cycle;
            self.window_base += u64::from(base);
            self.window_stall += stall;
            if cycle >= self.next_emit {
                self.emit_window(cycle);
                let periods = cycle / self.interval + 1;
                self.next_emit = periods * self.interval;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(workload: &str, config: &str) -> PointSpec {
        PointSpec {
            workload: workload.into(),
            config: config.into(),
            scale: "tiny".into(),
            mode: "detailed".into(),
        }
    }

    fn temp_cfg(tag: &str) -> (ServerConfig, PathBuf) {
        use std::sync::atomic::AtomicUsize;
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "svr-serve-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        (
            ServerConfig {
                cache_dir: dir.clone(),
                workers: 2,
                queue_limit: 4,
                claim_timeout: Duration::from_secs(5),
                claim_stale: Duration::from_secs(5),
                ..ServerConfig::default()
            },
            dir,
        )
    }

    #[test]
    fn submit_dedups_and_journals() {
        let (cfg, dir) = temp_cfg("dedup");
        let srv = Server::new(cfg);
        let s = spec("Camel", "SVR16");
        let r = s.resolve().expect("valid");
        let (job1, a1) = srv.submit("alice", &s, &r).expect("accepted");
        let (job2, a2) = srv.submit("bob", &s, &r).expect("accepted");
        assert_eq!(a1, Admission::New);
        assert_eq!(a2, Admission::Joined, "same point shares one job");
        assert!(Arc::ptr_eq(&job1, &job2));
        assert_eq!(srv.counters.accepted.get(), 1);
        assert_eq!(srv.counters.joined.get(), 1);
        let pending = dir.join("serve-pending");
        assert_eq!(
            std::fs::read_dir(&pending).expect("pending dir").count(),
            1,
            "one journal entry per unique job"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_snapshot_tracks_queue_and_renders_prometheus() {
        let (cfg, dir) = temp_cfg("metrics");
        let srv = Server::new(cfg);
        let s = spec("Camel", "SVR16");
        let r = s.resolve().expect("valid");
        srv.submit("alice", &s, &r).expect("accepted");
        srv.submit("bob", &s, &r).expect("joined");
        srv.metrics.http_requests("submit").inc();

        let snap = srv.metrics_snapshot();
        let text = snap.to_prometheus();
        let samples = svr_sim::metrics::parse_exposition(&text);
        let get = |name: &str| {
            svr_sim::metrics::find_sample(&samples, name, &[])
                .unwrap_or_else(|| panic!("{name} missing from exposition"))
                .value as u64
        };
        // The registry and the /v1/status counters are the same atomics.
        assert_eq!(get("jobs_accepted_total"), srv.counters.accepted.get());
        assert_eq!(get("jobs_joined_total"), 1);
        assert_eq!(
            get("queue_depth"),
            1,
            "one unique queued job, set authoritatively at scrape"
        );
        assert_eq!(get("workers_busy"), 0, "no worker pool was started");
        assert_eq!(
            svr_sim::metrics::find_sample(&samples, "http_requests_total", &[("route", "submit")])
                .expect("labeled route counter")
                .value as u64,
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_limit_rejects_with_429() {
        let (cfg, dir) = temp_cfg("limit");
        let srv = Server::new(cfg);
        for n in 8..12 {
            let s = spec("Camel", &format!("SVR{n}"));
            let r = s.resolve().expect("valid");
            srv.submit("greedy", &s, &r).expect("under the limit");
        }
        let s = spec("Camel", "SVR16");
        let r = s.resolve().expect("valid");
        let err = srv.submit("greedy", &s, &r).expect_err("queue full");
        assert_eq!(err.status, 429);
        assert_eq!(err.retry_after, Some(1));
        assert_eq!(
            err.body.get("kind").and_then(Json::as_str),
            Some("queue_full")
        );
        assert_eq!(
            err.body.get("workload").and_then(Json::as_str),
            Some("Camel")
        );
        // Another client is unaffected (fairness is per-client).
        srv.submit("patient", &s, &r).expect("other client admitted");
        assert_eq!(srv.counters.rejected.get(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_robin_interleaves_clients() {
        let (cfg, dir) = temp_cfg("rr");
        let srv = Server::new(cfg);
        // alice queues 3 jobs, then bob queues 1: bob's must be picked
        // second, not fourth.
        let mut hashes = Vec::new();
        for n in [8, 32, 64] {
            let s = spec("Camel", &format!("SVR{n}"));
            let r = s.resolve().expect("valid");
            let (j, _) = srv.submit("alice", &s, &r).expect("ok");
            hashes.push(j.hash);
        }
        let s = spec("Camel", "SVR16");
        let r = s.resolve().expect("valid");
        let (bob_job, _) = srv.submit("bob", &s, &r).expect("ok");
        let mut sched = lock_ok(&srv.sched);
        let order: Vec<u64> = std::iter::from_fn(|| sched.pick().map(|j| j.hash)).collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], hashes[0], "alice goes first (first seen)");
        assert_eq!(order[1], bob_job.hash, "bob is not starved behind alice's batch");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_resolves_jobs_and_streams_transitions() {
        let (cfg, dir) = temp_cfg("worker");
        let srv = Server::new(cfg);
        let s = spec("Camel", "InO");
        let r = s.resolve().expect("valid");
        let (job, _) = srv.submit("alice", &s, &r).expect("ok");
        let (rx, replay) = job.subscribe();
        assert_eq!(replay.len(), 1, "nothing has happened yet: {replay:?}");
        assert!(replay[0].contains("\"queued\""));
        // Drive one job synchronously through the worker path.
        let picked = lock_ok(&srv.sched).pick().expect("one queued job");
        srv.process(&picked);
        assert_eq!(job.phase(), Phase::Done);
        let events: Vec<String> = rx.try_iter().collect();
        // A late subscriber replays the whole feed it missed.
        let (_rx2, late) = job.subscribe();
        assert!(
            late.iter().any(|e| e.contains("\"interval\"")),
            "late subscriber misses windowed progress: {late:?}"
        );
        assert!(
            late.last().is_some_and(|e| e.contains("\"terminal\":true")),
            "late replay must end terminal: {late:?}"
        );
        assert!(
            events.iter().any(|e| e.contains("\"running\"")),
            "{events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.contains("\"done\"") && e.contains("\"simulated\"")),
            "{events:?}"
        );
        // Windowed progress arrived between the transitions.
        assert!(
            events.iter().any(|e| e.contains("\"interval\"")),
            "expected interval events, got {events:?}"
        );
        assert_eq!(srv.counters.simulated.get(), 1);
        assert!(
            !srv.pending_path(job.hash).exists(),
            "terminal job leaves no pending journal entry"
        );
        // A second daemon-load of the same point is a cache hit.
        let s2 = spec("Camel", "InO");
        let r2 = s2.resolve().expect("valid");
        let srv2 = Server::new(ServerConfig {
            cache_dir: dir.clone(),
            ..ServerConfig::default()
        });
        let (job2, _) = srv2.submit("bob", &s2, &r2).expect("ok");
        let picked = lock_ok(&srv2.sched).pick().expect("queued");
        srv2.process(&picked);
        assert_eq!(job2.phase(), Phase::Done);
        assert_eq!(srv2.counters.cached.get(), 1);
        assert_eq!(srv2.counters.simulated.get(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_produce_structured_bodies_not_bare_500s() {
        let (cfg, dir) = temp_cfg("err");
        let srv = Server::new(cfg);
        let s = spec("DiagSpin", "InO");
        let r = s.resolve().expect("valid spec");
        let (job, _) = srv.submit("alice", &s, &r).expect("ok");
        let picked = lock_ok(&srv.sched).pick().expect("queued");
        srv.process(&picked);
        assert_eq!(job.phase(), Phase::Error);
        let view = job.to_json();
        let err = view.get("error").expect("error body");
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("no_forward_progress")
        );
        assert_eq!(err.get("workload").and_then(Json::as_str), Some("DiagSpin"));
        assert_eq!(err.get("config").and_then(Json::as_str), Some("InO"));
        assert_eq!(srv.counters.errors.get(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_interrupts_queued_jobs_but_keeps_their_journal() {
        let (cfg, dir) = temp_cfg("drain");
        let srv = Server::new(cfg);
        let s = spec("Camel", "SVR16");
        let r = s.resolve().expect("valid");
        let (job, _) = srv.submit("alice", &s, &r).expect("ok");
        srv.begin_drain();
        assert!(srv.draining());
        srv.interrupt_queued();
        assert_eq!(job.phase(), Phase::Interrupted);
        let view = job.to_json();
        assert_eq!(
            view.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("interrupted")
        );
        assert!(
            srv.pending_path(job.hash).exists(),
            "interrupted jobs keep their journal entry for restart"
        );
        // A fresh daemon over the same cache dir resumes it.
        let srv2 = Server::new(ServerConfig {
            cache_dir: dir.clone(),
            ..ServerConfig::default()
        });
        assert_eq!(srv2.resume_pending(), 1);
        let resumed = srv2.job(job.hash).expect("re-enqueued");
        assert_eq!(resumed.phase(), Phase::Queued);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
