//! End-to-end tests: a real [`svr_serve::Server`] on a real TCP socket,
//! exercised through the HTTP client in [`svr_serve::http`].

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};
use svr_serve::http;
use svr_sim::json::Json;
use svr_serve::{Server, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(60);

/// Binds an ephemeral port and runs `srv` on it in a background thread.
fn spawn_server(srv: &Arc<Server>) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let srv = Arc::clone(srv);
    let handle = std::thread::spawn(move || srv.serve(listener));
    (addr, handle)
}

fn temp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("svr-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn submit_body(client: &str, points: &[(&str, &str)]) -> String {
    let pts = points
        .iter()
        .map(|(w, c)| {
            Json::Obj(vec![
                ("workload".into(), Json::str(*w)),
                ("config".into(), Json::str(*c)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("client".into(), Json::str(client)),
        ("points".into(), Json::Arr(pts)),
    ])
    .pretty()
}

/// Polls `/v1/status` until `pred` holds on the status document.
fn wait_status(addr: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let resp = http::request(addr, "GET", "/v1/status", None, TIMEOUT, |_| {})
            .expect("status request");
        let doc = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("status json");
        if pred(&doc) {
            return doc;
        }
        assert!(Instant::now() < deadline, "timed out; last status: {}", doc.pretty());
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn counter(status: &Json, name: &str) -> u64 {
    status
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX)
}

#[test]
fn overlapping_batches_from_two_clients_cost_one_simulation_per_point() {
    let dir = temp_cache("dedup");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 2,
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    // Overlap: SVR16 appears in both batches — 4 submissions, 3 points.
    let a_body = submit_body("alice", &[("Camel", "InO"), ("Camel", "SVR16")]);
    let b_body = submit_body("bob", &[("Camel", "SVR16"), ("Camel", "SVR32")]);
    let addr_a = addr.clone();
    let addr_b = addr.clone();
    let ta = std::thread::spawn(move || {
        http::request(&addr_a, "POST", "/v1/jobs", Some(a_body.as_bytes()), TIMEOUT, |_| {})
            .expect("submit a")
    });
    let tb = std::thread::spawn(move || {
        http::request(&addr_b, "POST", "/v1/jobs", Some(b_body.as_bytes()), TIMEOUT, |_| {})
            .expect("submit b")
    });
    let (ra, rb) = (ta.join().expect("a"), tb.join().expect("b"));
    assert_eq!(ra.status, 200, "{}", String::from_utf8_lossy(&ra.body));
    assert_eq!(rb.status, 200, "{}", String::from_utf8_lossy(&rb.body));

    let status = wait_status(&addr, |s| {
        counter(s, "simulated") + counter(s, "cached") + counter(s, "errors") >= 3
            && s.get("queued").and_then(Json::as_u64) == Some(0)
    });
    // 4 submissions, 3 unique points, a fresh cache: exactly 3 simulations.
    assert_eq!(counter(&status, "accepted"), 3, "{}", status.pretty());
    assert_eq!(counter(&status, "joined"), 1, "{}", status.pretty());
    assert_eq!(counter(&status, "simulated"), 3, "{}", status.pretty());
    assert_eq!(counter(&status, "errors"), 0, "{}", status.pretty());

    // Job views are complete: report attached, no error.
    let jobs = Json::parse(&String::from_utf8_lossy(&ra.body)).expect("jobs json");
    let hash = jobs
        .get("jobs")
        .and_then(Json::as_arr)
        .and_then(|a| a.first())
        .and_then(|j| j.get("hash"))
        .and_then(Json::as_str)
        .expect("hash")
        .to_string();
    let view = http::request(&addr, "GET", &format!("/v1/jobs/{hash}"), None, TIMEOUT, |_| {})
        .expect("job view");
    assert_eq!(view.status, 200);
    let view = Json::parse(&String::from_utf8_lossy(&view.body)).expect("view json");
    assert_eq!(view.get("state").and_then(Json::as_str), Some("done"));
    assert!(view.get("report").is_some_and(|r| r.get("core").is_some()));

    // Clean shutdown over the wire: serve() returns, thread joins, exit ok.
    let resp = http::request(&addr, "POST", "/v1/shutdown", None, TIMEOUT, |_| {})
        .expect("shutdown");
    assert_eq!(resp.status, 200);
    handle.join().expect("serve thread").expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_relays_progress_and_terminal_state() {
    let dir = temp_cache("stream");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    // The stream may subscribe at any point in the job's life — even after
    // it finished — because a subscription replays the job's full event
    // history before relaying live events. So this is deterministic: no
    // matter how the stream races the (fast, release-mode) simulation, it
    // must deliver the interval feed and end on the terminal state event.
    let body = submit_body("alice", &[("Camel", "SVR16")]);
    let resp = http::request(&addr, "POST", "/v1/jobs", Some(body.as_bytes()), TIMEOUT, |_| {})
        .expect("submit");
    assert_eq!(resp.status, 200);
    let jobs = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("json");
    let hash = jobs
        .get("jobs")
        .and_then(Json::as_arr)
        .and_then(|a| a.first())
        .and_then(|j| j.get("hash"))
        .and_then(Json::as_str)
        .expect("hash")
        .to_string();

    // Follow the chunked stream (replay + live tail) to the terminal event.
    let mut lines = Vec::new();
    let resp = http::request(
        &addr,
        "GET",
        &format!("/v1/jobs/{hash}/stream"),
        None,
        TIMEOUT,
        |line| lines.push(line.to_string()),
    )
    .expect("stream");
    assert_eq!(resp.status, 200);
    let events: Vec<Json> = lines
        .iter()
        .filter(|l| !l.is_empty())
        .map(|l| Json::parse(l).expect("event json"))
        .collect();
    let last = events.last().expect("at least one event");
    assert_eq!(last.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(last.get("terminal").and_then(Json::as_bool), Some(true));
    assert_eq!(last.get("source").and_then(Json::as_str), Some("simulated"));
    assert!(
        events
            .iter()
            .any(|e| e.get("event").and_then(Json::as_str) == Some("interval")),
        "stream must carry windowed progress: {events:?}"
    );

    let resp = http::request(&addr, "POST", "/v1/shutdown", None, TIMEOUT, |_| {})
        .expect("shutdown");
    assert_eq!(resp.status, 200);
    handle.join().expect("serve thread").expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_errors_are_structured() {
    let dir = temp_cache("errors");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    // Unknown workload: 400 naming the point.
    let body = submit_body("alice", &[("NoSuchKernel", "SVR16")]);
    let resp = http::request(&addr, "POST", "/v1/jobs", Some(body.as_bytes()), TIMEOUT, |_| {})
        .expect("submit");
    assert_eq!(resp.status, 400);
    let err = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("json");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad_request"));
    assert_eq!(err.get("workload").and_then(Json::as_str), Some("NoSuchKernel"));

    // Unknown route: 404, still a structured body.
    let resp = http::request(&addr, "GET", "/v1/nonsense", None, TIMEOUT, |_| {})
        .expect("request");
    assert_eq!(resp.status, 404);
    let err = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("json");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("not_found"));

    // Unknown job: 404 naming the hash.
    let resp = http::request(&addr, "GET", "/v1/jobs/00000000deadbeef", None, TIMEOUT, |_| {})
        .expect("request");
    assert_eq!(resp.status, 404);

    // Malformed body: 400, structured.
    let resp = http::request(&addr, "POST", "/v1/jobs", Some(b"not json"), TIMEOUT, |_| {})
        .expect("request");
    assert_eq!(resp.status, 400);
    let err = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("json");
    assert!(err
        .get("message")
        .and_then(Json::as_str)
        .is_some_and(|m| m.contains("JSON")));

    let resp = http::request(&addr, "POST", "/v1/shutdown", None, TIMEOUT, |_| {})
        .expect("shutdown");
    assert_eq!(resp.status, 200);
    handle.join().expect("serve thread").expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}
