//! Two *processes* racing on the same cache directory and design point:
//! the claim protocol must ensure exactly one of them simulates, the loser
//! reads the winner's entry, and nothing is corrupted or quarantined.

use std::process::{Command, Stdio};

#[test]
fn two_processes_racing_on_one_point_cost_one_simulation() {
    let dir = std::env::temp_dir().join(format!("svr-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let spawn = || {
        Command::new(env!("CARGO_BIN_EXE_svr_client"))
            .args([
                "run-local",
                "--cache-dir",
                dir.to_str().expect("utf-8 temp dir"),
                "Camel:InO",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn svr_client")
    };
    let (a, b) = (spawn(), spawn());
    let a = a.wait_with_output().expect("wait a");
    let b = b.wait_with_output().expect("wait b");
    let out_a = String::from_utf8_lossy(&a.stdout).to_string();
    let out_b = String::from_utf8_lossy(&b.stdout).to_string();
    assert!(
        a.status.success() && b.status.success(),
        "a: {}\n{}\nb: {}\n{}",
        out_a,
        String::from_utf8_lossy(&a.stderr),
        out_b,
        String::from_utf8_lossy(&b.stderr),
    );

    // Exactly one process simulated; the other resolved from its entry.
    let both = format!("{out_a}{out_b}");
    let simulated = both.matches("source=simulated").count();
    let cached = both.matches("source=cached").count();
    assert_eq!(simulated, 1, "exactly one simulation ran:\n{both}");
    assert_eq!(cached, 1, "the loser read the winner's entry:\n{both}");

    // Both saw the same result (cycles printed from the shared entry).
    let cycles = |s: &str| {
        s.split("cycles=")
            .nth(1)
            .and_then(|t| t.split_whitespace().next())
            .map(str::to_string)
    };
    assert_eq!(
        cycles(&out_a).expect("cycles a"),
        cycles(&out_b).expect("cycles b"),
        "both processes must report the same cached result"
    );

    // No corruption: one well-formed entry, no quarantine, no stray claims.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("json"))
        .collect();
    assert_eq!(entries.len(), 1, "one cache entry for one point");
    let text = std::fs::read_to_string(entries[0].path()).expect("entry readable");
    svr_sim::json::Json::parse(&text).expect("entry is valid JSON");
    let quarantined = std::fs::read_dir(dir.join("quarantine"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(quarantined, 0, "no quarantine false-positives");
    let claims = std::fs::read_dir(&dir)
        .expect("cache dir")
        .flatten()
        .filter(|e| {
            e.path()
                .extension()
                .and_then(|x| x.to_str())
                .is_some_and(|x| x == "claim")
        })
        .count();
    assert_eq!(claims, 0, "claim files are cleaned up");

    let _ = std::fs::remove_dir_all(&dir);
}
