//! Chaos tests: the service tier driven through a hostile, deterministic
//! fault schedule (`svr_sim::fault`), asserting the invariants the
//! architecture promises survive induced failure:
//!
//! * **exactly-once** — N clients × M overlapping points cost one
//!   successful simulation per unique point key, faults or not;
//! * **bit-identical** — every report a client receives equals the
//!   fault-free run of the same point;
//! * **clean drain** — no claim files, no tmp litter, no quarantine
//!   entries, no pending-journal residue once the daemon drains;
//! * **zero-cost off** — an empty plan changes nothing.
//!
//! The fault plan is process-global, so every test here takes one lock and
//! clears the plan on drop (panic included). This binary is the ONLY place
//! in the workspace that installs plans: unit tests elsewhere run in
//! parallel threads of one process and would race a global schedule.

use std::collections::{HashMap, HashSet};
use std::net::TcpListener;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use svr_serve::http::{self, RetryPolicy};
use svr_serve::protocol::PointSpec;
use svr_serve::{Server, ServerConfig};
use svr_sim::fault::{self, FaultSite};
use svr_sim::json::Json;
use svr_sim::{
    point_key, report_from_json, run_point, Claim, FaultPlan, ResultCache, RunReport, Sweep,
};
use svr_workloads::{Kernel, Scale};

const TIMEOUT: Duration = Duration::from_secs(60);

/// Serializes fault-installing tests and guarantees the plan is cleared
/// when the test ends, pass or panic.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn hold_faults() -> FaultGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    // A previous test that panicked poisons the lock but its guard already
    // cleared the plan; ride through.
    FaultGuard(LOCK.lock().unwrap_or_else(|p| p.into_inner()))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("svr-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn spawn_server(srv: &Arc<Server>) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let srv = Arc::clone(srv);
    let handle = std::thread::spawn(move || srv.serve(listener));
    (addr, handle)
}

fn spec(config: &str) -> PointSpec {
    PointSpec {
        workload: "Camel".into(),
        config: config.into(),
        scale: "tiny".into(),
        mode: "detailed".into(),
    }
}

/// The fault-free report of one point — computed with NO plan installed.
fn ground_truth(config: &str) -> (String, RunReport) {
    assert!(!fault::fires(FaultSite::WorkerPanic), "truth needs a clean world");
    let s = spec(config);
    let r = s.resolve().expect("valid point");
    let key = point_key(&s.workload, r.scale, &r.sim, &r.options);
    let workload = r.kernel.build(r.scale);
    let report = run_point(&workload, &r.sim, &key, r.scale, &r.options, None)
        .expect("fault-free run succeeds");
    (format!("{:016x}", key.hash), report)
}

fn submit_body(client: &str, configs: &[&str]) -> String {
    Json::Obj(vec![
        ("client".into(), Json::str(client)),
        (
            "points".into(),
            Json::Arr(configs.iter().map(|c| spec(c).to_json()).collect()),
        ),
    ])
    .pretty()
}

fn counter(status: &Json, name: &str) -> u64 {
    status
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX)
}

/// Submits `configs` for `client`, streams every job to terminal, and
/// returns the job hashes. Retries ride through injected connection drops.
fn submit_and_stream(addr: &str, client: &str, configs: &[&str], seed: u64) -> Vec<String> {
    let policy = RetryPolicy::new(seed);
    let body = submit_body(client, configs);
    let resp = http::request_with_retry(
        addr,
        "POST",
        "/v1/jobs",
        Some(body.as_bytes()),
        TIMEOUT,
        &policy,
        |_| {},
    )
    .expect("submit");
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let doc = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("submit json");
    let hashes: Vec<String> = doc
        .get("jobs")
        .and_then(Json::as_arr)
        .expect("jobs array")
        .iter()
        .map(|j| j.get("hash").and_then(Json::as_str).expect("hash").to_string())
        .collect();
    assert_eq!(hashes.len(), configs.len());
    for hash in &hashes {
        let mut lines = Vec::new();
        let resp = http::request_with_retry(
            addr,
            "GET",
            &format!("/v1/jobs/{hash}/stream"),
            None,
            TIMEOUT,
            &policy,
            |line| lines.push(line.to_string()),
        )
        .expect("stream survives injected drops via retry");
        assert_eq!(resp.status, 200);
        let last = lines.last().expect("stream delivered events");
        assert!(
            last.contains("\"terminal\":true") && last.contains("\"done\""),
            "stream must end done+terminal for {hash}: {last}"
        );
    }
    hashes
}

/// The tentpole soak: three clients race overlapping batches through a
/// daemon whose cache stores tear, cache loads fail, GC fires mid-claim,
/// workers panic and stall, connections lag and streams sever mid-chunk —
/// seven distinct fault kinds — and every core invariant must hold anyway.
#[test]
fn chaos_soak_overlapping_clients_under_hostile_schedule() {
    let _guard = hold_faults();
    let configs = ["InO", "IMP", "OoO", "SVR8", "SVR16", "SVR32"];
    let truth: HashMap<String, RunReport> =
        configs.iter().map(|c| ground_truth(c)).collect();

    // Probability-1 rules with per-site caps: the damage is bounded AND
    // fully deterministic (no reliance on a lucky seed), while every site
    // still fires. Caps keep each fault recoverable within the client's
    // 5-attempt retry budget.
    fault::install(
        FaultPlan::seeded(0xC0FFEE)
            .stall_ms(25)
            .with_capped(FaultSite::CacheStoreTorn, 1.0, 2)
            .with_capped(FaultSite::CacheLoadErr, 1.0, 2)
            .with_capped(FaultSite::GcMidClaim, 1.0, 1)
            .with_capped(FaultSite::WorkerPanic, 1.0, 3)
            .with_capped(FaultSite::WorkerStall, 1.0, 2)
            .with_capped(FaultSite::ConnSlowRead, 1.0, 2)
            .with_capped(FaultSite::ConnDropChunk, 1.0, 3),
    );

    let dir = temp_dir("soak");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 2,
        claim_timeout: Duration::from_secs(30),
        claim_stale: Duration::from_secs(30),
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    // 3 clients, overlapping subsets: 10 submissions over 6 unique points.
    let subsets: [&[&str]; 3] = [
        &["InO", "IMP", "OoO", "SVR8"],
        &["OoO", "SVR8", "SVR16", "SVR32"],
        &["InO", "SVR32"],
    ];
    let threads: Vec<_> = subsets
        .iter()
        .enumerate()
        .map(|(i, subset)| {
            let addr = addr.clone();
            let subset: Vec<&'static str> = subset.to_vec();
            std::thread::spawn(move || {
                submit_and_stream(&addr, &format!("client-{i}"), &subset, i as u64)
            })
        })
        .collect();
    let mut seen: HashSet<String> = HashSet::new();
    for t in threads {
        seen.extend(t.join().expect("client thread"));
    }
    assert_eq!(seen.len(), 6, "6 unique points across the overlapping batches");

    // Liveness check rides along: healthz is 200 under chaos.
    let resp = http::request_with_retry(
        &addr, "GET", "/v1/healthz", None, TIMEOUT, &RetryPolicy::new(9), |_| {},
    )
    .expect("healthz");
    assert_eq!(resp.status, 200);

    // Exactly-once: 10 submissions, 6 unique points, fresh cache → 6
    // accepted, 4 joined, 6 simulated, 0 cached, 0 errors. Injected panics
    // recover via the isolated retry; torn stores and load errors never
    // fail a job — they only cost cache coverage.
    let resp = http::request_with_retry(
        &addr, "GET", "/v1/status", None, TIMEOUT, &RetryPolicy::new(10), |_| {},
    )
    .expect("status");
    let status = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("status json");
    assert_eq!(counter(&status, "accepted"), 6, "{}", status.pretty());
    assert_eq!(counter(&status, "joined"), 4, "{}", status.pretty());
    assert_eq!(counter(&status, "simulated"), 6, "{}", status.pretty());
    assert_eq!(counter(&status, "cached"), 0, "{}", status.pretty());
    assert_eq!(counter(&status, "errors"), 0, "{}", status.pretty());

    // Bit-identical: every report a client can fetch equals the fault-free
    // run of the same point.
    for hash in &seen {
        let resp = http::request_with_retry(
            &addr,
            "GET",
            &format!("/v1/jobs/{hash}"),
            None,
            TIMEOUT,
            &RetryPolicy::new(11),
            |_| {},
        )
        .expect("job view");
        assert_eq!(resp.status, 200);
        let view = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("view json");
        assert_eq!(view.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(view.get("source").and_then(Json::as_str), Some("simulated"));
        let got = report_from_json(view.get("report").expect("report"))
            .expect("report parses");
        assert_eq!(
            &got,
            truth.get(hash).expect("hash maps to a truth point"),
            "report for {hash} must be bit-identical to the fault-free run"
        );
    }

    // The schedule was actually hostile: all seven armed sites fired.
    let fired: HashMap<&str, u64> = fault::fire_counts().into_iter().collect();
    for site in [
        "cache_store_torn",
        "cache_load_err",
        "gc_mid_claim",
        "worker_panic",
        "worker_stall",
        "conn_slow_read",
        "conn_drop_chunk",
    ] {
        assert!(
            fired.get(site).copied().unwrap_or(0) > 0,
            "site {site} never fired: {fired:?}"
        );
    }

    // Observability closes the loop: every fired site is visible over the
    // wire as a nonzero fault_fired_total{site=...} sample, with the same
    // count the in-process tally reports.
    let resp = http::request(&addr, "GET", "/v1/metrics", None, TIMEOUT, |_| {})
        .expect("metrics scrape");
    assert_eq!(resp.status, 200);
    let samples = svr_sim::metrics::parse_exposition(&String::from_utf8_lossy(&resp.body));
    for (site, count) in &fired {
        let sample =
            svr_sim::metrics::find_sample(&samples, "fault_fired_total", &[("site", site)])
                .unwrap_or_else(|| panic!("fault_fired_total{{site={site}}} missing from scrape"));
        assert_eq!(
            sample.value as u64, *count,
            "scraped fault_fired_total{{site={site}}} disagrees with fire_counts()"
        );
    }

    // Clean drain: shutdown over the wire, then zero residue on disk.
    let resp = http::request(&addr, "POST", "/v1/shutdown", None, TIMEOUT, |_| {})
        .expect("shutdown");
    assert_eq!(resp.status, 200);
    handle.join().expect("serve thread").expect("clean drain");

    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    assert!(
        !names.iter().any(|n| n.ends_with(".claim")),
        "claim litter after drain: {names:?}"
    );
    assert!(
        !names.iter().any(|n| n.contains(".tmp.")),
        "torn tmp litter after drain: {names:?}"
    );
    for sub in ["serve-pending", "quarantine", "journal"] {
        let count = std::fs::read_dir(dir.join(sub)).map(|d| d.count()).unwrap_or(0);
        assert_eq!(count, 0, "{sub}/ must be empty after a clean drain");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stalled worker blows the per-job deadline: the job finishes with a
/// structured `{kind:"deadline"}` error, but the (correct, late) result is
/// still cached so nobody pays for the point again.
#[test]
fn stalled_job_past_deadline_errors_structured_but_caches_the_result() {
    let _guard = hold_faults();
    fault::install(
        FaultPlan::seeded(7)
            .stall_ms(2_000)
            .with_capped(FaultSite::WorkerStall, 1.0, 1),
    );

    let dir = temp_dir("deadline");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        job_deadline: Some(Duration::from_secs(1)),
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    let body = submit_body("late", &["SVR16"]);
    let resp = http::request(&addr, "POST", "/v1/jobs", Some(body.as_bytes()), TIMEOUT, |_| {})
        .expect("submit");
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("json");
    let hash = doc
        .get("jobs")
        .and_then(Json::as_arr)
        .and_then(|a| a.first())
        .and_then(|j| j.get("hash"))
        .and_then(Json::as_str)
        .expect("hash")
        .to_string();

    // Poll the job view to terminal (the stall makes this take ~2 s).
    let deadline = Instant::now() + TIMEOUT;
    let view = loop {
        let resp = http::request(&addr, "GET", &format!("/v1/jobs/{hash}"), None, TIMEOUT, |_| {})
            .expect("view");
        let view = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("view json");
        match view.get("state").and_then(Json::as_str) {
            Some("done") | Some("error") => break view,
            _ => {
                assert!(Instant::now() < deadline, "job never finished: {}", view.pretty());
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    assert_eq!(view.get("state").and_then(Json::as_str), Some("error"));
    let err = view.get("error").expect("error body");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("deadline"));
    assert_eq!(err.get("workload").and_then(Json::as_str), Some("Camel"));
    assert!(
        err.get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("deadline")),
        "{}",
        err.pretty()
    );

    // The late result was still stored: the point is a cache hit now.
    let s = spec("SVR16");
    let r = s.resolve().expect("valid");
    let key = point_key(&s.workload, r.scale, &r.sim, &r.options);
    assert!(
        ResultCache::new(&dir).load(&key).is_some(),
        "a late result is still a correct result and must be cached"
    );

    let resp = http::request(&addr, "POST", "/v1/shutdown", None, TIMEOUT, |_| {})
        .expect("shutdown");
    assert_eq!(resp.status, 200);
    handle.join().expect("serve thread").expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Journal faults (torn half-line, duplicated line) never fail a sweep,
/// never corrupt results, and leave no residue once the sweep completes.
#[test]
fn sweep_survives_torn_and_duplicated_journal_appends() {
    let _guard = hold_faults();
    let truth: Vec<RunReport> = ["InO", "SVR16", "SVR32"]
        .iter()
        .map(|c| ground_truth(c).1)
        .collect();

    fault::install(
        FaultPlan::seeded(3)
            .with_capped(FaultSite::JournalTorn, 1.0, 1)
            .with_capped(FaultSite::JournalDup, 1.0, 1),
    );
    let dir = temp_dir("journal");
    let configs = || {
        vec![
            svr_sim::SimConfig::from_label("InO").expect("InO"),
            svr_sim::SimConfig::from_label("SVR16").expect("SVR16"),
            svr_sim::SimConfig::from_label("SVR32").expect("SVR32"),
        ]
    };
    let result = Sweep::new(vec![Kernel::Camel], Scale::Tiny)
        .configs(configs())
        .cache_dir(&dir)
        .no_crash_dumps()
        .run(2);
    assert_eq!(result.stats.simulated, 3, "{:?}", result.stats);
    assert_eq!(result.stats.failed, 0, "{:?}", result.stats);
    for (ci, want) in truth.iter().enumerate() {
        assert_eq!(result.report(ci, 0), want, "config #{ci} report must match");
    }
    // A completed sweep removes its journal — torn/dup lines included.
    let journal_entries = std::fs::read_dir(dir.join("journal"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(journal_entries, 0, "journal must be gone after a clean sweep");

    // And the stores were atomic and valid: a re-run is pure cache hits.
    let again = Sweep::new(vec![Kernel::Camel], Scale::Tiny)
        .configs(configs())
        .cache_dir(&dir)
        .no_crash_dumps()
        .run(2);
    assert_eq!(again.stats.cache_hits, 3, "{:?}", again.stats);
    assert_eq!(again.stats.simulated, 0, "{:?}", again.stats);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected claim-steal resolves like a stale claim: the second caller
/// takes over promptly instead of waiting out its timeout, and simulating
/// twice stays safe.
#[test]
fn injected_claim_steal_is_survivable() {
    let _guard = hold_faults();
    let (_, report) = ground_truth("InO");
    fault::install(FaultPlan::seeded(5).with_capped(FaultSite::ClaimSteal, 1.0, 1));

    let dir = temp_dir("steal");
    let cache = ResultCache::new(&dir);
    let s = spec("InO");
    let r = s.resolve().expect("valid");
    let key = point_key(&s.workload, r.scale, &r.sim, &r.options);

    let first = cache.claim(&key, Duration::from_secs(10), Duration::from_secs(600));
    let Claim::Won(first_guard) = first else {
        panic!("empty cache cannot hit")
    };
    // The second claimant would normally wait out the full 10 s timeout;
    // the injected steal lets it take over almost immediately.
    let start = Instant::now();
    let second = cache.claim(&key, Duration::from_secs(10), Duration::from_secs(600));
    let Claim::Won(second_guard) = second else {
        panic!("steal must resolve to a won claim")
    };
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "stolen claim must not wait out the timeout ({:?})",
        start.elapsed()
    );
    // Both "winners" simulating is the documented safe outcome; the store
    // is atomic, so last-writer-wins with identical bytes.
    cache.store(&key, r.scale, &report);
    drop(second_guard);
    drop(first_guard);
    assert_eq!(cache.load(&key).as_ref(), Some(&report));
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("dir")
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    assert!(!names.iter().any(|n| n.ends_with(".claim")), "{names:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected load error is a pure miss: no crash, no quarantine, and the
/// entry is intact on the next read.
#[test]
fn injected_load_error_is_a_pure_miss() {
    let _guard = hold_faults();
    let (_, report) = ground_truth("InO");
    let dir = temp_dir("loaderr");
    let cache = ResultCache::new(&dir);
    let s = spec("InO");
    let r = s.resolve().expect("valid");
    let key = point_key(&s.workload, r.scale, &r.sim, &r.options);
    cache.store(&key, r.scale, &report);

    fault::install(FaultPlan::seeded(6).with_capped(FaultSite::CacheLoadErr, 1.0, 1));
    assert!(cache.load(&key).is_none(), "injected I/O error reads as a miss");
    assert_eq!(
        cache.load(&key).as_ref(),
        Some(&report),
        "the entry itself is untouched"
    );
    assert!(
        !dir.join("quarantine").exists(),
        "an I/O error is not corruption; nothing must be quarantined"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Installing an *empty* plan is indistinguishable from no plan at all:
/// no site fires and reports are byte-identical.
#[test]
fn empty_plan_is_zero_cost_and_changes_nothing() {
    let _guard = hold_faults();
    let (_, clean) = ground_truth("SVR8");

    fault::install(FaultPlan::seeded(0xDEAD));
    for site in FaultSite::ALL {
        assert!(!fault::fires(site), "empty plan must never fire {}", site.name());
        assert!(fault::stall(site).is_none());
    }
    let (_, under_empty_plan) = {
        // ground_truth asserts no faults fire — which is exactly the claim.
        let s = spec("SVR8");
        let r = s.resolve().expect("valid");
        let key = point_key(&s.workload, r.scale, &r.sim, &r.options);
        let workload = r.kernel.build(r.scale);
        let report = run_point(&workload, &r.sim, &key, r.scale, &r.options, None)
            .expect("runs");
        (key, report)
    };
    assert_eq!(
        under_empty_plan, clean,
        "an empty plan must not change a single report byte"
    );
    assert!(fault::report_line().is_none(), "nothing fired, nothing to report");
}
