//! Hostile-connection tests: raw TCP clients that violate the protocol
//! (oversized heads, oversized bodies, malformed request lines, slow-loris
//! trickles, mid-body abandonment) must ALWAYS get a structured
//! `{kind,...}` JSON error with the right status — never a bare connection
//! drop, never a panic, never an unclassified 400.
//!
//! No fault injection here: these are real misbehaving clients against an
//! unmodified server, so the suite runs in parallel like any other.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use svr_serve::{http, Server, ServerConfig};
use svr_sim::json::Json;

const TIMEOUT: Duration = Duration::from_secs(60);

fn temp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("svr-httperr-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Binds an ephemeral port and runs `srv` on it in a background thread.
fn spawn_server(srv: &Arc<Server>) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let srv = Arc::clone(srv);
    let handle = std::thread::spawn(move || srv.serve(listener));
    (addr, handle)
}

fn shutdown_server(addr: &str, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let resp = http::request(addr, "POST", "/v1/shutdown", None, TIMEOUT, |_| {})
        .expect("shutdown");
    assert_eq!(resp.status, 200);
    handle.join().expect("serve thread").expect("clean drain");
}

/// Reads the raw response off a socket to EOF and returns
/// `(status, parsed JSON body)`. Panics on a bare drop (empty response) —
/// that is exactly the behavior this suite exists to forbid.
fn read_response(stream: &mut TcpStream) -> (u16, Json) {
    let _ = stream.set_read_timeout(Some(TIMEOUT));
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("reading response: {e}"),
        }
    }
    let text = String::from_utf8_lossy(&raw).to_string();
    assert!(
        !text.is_empty(),
        "server dropped the connection without a response"
    );
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {text:?}"));
    let body_at = text.find("\r\n\r\n").expect("response has a head") + 4;
    let body = Json::parse(&text[body_at..])
        .unwrap_or_else(|e| panic!("response body is not JSON ({e}): {text:?}"));
    (status, body)
}

fn kind(body: &Json) -> Option<&str> {
    body.get("kind").and_then(Json::as_str)
}

#[test]
fn oversized_head_gets_413_too_large() {
    let dir = temp_cache("head");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    // One byte past the point where the server's 1 KiB-chunked reader trips
    // the 64 KiB cap — and exactly what it will consume, so the close is
    // clean (no RST racing the response).
    let flood = vec![b'X'; 65 * 1024];
    stream.write_all(&flood).expect("flood");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 413, "{}", body.pretty());
    assert_eq!(kind(&body), Some("too_large"), "{}", body.pretty());
    assert!(
        body.get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("64 KiB")),
        "{}",
        body.pretty()
    );

    shutdown_server(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_declared_body_gets_413_without_reading_it() {
    let dir = temp_cache("body");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    // Declare a 17 MiB body but send none of it: the server must reject on
    // the declaration alone instead of buffering 17 MiB first.
    let head = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        17 * 1024 * 1024
    );
    stream.write_all(head.as_bytes()).expect("head");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 413, "{}", body.pretty());
    assert_eq!(kind(&body), Some("too_large"), "{}", body.pretty());
    assert!(
        body.get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("16 MiB")),
        "{}",
        body.pretty()
    );

    shutdown_server(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_request_line_gets_400_bad_request() {
    let dir = temp_cache("garbage");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    // A single-token request line (no path) cannot parse as METHOD PATH.
    stream.write_all(b"garbage\r\n\r\n").expect("send");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 400, "{}", body.pretty());
    assert_eq!(kind(&body), Some("bad_request"), "{}", body.pretty());

    shutdown_server(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_gets_408_timeout() {
    let dir = temp_cache("loris");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        // Short budget so the test is fast; a real deployment uses seconds.
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    // Send a fragment of a request line and then... nothing. The server's
    // overall head budget must expire and answer 408 — not hold the
    // connection slot forever, not drop it silently.
    stream.write_all(b"GET /v1/sta").expect("fragment");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 408, "{}", body.pretty());
    assert_eq!(kind(&body), Some("timeout"), "{}", body.pretty());

    shutdown_server(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trickled_head_is_bounded_by_the_overall_budget() {
    let dir = temp_cache("trickle");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    // The classic slow-loris: keep the per-read timeout from ever firing by
    // trickling one byte at a time. Only an overall deadline stops this.
    let stream = TcpStream::connect(&addr).expect("connect");
    let writer = std::thread::spawn(move || {
        let mut stream = stream;
        for b in b"GET /v1/status HTTP/1.1\r\n" {
            if stream.write_all(&[*b]).is_err() {
                break; // server gave up on us, as it should
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        stream
    });
    let mut stream = writer.join().expect("writer thread");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 408, "{}", body.pretty());
    assert_eq!(kind(&body), Some("timeout"), "{}", body.pretty());

    shutdown_server(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn abandoned_mid_body_gets_400_not_a_hang() {
    let dir = temp_cache("abandon");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let head = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 100\r\n\r\n"
    );
    stream.write_all(head.as_bytes()).expect("head");
    stream.write_all(b"{\"truncated").expect("partial body");
    stream.shutdown(Shutdown::Write).expect("half close");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 400, "{}", body.pretty());
    assert_eq!(kind(&body), Some("bad_request"), "{}", body.pretty());
    assert!(
        body.get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("mid-body")),
        "{}",
        body.pretty()
    );

    shutdown_server(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthz_reports_ready_then_draining() {
    let dir = temp_cache("healthz");
    let srv = Server::new(ServerConfig {
        cache_dir: dir.clone(),
        workers: 1,
        ..ServerConfig::default()
    });
    let (addr, handle) = spawn_server(&srv);

    let resp = http::request(&addr, "GET", "/v1/healthz", None, TIMEOUT, |_| {})
        .expect("healthz");
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&String::from_utf8_lossy(&resp.body)).expect("json");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("draining").and_then(Json::as_bool), Some(false));

    // Once draining, readiness flips to 503 so load balancers stop routing.
    // The accept loop stops at drain, so pre-open the connection: accepted
    // connections are still answered during the drain.
    let mut held = TcpStream::connect(&addr).expect("connect before drain");
    std::thread::sleep(Duration::from_millis(300)); // let the accept loop take it
    srv.begin_drain();
    held.write_all(format!("GET /v1/healthz HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .expect("send healthz");
    let (status, doc) = read_response(&mut held);
    assert_eq!(status, 503, "{}", doc.pretty());
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("draining"));

    handle.join().expect("serve thread").expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}
