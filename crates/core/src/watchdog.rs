//! Simulator watchdog: a hard cycle budget plus a forward-progress detector.
//!
//! The guest ISA is unverified input — a hand-written listing (or a harness
//! bug) can produce a program that retires instructions forever without ever
//! doing architectural work (`j`-to-self), or whose timing degenerates so
//! badly the simulation never ends within a reasonable wall-time. Both core
//! models check two cheap conditions once per retired instruction (two `u64`
//! compares, so the hot path is unaffected):
//!
//! * **Cycle budget** — the issue clock must stay below
//!   `max_insts * cycles_per_inst`. The worst legitimate CPI in this model
//!   (a TLB-missing pointer chase at the lowest Fig. 18 DRAM bandwidth) is
//!   well under 1000, so the default 4096 cycles/inst cannot fire on real
//!   workloads but bounds every run.
//! * **Forward progress** — some instruction with an architectural effect
//!   (a register write, memory access, or flags write) must issue at least
//!   once per `progress_window` cycles. DRAM-bound phases cannot trip this:
//!   a load *is* an effect at its issue cycle, and the longest gap between
//!   consecutive effect issues is one memory round-trip (hundreds of
//!   cycles), orders of magnitude below the 100 000-cycle default window.
//!   Only effect-free spins (`j`/`nop`/`b`-only loops) accumulate an
//!   unbounded gap.

use crate::stats::StallBucket;

/// Watchdog thresholds; a field of [`crate::InOrderConfig`] and
/// [`crate::OooConfig`]. Excluded from `SimConfig::cache_key` (like the
/// trace knobs): the watchdog never changes the timing of a run that
/// completes, it only bounds runs that would not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycle budget per permitted instruction: the run is terminated once
    /// the issue clock exceeds `max_insts * cycles_per_inst`. `0` disables
    /// the budget. Saturates, so `max_insts = u64::MAX` (uncapped test
    /// runs) effectively disables it too.
    pub cycles_per_inst: u64,
    /// Maximum cycles between issues of instructions with an architectural
    /// effect. `0` disables the detector.
    pub progress_window: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            cycles_per_inst: 4096,
            progress_window: 100_000,
        }
    }
}

impl WatchdogConfig {
    /// A disabled watchdog (both checks off).
    pub fn off() -> Self {
        WatchdogConfig {
            cycles_per_inst: 0,
            progress_window: 0,
        }
    }

    /// The cycle budget for a run capped at `max_insts` instructions
    /// (`u64::MAX` when disabled).
    pub fn budget(&self, max_insts: u64) -> u64 {
        if self.cycles_per_inst == 0 {
            u64::MAX
        } else {
            max_insts.saturating_mul(self.cycles_per_inst)
        }
    }

    /// The effective progress window (`u64::MAX` when disabled).
    pub fn window(&self) -> u64 {
        if self.progress_window == 0 {
            u64::MAX
        } else {
            self.progress_window
        }
    }
}

/// Why a core's run loop terminated a guest program early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// No instruction with an architectural effect issued within the
    /// progress window: the guest is spinning without doing work.
    NoForwardProgress {
        /// PC of the instruction that tripped the detector.
        pc: usize,
        /// Issue cycle at the trip.
        cycle: u64,
        /// Issue cycle of the last architectural effect.
        last_effect: u64,
        /// The configured window.
        window: u64,
        /// What the tripping instruction was stalled on.
        stall: StallBucket,
        /// Outstanding L1-D MSHR entries at the trip cycle.
        outstanding_mshrs: usize,
    },
    /// The issue clock blew the `max_insts * cycles_per_inst` budget.
    CycleBudgetExceeded {
        /// PC of the instruction that tripped the budget.
        pc: usize,
        /// Issue cycle at the trip.
        cycles: u64,
        /// The configured budget.
        budget: u64,
        /// Instructions retired when the budget tripped.
        retired: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::NoForwardProgress {
                pc,
                cycle,
                last_effect,
                window,
                stall,
                outstanding_mshrs,
            } => write!(
                f,
                "no forward progress: pc {pc} issued at cycle {cycle} but no \
                 architectural effect since cycle {last_effect} (window {window}); \
                 stalled on {stall:?} with {outstanding_mshrs} MSHRs outstanding"
            ),
            RunError::CycleBudgetExceeded {
                pc,
                cycles,
                budget,
                retired,
            } => write!(
                f,
                "cycle budget exceeded: cycle {cycles} > budget {budget} with \
                 {retired} instructions retired (pc {pc})"
            ),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_and_saturates() {
        let wd = WatchdogConfig::default();
        assert_eq!(wd.budget(1000), 1000 * 4096);
        assert_eq!(wd.budget(u64::MAX), u64::MAX, "uncapped runs are exempt");
        assert_eq!(WatchdogConfig::off().budget(1000), u64::MAX);
        assert_eq!(WatchdogConfig::off().window(), u64::MAX);
    }

    #[test]
    fn errors_format_diagnostics() {
        let e = RunError::NoForwardProgress {
            pc: 3,
            cycle: 200_123,
            last_effect: 100,
            window: 100_000,
            stall: StallBucket::Base,
            outstanding_mshrs: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("pc 3"), "{msg}");
        assert!(msg.contains("no forward progress"), "{msg}");
        assert!(msg.contains("2 MSHRs"), "{msg}");
        let e = RunError::CycleBudgetExceeded {
            pc: 7,
            cycles: 10_000,
            budget: 4096,
            retired: 2,
        };
        assert!(e.to_string().contains("budget 4096"), "{}", e);
    }
}
