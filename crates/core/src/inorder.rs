//! The 3-wide stall-on-use in-order core (Cortex-A510-like, Table III),
//! optionally augmented with the SVR engine.

use crate::branch::{BranchPredictor, MISPREDICT_PENALTY};
use crate::pipeline::{IssueSlots, Scoreboard};
use crate::stats::{CoreStats, StallBucket};
use crate::svr::{SvrConfig, SvrEngine};
use crate::watchdog::{RunError, WatchdogConfig};
use svr_isa::{
    AluOp, ArchState, DecodedOp, DecodedProgram, Inst, MicroOp, Outcome, Program, NO_REG, NUM_REGS,
};
use svr_mem::{Access, AccessKind, HitLevel, MemConfig, MemImage, MemoryHierarchy};
use svr_trace::{NullSink, StallTag, TraceEvent, TraceSink};

/// In-order core parameters (defaults = Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InOrderConfig {
    /// Dispatch/commit width (instructions per cycle).
    pub width: u8,
    /// Scoreboard entries (in-flight instructions).
    pub scoreboard: usize,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// Whether to model instruction fetch through the L1-I.
    pub model_fetch: bool,
    /// Runaway-guest protection (cycle budget + forward-progress detector).
    pub watchdog: WatchdogConfig,
}

impl Default for InOrderConfig {
    fn default() -> Self {
        InOrderConfig {
            width: 3,
            scoreboard: 32,
            mispredict_penalty: MISPREDICT_PENALTY,
            model_fetch: true,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// Everything the SVR engine can see/alter about the host pipeline when it
/// piggybacks on an issued instruction.
pub struct SvrCtx<'a, S: TraceSink = NullSink> {
    /// The memory hierarchy (for transient lane loads); also carries the
    /// trace sink.
    pub hier: &'a mut MemoryHierarchy<S>,
    /// Shared issue bandwidth (SVI lanes consume real slots).
    pub slots: &'a mut IssueSlots,
    /// Shared scoreboard (one entry per SVI, with a return counter).
    pub sb: &'a mut Scoreboard,
    /// Core statistics (SVR activity counters live here).
    pub stats: &'a mut CoreStats,
    /// Functional memory, so transient lanes chase real pointers.
    pub image: &'a MemImage,
}

/// One issued instruction as observed by the SVR engine.
#[derive(Debug, Clone, Copy)]
pub struct Observed<'a> {
    /// Static PC (instruction index).
    pub pc: usize,
    /// The instruction.
    pub inst: Inst,
    /// The pre-decoded form (resolved source/destination indices), so the
    /// engine need not re-derive operands from `inst`.
    pub op: &'a DecodedOp,
    /// Cycle it issued.
    pub issue_t: u64,
    /// Pre-execution values of the instruction's sources, in
    /// [`Inst::srcs`] order.
    pub src_vals: [u64; 3],
    /// Functional outcome (memory address, branch direction, ...).
    pub outcome: Outcome,
    /// Value loaded from memory (loads only).
    pub loaded_value: Option<u64>,
    /// Architectural state *after* this instruction (for CV scavenging).
    pub arch: &'a ArchState,
}

/// The in-order core. Construct with [`InOrderCore::new`] for the baseline,
/// or [`InOrderCore::with_svr`] for the paper's SVR configuration.
///
/// # Examples
///
/// ```
/// use svr_core::{InOrderCore, InOrderConfig};
/// use svr_mem::{MemConfig, MemImage};
/// use svr_isa::{Assembler, ArchState, Reg};
///
/// let mut asm = Assembler::new("tiny");
/// asm.li(Reg::new(1), 7);
/// asm.halt();
/// let p = asm.finish();
/// let mut image = MemImage::new();
/// let mut arch = ArchState::new();
/// let mut core = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
/// core.run(&p, &mut image, &mut arch, u64::MAX).unwrap();
/// assert_eq!(arch.reg(Reg::new(1)), 7);
/// assert!(core.stats().cycles > 0);
/// ```
#[derive(Debug)]
pub struct InOrderCore<S: TraceSink = NullSink> {
    cfg: InOrderConfig,
    hier: MemoryHierarchy<S>,
    bp: BranchPredictor,
    slots: IssueSlots,
    sb: Scoreboard,
    reg_ready: [u64; NUM_REGS],
    reg_bucket: [StallBucket; NUM_REGS],
    /// Producer PC per register — the *cause* a stall-on-use wait is charged
    /// to in [`TraceEvent::Attrib`]. Only maintained when tracing is on.
    reg_pc: [u64; NUM_REGS],
    flags_ready: u64,
    flags_pc: u64,
    fetch_ready: u64,
    fetch_bucket: StallBucket,
    fetch_pc: u64,
    last_fetch_line: Option<usize>,
    last_issue: u64,
    /// Issue cycle of the last instruction with an architectural effect
    /// (register write, memory access, or flags write) — the
    /// forward-progress watermark.
    last_effect: u64,
    max_completion: u64,
    /// Bucket describing what the longest-outstanding completion was waiting
    /// on; the post-run drain tail is charged here so the CPI stack accounts
    /// for every cycle exactly.
    tail_bucket: StallBucket,
    /// PC of the instruction owning the longest-outstanding completion.
    tail_pc: u64,
    stats: CoreStats,
    svr: Option<SvrEngine>,
}

fn alu_latency(op: AluOp) -> u64 {
    match op {
        AluOp::Mul => 3,
        AluOp::Divu | AluOp::Remu => 12,
        _ => 1,
    }
}

fn level_bucket(level: HitLevel) -> StallBucket {
    match level {
        HitLevel::L1 => StallBucket::MemL1,
        HitLevel::L2 => StallBucket::MemL2,
        HitLevel::Dram => StallBucket::MemDram,
    }
}

/// Maps a core stall bucket onto its trace-event tag (the trace crate is a
/// leaf and defines its own mirror of the enum).
pub(crate) fn stall_tag(b: StallBucket) -> StallTag {
    match b {
        StallBucket::Base => StallTag::Base,
        StallBucket::Branch => StallTag::Branch,
        StallBucket::Fetch => StallTag::Fetch,
        StallBucket::MemL1 => StallTag::MemL1,
        StallBucket::MemL2 => StallTag::MemL2,
        StallBucket::MemDram => StallTag::MemDram,
        StallBucket::Structural => StallTag::Structural,
    }
}

impl InOrderCore<NullSink> {
    /// Creates a baseline in-order core over a fresh memory hierarchy.
    pub fn new(cfg: InOrderConfig, mem: MemConfig) -> Self {
        Self::with_sink(cfg, mem, NullSink)
    }

    /// Creates an SVR core: the same in-order pipeline plus the SVR engine.
    pub fn with_svr(cfg: InOrderConfig, mem: MemConfig, svr: SvrConfig) -> Self {
        Self::with_svr_sink(cfg, mem, svr, NullSink)
    }
}

impl<S: TraceSink> InOrderCore<S> {
    /// Creates a baseline in-order core that streams trace events to `sink`.
    pub fn with_sink(cfg: InOrderConfig, mem: MemConfig, sink: S) -> Self {
        InOrderCore {
            hier: MemoryHierarchy::with_sink(mem, sink),
            bp: BranchPredictor::new(),
            slots: IssueSlots::new(cfg.width),
            sb: Scoreboard::new(cfg.scoreboard),
            reg_ready: [0; NUM_REGS],
            reg_bucket: [StallBucket::Base; NUM_REGS],
            reg_pc: [0; NUM_REGS],
            flags_ready: 0,
            flags_pc: 0,
            fetch_ready: 0,
            fetch_bucket: StallBucket::Fetch,
            fetch_pc: 0,
            last_fetch_line: None,
            last_issue: 0,
            last_effect: 0,
            max_completion: 0,
            tail_bucket: StallBucket::Base,
            tail_pc: 0,
            stats: CoreStats::default(),
            svr: None,
            cfg,
        }
    }

    /// Creates a traced SVR core: the in-order pipeline plus the SVR engine.
    pub fn with_svr_sink(cfg: InOrderConfig, mem: MemConfig, svr: SvrConfig, sink: S) -> Self {
        let mut core = Self::with_sink(cfg, mem, sink);
        core.svr = Some(SvrEngine::new(svr));
        core
    }

    /// Core statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Memory-system statistics.
    pub fn mem_stats(&self) -> &svr_mem::MemStats {
        self.hier.stats()
    }

    /// The memory hierarchy (e.g. to inspect DRAM traffic).
    pub fn hierarchy(&self) -> &MemoryHierarchy<S> {
        &self.hier
    }

    /// The SVR engine, when configured.
    pub fn svr_engine(&self) -> Option<&SvrEngine> {
        self.svr.as_ref()
    }

    /// Closes the memory hierarchy's prefetch ledger (still-resident
    /// prefetched lines become `resident_at_end`). Call once after the run
    /// completes; idempotent.
    pub fn finalize_mem(&mut self) {
        self.hier.finalize(self.stats.cycles);
    }

    /// Runs `program` until `halt` or `max_insts` retired instructions.
    ///
    /// `arch` carries initial register state (workloads pre-load base
    /// addresses) and holds final state afterwards.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if the configured [`WatchdogConfig`] trips:
    /// the guest issued no architecturally-effectful instruction within the
    /// progress window, or blew the cycle budget. Statistics and
    /// architectural state reflect the run up to the trip point.
    pub fn run(
        &mut self,
        program: &Program,
        image: &mut MemImage,
        arch: &mut ArchState,
        max_insts: u64,
    ) -> Result<(), RunError> {
        self.run_decoded(&DecodedProgram::lower(program), image, arch, max_insts)
    }

    /// Runs an already-lowered program (see [`InOrderCore::run`], which
    /// lowers and delegates here). The hot loop dispatches pre-decoded
    /// micro-ops by instruction index — no per-cycle decode.
    pub fn run_decoded(
        &mut self,
        prog: &DecodedProgram,
        image: &mut MemImage,
        arch: &mut ArchState,
        max_insts: u64,
    ) -> Result<(), RunError> {
        let budget = self.cfg.watchdog.budget(max_insts);
        let window = self.cfg.watchdog.window();
        while self.stats.retired < max_insts && !arch.halted() {
            let pc = arch.pc();
            let Some(op) = prog.get(pc) else { break };

            // Snapshot source values before execution (an instruction may
            // overwrite its own source). Only the SVR engine consumes these.
            let mut src_vals = [0u64; 3];
            if self.svr.is_some() {
                for (i, &r) in op.src_indices().iter().enumerate() {
                    src_vals[i] = arch.reg_at(r);
                }
            }

            // Instruction fetch, one access per new cache line (16 insts).
            if self.cfg.model_fetch {
                let line = pc / 16;
                if self.last_fetch_line != Some(line) {
                    let r = self.hier.fetch_inst(self.slots.horizon(), pc as u64);
                    if r.complete_at > self.fetch_ready {
                        self.fetch_ready = r.complete_at;
                        self.fetch_bucket = StallBucket::Fetch;
                        if S::ENABLED {
                            self.fetch_pc = pc as u64;
                        }
                    }
                    self.last_fetch_line = Some(line);
                }
            }

            // Data readiness (stall-on-use). `cause_pc` tracks who produced
            // the limiting operand; it is only consumed inside `S::ENABLED`
            // blocks, so untraced builds eliminate it entirely.
            let mut ready = self.fetch_ready;
            let mut bucket = self.fetch_bucket;
            let mut cause_pc = self.fetch_pc;
            for &r in op.src_indices() {
                let r = r as usize;
                if self.reg_ready[r] > ready {
                    ready = self.reg_ready[r];
                    bucket = self.reg_bucket[r];
                    cause_pc = self.reg_pc[r];
                }
            }
            if matches!(op.uop, MicroOp::B { .. }) && self.flags_ready > ready {
                ready = self.flags_ready;
                bucket = StallBucket::Base;
                cause_pc = self.flags_pc;
            }

            // Claim an issue slot, then a scoreboard entry.
            let slot_t = self.slots.take(ready);
            let t = self.sb.admit(slot_t);
            if t > slot_t {
                self.slots.bump(t);
            }

            // CPI-stack attribution.
            let delta = t.saturating_sub(self.last_issue);
            if delta > 0 {
                self.stats.stack.charge(StallBucket::Base, 1);
                let mut attr_bucket = StallBucket::Base;
                let mut attr_pc = cause_pc;
                if delta > 1 {
                    let b = if t > ready {
                        // Structural stalls are the issuing instruction's
                        // own fault, not a producer's.
                        attr_pc = pc as u64;
                        StallBucket::Structural
                    } else {
                        bucket
                    };
                    self.stats.stack.charge(b, delta - 1);
                    attr_bucket = b;
                }
                if S::ENABLED {
                    self.hier.trace(&TraceEvent::Attrib {
                        cycle: t,
                        bucket: stall_tag(attr_bucket),
                        base: 1,
                        stall: delta - 1,
                        pc: attr_pc,
                    });
                }
            }
            // `last_issue` doubles as the attributed-through watermark: the
            // end-of-run drain below bumps it to `cycles`, so on a resumed
            // run the first issues can land *below* it. Letting it move
            // backwards would re-open the drained window and double-charge
            // those cycles on the next gap (breaking per-segment
            // `stack.total() == cycles` conservation in sampled mode).
            self.last_issue = self.last_issue.max(t);

            // Watchdog: two u64 compares per instruction (hot-path neutral).
            if t > budget {
                return Err(RunError::CycleBudgetExceeded {
                    pc,
                    cycles: t,
                    budget,
                    retired: self.stats.retired,
                });
            }
            if t.saturating_sub(self.last_effect) > window {
                return Err(RunError::NoForwardProgress {
                    pc,
                    cycle: t,
                    last_effect: self.last_effect,
                    window,
                    stall: bucket,
                    outstanding_mshrs: self.hier.mshrs_in_flight(t),
                });
            }
            if op.has_effect {
                self.last_effect = t;
            }

            // Functional execution (`op` was fetched from `pc` above).
            let out: Outcome = arch.step_op(op, image);
            self.stats.retired += 1;
            self.stats.issued_uops += 1;

            let (completion, completion_bucket) = self.timing_for(op, pc, t, &out, image);
            if completion > self.max_completion {
                self.tail_bucket = completion_bucket;
                if S::ENABLED {
                    self.tail_pc = pc as u64;
                }
            }
            self.sb.push(completion);
            self.max_completion = self.max_completion.max(completion).max(t);

            // SVR piggybacking.
            if let Some(svr) = self.svr.as_mut() {
                let loaded_value = out.loaded;
                let observed = Observed {
                    pc,
                    inst: op.raw,
                    op,
                    issue_t: t,
                    src_vals,
                    outcome: out,
                    loaded_value,
                    arch,
                };
                let mut ctx = SvrCtx {
                    hier: &mut self.hier,
                    slots: &mut self.slots,
                    sb: &mut self.sb,
                    stats: &mut self.stats,
                    image,
                };
                svr.observe(&mut ctx, &observed);
            }

            self.stats.cycles = self.max_completion;
        }

        // Charge the completion drain (last issue → last completion) so
        // `CpiStack::total() == cycles` holds exactly. `last_issue` doubles
        // as the attributed-through watermark, keeping repeated `run` calls
        // from double-charging.
        let cycles = self.stats.cycles;
        if cycles > self.last_issue {
            let tail = cycles - self.last_issue;
            self.stats.stack.charge(self.tail_bucket, tail);
            if S::ENABLED {
                self.hier.trace(&TraceEvent::Attrib {
                    cycle: cycles,
                    bucket: stall_tag(self.tail_bucket),
                    base: 0,
                    stall: tail,
                    pc: self.tail_pc,
                });
            }
            self.last_issue = cycles;
        }
        Ok(())
    }

    /// Computes the completion time of one instruction and updates
    /// register-readiness state. Returns the completion cycle and the stall
    /// bucket that waiting on this completion should be charged to.
    fn timing_for(
        &mut self,
        op: &DecodedOp,
        pc: usize,
        t: u64,
        out: &Outcome,
        image: &MemImage,
    ) -> (u64, StallBucket) {
        match op.uop {
            MicroOp::Ld { .. } | MicroOp::LdX { .. } => {
                let (_, addr) = out.mem.expect("load accesses memory");
                let value = out.loaded.expect("load produces a value");
                let res = self.hier.access_with_image(
                    Access::new(t, addr, AccessKind::DemandLoad)
                        .with_pc(pc as u64)
                        .with_value(value),
                    Some(image),
                );
                if res.issued_at > t {
                    self.slots.bump(res.issued_at);
                }
                self.stats.loads += 1;
                if op.dst != NO_REG {
                    self.reg_ready[op.dst as usize] = res.complete_at;
                    self.reg_bucket[op.dst as usize] = level_bucket(res.level);
                    if S::ENABLED {
                        self.reg_pc[op.dst as usize] = pc as u64;
                    }
                }
                (res.complete_at, level_bucket(res.level))
            }
            MicroOp::St { .. } | MicroOp::StX { .. } => {
                let (_, addr) = out.mem.expect("store accesses memory");
                let res = self.hier.access_with_image(
                    Access::new(t, addr, AccessKind::DemandStore).with_pc(pc as u64),
                    Some(image),
                );
                if res.issued_at > t {
                    self.slots.bump(res.issued_at);
                }
                self.stats.stores += 1;
                // Stores retire into the write path; the core does not wait.
                (t + 1, StallBucket::Base)
            }
            MicroOp::Alu { op: alu, .. } | MicroOp::AluI { op: alu, .. } => {
                let done = t + alu_latency(alu);
                if op.dst != NO_REG {
                    self.reg_ready[op.dst as usize] = done;
                    self.reg_bucket[op.dst as usize] = StallBucket::Base;
                    if S::ENABLED {
                        self.reg_pc[op.dst as usize] = pc as u64;
                    }
                }
                (done, StallBucket::Base)
            }
            MicroOp::Li { .. } | MicroOp::Nop => {
                let done = t + 1;
                if op.dst != NO_REG {
                    self.reg_ready[op.dst as usize] = done;
                    self.reg_bucket[op.dst as usize] = StallBucket::Base;
                    if S::ENABLED {
                        self.reg_pc[op.dst as usize] = pc as u64;
                    }
                }
                (done, StallBucket::Base)
            }
            MicroOp::Cmp { .. } | MicroOp::CmpI { .. } => {
                self.flags_ready = t + 1;
                if S::ENABLED {
                    self.flags_pc = pc as u64;
                }
                (t + 1, StallBucket::Base)
            }
            MicroOp::B { .. } => {
                self.stats.branches += 1;
                let (taken, _) = out.branch.expect("branch outcome");
                let pred = self.bp.predict(pc as u64);
                self.bp.update(pc as u64, taken);
                if pred != taken {
                    self.stats.mispredicts += 1;
                    let redirect = t + 1 + self.cfg.mispredict_penalty;
                    if redirect > self.fetch_ready {
                        self.fetch_ready = redirect;
                        self.fetch_bucket = StallBucket::Branch;
                        if S::ENABLED {
                            self.fetch_pc = pc as u64;
                        }
                    }
                    // The fetch line changes on the (mispredicted) path.
                    self.last_fetch_line = None;
                }
                (t + 1, StallBucket::Base)
            }
            MicroOp::J { .. } | MicroOp::Halt => (t + 1, StallBucket::Base),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_isa::{Assembler, Cond, DataMemory, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Builds a pointer-chase program: p = mem[p] repeated `iters` times.
    fn pointer_chase(iters: i64) -> (Program, MemImage, ArchState) {
        let mut img = MemImage::new();
        // A cycle of pointers spread over many cache lines (2 MiB footprint,
        // well beyond the 512 KiB L2).
        let n = 32768u64;
        let mut addrs: Vec<u64> = Vec::new();
        let base = img.alloc_words(n * 8); // spread by 64B
        for i in 0..n {
            addrs.push(base + i * 64);
        }
        // Permute: next[i] = addr of (i*1663+1) mod n
        for i in 0..n {
            let next = addrs[((i * 16411 + 1) % n) as usize];
            img.write_u64(addrs[i as usize], next);
        }
        let p = r(1);
        let i = r(2);
        let mut asm = Assembler::new("chase");
        let top = asm.label();
        asm.bind(top);
        asm.ld(p, p, 0);
        asm.alui(AluOp::Add, i, i, 1);
        asm.cmpi(i, iters);
        asm.b(Cond::Ne, top);
        asm.halt();
        let prog = asm.finish();
        let mut arch = ArchState::new();
        arch.set_reg(p, addrs[0]);
        (prog, img, arch)
    }

    /// Builds a streaming-sum program over `n` consecutive words.
    fn streaming(n: i64) -> (Program, MemImage, ArchState) {
        let mut img = MemImage::new();
        let base = img.alloc_words(n as u64);
        for k in 0..n as u64 {
            img.write_u64(base + k * 8, k);
        }
        let b = r(1);
        let i = r(2);
        let s = r(3);
        let t = r(4);
        let mut asm = Assembler::new("stream");
        let top = asm.label();
        asm.bind(top);
        asm.ldx(t, b, i, 3);
        asm.alu(AluOp::Add, s, s, t);
        asm.alui(AluOp::Add, i, i, 1);
        asm.cmpi(i, n);
        asm.b(Cond::Ne, top);
        asm.halt();
        let prog = asm.finish();
        let mut arch = ArchState::new();
        arch.set_reg(b, base);
        (prog, img, arch)
    }

    #[test]
    fn executes_correctly_and_counts() {
        let (p, mut img, mut arch) = streaming(100);
        let mut core = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        assert!(arch.halted());
        assert_eq!(arch.reg(r(3)), (0..100).sum::<u64>());
        assert_eq!(core.stats().retired, 100 * 5 + 1);
        assert!(core.stats().cycles > 0);
        assert_eq!(core.stats().loads, 100);
    }

    #[test]
    fn pointer_chase_is_memory_bound() {
        let (p, mut img, mut arch) = pointer_chase(2000);
        let mut core = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        let cpi = core.stats().cpi();
        // Each iteration (4 insts) serializes a ~100-cycle DRAM access once
        // caches are cold/thrashing: CPI must be well above 10.
        assert!(cpi > 10.0, "cpi={cpi}");
        // DRAM stalls dominate the stack.
        let stack = core.stats().stack;
        assert!(
            stack.mem_dram > stack.total() / 2,
            "dram={} total={}",
            stack.mem_dram,
            stack.total()
        );
    }

    #[test]
    fn streaming_is_fast_with_stride_prefetcher() {
        let (p, mut img, mut arch) = streaming(20_000);
        let mut core = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        let cpi = core.stats().cpi();
        assert!(cpi < 3.0, "streaming cpi={cpi}");
    }

    #[test]
    fn respects_max_insts() {
        let (p, mut img, mut arch) = streaming(1000);
        let mut core = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        core.run(&p, &mut img, &mut arch, 42).unwrap();
        assert_eq!(core.stats().retired, 42);
        assert!(!arch.halted());
    }

    #[test]
    fn branch_stats_counted() {
        let (p, mut img, mut arch) = streaming(50);
        let mut core = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        assert_eq!(core.stats().branches, 50);
        // The loop exit is hard to predict at least once.
        assert!(core.stats().mispredicts >= 1);
    }

    #[test]
    fn cpi_stack_total_equals_cycles_exactly() {
        let (p, mut img, mut arch) = pointer_chase(500);
        let mut core = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        let total = core.stats().stack.total();
        let cycles = core.stats().cycles;
        // Issue-to-issue gaps plus the completion-drain tail account for
        // every cycle.
        assert_eq!(total, cycles);
    }

    #[test]
    fn segmented_runs_conserve_stack_totals_at_every_boundary() {
        // Sampled mode resumes the same core with growing cumulative caps;
        // the drain watermark must survive each seam or interval CPI stacks
        // double-charge the drained window.
        let (p, mut img, mut arch) = pointer_chase(500);
        let mut core = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        let mut target = 0u64;
        while !arch.halted() {
            target += 37;
            core.run(&p, &mut img, &mut arch, target).unwrap();
            assert_eq!(
                core.stats().stack.total(),
                core.stats().cycles,
                "conservation after {} retired",
                core.stats().retired
            );
        }

        let (p2, mut img2, mut arch2) = pointer_chase(500);
        let mut whole = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        whole.run(&p2, &mut img2, &mut arch2, u64::MAX).unwrap();
        assert_eq!(core.stats().cycles, whole.stats().cycles);
        assert_eq!(core.stats().retired, whole.stats().retired);
    }

    #[test]
    fn traced_run_emits_attribution_mirroring_the_stack() {
        use svr_trace::RingSink;
        let (p, mut img, mut arch) = streaming(200);
        let mut core = InOrderCore::with_sink(
            InOrderConfig::default(),
            MemConfig::default(),
            RingSink::new(1 << 16),
        );
        core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        let mut attributed = 0u64;
        for ev in core.hierarchy().sink().iter() {
            if let TraceEvent::Attrib { base, stall, .. } = *ev {
                attributed += u64::from(base) + stall;
            }
        }
        assert_eq!(attributed, core.stats().cycles);
        assert_eq!(core.stats().stack.total(), core.stats().cycles);
    }
}
