//! Core-side statistics: cycle counts, CPI stacks, and SVR activity counters.

/// Where a stall cycle is attributed in the CPI stack (Fig. 3 of the paper
/// groups these into "other" and "mem-dram"; we keep finer buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallBucket {
    /// Useful issue (the 1/IPC_max component).
    Base,
    /// Branch misprediction penalty.
    Branch,
    /// Instruction-fetch stalls.
    Fetch,
    /// Waiting on data that hit in L1 (or in-flight hit-under-miss).
    MemL1,
    /// Waiting on data supplied by L2.
    MemL2,
    /// Waiting on data supplied by DRAM.
    MemDram,
    /// Structural stalls (scoreboard/ROB/LSQ/MSHR full, SVI issue sharing).
    Structural,
}

/// A decomposition of total cycles into stall causes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// See [`StallBucket::Base`].
    pub base: u64,
    /// See [`StallBucket::Branch`].
    pub branch: u64,
    /// See [`StallBucket::Fetch`].
    pub fetch: u64,
    /// See [`StallBucket::MemL1`].
    pub mem_l1: u64,
    /// See [`StallBucket::MemL2`].
    pub mem_l2: u64,
    /// See [`StallBucket::MemDram`].
    pub mem_dram: u64,
    /// See [`StallBucket::Structural`].
    pub structural: u64,
}

impl CpiStack {
    /// Adds `cycles` to the given bucket.
    pub fn charge(&mut self, bucket: StallBucket, cycles: u64) {
        match bucket {
            StallBucket::Base => self.base += cycles,
            StallBucket::Branch => self.branch += cycles,
            StallBucket::Fetch => self.fetch += cycles,
            StallBucket::MemL1 => self.mem_l1 += cycles,
            StallBucket::MemL2 => self.mem_l2 += cycles,
            StallBucket::MemDram => self.mem_dram += cycles,
            StallBucket::Structural => self.structural += cycles,
        }
    }

    /// Sum of all buckets.
    pub fn total(&self) -> u64 {
        self.base
            + self.branch
            + self.fetch
            + self.mem_l1
            + self.mem_l2
            + self.mem_dram
            + self.structural
    }

    /// Everything that is not a DRAM stall ("other" in Fig. 3).
    pub fn other(&self) -> u64 {
        self.total() - self.mem_dram
    }
}

/// Counters describing SVR activity during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SvrActivity {
    /// Rounds of piggyback runahead mode entered.
    pub prm_rounds: u64,
    /// Scalar-vector instructions generated.
    pub svis: u64,
    /// Individual transient lanes issued (≈ extra dynamic instructions).
    pub lanes: u64,
    /// Transient lane loads sent to the memory system.
    pub lane_loads: u64,
    /// Rounds terminated by the 256-instruction timeout.
    pub timeouts: u64,
    /// Rounds terminated by re-encountering the HSLR load.
    pub hslr_terminations: u64,
    /// SVI generation suppressed past the last indirect load.
    pub lil_suppressed: u64,
    /// PRM triggers suppressed by waiting mode.
    pub waiting_suppressed: u64,
    /// PRM triggers suppressed by the accuracy ban (§IV-A7).
    pub banned_suppressed: u64,
    /// PRM triggers suppressed because the chain has no dependent load.
    pub non_indirect_suppressed: u64,
    /// HSLR retargets (nested/independent-loop switches).
    pub retargets: u64,
    /// Lanes masked off by control-flow divergence.
    pub masked_lanes: u64,
    /// SRF recycling events (LRU steal of a mapped register).
    pub srf_recycles: u64,
    /// SVI generation skipped because no SRF entry was available.
    pub srf_starved: u64,
}

/// Statistics for one core run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Total cycles to retire the run.
    pub cycles: u64,
    /// Main-thread (architectural) instructions retired.
    pub retired: u64,
    /// All issue slots consumed, including transient SVI lanes.
    pub issued_uops: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Demand loads executed.
    pub loads: u64,
    /// Demand stores executed.
    pub stores: u64,
    /// Cycle decomposition.
    pub stack: CpiStack,
    /// SVR activity (zero for non-SVR cores).
    pub svr: SvrActivity,
}

impl CoreStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.cycles as f64 / self.retired as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut s = CpiStack::default();
        s.charge(StallBucket::Base, 10);
        s.charge(StallBucket::MemDram, 30);
        s.charge(StallBucket::Structural, 5);
        assert_eq!(s.total(), 45);
        assert_eq!(s.other(), 15);
        assert_eq!(s.mem_dram, 30);
    }

    #[test]
    fn cpi_and_ipc() {
        let s = CoreStats {
            cycles: 200,
            retired: 100,
            ..CoreStats::default()
        };
        assert!((s.cpi() - 2.0).abs() < 1e-12);
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(CoreStats::default().cpi(), 0.0);
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn all_buckets_route() {
        let mut s = CpiStack::default();
        for b in [
            StallBucket::Base,
            StallBucket::Branch,
            StallBucket::Fetch,
            StallBucket::MemL1,
            StallBucket::MemL2,
            StallBucket::MemDram,
            StallBucket::Structural,
        ] {
            s.charge(b, 1);
        }
        assert_eq!(s.total(), 7);
    }
}
