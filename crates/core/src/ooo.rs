//! The 3-wide out-of-order comparison core (Table III): ROB 32, LSQ 16,
//! reservation stations 32, in-order dispatch and commit.
//!
//! Modeled as a sliding dataflow window (Sniper-style interval model): an
//! instruction dispatches when a ROB slot frees, executes when its operands
//! are ready (loads also gated by the LSQ and MSHRs), and commits in order.
//! This captures exactly the property the paper leans on: the OoO core
//! overlaps every independent cache miss inside its 32-instruction window,
//! where the in-order core serializes them.

use crate::branch::{BranchPredictor, MISPREDICT_PENALTY};
use crate::inorder::stall_tag;
use crate::pipeline::{IssueSlots, Scoreboard};
use crate::stats::{CoreStats, StallBucket};
use crate::watchdog::{RunError, WatchdogConfig};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use svr_isa::{
    AluOp, ArchState, DecodedProgram, MicroOp, Outcome, Program, NO_REG, NUM_REGS,
};
use svr_mem::{Access, AccessKind, FxHasher, HitLevel, MemConfig, MemImage, MemoryHierarchy};
use svr_trace::{NullSink, TraceEvent, TraceSink};

/// Out-of-order core parameters (defaults = Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooConfig {
    /// Dispatch/commit width.
    pub width: u8,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Load/store-queue entries.
    pub lsq: usize,
    /// Branch misprediction penalty.
    pub mispredict_penalty: u64,
    /// Model instruction fetch through the L1-I.
    pub model_fetch: bool,
    /// Rename/RS scheduling delay between dispatch and earliest execute.
    pub rs_delay: u64,
    /// Runaway-guest protection (cycle budget + forward-progress detector).
    pub watchdog: WatchdogConfig,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            width: 3,
            rob: 32,
            lsq: 16,
            mispredict_penalty: MISPREDICT_PENALTY,
            model_fetch: true,
            rs_delay: 2,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// See module docs.
///
/// # Examples
///
/// ```
/// use svr_core::{OooCore, OooConfig};
/// use svr_mem::{MemConfig, MemImage};
/// use svr_isa::{ArchState, Assembler, Reg};
///
/// let mut asm = Assembler::new("t");
/// asm.li(Reg::new(1), 5);
/// asm.halt();
/// let p = asm.finish();
/// let mut core = OooCore::new(OooConfig::default(), MemConfig::default());
/// let (mut img, mut arch) = (MemImage::new(), ArchState::new());
/// core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
/// assert_eq!(core.stats().retired, 2);
/// ```
#[derive(Debug)]
pub struct OooCore<S: TraceSink = NullSink> {
    cfg: OooConfig,
    hier: MemoryHierarchy<S>,
    bp: BranchPredictor,
    rob: Scoreboard,
    lsq: Scoreboard,
    dispatch: IssueSlots,
    commit: IssueSlots,
    reg_ready: [u64; NUM_REGS],
    reg_bucket: [StallBucket; NUM_REGS],
    /// Producer PC per register (stall-cause attribution; traced runs only).
    reg_pc: [u64; NUM_REGS],
    flags_ready: u64,
    flags_pc: u64,
    fetch_ready: u64,
    last_fetch_line: Option<usize>,
    /// Completion time of the last store per word address (conservative
    /// same-address ordering with store-to-load forwarding). FxHash: this is
    /// probed on every load and written on every store.
    store_fwd: HashMap<u64, u64, BuildHasherDefault<FxHasher>>,
    last_commit: u64,
    /// Dispatch cycle of the last architecturally-effectful instruction
    /// (the forward-progress watermark).
    last_effect: u64,
    stats: CoreStats,
}

fn alu_latency(op: AluOp) -> u64 {
    match op {
        AluOp::Mul => 3,
        AluOp::Divu | AluOp::Remu => 12,
        _ => 1,
    }
}

fn level_bucket(level: HitLevel) -> StallBucket {
    match level {
        HitLevel::L1 => StallBucket::MemL1,
        HitLevel::L2 => StallBucket::MemL2,
        HitLevel::Dram => StallBucket::MemDram,
    }
}

impl OooCore<NullSink> {
    /// Creates a core over a fresh hierarchy with tracing disabled.
    pub fn new(cfg: OooConfig, mem: MemConfig) -> Self {
        Self::with_sink(cfg, mem, NullSink)
    }
}

impl<S: TraceSink> OooCore<S> {
    /// Creates a core over a fresh hierarchy emitting trace events to `sink`.
    pub fn with_sink(cfg: OooConfig, mem: MemConfig, sink: S) -> Self {
        OooCore {
            hier: MemoryHierarchy::with_sink(mem, sink),
            bp: BranchPredictor::new(),
            rob: Scoreboard::new(cfg.rob),
            lsq: Scoreboard::new(cfg.lsq),
            dispatch: IssueSlots::new(cfg.width),
            commit: IssueSlots::new(cfg.width),
            reg_ready: [0; NUM_REGS],
            reg_bucket: [StallBucket::Base; NUM_REGS],
            reg_pc: [0; NUM_REGS],
            flags_ready: 0,
            flags_pc: 0,
            fetch_ready: 0,
            last_fetch_line: None,
            store_fwd: HashMap::default(),
            last_commit: 0,
            last_effect: 0,
            stats: CoreStats::default(),
            cfg,
        }
    }

    /// Core statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Memory statistics.
    pub fn mem_stats(&self) -> &svr_mem::MemStats {
        self.hier.stats()
    }

    /// The memory hierarchy.
    pub fn hierarchy(&self) -> &MemoryHierarchy<S> {
        &self.hier
    }

    /// Closes the memory hierarchy's prefetch ledger (still-resident
    /// prefetched lines become `resident_at_end`). Call once after the run
    /// completes; idempotent.
    pub fn finalize_mem(&mut self) {
        self.hier.finalize(self.stats.cycles);
    }

    /// Runs `program` until `halt` or `max_insts` retired instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] when the configured [`WatchdogConfig`] trips
    /// (no forward progress within the window, or a blown cycle budget).
    pub fn run(
        &mut self,
        program: &Program,
        image: &mut MemImage,
        arch: &mut ArchState,
        max_insts: u64,
    ) -> Result<(), RunError> {
        self.run_decoded(&DecodedProgram::lower(program), image, arch, max_insts)
    }

    /// Runs an already-lowered program (see [`OooCore::run`], which lowers
    /// and delegates here). The hot loop dispatches pre-decoded micro-ops by
    /// instruction index — no per-cycle decode.
    pub fn run_decoded(
        &mut self,
        prog: &DecodedProgram,
        image: &mut MemImage,
        arch: &mut ArchState,
        max_insts: u64,
    ) -> Result<(), RunError> {
        let budget = self.cfg.watchdog.budget(max_insts);
        let window = self.cfg.watchdog.window();
        while self.stats.retired < max_insts && !arch.halted() {
            let pc = arch.pc();
            let Some(op) = prog.get(pc) else { break };

            if self.cfg.model_fetch {
                let line = pc / 16;
                if self.last_fetch_line != Some(line) {
                    let r = self.hier.fetch_inst(self.dispatch.horizon(), pc as u64);
                    self.fetch_ready = self.fetch_ready.max(r.complete_at);
                    self.last_fetch_line = Some(line);
                }
            }

            // Dispatch: ROB slot + front-end bandwidth.
            let want = self.fetch_ready;
            let slot = self.dispatch.take(want);
            let dispatch_t = self.rob.admit(slot);
            if dispatch_t > slot {
                self.dispatch.bump(dispatch_t);
            }

            // Operand readiness — *not* bounded by older instructions'
            // completion: this is where the MLP comes from. Rename and
            // wakeup/select add a couple of cycles past dispatch.
            let mut ready = dispatch_t + self.cfg.rs_delay;
            let mut bucket = StallBucket::Base;
            // Only consumed in `S::ENABLED` blocks; dead in untraced builds.
            let mut cause_pc = 0u64;
            for &r in op.src_indices() {
                let r = r as usize;
                if self.reg_ready[r] > ready {
                    ready = self.reg_ready[r];
                    bucket = self.reg_bucket[r];
                    cause_pc = self.reg_pc[r];
                }
            }
            if matches!(op.uop, MicroOp::B { .. }) && self.flags_ready > ready {
                ready = self.flags_ready;
                cause_pc = self.flags_pc;
            }

            // Watchdog: two u64 compares per instruction (hot-path neutral).
            if dispatch_t > budget {
                return Err(RunError::CycleBudgetExceeded {
                    pc,
                    cycles: dispatch_t,
                    budget,
                    retired: self.stats.retired,
                });
            }
            if dispatch_t.saturating_sub(self.last_effect) > window {
                return Err(RunError::NoForwardProgress {
                    pc,
                    cycle: dispatch_t,
                    last_effect: self.last_effect,
                    window,
                    stall: bucket,
                    outstanding_mshrs: self.hier.mshrs_in_flight(dispatch_t),
                });
            }
            if op.has_effect {
                self.last_effect = dispatch_t;
            }

            // `op` was fetched from `pc` above.
            let out: Outcome = arch.step_op(op, image);
            self.stats.retired += 1;
            self.stats.issued_uops += 1;

            let completion = match op.uop {
                MicroOp::Ld { .. } | MicroOp::LdX { .. } => {
                    let (_, addr) = out.mem.expect("load address");
                    let lsq_t = self.lsq.admit(dispatch_t);
                    let mut start = ready.max(lsq_t);
                    // Conservative same-address store ordering.
                    if let Some(&fwd) = self.store_fwd.get(&(addr & !7)) {
                        start = start.max(fwd);
                    }
                    let value = out.loaded.expect("load produces a value");
                    let res = self.hier.access_with_image(
                        Access::new(start, addr, AccessKind::DemandLoad)
                            .with_pc(pc as u64)
                            .with_value(value),
                        Some(image),
                    );
                    self.stats.loads += 1;
                    self.lsq.push(res.complete_at);
                    if op.dst != NO_REG {
                        self.reg_ready[op.dst as usize] = res.complete_at;
                        self.reg_bucket[op.dst as usize] = level_bucket(res.level);
                        if S::ENABLED {
                            self.reg_pc[op.dst as usize] = pc as u64;
                        }
                    }
                    res.complete_at
                }
                MicroOp::St { .. } | MicroOp::StX { .. } => {
                    let (_, addr) = out.mem.expect("store address");
                    let lsq_t = self.lsq.admit(dispatch_t);
                    let start = ready.max(lsq_t);
                    let res = self.hier.access_with_image(
                        Access::new(start, addr, AccessKind::DemandStore).with_pc(pc as u64),
                        Some(image),
                    );
                    let _ = res;
                    self.stats.stores += 1;
                    // Forwarding: dependents see the data one cycle after the
                    // store executes.
                    self.store_fwd.insert(addr & !7, start + 1);
                    self.lsq.push(start + 1);
                    start + 1
                }
                MicroOp::Alu { op: alu, .. } | MicroOp::AluI { op: alu, .. } => {
                    let done = ready + alu_latency(alu);
                    if op.dst != NO_REG {
                        self.reg_ready[op.dst as usize] = done;
                        self.reg_bucket[op.dst as usize] = StallBucket::Base;
                        if S::ENABLED {
                            self.reg_pc[op.dst as usize] = pc as u64;
                        }
                    }
                    done
                }
                MicroOp::Li { .. } | MicroOp::Nop => {
                    let done = ready + 1;
                    if op.dst != NO_REG {
                        self.reg_ready[op.dst as usize] = done;
                        self.reg_bucket[op.dst as usize] = StallBucket::Base;
                        if S::ENABLED {
                            self.reg_pc[op.dst as usize] = pc as u64;
                        }
                    }
                    done
                }
                MicroOp::Cmp { .. } | MicroOp::CmpI { .. } => {
                    self.flags_ready = ready + 1;
                    if S::ENABLED {
                        self.flags_pc = pc as u64;
                    }
                    ready + 1
                }
                MicroOp::B { .. } => {
                    self.stats.branches += 1;
                    let (taken, _) = out.branch.expect("branch outcome");
                    let pred = self.bp.predict(pc as u64);
                    self.bp.update(pc as u64, taken);
                    let done = ready + 1;
                    if pred != taken {
                        self.stats.mispredicts += 1;
                        // Flush: younger instructions refetch after resolve.
                        self.fetch_ready = self.fetch_ready.max(done + self.cfg.mispredict_penalty);
                        self.last_fetch_line = None;
                        bucket = StallBucket::Branch;
                        cause_pc = pc as u64;
                    }
                    done
                }
                MicroOp::J { .. } | MicroOp::Halt => ready + 1,
            };

            self.rob.push({
                // Commit in order, ≤ width per cycle.
                let c = self.commit.take(completion);
                // CPI-stack attribution on commit gaps.
                let delta = c.saturating_sub(self.last_commit);
                if delta > 0 {
                    self.stats.stack.charge(StallBucket::Base, 1);
                    let mut attr_bucket = StallBucket::Base;
                    let mut attr_pc = cause_pc;
                    if delta > 1 {
                        let b = if completion > ready {
                            bucket
                        } else {
                            StallBucket::Structural
                        };
                        let b = match op.uop {
                            MicroOp::Ld { .. } | MicroOp::LdX { .. } => b,
                            MicroOp::B { .. } => bucket,
                            _ => b,
                        };
                        self.stats.stack.charge(b, delta - 1);
                        attr_bucket = b;
                        if matches!(b, StallBucket::Structural) {
                            // Structural back-pressure is the committing
                            // instruction's own wait, not a producer's.
                            attr_pc = pc as u64;
                        }
                    }
                    if S::ENABLED {
                        self.hier.trace(&TraceEvent::Attrib {
                            cycle: c,
                            bucket: stall_tag(attr_bucket),
                            base: 1,
                            stall: delta - 1,
                            pc: attr_pc,
                        });
                    }
                }
                self.last_commit = c;
                self.stats.cycles = self.stats.cycles.max(c);
                c
            });
        }
        // Keep the store-forward map bounded.
        if self.store_fwd.len() > 1 << 20 {
            self.store_fwd.clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inorder::{InOrderConfig, InOrderCore};
    use svr_isa::{Assembler, Cond, DataMemory, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Independent-miss loop: a[i] accessed with a huge stride so every load
    /// is a DRAM miss, but all are independent.
    fn independent_misses(n: i64) -> (Program, MemImage, ArchState) {
        let mut img = MemImage::new();
        let base = img.alloc_words(n as u64 * 64);
        let (b, i, s, t) = (r(1), r(2), r(3), r(4));
        let mut asm = Assembler::new("ind");
        let top = asm.label();
        asm.bind(top);
        asm.ldx(t, b, i, 6); // stride 64: one line per access
        asm.alu(AluOp::Add, s, s, t);
        asm.alui(AluOp::Add, i, i, 1);
        asm.cmpi(i, n);
        asm.b(Cond::Ne, top);
        asm.halt();
        let p = asm.finish();
        let mut arch = ArchState::new();
        arch.set_reg(b, base);
        (p, img, arch)
    }

    /// Dependent chain: p = mem[p].
    fn dependent_chain(n: i64) -> (Program, MemImage, ArchState) {
        let mut img = MemImage::new();
        let cnt = 8192u64;
        let base = img.alloc_words(cnt * 8);
        for i in 0..cnt {
            let next = base + ((i * 3067 + 1) % cnt) * 64;
            img.write_u64(base + i * 64, next);
        }
        let (p_, i) = (r(1), r(2));
        let mut asm = Assembler::new("dep");
        let top = asm.label();
        asm.bind(top);
        asm.ld(p_, p_, 0);
        asm.alui(AluOp::Add, i, i, 1);
        asm.cmpi(i, n);
        asm.b(Cond::Ne, top);
        asm.halt();
        let p = asm.finish();
        let mut arch = ArchState::new();
        arch.set_reg(p_, base);
        (p, img, arch)
    }

    fn mem_no_pf() -> MemConfig {
        MemConfig {
            stride_pf: None,
            ..MemConfig::default()
        }
    }

    #[test]
    fn architecturally_identical_to_inorder() {
        let (p, mut img1, mut a1) = independent_misses(500);
        let (_, mut img2, mut a2) = independent_misses(500);
        let mut ooo = OooCore::new(OooConfig::default(), MemConfig::default());
        let mut ino = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
        ooo.run(&p, &mut img1, &mut a1, u64::MAX).unwrap();
        ino.run(&p, &mut img2, &mut a2, u64::MAX).unwrap();
        assert_eq!(a1.reg(r(3)), a2.reg(r(3)));
        assert_eq!(ooo.stats().retired, ino.stats().retired);
    }

    #[test]
    fn ooo_overlaps_independent_misses() {
        let (p, mut img, mut arch) = independent_misses(3000);
        let mut ooo = OooCore::new(OooConfig::default(), mem_no_pf());
        ooo.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        let cpi_ooo = ooo.stats().cpi();

        let (p, mut img, mut arch) = independent_misses(3000);
        let mut ino = InOrderCore::new(InOrderConfig::default(), mem_no_pf());
        ino.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        let cpi_ino = ino.stats().cpi();

        assert!(
            cpi_ino > 2.0 * cpi_ooo,
            "in-order {cpi_ino:.2} vs OoO {cpi_ooo:.2}"
        );
    }

    #[test]
    fn dependent_chain_defeats_ooo() {
        let (p, mut img, mut arch) = dependent_chain(2000);
        let mut ooo = OooCore::new(OooConfig::default(), mem_no_pf());
        ooo.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        let cpi_ooo = ooo.stats().cpi();
        // A serial pointer chase cannot be overlapped: CPI stays high.
        assert!(cpi_ooo > 10.0, "cpi={cpi_ooo}");
    }

    #[test]
    fn store_to_load_ordering_respected() {
        // st x -> ld x: the load must see the store's timing (and value).
        let mut asm = Assembler::new("stld");
        asm.li(r(1), 0x2000);
        asm.li(r(2), 77);
        asm.st(r(2), r(1), 0);
        asm.ld(r(3), r(1), 0);
        asm.halt();
        let p = asm.finish();
        let mut img = MemImage::new();
        let mut arch = ArchState::new();
        let mut ooo = OooCore::new(OooConfig::default(), MemConfig::default());
        ooo.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        assert_eq!(arch.reg(r(3)), 77);
    }

    #[test]
    fn rob_bounds_overlap() {
        // With a 4-entry ROB the core behaves nearly in-order on misses.
        let (p, mut img, mut arch) = independent_misses(1500);
        let mut small = OooCore::new(
            OooConfig {
                rob: 4,
                ..OooConfig::default()
            },
            mem_no_pf(),
        );
        small.run(&p, &mut img, &mut arch, u64::MAX).unwrap();

        let (p, mut img, mut arch) = independent_misses(1500);
        let mut big = OooCore::new(OooConfig::default(), mem_no_pf());
        big.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        assert!(
            small.stats().cycles > big.stats().cycles * 3 / 2,
            "rob4={} rob32={}",
            small.stats().cycles,
            big.stats().cycles
        );
    }
}
