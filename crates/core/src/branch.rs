//! Hybrid local/global branch predictor (Table III) with a 10-cycle
//! misprediction penalty charged by the cores.

/// Default misprediction penalty in cycles (Table III).
pub const MISPREDICT_PENALTY: u64 = 10;

const LOCAL_ENTRIES: usize = 1024;
const GLOBAL_ENTRIES: usize = 4096;
const CHOOSER_ENTRIES: usize = 1024;

/// A tournament predictor choosing between a PC-indexed local component and
/// a gshare-style global component.
///
/// # Examples
///
/// ```
/// use svr_core::BranchPredictor;
/// let mut bp = BranchPredictor::new();
/// for _ in 0..8 {
///     let pred = bp.predict(42);
///     bp.update(42, true);
///     let _ = pred;
/// }
/// assert!(bp.predict(42)); // learned always-taken
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    local: Vec<u8>,
    global: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

fn taken(counter: u8) -> bool {
    counter >= 2
}

fn train(counter: &mut u8, outcome: bool) {
    if outcome {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken counters.
    pub fn new() -> Self {
        BranchPredictor {
            local: vec![1; LOCAL_ENTRIES],
            global: vec![1; GLOBAL_ENTRIES],
            chooser: vec![2; CHOOSER_ENTRIES],
            history: 0,
        }
    }

    fn indices(&self, pc: u64) -> (usize, usize, usize) {
        let li = (pc as usize) % LOCAL_ENTRIES;
        let gi = ((pc ^ self.history) as usize) % GLOBAL_ENTRIES;
        let ci = (pc as usize) % CHOOSER_ENTRIES;
        (li, gi, ci)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        let (li, gi, ci) = self.indices(pc);
        if taken(self.chooser[ci]) {
            taken(self.global[gi])
        } else {
            taken(self.local[li])
        }
    }

    /// Trains with the actual `outcome` and advances global history.
    pub fn update(&mut self, pc: u64, outcome: bool) {
        let (li, gi, ci) = self.indices(pc);
        let local_correct = taken(self.local[li]) == outcome;
        let global_correct = taken(self.global[gi]) == outcome;
        if local_correct != global_correct {
            train(&mut self.chooser[ci], global_correct);
        }
        train(&mut self.local[li], outcome);
        train(&mut self.global[gi], outcome);
        self.history = (self.history << 1) | u64::from(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut bp = BranchPredictor::new();
        for _ in 0..16 {
            bp.update(100, true);
            bp.update(200, false);
        }
        assert!(bp.predict(100));
        assert!(!bp.predict(200));
    }

    #[test]
    fn learns_alternating_pattern_via_global_history() {
        let mut bp = BranchPredictor::new();
        let mut correct = 0;
        let total = 2000;
        for i in 0..total {
            let outcome = i % 2 == 0;
            if bp.predict(7) == outcome {
                correct += 1;
            }
            bp.update(7, outcome);
        }
        // Global history disambiguates the alternation; expect high accuracy
        // after warmup.
        assert!(correct > total * 8 / 10, "correct={correct}/{total}");
    }

    #[test]
    fn loop_backedge_high_accuracy() {
        // 15-taken / 1-not-taken loop branch.
        let mut bp = BranchPredictor::new();
        let mut correct = 0;
        let total = 1600;
        for i in 0..total {
            let outcome = i % 16 != 15;
            if bp.predict(9) == outcome {
                correct += 1;
            }
            bp.update(9, outcome);
        }
        assert!(correct > total * 85 / 100, "correct={correct}/{total}");
    }

    #[test]
    fn default_is_new() {
        let a = BranchPredictor::default();
        let b = BranchPredictor::new();
        assert_eq!(a.predict(1), b.predict(1));
    }
}
