//! # svr-core — core timing models for the SVR reproduction
//!
//! Three cores from Table III of "Scalar Vector Runahead" (MICRO 2024):
//!
//! * [`InOrderCore`] — a 3-wide stall-on-use in-order core modeled after the
//!   Arm Cortex-A510 (32-entry scoreboard, hybrid branch predictor);
//! * the same core with the [`svr::SvrEngine`] attached
//!   ([`InOrderCore::with_svr`]) — the paper's contribution;
//! * [`OooCore`] — a 3-wide out-of-order core with a 32-entry ROB and
//!   16-entry load/store queue, the headline comparison point.
//!
//! All cores share the functional semantics of [`svr_isa`] and the memory
//! hierarchy of [`svr_mem`], so runs are architecturally identical across
//! core models and differ only in timing.
//!
//! # Examples
//!
//! ```
//! use svr_core::{InOrderCore, InOrderConfig, SvrConfig};
//! use svr_mem::{MemConfig, MemImage};
//! use svr_isa::{ArchState, Assembler, Reg};
//!
//! let mut asm = Assembler::new("quick");
//! asm.li(Reg::new(1), 1);
//! asm.halt();
//! let program = asm.finish();
//!
//! let mut core = InOrderCore::with_svr(
//!     InOrderConfig::default(),
//!     MemConfig::default(),
//!     SvrConfig::default(),
//! );
//! let mut image = MemImage::new();
//! let mut arch = ArchState::new();
//! core.run(&program, &mut image, &mut arch, u64::MAX).unwrap();
//! assert_eq!(core.stats().retired, 2);
//! ```

mod branch;
mod inorder;
mod ooo;
mod pipeline;
mod stats;
pub mod svr;
mod watchdog;

pub use branch::{BranchPredictor, MISPREDICT_PENALTY};
pub use inorder::{InOrderConfig, InOrderCore, Observed, SvrCtx};
pub use ooo::{OooConfig, OooCore};
pub use pipeline::{IssueSlots, Scoreboard};
pub use stats::{CoreStats, CpiStack, StallBucket, SvrActivity};
pub use svr::{bit_budget, BitBudget, LoopBoundMode, RecyclePolicy, SvrConfig};
pub use watchdog::{RunError, WatchdogConfig};
