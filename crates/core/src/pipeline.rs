//! Shared pipeline resources: issue-slot accounting and the scoreboard.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tracks issue bandwidth: at most `width` instructions may issue per cycle,
/// and issue times are monotonically non-decreasing (in-order issue).
///
/// # Examples
///
/// ```
/// use svr_core::IssueSlots;
/// let mut s = IssueSlots::new(3);
/// assert_eq!(s.take(10), 10);
/// assert_eq!(s.take(10), 10);
/// assert_eq!(s.take(10), 10);
/// assert_eq!(s.take(10), 11); // fourth in the same cycle spills over
/// ```
#[derive(Debug, Clone)]
pub struct IssueSlots {
    width: u8,
    cur: u64,
    used: u8,
}

impl IssueSlots {
    /// Creates an issue tracker with the given per-cycle width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u8) -> Self {
        assert!(width > 0, "issue width must be positive");
        IssueSlots {
            width,
            cur: 0,
            used: 0,
        }
    }

    /// Claims an issue slot at or after `at`; returns the actual issue cycle.
    pub fn take(&mut self, at: u64) -> u64 {
        if at > self.cur {
            self.cur = at;
            self.used = 1;
            return at;
        }
        if self.used < self.width {
            self.used += 1;
            return self.cur;
        }
        self.cur += 1;
        self.used = 1;
        self.cur
    }

    /// The cycle the next issue would occur at the earliest.
    pub fn horizon(&self) -> u64 {
        if self.used < self.width {
            self.cur
        } else {
            self.cur + 1
        }
    }

    /// Forces the issue point forward to at least `t` (structural stall).
    pub fn bump(&mut self, t: u64) {
        if t > self.cur {
            self.cur = t;
            self.used = 0;
        }
    }
}

/// An in-flight-instruction tracker (in-order scoreboard or ROB occupancy).
///
/// Holds completion times; admission blocks when `capacity` instructions are
/// still in flight.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    capacity: usize,
    inflight: BinaryHeap<Reverse<u64>>,
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "scoreboard capacity must be positive");
        Scoreboard {
            capacity,
            inflight: BinaryHeap::new(),
        }
    }

    /// Admits a new instruction wanting to issue at `t`: returns the possibly
    /// delayed issue time once an entry is free.
    pub fn admit(&mut self, t: u64) -> u64 {
        while let Some(&Reverse(done)) = self.inflight.peek() {
            if done <= t {
                self.inflight.pop();
            } else {
                break;
            }
        }
        if self.inflight.len() < self.capacity {
            return t;
        }
        let Reverse(done) = self.inflight.pop().expect("nonempty when full");
        t.max(done)
    }

    /// Records the completion time of the just-admitted instruction.
    pub fn push(&mut self, completes_at: u64) {
        self.inflight.push(Reverse(completes_at));
    }

    /// Number of entries currently tracked (including completed-but-unpopped).
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether no instructions are tracked.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_respect_width() {
        let mut s = IssueSlots::new(2);
        assert_eq!(s.take(5), 5);
        assert_eq!(s.take(5), 5);
        assert_eq!(s.take(5), 6);
        assert_eq!(s.take(5), 6);
        assert_eq!(s.take(5), 7);
    }

    #[test]
    fn slots_monotonic() {
        let mut s = IssueSlots::new(3);
        assert_eq!(s.take(10), 10);
        // A request "in the past" still issues at the current cycle.
        assert_eq!(s.take(3), 10);
    }

    #[test]
    fn bump_advances() {
        let mut s = IssueSlots::new(3);
        s.take(1);
        s.bump(100);
        assert_eq!(s.take(0), 100);
        assert_eq!(s.horizon(), 100);
    }

    #[test]
    fn scoreboard_blocks_when_full() {
        let mut sb = Scoreboard::new(2);
        assert_eq!(sb.admit(0), 0);
        sb.push(50);
        assert_eq!(sb.admit(1), 1);
        sb.push(80);
        // Full: must wait for the earliest completion (50).
        assert_eq!(sb.admit(2), 50);
        sb.push(90);
        // Entries {80, 90}, capacity 2: admission waits for 80.
        assert_eq!(sb.admit(60), 80);
        assert_eq!(sb.len(), 1);
    }

    #[test]
    fn scoreboard_retires_completed() {
        let mut sb = Scoreboard::new(1);
        sb.push(10);
        assert_eq!(sb.admit(20), 20); // completed entry popped
        sb.push(30);
        assert!(!sb.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = IssueSlots::new(0);
    }
}
