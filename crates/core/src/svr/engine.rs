//! The SVR engine: piggyback-runahead-mode control, SVI generation, and all
//! the policies of §IV, driven by the in-order pipeline via
//! [`crate::inorder::SvrCtx`] / [`crate::inorder::Observed`].

use crate::inorder::{Observed, SvrCtx};
use crate::svr::config::{LoopBoundMode, SvrConfig};
use crate::svr::detector::StrideDetector;
use crate::svr::lbd::{LcEntry, LoopBounds};
use crate::svr::monitor::AccuracyMonitor;
use crate::svr::taint::{RecycleOutcome, TaintSrf};
use svr_isa::{eval_alu, eval_cond, DataMemory, DecodedOp, Inst, Reg};
use svr_mem::{Access, AccessKind, PfSource};
use svr_trace::{PrmEnd, TraceEvent, TraceSink};

/// Why a PRM round ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EndReason {
    /// The HSLR striding load came around again (§IV-A5).
    Hslr,
    /// The 256-instruction timeout fired.
    Timeout,
    /// A nested inner loop was detected; retargeting (§IV-A6).
    Retarget,
}

impl EndReason {
    fn trace_reason(self) -> PrmEnd {
        match self {
            EndReason::Hslr => PrmEnd::Hslr,
            EndReason::Timeout => PrmEnd::Timeout,
            EndReason::Retarget => PrmEnd::Retarget,
        }
    }
}

/// Per-lane flag state produced by a tainted compare.
#[derive(Debug, Clone)]
struct FlagLanes {
    a: Vec<u64>,
    b: Vec<u64>,
    #[allow(dead_code)]
    ready: Vec<u64>,
}

/// The Scalar Vector Runahead engine (§IV), attached to an in-order core via
/// [`crate::InOrderCore::with_svr`].
#[derive(Debug)]
pub struct SvrEngine {
    cfg: SvrConfig,
    sd: StrideDetector,
    lb: LoopBounds,
    ts: TaintSrf,
    monitor: AccuracyMonitor,
    in_prm: bool,
    hslr_pc: Option<usize>,
    mask: u128,
    n_lanes: usize,
    past_lil: bool,
    cur_lil: Option<u16>,
    flag_lanes: Option<FlagLanes>,
    inst_count: u64,
    prm_inst_count: u64,
    next_useful_reset: u64,
}

impl SvrEngine {
    /// Creates an engine in normal mode.
    pub fn new(cfg: SvrConfig) -> Self {
        SvrEngine {
            sd: StrideDetector::new(cfg.stride_detector_entries, cfg.stride_confidence),
            lb: LoopBounds::new(cfg.lbd_entries),
            ts: TaintSrf::new(cfg.srf_entries, cfg.vector_length, cfg.recycle),
            monitor: AccuracyMonitor::new(
                cfg.accuracy_warmup,
                cfg.accuracy_threshold,
                cfg.ban_reset_insts,
            ),
            in_prm: false,
            hslr_pc: None,
            mask: 0,
            n_lanes: 0,
            past_lil: false,
            cur_lil: None,
            flag_lanes: None,
            inst_count: 0,
            prm_inst_count: 0,
            next_useful_reset: cfg.ban_reset_insts,
            cfg,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SvrConfig {
        &self.cfg
    }

    /// Whether the engine is currently in piggyback runahead mode.
    pub fn in_prm(&self) -> bool {
        self.in_prm
    }

    /// Current head-striding-load PC, if any.
    pub fn hslr(&self) -> Option<usize> {
        self.hslr_pc
    }

    /// Whether the accuracy monitor currently bans SVR.
    pub fn banned(&self) -> bool {
        self.monitor.banned()
    }

    /// Observes one issued main-thread instruction (called by the pipeline).
    pub fn observe<S: TraceSink>(&mut self, ctx: &mut SvrCtx<'_, S>, ob: &Observed<'_>) {
        self.inst_count += 1;
        if self.cfg.accuracy_ban {
            let pf = *ctx.hier.stats().pf(PfSource::Svr);
            // Late prefetches were still wanted by the program, so they
            // count as useful for the ban decision.
            self.monitor
                .observe(self.inst_count, pf.used + pf.late, pf.evicted_unused);
        }
        if self.inst_count >= self.next_useful_reset {
            self.sd.reset_usefulness();
            self.next_useful_reset += self.cfg.ban_reset_insts;
        }

        if self.in_prm {
            self.prm_inst_count += 1;
            if self.prm_inst_count > self.cfg.timeout_insts {
                self.end_round(ctx, EndReason::Timeout, ob.issue_t);
            }
        }

        match ob.inst {
            Inst::Ld { .. } | Inst::LdX { .. } => self.on_load(ctx, ob),
            Inst::Cmp { a, b } => {
                self.lb.lc = Some(LcEntry {
                    pc: ob.pc,
                    va: ob.src_vals[0],
                    vb: ob.src_vals[1],
                    ra: Some(a),
                    rb: Some(b),
                });
                if self.in_prm {
                    self.maybe_gen_svi(ctx, ob);
                }
            }
            Inst::CmpI { a, imm } => {
                self.lb.lc = Some(LcEntry {
                    pc: ob.pc,
                    va: ob.src_vals[0],
                    vb: imm as u64,
                    ra: Some(a),
                    rb: None,
                });
                if self.in_prm {
                    self.maybe_gen_svi(ctx, ob);
                }
            }
            Inst::B { cond, target } => {
                let (taken, _) = ob.outcome.branch.expect("branch outcome");
                // LBD training on backward conditional-taken branches that
                // jump to (or before) the HSLR load (§IV-B2).
                if taken && target < ob.pc {
                    if let Some(hslr) = self.hslr_pc {
                        if target <= hslr {
                            self.lb.train_compare(hslr);
                        }
                    }
                }
                if self.in_prm {
                    self.apply_branch_mask(ctx, cond, taken);
                }
            }
            Inst::Alu { .. } | Inst::AluI { .. } | Inst::Li { .. } => {
                if self.in_prm {
                    self.maybe_gen_svi(ctx, ob);
                } else if let Some(dst) = ob.inst.dst() {
                    self.ts.untaint(dst);
                }
            }
            Inst::St { .. } | Inst::StX { .. } => {
                if self.in_prm {
                    self.maybe_gen_svi(ctx, ob);
                }
            }
            Inst::J { .. } | Inst::Nop | Inst::Halt => {}
        }
    }

    // ------------------------------------------------------------------
    // Loads: stride detection, chain tracking, triggering.
    // ------------------------------------------------------------------

    fn on_load<S: TraceSink>(&mut self, ctx: &mut SvrCtx<'_, S>, ob: &Observed<'_>) {
        let pc = ob.pc;
        let (_, addr) = ob.outcome.mem.expect("load address");
        let is_hslr = self.hslr_pc == Some(pc);

        // Waiting-mode check needs the detector state *before* this access.
        let before = self.sd.lookup(pc).copied();
        let up = self.sd.update(pc, addr);

        // Loop-bound bookkeeping for striding PCs.
        if up.continued && (up.striding || self.lb.entry(pc).is_some()) {
            self.lb.on_continue(pc);
        } else if up.discontinuity {
            self.lb.on_discontinuity(pc);
        }

        // Seen-bit housekeeping: encountering the HSLR load clears all other
        // Seen bits (§IV-A6).
        if is_hslr {
            self.sd.clear_seen_except(pc);
        }

        let mut just_ended = false;
        if self.in_prm {
            if is_hslr {
                self.end_round(ctx, EndReason::Hslr, ob.issue_t);
                just_ended = true;
            } else if self.chain_inputs(ob.op).is_some() {
                // Indirect-chain load: vectorize and remember it as the LIL
                // candidate.
                self.maybe_gen_svi(ctx, ob);
                self.cur_lil = Some(pc as u16);
                if self.cfg.lil_enabled {
                    if let Some(hslr) = self.hslr_pc {
                        if let Some(e) = self.sd.lookup(hslr) {
                            if e.lil_valid && e.lil_conf >= 2 && e.lil == pc as u16 {
                                self.past_lil = true;
                            }
                        }
                    }
                }
                return;
            } else if up.striding && self.cfg.multi_chain {
                // Another striding load during PRM: nested or unrolled loop.
                let seen = self.sd.lookup(pc).map(|e| e.seen).unwrap_or(false);
                if seen {
                    // Nested inner loop: abort and retarget (§IV-A6).
                    self.end_round(ctx, EndReason::Retarget, ob.issue_t);
                    self.hslr_pc = Some(pc);
                    self.sd.clear_seen_except(pc);
                    ctx.stats.svr.retargets += 1;
                    just_ended = true;
                } else {
                    if let Some(e) = self.sd.lookup_mut(pc) {
                        e.seen = true;
                    }
                    // Unrolled loop: vectorize this independent chain too.
                    self.gen_chain_head(ctx, ob, addr, up.stride);
                    return;
                }
            } else {
                // An untainted load overwriting a mapped register frees it.
                if let Some(dst) = ob.inst.dst() {
                    if self.chain_inputs(ob.op).is_none() {
                        self.ts.untaint(dst);
                    }
                }
            }
        }

        // Trigger evaluation (normal mode, possibly immediately after a
        // round ended on this very load).
        if (!self.in_prm) && up.striding {
            self.try_trigger(ctx, ob, addr, up.stride, before, just_ended);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_trigger<S: TraceSink>(
        &mut self,
        ctx: &mut SvrCtx<'_, S>,
        ob: &Observed<'_>,
        addr: u64,
        stride: i64,
        before: Option<crate::svr::detector::SdEntry>,
        just_ended: bool,
    ) {
        let pc = ob.pc;

        // Independent-loop retargeting (§IV-A6): a different striding load
        // only takes over the HSLR on its second sighting.
        if self.cfg.multi_chain && !just_ended {
            if let Some(hslr) = self.hslr_pc {
                if hslr != pc {
                    let in_waiting = before
                        .map(|e| self.cfg.waiting_mode && e.in_prefetched_range(addr))
                        .unwrap_or(false);
                    let seen = self.sd.lookup(pc).map(|e| e.seen).unwrap_or(false);
                    if seen {
                        self.hslr_pc = Some(pc);
                        self.sd.clear_seen_except(pc);
                        ctx.stats.svr.retargets += 1;
                        // fall through to trigger for the new HSLR
                    } else {
                        if !in_waiting {
                            if let Some(e) = self.sd.lookup_mut(pc) {
                                e.seen = true;
                            }
                        }
                        return;
                    }
                }
            }
        }

        // Accuracy ban (§IV-A7).
        if self.cfg.accuracy_ban && self.monitor.banned() {
            ctx.stats.svr.banned_suppressed += 1;
            return;
        }

        // Chains that never produce a dependent load are not worth running
        // ahead on (§II-C): the stride prefetcher already covers the plain
        // stream and the scalar copies would only burn issue slots.
        if self.sd.lookup(pc).map(|e| e.useful == 0).unwrap_or(false) {
            ctx.stats.svr.non_indirect_suppressed += 1;
            return;
        }

        // Waiting mode (§IV-A5): suppress while inside the prefetched range.
        if self.cfg.waiting_mode {
            if let Some(e) = before {
                if e.in_prefetched_range(addr) {
                    ctx.stats.svr.waiting_suppressed += 1;
                    return;
                }
            }
        }

        // LbdWait (DVR-discovery-style): the first trigger opportunity only
        // arms the entry; runahead starts a full iteration later, once the
        // loop compare has trained the LBD.
        if self.cfg.loop_bound_mode == LoopBoundMode::LbdWait {
            let e = self.sd.lookup_mut(pc).expect("entry exists after update");
            if !e.armed {
                e.armed = true;
                return;
            }
            e.armed = false;
        }

        self.enter_prm(ctx, ob, addr, stride);
    }

    fn enter_prm<S: TraceSink>(
        &mut self,
        ctx: &mut SvrCtx<'_, S>,
        ob: &Observed<'_>,
        addr: u64,
        stride: i64,
    ) {
        let pc = ob.pc;
        let n = self.cfg.vector_length as u64;

        // Loop-bound prediction (§IV-B2) decides how many lanes to spawn.
        let pred_ewma = self.lb.predict_ewma(pc, n);
        let arch = ob.arch;
        let pred_cv = self.lb.predict_lbd_cv(pc, n, |r: Reg| arch.reg(r));
        let pred_stored = self.lb.predict_lbd_stored(pc, n);
        let lanes = match self.cfg.loop_bound_mode {
            LoopBoundMode::Maxlength => n,
            LoopBoundMode::Ewma => pred_ewma.unwrap_or(n),
            LoopBoundMode::LbdMaxlength => pred_stored.unwrap_or(n),
            LoopBoundMode::LbdWait => pred_stored.unwrap_or(n),
            LoopBoundMode::LbdCv => pred_cv.unwrap_or(n),
            LoopBoundMode::Tournament => {
                self.lb.record_predictions(pc, pred_ewma, pred_cv);
                let pick_lbd = self.lb.tournament_picks_lbd(pc);
                match (pred_ewma, pred_cv) {
                    (Some(e), Some(l)) => {
                        if pick_lbd {
                            l
                        } else {
                            e
                        }
                    }
                    (Some(e), None) => e,
                    (None, Some(l)) => l,
                    (None, None) => n,
                }
            }
        }
        .clamp(1, n) as usize;

        // §VI-D lockstep-coupling ablation: charge the scalar-register-file
        // copy at every PRM entry.
        if self.cfg.model_register_copy {
            ctx.slots.bump(ob.issue_t + self.cfg.register_copy_cycles);
        }

        self.in_prm = true;
        self.hslr_pc = Some(pc);
        self.n_lanes = lanes;
        self.mask = if lanes >= 128 {
            u128::MAX
        } else {
            (1u128 << lanes) - 1
        };
        self.past_lil = false;
        self.cur_lil = None;
        self.prm_inst_count = 0;
        self.flag_lanes = None;
        self.ts.clear();
        ctx.stats.svr.prm_rounds += 1;
        if S::ENABLED {
            ctx.hier.trace(&TraceEvent::PrmEnter {
                cycle: ob.issue_t,
                hslr_pc: pc as u64,
                lanes: lanes as u32,
            });
        }

        self.gen_chain_head(ctx, ob, addr, stride);
    }

    /// Generates the SVI for a striding load (the head of a chain): lanes at
    /// `addr + (k+1)*stride`, and records the prefetched range for waiting
    /// mode.
    fn gen_chain_head<S: TraceSink>(
        &mut self,
        ctx: &mut SvrCtx<'_, S>,
        ob: &Observed<'_>,
        addr: u64,
        stride: i64,
    ) {
        let lanes = self.n_lanes;
        if S::ENABLED {
            ctx.hier.trace(&TraceEvent::SvrChain {
                cycle: ob.issue_t,
                pc: ob.pc as u64,
                lanes: lanes as u32,
            });
        }
        let mut vals = vec![0u64; self.cfg.vector_length];
        let mut ready = vec![0u64; self.cfg.vector_length];
        let mut max_ready = ob.issue_t;
        for k in 0..lanes {
            if self.mask & (1u128 << k) == 0 {
                continue;
            }
            let lane_addr = addr.wrapping_add((stride * (k as i64 + 1)) as u64);
            let t = self.lane_issue_time(ob.issue_t, k);
            let res = ctx.hier.access(
                Access::new(t, lane_addr, AccessKind::Prefetch(PfSource::Svr))
                    .with_pc(ob.pc as u64),
            );
            vals[k] = ctx.image.read_u64(lane_addr);
            ready[k] = res.complete_at;
            max_ready = max_ready.max(res.complete_at);
            ctx.stats.svr.lane_loads += 1;
        }
        self.finish_svi(ctx, ob, lanes, true);

        if let Some(dst) = ob.inst.dst() {
            match self.ts.map_dest(dst, self.prm_inst_count as u32) {
                RecycleOutcome::Starved => ctx.stats.svr.srf_starved += 1,
                out => {
                    if matches!(out, RecycleOutcome::Recycled(_)) {
                        ctx.stats.svr.srf_recycles += 1;
                        if S::ENABLED {
                            ctx.hier.trace(&TraceEvent::SrfRecycle { cycle: ob.issue_t });
                        }
                    }
                    let id = match out {
                        RecycleOutcome::Allocated(i) | RecycleOutcome::Recycled(i) => i,
                        RecycleOutcome::Starved => unreachable!(),
                    };
                    let srf = self.ts.srf_mut(id);
                    srf.vals.copy_from_slice(&vals);
                    srf.ready.copy_from_slice(&ready);
                }
            }
        }
        ctx.sb.push(max_ready);

        // Record the prefetched range for waiting mode (§IV-A5).
        if let Some(e) = self.sd.lookup_mut(ob.pc) {
            e.last_prefetch = addr.wrapping_add((stride * lanes as i64) as u64);
            e.lp_valid = true;
        }
    }

    /// Per-lane issue time: lanes share the pipeline at
    /// `scalars_per_cycle` lanes per cycle, after the real instruction.
    fn lane_issue_time(&self, base: u64, k: usize) -> u64 {
        base + 1 + (k as u32 / self.cfg.scalars_per_cycle) as u64
    }

    /// Accounts issue bandwidth and stats for one generated SVI.
    ///
    /// Only the *striding load's* copies block the next program-order
    /// instruction (§IV-A1); dependent-instruction SVIs execute in spare
    /// issue slots with main-thread priority, so they do not stall the pipe
    /// (the core is memory-bound during runahead).
    fn finish_svi<S: TraceSink>(
        &mut self,
        ctx: &mut SvrCtx<'_, S>,
        ob: &Observed<'_>,
        lanes: usize,
        blocks_pipe: bool,
    ) {
        let active = (0..lanes)
            .filter(|&k| self.mask & (1u128 << k) != 0)
            .count() as u64;
        if active == 0 {
            return;
        }
        if blocks_pipe {
            let last = self.lane_issue_time(ob.issue_t, lanes.saturating_sub(1));
            ctx.slots.bump(last);
        }
        ctx.stats.svr.svis += 1;
        ctx.stats.svr.lanes += active;
        ctx.stats.issued_uops += active;
    }

    /// Which SRF entries feed this instruction, if any input is tainted and
    /// still mapped. Returns per-source lane inputs. Operates on the
    /// pre-decoded source list — no per-call operand re-derivation.
    fn chain_inputs(&self, op: &DecodedOp) -> Option<Vec<Option<usize>>> {
        let mut any = false;
        let mut v = Vec::with_capacity(3);
        for &r in op.src_indices() {
            let id = self.ts.vector_input(Reg::new(r));
            any |= id.is_some();
            v.push(id);
        }
        if any {
            Some(v)
        } else {
            None
        }
    }

    /// Generates an SVI for a dependent (tainted-input) instruction.
    fn maybe_gen_svi<S: TraceSink>(&mut self, ctx: &mut SvrCtx<'_, S>, ob: &Observed<'_>) {
        let Some(inputs) = self.chain_inputs(ob.op) else {
            // Untainted result overwriting a mapped register frees it.
            if let Some(dst) = ob.inst.dst() {
                self.ts.untaint(dst);
            }
            return;
        };
        if self.past_lil {
            ctx.stats.svr.lil_suppressed += 1;
            return;
        }

        // LRU touch for every tainted source (§IV-A3).
        for (&r, id) in ob.op.src_indices().iter().zip(inputs.iter()) {
            if id.is_some() {
                self.ts.touch(Reg::new(r), self.prm_inst_count as u32);
            }
        }

        let lanes = self.n_lanes;
        let input = |slot: usize, k: usize| -> (u64, u64) {
            match inputs.get(slot).copied().flatten() {
                Some(id) => {
                    let s = self.ts.srf(id);
                    (s.vals[k], s.ready[k])
                }
                None => (ob.src_vals[slot], ob.issue_t),
            }
        };

        let mut vals = vec![0u64; self.cfg.vector_length];
        let mut ready = vec![0u64; self.cfg.vector_length];
        let mut max_ready = ob.issue_t;
        let mut flag = None;

        match ob.inst {
            Inst::Alu { op, .. } => {
                for k in 0..lanes {
                    if self.mask & (1u128 << k) == 0 {
                        continue;
                    }
                    let (a, ra) = input(0, k);
                    let (b, rb) = input(1, k);
                    let t = self.lane_issue_time(ob.issue_t, k).max(ra).max(rb);
                    vals[k] = eval_alu(op, a, b);
                    ready[k] = t + 1;
                    max_ready = max_ready.max(ready[k]);
                }
            }
            Inst::AluI { op, imm, .. } => {
                for k in 0..lanes {
                    if self.mask & (1u128 << k) == 0 {
                        continue;
                    }
                    let (a, ra) = input(0, k);
                    let t = self.lane_issue_time(ob.issue_t, k).max(ra);
                    vals[k] = eval_alu(op, a, imm as u64);
                    ready[k] = t + 1;
                    max_ready = max_ready.max(ready[k]);
                }
            }
            Inst::Ld { .. } | Inst::LdX { .. } => {
                for k in 0..lanes {
                    if self.mask & (1u128 << k) == 0 {
                        continue;
                    }
                    let (addr, rdy_in) = match ob.inst {
                        Inst::Ld { offset, .. } => {
                            let (b, rb) = input(0, k);
                            (b.wrapping_add(offset as u64), rb)
                        }
                        Inst::LdX { shift, .. } => {
                            let (b, rb) = input(0, k);
                            let (i, ri) = input(1, k);
                            (b.wrapping_add(i << shift), rb.max(ri))
                        }
                        _ => unreachable!(),
                    };
                    let t = self.lane_issue_time(ob.issue_t, k).max(rdy_in);
                    let res = ctx.hier.access(
                        Access::new(t, addr, AccessKind::Prefetch(PfSource::Svr))
                            .with_pc(ob.pc as u64),
                    );
                    vals[k] = ctx.image.read_u64(addr);
                    ready[k] = res.complete_at;
                    max_ready = max_ready.max(ready[k]);
                    ctx.stats.svr.lane_loads += 1;
                }
            }
            Inst::St { .. } | Inst::StX { .. } => {
                // Transient stores only prefetch their line (for write).
                for (k, rdy) in ready.iter_mut().enumerate().take(lanes) {
                    if self.mask & (1u128 << k) == 0 {
                        continue;
                    }
                    let addr = match ob.inst {
                        Inst::St { offset, .. } => input(1, k).0.wrapping_add(offset as u64),
                        Inst::StX { shift, .. } => {
                            input(1, k).0.wrapping_add(input(2, k).0 << shift)
                        }
                        _ => unreachable!(),
                    };
                    let rdy_in = input(1, k).1.max(input(2, k).1).max(input(0, k).1);
                    let t = self.lane_issue_time(ob.issue_t, k).max(rdy_in);
                    let res = ctx.hier.access(
                        Access::new(t, addr, AccessKind::Prefetch(PfSource::Svr))
                            .with_pc(ob.pc as u64),
                    );
                    *rdy = res.complete_at;
                    max_ready = max_ready.max(*rdy);
                    ctx.stats.svr.lane_loads += 1;
                }
            }
            Inst::Cmp { .. } | Inst::CmpI { .. } => {
                let imm_b = match ob.inst {
                    Inst::CmpI { imm, .. } => Some(imm as u64),
                    _ => None,
                };
                let mut fa = vec![0u64; self.cfg.vector_length];
                let mut fb = vec![0u64; self.cfg.vector_length];
                let mut fr = vec![0u64; self.cfg.vector_length];
                for k in 0..lanes {
                    if self.mask & (1u128 << k) == 0 {
                        continue;
                    }
                    let (a, ra) = input(0, k);
                    let (b, rb) = match imm_b {
                        Some(i) => (i, 0),
                        None => input(1, k),
                    };
                    fa[k] = a;
                    fb[k] = b;
                    fr[k] = self.lane_issue_time(ob.issue_t, k).max(ra).max(rb) + 1;
                    max_ready = max_ready.max(fr[k]);
                }
                flag = Some(FlagLanes {
                    a: fa,
                    b: fb,
                    ready: fr,
                });
            }
            _ => return,
        }

        self.finish_svi(ctx, ob, lanes, false);
        ctx.sb.push(max_ready);

        if let Some(f) = flag {
            self.flag_lanes = Some(f);
            return;
        }

        if let Some(dst) = ob.inst.dst() {
            match self.ts.map_dest(dst, self.prm_inst_count as u32) {
                RecycleOutcome::Starved => ctx.stats.svr.srf_starved += 1,
                out => {
                    if matches!(out, RecycleOutcome::Recycled(_)) {
                        ctx.stats.svr.srf_recycles += 1;
                        if S::ENABLED {
                            ctx.hier.trace(&TraceEvent::SrfRecycle { cycle: ob.issue_t });
                        }
                    }
                    let id = match out {
                        RecycleOutcome::Allocated(i) | RecycleOutcome::Recycled(i) => i,
                        RecycleOutcome::Starved => unreachable!(),
                    };
                    let srf = self.ts.srf_mut(id);
                    srf.vals.copy_from_slice(&vals);
                    srf.ready.copy_from_slice(&ready);
                }
            }
        }
    }

    /// Masks off lanes whose predicate disagrees with the real path
    /// (§IV-B1).
    fn apply_branch_mask<S: TraceSink>(
        &mut self,
        ctx: &mut SvrCtx<'_, S>,
        cond: svr_isa::Cond,
        real_taken: bool,
    ) {
        let Some(f) = self.flag_lanes.take() else {
            return;
        };
        for k in 0..self.n_lanes {
            if self.mask & (1u128 << k) == 0 {
                continue;
            }
            let lane_taken = eval_cond(cond, f.a[k], f.b[k]);
            if lane_taken != real_taken {
                self.mask &= !(1u128 << k);
                ctx.stats.svr.masked_lanes += 1;
            }
        }
    }

    fn end_round<S: TraceSink>(
        &mut self,
        ctx: &mut SvrCtx<'_, S>,
        reason: EndReason,
        cycle: u64,
    ) {
        if !self.in_prm {
            return;
        }
        if S::ENABLED {
            ctx.hier.trace(&TraceEvent::PrmExit {
                cycle,
                reason: reason.trace_reason(),
            });
        }
        self.in_prm = false;
        self.ts.clear();
        self.flag_lanes = None;
        // Track whether this chain actually contained a dependent load.
        if let Some(hslr) = self.hslr_pc {
            if let Some(e) = self.sd.lookup_mut(hslr) {
                if self.cur_lil.is_some() {
                    e.useful = 3;
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        match reason {
            EndReason::Hslr => {
                ctx.stats.svr.hslr_terminations += 1;
                // Train the LIL field of the HSLR's detector entry (§IV-A4).
                if let (Some(hslr), Some(lil)) = (self.hslr_pc, self.cur_lil) {
                    if let Some(e) = self.sd.lookup_mut(hslr) {
                        if e.lil_valid && e.lil == lil {
                            e.lil_conf = (e.lil_conf + 1).min(3);
                        } else if e.lil_valid && e.lil_conf > 0 {
                            e.lil_conf -= 1;
                        } else {
                            e.lil = lil;
                            e.lil_valid = true;
                            e.lil_conf = 1;
                        }
                    }
                }
            }
            EndReason::Timeout => ctx.stats.svr.timeouts += 1,
            EndReason::Retarget => {}
        }
        self.cur_lil = None;
        self.past_lil = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inorder::{InOrderConfig, InOrderCore};
    use crate::svr::config::LoopBoundMode;
    use svr_isa::{AluOp, ArchState, Assembler, Cond, Program, Reg};
    use svr_mem::{MemConfig, MemImage};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// The canonical stride-indirect loop:
    /// `for i in 0..n { sum += data[idx[i]] }`, with `data` spread so each
    /// access is a distinct cache line.
    fn stride_indirect(n: u64) -> (Program, MemImage, ArchState) {
        let mut img = MemImage::new();
        let idx: Vec<u64> = (0..n).map(|i| (i * 7919 + 13) % n).collect();
        let idx_base = img.alloc_array(&idx);
        let data_base = img.alloc_words(n * 8); // 64 B per element
        for k in 0..n {
            img.write_u64(data_base + k * 64, k);
        }
        let (bi, bd, i, t, v, sum, nn) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        let mut asm = Assembler::new("si");
        let top = asm.label();
        asm.bind(top);
        asm.ldx(t, bi, i, 3); // t = idx[i]           (striding load)
        asm.alui(AluOp::Sll, t, t, 3); // element -> 64B offset via <<3 then x8? no: idx*64 = idx<<6
        asm.alui(AluOp::Sll, t, t, 3);
        asm.alu(AluOp::Add, v, bd, t);
        asm.ld(v, v, 0); // v = data[idx[i]*64]  (indirect load)
        asm.alu(AluOp::Add, sum, sum, v);
        asm.alui(AluOp::Add, i, i, 1);
        asm.cmp(i, nn);
        asm.b(Cond::Ne, top);
        asm.halt();
        let p = asm.finish();
        let mut arch = ArchState::new();
        arch.set_reg(bi, idx_base);
        arch.set_reg(bd, data_base);
        arch.set_reg(nn, n);
        (p, img, arch)
    }

    fn run_core(svr: Option<SvrConfig>, n: u64) -> (InOrderCore, ArchState) {
        let (p, mut img, mut arch) = stride_indirect(n);
        let mut core = match svr {
            Some(s) => InOrderCore::with_svr(InOrderConfig::default(), MemConfig::default(), s),
            None => InOrderCore::new(InOrderConfig::default(), MemConfig::default()),
        };
        core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        (core, arch)
    }

    #[test]
    fn svr_enters_prm_and_prefetches() {
        let (core, arch) = run_core(Some(SvrConfig::default()), 2000);
        assert!(arch.halted());
        let s = core.stats().svr;
        assert!(s.prm_rounds > 10, "prm_rounds={}", s.prm_rounds);
        assert!(s.lane_loads > 1000, "lane_loads={}", s.lane_loads);
        assert!(s.waiting_suppressed > 0, "waiting mode must engage");
        assert!(core.mem_stats().svr.used > 100, "prefetches must be used");
    }

    #[test]
    fn svr_is_architecturally_transparent() {
        let (c0, a0) = run_core(None, 500);
        let (c1, a1) = run_core(Some(SvrConfig::default()), 500);
        assert_eq!(a0.reg(r(6)), a1.reg(r(6)), "same architectural result");
        assert_eq!(c0.stats().retired, c1.stats().retired);
    }

    #[test]
    fn svr_speeds_up_stride_indirect() {
        let (c0, _) = run_core(None, 3000);
        let (c1, _) = run_core(Some(SvrConfig::default()), 3000);
        let speedup = c0.stats().cycles as f64 / c1.stats().cycles as f64;
        assert!(speedup > 1.5, "speedup={speedup:.2}");
    }

    #[test]
    fn longer_vectors_help_more() {
        let (c16, _) = run_core(Some(SvrConfig::with_length(16)), 4000);
        let (c64, _) = run_core(Some(SvrConfig::with_length(64)), 4000);
        assert!(
            c64.stats().cycles < c16.stats().cycles,
            "svr64={} svr16={}",
            c64.stats().cycles,
            c16.stats().cycles
        );
    }

    #[test]
    fn waiting_mode_prevents_redundant_rounds() {
        let with = run_core(Some(SvrConfig::default()), 1000).0;
        let without = run_core(
            Some(SvrConfig {
                waiting_mode: false,
                ..SvrConfig::default()
            }),
            1000,
        )
        .0;
        assert!(
            without.stats().svr.prm_rounds > 4 * with.stats().svr.prm_rounds,
            "without={} with={}",
            without.stats().svr.prm_rounds,
            with.stats().svr.prm_rounds
        );
    }

    /// Nested loops (PR-shaped): outer offsets load + inner neighbor load.
    /// The HSLR must end up on the inner striding load (§IV-A6).
    fn nested_loop_workload(n: u64, inner: u64) -> (Program, MemImage, ArchState) {
        let mut img = MemImage::new();
        // offsets[u] = u * inner; data = gathered lines.
        let offsets: Vec<u64> = (0..=n).map(|u| u * inner).collect();
        let idx: Vec<u64> = (0..n * inner)
            .map(|i| (i * 613 + 7) % (n * inner))
            .collect();
        let ob = img.alloc_array(&offsets);
        let ib = img.alloc_array(&idx);
        let db = img.alloc_words(n * inner * 8);
        let (rob, rib, rdb, ru, rn, rj, rend, rv, rc, rsum, rt) = (
            r(1),
            r(2),
            r(3),
            r(4),
            r(5),
            r(6),
            r(7),
            r(8),
            r(9),
            r(10),
            r(11),
        );
        let mut asm = Assembler::new("nested");
        let outer = asm.label();
        let inner_l = asm.label();
        let after = asm.label();
        asm.bind(outer);
        asm.ldx(rj, rob, ru, 3); // striding load A (outer)
        asm.alui(AluOp::Add, rt, ru, 1);
        asm.ldx(rend, rob, rt, 3);
        asm.cmp(rj, rend);
        asm.b(Cond::Geu, after);
        asm.bind(inner_l);
        asm.ldx(rv, rib, rj, 3); // striding load B (inner)
        asm.alui(AluOp::Sll, rv, rv, 6);
        asm.alu(AluOp::Add, rv, rdb, rv);
        asm.ld(rc, rv, 0); // indirect chain load
        asm.alu(AluOp::Add, rsum, rsum, rc);
        asm.alui(AluOp::Add, rj, rj, 1);
        asm.cmp(rj, rend);
        asm.b(Cond::Ltu, inner_l);
        asm.bind(after);
        asm.alui(AluOp::Add, ru, ru, 1);
        asm.cmp(ru, rn);
        asm.b(Cond::Ltu, outer);
        asm.halt();
        let mut arch = ArchState::new();
        arch.set_reg(rob, ob);
        arch.set_reg(rib, ib);
        arch.set_reg(rdb, db);
        arch.set_reg(rn, n);
        (asm.finish(), img, arch)
    }

    #[test]
    fn nested_loops_retarget_hslr_to_inner_load() {
        let (p, mut img, mut arch) = nested_loop_workload(300, 24);
        let mut core = InOrderCore::with_svr(
            InOrderConfig::default(),
            MemConfig::default(),
            SvrConfig::default(),
        );
        core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        let eng = core.svr_engine().unwrap();
        // The inner striding load lives at pc 5 (`ldx rv, rib, rj`): the
        // Seen-bit protocol keeps runahead prioritized on the inner loop
        // (whether it got there by direct trigger or nested retargeting).
        assert_eq!(eng.hslr(), Some(5), "HSLR should settle on the inner loop");
        assert!(core.stats().svr.prm_rounds > 50);
        assert!(core.stats().svr.waiting_suppressed > 0);
    }

    #[test]
    fn lil_training_suppresses_tail_svis() {
        let (core, _) = run_core(Some(SvrConfig::default()), 2000);
        // The chain has ALU work after the last indirect load (`sum += v`);
        // once LIL confidence saturates those SVIs stop.
        assert!(
            core.stats().svr.lil_suppressed > 100,
            "lil_suppressed={}",
            core.stats().svr.lil_suppressed
        );
        let (no_lil, _) = {
            let cfg = SvrConfig {
                lil_enabled: false,
                ..SvrConfig::default()
            };
            run_core(Some(cfg), 2000)
        };
        assert_eq!(no_lil.stats().svr.lil_suppressed, 0);
        assert!(no_lil.stats().svr.lanes > core.stats().svr.lanes);
    }

    #[test]
    fn lbd_wait_arms_before_running_ahead() {
        let (tournament, _) = run_core(Some(SvrConfig::default()), 1500);
        let cfg = SvrConfig {
            loop_bound_mode: LoopBoundMode::LbdWait,
            ..SvrConfig::default()
        };
        let (wait, _) = run_core(Some(cfg), 1500);
        // Arming halves the trigger opportunities; fewer rounds happen.
        assert!(
            wait.stats().svr.prm_rounds < tournament.stats().svr.prm_rounds,
            "wait={} tournament={}",
            wait.stats().svr.prm_rounds,
            tournament.stats().svr.prm_rounds
        );
    }

    #[test]
    fn register_copy_ablation_costs_cycles() {
        let (plain, _) = run_core(Some(SvrConfig::default()), 1500);
        let cfg = SvrConfig {
            model_register_copy: true,
            ..SvrConfig::default()
        };
        let (copy, _) = run_core(Some(cfg), 1500);
        assert!(
            copy.stats().cycles > plain.stats().cycles,
            "copy={} plain={}",
            copy.stats().cycles,
            plain.stats().cycles
        );
    }

    #[test]
    fn tiny_srf_with_no_recycling_starves() {
        let cfg = SvrConfig {
            srf_entries: 1,
            recycle: crate::svr::RecyclePolicy::NoRecycle,
            ..SvrConfig::default()
        };
        let (core, _) = run_core(Some(cfg), 1000);
        assert!(core.stats().svr.srf_starved > 0);
        let cfg = SvrConfig {
            srf_entries: 1,
            ..SvrConfig::default()
        };
        let (lru, _) = run_core(Some(cfg), 1000);
        assert!(lru.stats().svr.srf_recycles > 0);
        assert!(
            lru.stats().cycles <= core.stats().cycles,
            "LRU recycling should not be slower than starving"
        );
    }

    #[test]
    fn scalars_per_cycle_is_memory_bound_flat() {
        // Fig. 16: widening transient execution barely moves performance.
        let (one, _) = run_core(
            Some(SvrConfig {
                scalars_per_cycle: 1,
                ..SvrConfig::default()
            }),
            2000,
        );
        let (eight, _) = run_core(
            Some(SvrConfig {
                scalars_per_cycle: 8,
                ..SvrConfig::default()
            }),
            2000,
        );
        let ratio = one.stats().cycles as f64 / eight.stats().cycles as f64;
        assert!((0.9..1.35).contains(&ratio), "ratio={ratio:.2}");
    }

    #[test]
    fn accuracy_ban_engages_on_garbage_strides() {
        // A loop whose "stride" pattern leads nowhere useful: large-stride
        // pointer walk that never revisits prefetched lines.
        let mut img = MemImage::new();
        let n = 4000u64;
        let base = img.alloc_words(n * 128);
        let (b, i, t) = (r(1), r(2), r(3));
        let mut asm = Assembler::new("waste");
        let top = asm.label();
        asm.bind(top);
        asm.ldx(t, b, i, 3);
        asm.alui(AluOp::Add, i, i, 977); // giant stride: prefetches useless
        asm.cmpi(i, (n * 16) as i64);
        asm.b(Cond::Lt, top);
        asm.halt();
        let p = asm.finish();
        let mut arch = ArchState::new();
        arch.set_reg(b, base);
        let mut core = InOrderCore::with_svr(
            InOrderConfig::default(),
            MemConfig::default(),
            SvrConfig::default(),
        );
        core.run(&p, &mut img, &mut arch, u64::MAX).unwrap();
        // With a constant large stride SVR *is* accurate (it prefetches the
        // actual future addresses), so this is a smoke test that the monitor
        // ran without banning a perfectly striding pattern.
        assert!(!core.svr_engine().unwrap().banned());
    }
}
