//! The taint tracker (Fig. 8) and speculative register file (§IV-A3).

use crate::svr::config::RecyclePolicy;
use svr_isa::{Reg, NUM_REGS};

/// Per-architectural-register taint state (Fig. 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaintEntry {
    /// Register is part of the current indirect chain.
    pub tainted: bool,
    /// Register is mapped to a live SRF entry.
    pub mapped: bool,
    /// SRF entry id when mapped.
    pub srf: usize,
    /// Dynamic-instruction offset of the last read (LRU state).
    pub offset: u32,
}

/// One speculative vector register: N 64-bit lanes plus per-lane ready times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrfReg {
    /// Lane values.
    pub vals: Vec<u64>,
    /// Cycle each lane's value becomes available.
    pub ready: Vec<u64>,
    /// The architectural register currently mapped here, if any.
    pub owner: Option<Reg>,
}

/// The taint tracker plus SRF, managed together because mappings live in the
/// taint tracker (§IV-A3).
///
/// # Examples
///
/// ```
/// use svr_core::svr::{TaintSrf, RecycleOutcome};
/// use svr_core::RecyclePolicy;
/// use svr_isa::Reg;
///
/// let mut ts = TaintSrf::new(2, 4, RecyclePolicy::Lru);
/// let id = match ts.map_dest(Reg::new(5), 0) {
///     RecycleOutcome::Allocated(id) => id,
///     other => panic!("{other:?}"),
/// };
/// ts.srf_mut(id).vals[0] = 42;
/// assert!(ts.entry(Reg::new(5)).tainted);
/// ```
#[derive(Debug, Clone)]
pub struct TaintSrf {
    entries: [TaintEntry; NUM_REGS],
    srf: Vec<SrfReg>,
    policy: RecyclePolicy,
}

/// What happened when mapping a destination register to the SRF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecycleOutcome {
    /// A free (or already-owned) SRF entry was used.
    Allocated(usize),
    /// An LRU victim mapping was stolen (SVR's recycling).
    Recycled(usize),
    /// No entry available under [`RecyclePolicy::NoRecycle`].
    Starved,
}

impl TaintSrf {
    /// Creates a tracker with `k` SRF entries of `n` lanes each.
    pub fn new(k: usize, n: usize, policy: RecyclePolicy) -> Self {
        assert!(k > 0 && n > 0);
        TaintSrf {
            entries: [TaintEntry::default(); NUM_REGS],
            srf: vec![
                SrfReg {
                    vals: vec![0; n],
                    ready: vec![0; n],
                    owner: None,
                };
                k
            ],
            policy,
        }
    }

    /// Taint state of `r`.
    pub fn entry(&self, r: Reg) -> &TaintEntry {
        &self.entries[r.index()]
    }

    /// Whether `r` is tainted *and* still mapped (usable as an SVI input).
    pub fn vector_input(&self, r: Reg) -> Option<usize> {
        let e = &self.entries[r.index()];
        (e.tainted && e.mapped).then_some(e.srf)
    }

    /// Reads SRF entry `id`.
    pub fn srf(&self, id: usize) -> &SrfReg {
        &self.srf[id]
    }

    /// Mutable SRF entry `id`.
    pub fn srf_mut(&mut self, id: usize) -> &mut SrfReg {
        &mut self.srf[id]
    }

    /// Marks a read of `r` at dynamic-instruction `offset` (LRU update).
    pub fn touch(&mut self, r: Reg, offset: u32) {
        let e = &mut self.entries[r.index()];
        if e.tainted {
            e.offset = offset;
        }
    }

    /// Maps destination `r` to an SRF entry, tainting it. Reuses an existing
    /// mapping, takes a free entry, or recycles per policy.
    pub fn map_dest(&mut self, r: Reg, offset: u32) -> RecycleOutcome {
        let idx = r.index();
        if self.entries[idx].mapped {
            // Only one copy of an architectural register is live at once
            // (footnote 1): reuse the mapping.
            let id = self.entries[idx].srf;
            self.entries[idx].tainted = true;
            self.entries[idx].offset = offset;
            return RecycleOutcome::Allocated(id);
        }
        if let Some(id) = self.srf.iter().position(|s| s.owner.is_none()) {
            self.install(r, id, offset);
            return RecycleOutcome::Allocated(id);
        }
        match self.policy {
            RecyclePolicy::NoRecycle => RecycleOutcome::Starved,
            RecyclePolicy::Lru => {
                // Steal from the least-recently-read mapped register.
                let victim_reg = (0..NUM_REGS)
                    .filter(|&i| self.entries[i].mapped)
                    .min_by_key(|&i| self.entries[i].offset)
                    .expect("all SRF entries have owners");
                let id = self.entries[victim_reg].srf;
                // Invalidate the old mapping: Mapped=0 blocks further SVIs
                // reading that register.
                self.entries[victim_reg].mapped = false;
                self.install(r, id, offset);
                RecycleOutcome::Recycled(id)
            }
        }
    }

    fn install(&mut self, r: Reg, id: usize, offset: u32) {
        self.srf[id].owner = Some(r);
        for v in &mut self.srf[id].ready {
            *v = 0;
        }
        self.entries[r.index()] = TaintEntry {
            tainted: true,
            mapped: true,
            srf: id,
            offset,
        };
    }

    /// Called when the main thread overwrites `r` with an untainted value:
    /// resets the taint and frees the SRF entry (§IV-A3).
    pub fn untaint(&mut self, r: Reg) {
        let e = &mut self.entries[r.index()];
        if e.mapped {
            self.srf[e.srf].owner = None;
        }
        *e = TaintEntry::default();
    }

    /// Clears all taint and frees the whole SRF (PRM termination).
    pub fn clear(&mut self) {
        self.entries = [TaintEntry::default(); NUM_REGS];
        for s in &mut self.srf {
            s.owner = None;
        }
    }

    /// Number of SRF entries currently owned.
    pub fn srf_in_use(&self) -> usize {
        self.srf.iter().filter(|s| s.owner.is_some()).count()
    }

    /// The configured number of SRF entries.
    pub fn srf_len(&self) -> usize {
        self.srf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn map_taint_untaint_cycle() {
        let mut ts = TaintSrf::new(2, 4, RecyclePolicy::Lru);
        let RecycleOutcome::Allocated(id) = ts.map_dest(r(3), 1) else {
            panic!("expected allocation");
        };
        assert!(ts.entry(r(3)).tainted && ts.entry(r(3)).mapped);
        assert_eq!(ts.vector_input(r(3)), Some(id));
        assert_eq!(ts.srf_in_use(), 1);
        ts.untaint(r(3));
        assert!(!ts.entry(r(3)).tainted);
        assert_eq!(ts.srf_in_use(), 0);
    }

    #[test]
    fn remap_reuses_same_entry() {
        let mut ts = TaintSrf::new(2, 4, RecyclePolicy::Lru);
        let RecycleOutcome::Allocated(a) = ts.map_dest(r(3), 1) else {
            panic!()
        };
        let RecycleOutcome::Allocated(b) = ts.map_dest(r(3), 5) else {
            panic!()
        };
        assert_eq!(a, b);
        assert_eq!(ts.srf_in_use(), 1);
    }

    #[test]
    fn lru_recycling_steals_least_recently_read() {
        let mut ts = TaintSrf::new(2, 4, RecyclePolicy::Lru);
        ts.map_dest(r(1), 1);
        ts.map_dest(r(2), 2);
        ts.touch(r(1), 10); // r1 recently read; r2 is LRU
        let out = ts.map_dest(r(3), 11);
        assert!(matches!(out, RecycleOutcome::Recycled(_)));
        assert!(!ts.entry(r(2)).mapped, "victim loses its mapping");
        assert!(ts.entry(r(2)).tainted, "victim stays tainted (Fig. 8)");
        assert_eq!(ts.vector_input(r(2)), None, "unmapped blocks SVI input");
        assert!(ts.entry(r(1)).mapped);
        assert!(ts.entry(r(3)).mapped);
    }

    #[test]
    fn no_recycle_policy_starves() {
        let mut ts = TaintSrf::new(1, 4, RecyclePolicy::NoRecycle);
        ts.map_dest(r(1), 1);
        assert_eq!(ts.map_dest(r(2), 2), RecycleOutcome::Starved);
        assert!(ts.entry(r(1)).mapped);
        assert!(!ts.entry(r(2)).tainted);
    }

    #[test]
    fn clear_resets_everything() {
        let mut ts = TaintSrf::new(2, 4, RecyclePolicy::Lru);
        ts.map_dest(r(1), 1);
        ts.map_dest(r(2), 2);
        ts.clear();
        assert_eq!(ts.srf_in_use(), 0);
        assert!(!ts.entry(r(1)).tainted);
    }

    #[test]
    fn touch_only_affects_tainted() {
        let mut ts = TaintSrf::new(2, 4, RecyclePolicy::Lru);
        ts.touch(r(7), 99);
        assert_eq!(ts.entry(r(7)).offset, 0);
    }
}
