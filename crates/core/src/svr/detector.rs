//! The stride detector (Fig. 6): a PC-indexed reference prediction table
//! extended with SVR's waiting-mode range, Seen bits, and LIL fields.

/// One stride-detector entry (Fig. 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SdEntry {
    /// Load PC this entry tracks.
    pub pc: usize,
    /// Whether the entry holds a live PC.
    pub valid: bool,
    /// Last observed address.
    pub prev_addr: u64,
    /// Detected stride (bytes).
    pub stride: i64,
    /// 2-bit stride confidence.
    pub conf: u8,
    /// Last address SVR prefetched for this PC (waiting-mode upper bound).
    pub last_prefetch: u64,
    /// Whether `last_prefetch` is meaningful.
    pub lp_valid: bool,
    /// Seen bit for nested/unrolled/independent loop detection (§IV-A6).
    pub seen: bool,
    /// Low 16 bits of the last indirect load PC in the chain.
    pub lil: u16,
    /// 2-bit LIL confidence.
    pub lil_conf: u8,
    /// Whether `lil` has been written at least once.
    pub lil_valid: bool,
    /// LbdWait helper: the first trigger arms; the next fires.
    pub armed: bool,
    /// 2-bit usefulness counter: rounds that vectorize no dependent
    /// (indirect) load decay it; at zero the PC stops triggering runahead
    /// until the periodic reset (§II-C: the point of runahead is the
    /// dependent chain; pure streams are already covered by the stride
    /// prefetcher).
    pub useful: u8,
}

impl SdEntry {
    /// Whether this entry currently predicts a confident non-zero stride.
    pub fn striding(&self, threshold: u8) -> bool {
        self.valid && self.stride != 0 && self.conf >= threshold
    }

    /// Waiting-mode test (§IV-A5): is `addr` inside the already-prefetched
    /// range `(prev_addr_at_last_round, last_prefetch]`? Handles both
    /// ascending and descending strides.
    pub fn in_prefetched_range(&self, addr: u64) -> bool {
        if !self.lp_valid {
            return false;
        }
        if self.stride >= 0 {
            addr > self.prev_addr && addr <= self.last_prefetch
        } else {
            addr < self.prev_addr && addr >= self.last_prefetch
        }
    }
}

/// Result of a stride-detector update for one executed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdUpdate {
    /// Index of the (direct-mapped) entry.
    pub index: usize,
    /// Whether the entry is confident and striding after the update.
    pub striding: bool,
    /// The stride in effect.
    pub stride: i64,
    /// The address equalled `prev + stride` (iteration continues).
    pub continued: bool,
    /// A previously confident stride was broken by this address.
    pub discontinuity: bool,
}

/// The PC-indexed stride detector (32 entries by default, direct-mapped).
///
/// # Examples
///
/// ```
/// use svr_core::svr::StrideDetector;
/// let mut sd = StrideDetector::new(32, 2);
/// for i in 0..3u64 {
///     sd.update(5, 0x1000 + i * 8);
/// }
/// let up = sd.update(5, 0x1018);
/// assert!(up.striding && up.continued && up.stride == 8);
/// ```
#[derive(Debug, Clone)]
pub struct StrideDetector {
    entries: Vec<SdEntry>,
    threshold: u8,
}

impl StrideDetector {
    /// Creates an empty detector with `entries` slots and the given 2-bit
    /// confidence `threshold`.
    pub fn new(entries: usize, threshold: u8) -> Self {
        assert!(entries > 0);
        StrideDetector {
            entries: vec![SdEntry::default(); entries],
            threshold,
        }
    }

    fn index(&self, pc: usize) -> usize {
        pc % self.entries.len()
    }

    /// The entry currently associated with `pc`, if it is the live owner.
    pub fn lookup(&self, pc: usize) -> Option<&SdEntry> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.pc == pc).then_some(e)
    }

    /// Mutable access; `None` if `pc` does not own its slot.
    pub fn lookup_mut(&mut self, pc: usize) -> Option<&mut SdEntry> {
        let i = self.index(pc);
        let e = &mut self.entries[i];
        (e.valid && e.pc == pc).then_some(e)
    }

    /// RPT update for an executed load; installs/steals the slot on mismatch.
    pub fn update(&mut self, pc: usize, addr: u64) -> SdUpdate {
        let i = self.index(pc);
        let threshold = self.threshold;
        let e = &mut self.entries[i];
        if !e.valid || e.pc != pc {
            *e = SdEntry {
                pc,
                valid: true,
                prev_addr: addr,
                useful: 3,
                ..SdEntry::default()
            };
            return SdUpdate {
                index: i,
                striding: false,
                stride: 0,
                continued: false,
                discontinuity: false,
            };
        }
        let s = addr.wrapping_sub(e.prev_addr) as i64;
        let was_confident = e.striding(threshold);
        let continued = s != 0 && s == e.stride;
        if continued {
            e.conf = (e.conf + 1).min(3);
        } else if e.conf > 0 {
            // Keep the learned stride through transient discontinuities
            // (e.g. the jump to a new inner loop); only a persistent change
            // replaces it. This is the classic RPT steady/transient split.
            e.conf -= 1;
        } else {
            e.stride = s;
        }
        e.prev_addr = addr;
        SdUpdate {
            index: i,
            striding: e.striding(threshold),
            stride: e.stride,
            continued,
            discontinuity: was_confident && !continued,
        }
    }

    /// Restores every entry's usefulness counter (periodic second chance,
    /// same cadence as the accuracy-ban reset of §IV-A7).
    pub fn reset_usefulness(&mut self) {
        for e in &mut self.entries {
            if e.valid {
                e.useful = 3;
            }
        }
    }

    /// Clears every Seen bit except the entry owning `keep_pc` (§IV-A6).
    pub fn clear_seen_except(&mut self, keep_pc: usize) {
        for e in &mut self.entries {
            if e.valid && e.pc != keep_pc {
                e.seen = false;
            }
        }
    }

    /// The configured confidence threshold.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_stride_and_detects_discontinuity() {
        let mut sd = StrideDetector::new(8, 2);
        sd.update(1, 100);
        sd.update(1, 108); // stride 8, conf 0
        let u = sd.update(1, 116); // conf 1
        assert!(!u.striding);
        let u = sd.update(1, 124); // conf 2
        assert!(u.striding && u.continued);
        let u = sd.update(1, 999); // break
        assert!(u.discontinuity && !u.continued);
    }

    #[test]
    fn waiting_range_ascending() {
        let e = SdEntry {
            valid: true,
            prev_addr: 100,
            stride: 8,
            last_prefetch: 164,
            lp_valid: true,
            ..SdEntry::default()
        };
        assert!(e.in_prefetched_range(108));
        assert!(e.in_prefetched_range(164));
        assert!(!e.in_prefetched_range(172)); // past last prefetch
        assert!(!e.in_prefetched_range(50)); // discontinuity backwards
    }

    #[test]
    fn waiting_range_descending() {
        let e = SdEntry {
            valid: true,
            prev_addr: 200,
            stride: -8,
            last_prefetch: 136,
            lp_valid: true,
            ..SdEntry::default()
        };
        assert!(e.in_prefetched_range(192));
        assert!(e.in_prefetched_range(136));
        assert!(!e.in_prefetched_range(128));
        assert!(!e.in_prefetched_range(300));
    }

    #[test]
    fn no_waiting_without_last_prefetch() {
        let e = SdEntry {
            valid: true,
            prev_addr: 100,
            stride: 8,
            ..SdEntry::default()
        };
        assert!(!e.in_prefetched_range(108));
    }

    #[test]
    fn slot_stealing_resets() {
        let mut sd = StrideDetector::new(1, 2);
        for i in 0..4u64 {
            sd.update(1, 100 + i * 8);
        }
        assert!(sd.lookup(1).unwrap().striding(2));
        sd.update(2, 5000); // steals the only slot
        assert!(sd.lookup(1).is_none());
        assert!(sd.lookup(2).is_some());
    }

    #[test]
    fn clear_seen_except_keeps_target() {
        let mut sd = StrideDetector::new(4, 2);
        sd.update(1, 0);
        sd.update(2, 0);
        sd.lookup_mut(1).unwrap().seen = true;
        sd.lookup_mut(2).unwrap().seen = true;
        sd.clear_seen_except(1);
        assert!(sd.lookup(1).unwrap().seen);
        assert!(!sd.lookup(2).unwrap().seen);
    }
}
