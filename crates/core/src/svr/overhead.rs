//! Hardware-overhead accounting, reproducing Table II bit-for-bit.

/// Per-structure bit budget of an SVR design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitBudget {
    /// Stride detector (32 entries × 173 bits).
    pub stride_detector: u64,
    /// Taint tracker (32 architectural registers).
    pub taint_tracker: u64,
    /// Head striding-load register + mask.
    pub hslr: u64,
    /// Speculative register file (K × N×64 bits).
    pub srf: u64,
    /// Last-compare register.
    pub lc: u64,
    /// Loop-bound detector (8 entries).
    pub lbd: u64,
    /// Scoreboard return counters (32 × ⌈log2(N+1)⌉).
    pub scoreboard: u64,
    /// L1 prefetch tags.
    pub l1_tags: u64,
}

impl BitBudget {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.stride_detector
            + self.taint_tracker
            + self.hslr
            + self.srf
            + self.lc
            + self.lbd
            + self.scoreboard
            + self.l1_tags
    }

    /// Total KiB.
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

/// Computes the Table II bit budget for vector length `n` and `k` SRF
/// entries (paper default: n = 16, k = 8 → 17 738 bits = 2.17 KiB).
///
/// # Examples
///
/// ```
/// use svr_core::bit_budget;
/// let b = bit_budget(16, 8);
/// assert_eq!(b.total_bits(), 17_738);
/// assert!((b.total_kib() - 2.17).abs() < 0.01);
/// ```
pub fn bit_budget(n: u64, k: u64) -> BitBudget {
    let log2k = if k <= 1 { 1 } else { ceil_log2(k) };

    // Stride-detector entry (Fig. 6 / Table II):
    // 48 PC + 48 LP + 48 prev addr + 1 seen + 8 stride + 16 LIL + 2 conf + 2 LIL conf
    let sd_entry = 48 + 48 + 48 + 1 + 8 + 16 + 2 + 2;
    let stride_detector = 32 * sd_entry;

    // Taint-tracker entry: 1 tainted + ceil(log2 K) SRF id + 1 mapped + 8 offset
    let tt_entry = 1 + log2k + 1 + 8;
    let taint_tracker = 32 * tt_entry;

    // HSLR: 48-bit PC + N mask bits.
    let hslr = 48 + n;

    // SRF: K registers of N×64 bits.
    let srf = k * n * 64;

    // LC: 48 PC + 64 val A + 5 reg A + 64 val B + 5 reg B.
    let lc = 48 + 64 + 5 + 64 + 5;

    // LBD entry: 48 PC + 186 LC + 9 EWMA + 16 loop increment
    //            + 9 iteration counter + 2 tournament = 270 bits.
    let lbd_entry = 48 + lc + 9 + 16 + 9 + 2;
    let lbd = 8 * lbd_entry;

    // Scoreboard: 32 × ceil(log2(N+1)) return-counter bits.
    let scoreboard = 32 * ceil_log2(n + 1);

    // L1 prefetch tags: one bit per L1 line (64 KiB / 64 B = 1024).
    let l1_tags = 1024;

    BitBudget {
        stride_detector,
        taint_tracker,
        hslr,
        srf,
        lc,
        lbd,
        scoreboard,
        l1_tags,
    }
}

fn ceil_log2(x: u64) -> u64 {
    assert!(x >= 1);
    64 - (x - 1).leading_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(17), 5);
        assert_eq!(ceil_log2(129), 8);
    }

    #[test]
    fn matches_table_ii_default() {
        let b = bit_budget(16, 8);
        assert_eq!(b.stride_detector, 5536);
        assert_eq!(b.taint_tracker, 416);
        assert_eq!(b.hslr, 64);
        assert_eq!(b.srf, 8192);
        assert_eq!(b.lc, 186);
        assert_eq!(b.lbd, 2160);
        assert_eq!(b.scoreboard, 160);
        assert_eq!(b.l1_tags, 1024);
        assert_eq!(b.total_bits(), 17_738);
        assert!((b.total_kib() - 2.17).abs() < 0.005, "{}", b.total_kib());
    }

    #[test]
    fn n128_is_about_9kib() {
        // §IV-C: "As N grows to 128, the SRF grows linearly to incur 9 KiB".
        let b = bit_budget(128, 8);
        assert!(
            b.total_kib() > 8.0 && b.total_kib() < 10.0,
            "{}",
            b.total_kib()
        );
    }

    #[test]
    fn srf_scales_linearly_with_n_and_k() {
        assert_eq!(bit_budget(32, 8).srf, 2 * bit_budget(16, 8).srf);
        assert_eq!(bit_budget(16, 16).srf, 2 * bit_budget(16, 8).srf);
    }
}
