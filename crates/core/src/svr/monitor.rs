//! The usefulness monitor (§IV-A7): prefetch-tag accuracy tracking with a
//! global SVR ban that is periodically lifted.

/// Tracks SVR prefetch accuracy from the L1 prefetch-tag counters and bans
/// SVR triggering when accuracy drops below the threshold.
///
/// # Examples
///
/// ```
/// use svr_core::svr::AccuracyMonitor;
/// let mut m = AccuracyMonitor::new(100, 0.5, 1_000_000);
/// m.observe(500, 10, 150); // 10 used / 150 evicted: bad
/// assert!(m.banned());
/// m.observe(1_000_001, 10, 150); // 1M-instruction reset lifts the ban
/// assert!(!m.banned());
/// ```
#[derive(Debug, Clone)]
pub struct AccuracyMonitor {
    warmup: u64,
    threshold: f64,
    reset_insts: u64,
    banned: bool,
    /// Counter values at the start of the current observation window.
    base_used: u64,
    base_evicted: u64,
    /// Instruction count at which the next ban lift / window reset happens.
    next_reset: u64,
    bans: u64,
}

impl AccuracyMonitor {
    /// Creates a monitor with the paper's parameters:
    /// `warmup` outcomes (100), accuracy `threshold` (0.5), and ban-lift
    /// period `reset_insts` (1 M instructions).
    pub fn new(warmup: u64, threshold: f64, reset_insts: u64) -> Self {
        AccuracyMonitor {
            warmup,
            threshold,
            reset_insts,
            banned: false,
            base_used: 0,
            base_evicted: 0,
            next_reset: reset_insts,
            bans: 0,
        }
    }

    /// Whether SVR triggering is currently banned.
    pub fn banned(&self) -> bool {
        self.banned
    }

    /// Number of times the ban engaged.
    pub fn bans(&self) -> u64 {
        self.bans
    }

    /// Feeds the monitor the current instruction count and the cumulative
    /// SVR prefetch outcome counters (from the L1 prefetch tags).
    pub fn observe(&mut self, inst_count: u64, used: u64, evicted_unused: u64) {
        if inst_count >= self.next_reset {
            // Periodic reset: lift the ban and start a fresh window, giving
            // SVR another chance (§IV-A7).
            self.banned = false;
            self.base_used = used;
            self.base_evicted = evicted_unused;
            self.next_reset = inst_count - inst_count % self.reset_insts + self.reset_insts;
            return;
        }
        if self.banned {
            return;
        }
        let du = used - self.base_used;
        let de = evicted_unused - self.base_evicted;
        let total = du + de;
        if total >= self.warmup {
            let acc = du as f64 / total as f64;
            if acc < self.threshold {
                self.banned = true;
                self.bans += 1;
            } else {
                // Roll the window forward so old history ages out.
                self.base_used = used;
                self.base_evicted = evicted_unused;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ban_during_warmup() {
        let mut m = AccuracyMonitor::new(100, 0.5, 1_000_000);
        m.observe(10, 0, 99); // only 99 outcomes
        assert!(!m.banned());
    }

    #[test]
    fn bans_on_low_accuracy() {
        let mut m = AccuracyMonitor::new(100, 0.5, 1_000_000);
        m.observe(10, 40, 60);
        assert!(m.banned());
        assert_eq!(m.bans(), 1);
    }

    #[test]
    fn stays_enabled_on_good_accuracy() {
        let mut m = AccuracyMonitor::new(100, 0.5, 1_000_000);
        m.observe(10, 90, 20);
        assert!(!m.banned());
        // Window rolled: the old 90/20 does not count again.
        m.observe(20, 95, 130);
        assert!(m.banned(), "5 used vs 110 evicted in the new window");
    }

    #[test]
    fn reset_lifts_ban_and_restarts_window() {
        let mut m = AccuracyMonitor::new(100, 0.5, 1000);
        m.observe(10, 0, 200);
        assert!(m.banned());
        m.observe(999, 0, 400);
        assert!(m.banned(), "not yet at the reset boundary");
        m.observe(1005, 0, 500);
        assert!(!m.banned(), "boundary crossed");
        // Fresh window: old evictions forgiven.
        m.observe(1010, 50, 520);
        assert!(!m.banned(), "50/70 in new window is above threshold");
    }
}
