//! Loop-bound prediction (§IV-B2): last-compare register, loop-bound
//! detector with current-value scavenging, EWMA, and the tournament chooser.

use svr_isa::Reg;

/// Snapshot of the most recent compare instruction (the LC register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcEntry {
    /// PC of the compare.
    pub pc: usize,
    /// First source value.
    pub va: u64,
    /// Second source value (immediate compares store the immediate).
    pub vb: u64,
    /// First source register id.
    pub ra: Option<Reg>,
    /// Second source register id (`None` for immediate compares).
    pub rb: Option<Reg>,
}

/// One loop-bound-detector entry (Fig. 10), keyed by the HSLR load PC.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LbdEntry {
    /// HSLR load PC this entry predicts for.
    pub pc: usize,
    /// Whether this entry is live.
    pub valid: bool,
    /// Consecutive-stride iteration counter (9 bits in hardware).
    pub iteration: u32,
    /// EWMA of past iteration counts, stored in eighths (9-bit value plus
    /// 3 fraction bits in hardware).
    pub ewma_x8: u32,
    /// Whether the EWMA has been trained at least once.
    pub ewma_valid: bool,
    /// The loop's compare PC.
    pub comp_pc: usize,
    /// Last captured compare source values.
    pub s_a: u64,
    /// Last captured compare source values.
    pub s_b: u64,
    /// Compare source register ids.
    pub ra: Option<Reg>,
    /// Compare source register ids.
    pub rb: Option<Reg>,
    /// 2-bit confidence that `comp_pc` is the loop's bound check.
    pub comp_conf: u8,
    /// Inferred per-iteration induction-variable increment.
    pub increment: i64,
    /// Whether `increment` has been inferred.
    pub increment_valid: bool,
    /// Which of (s_a, s_b) is the moving induction value (`true` = A moves).
    pub a_moves: bool,
    /// 2-bit tournament counter: MSB set → trust the LBD over the EWMA.
    pub tournament: u8,
    /// Prediction issued by the EWMA at the last PRM trigger (for training).
    pub last_pred_ewma: Option<u64>,
    /// Prediction issued by the LBD at the last PRM trigger (for training).
    pub last_pred_lbd: Option<u64>,
    /// Iterations already consumed when the last prediction was made.
    pub pred_base_iter: u32,
}

/// EWMA update on the fixed-point (eighths) representation:
/// `new = 7*old/8 + iteration/8` (paper formula), capped at the 9-bit range.
pub fn ewma_update(old_x8: u32, iteration: u32) -> u32 {
    ((7 * old_x8) / 8 + iteration).min(511 * 8)
}

/// The LBD table plus the (single) LC register.
#[derive(Debug, Clone)]
pub struct LoopBounds {
    entries: Vec<LbdEntry>,
    /// The last-compare register; reset when flags are clobbered.
    pub lc: Option<LcEntry>,
}

impl LoopBounds {
    /// Creates an empty table with `entries` slots (8 in the paper).
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        LoopBounds {
            entries: vec![LbdEntry::default(); entries],
            lc: None,
        }
    }

    fn index(&self, pc: usize) -> usize {
        pc % self.entries.len()
    }

    /// The entry for `pc`, installing a fresh one if absent (direct-mapped).
    pub fn entry_mut(&mut self, pc: usize) -> &mut LbdEntry {
        let i = self.index(pc);
        let e = &mut self.entries[i];
        if !e.valid || e.pc != pc {
            *e = LbdEntry {
                pc,
                valid: true,
                tournament: 1,
                ..LbdEntry::default()
            };
        }
        e
    }

    /// Read-only lookup.
    pub fn entry(&self, pc: usize) -> Option<&LbdEntry> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.pc == pc).then_some(e)
    }

    /// Called when the stride continues at the HSLR PC; returns `true` when
    /// the 512-iteration cap forced an EWMA update.
    pub fn on_continue(&mut self, pc: usize) -> bool {
        let e = self.entry_mut(pc);
        e.iteration += 1;
        if e.iteration >= 512 {
            let it = e.iteration;
            Self::train_tournament(e, it);
            e.ewma_x8 = ewma_update(e.ewma_x8, it);
            e.ewma_valid = true;
            e.iteration = 0;
            true
        } else {
            false
        }
    }

    /// Called on a stride discontinuity at the HSLR PC: trains the
    /// tournament and folds the finished run length into the EWMA.
    pub fn on_discontinuity(&mut self, pc: usize) {
        let e = self.entry_mut(pc);
        let it = e.iteration;
        Self::train_tournament(e, it);
        e.ewma_x8 = ewma_update(e.ewma_x8, it);
        e.ewma_valid = true;
        e.iteration = 0;
    }

    fn train_tournament(e: &mut LbdEntry, actual: u32) {
        let (Some(pe), Some(pl)) = (e.last_pred_ewma, e.last_pred_lbd) else {
            e.last_pred_ewma = None;
            e.last_pred_lbd = None;
            return;
        };
        // Both predictors forecast the remaining iterations at trigger time.
        let actual_remaining = u64::from(actual.saturating_sub(e.pred_base_iter));
        let err_e = pe.abs_diff(actual_remaining);
        let err_l = pl.abs_diff(actual_remaining);
        if err_l < err_e {
            e.tournament = (e.tournament + 1).min(3);
        } else if err_e < err_l {
            e.tournament = e.tournament.saturating_sub(1);
        }
        e.last_pred_ewma = None;
        e.last_pred_lbd = None;
    }

    /// Trains the compare tracking on a backward conditional-taken branch
    /// whose flags come from the LC (§IV-B2).
    pub fn train_compare(&mut self, hslr_pc: usize) {
        let Some(lc) = self.lc else { return };
        let e = self.entry_mut(hslr_pc);
        if e.comp_conf == 0 || e.comp_pc != lc.pc {
            if e.comp_conf == 0 {
                // Adopt the LC as the loop's bound check.
                e.comp_pc = lc.pc;
                e.s_a = lc.va;
                e.s_b = lc.vb;
                e.ra = lc.ra;
                e.rb = lc.rb;
                e.comp_conf = 1;
                e.increment_valid = false;
            } else {
                e.comp_conf -= 1;
            }
            return;
        }
        // Matching compare PC: infer the loop increment from which operand
        // moved since the previous iteration.
        e.comp_conf = (e.comp_conf + 1).min(3);
        let a_changed = lc.va != e.s_a;
        let b_changed = lc.vb != e.s_b;
        if a_changed != b_changed {
            let delta = if a_changed {
                lc.va.wrapping_sub(e.s_a) as i64
            } else {
                lc.vb.wrapping_sub(e.s_b) as i64
            };
            if delta != 0 {
                e.increment = delta;
                e.increment_valid = true;
                e.a_moves = a_changed;
            }
        }
        e.s_a = lc.va;
        e.s_b = lc.vb;
        e.ra = lc.ra;
        e.rb = lc.rb;
    }

    /// EWMA prediction of remaining iterations (paper formula):
    /// `min(EWMA - iterations, N)` if positive, else `min(EWMA, N)`.
    pub fn predict_ewma(&self, pc: usize, n: u64) -> Option<u64> {
        let e = self.entry(pc)?;
        if !e.ewma_valid {
            return None;
        }
        let ewma = u64::from(e.ewma_x8 / 8);
        let it = u64::from(e.iteration);
        let pred = if ewma > it { ewma - it } else { ewma };
        Some(pred.clamp(1, n))
    }

    /// LBD prediction from the *stored* compare operand values
    /// (LbdWait / LBD+Maxlength style, available after a full iteration).
    pub fn predict_lbd_stored(&self, pc: usize, n: u64) -> Option<u64> {
        let e = self.entry(pc)?;
        if !e.increment_valid || e.comp_conf < 2 {
            return None;
        }
        let (moving, bound) = if e.a_moves {
            (e.s_a, e.s_b)
        } else {
            (e.s_b, e.s_a)
        };
        predict_from_values(moving, bound, e.increment, n)
    }

    /// LBD+CV prediction: scavenge the *current* values of the compare's
    /// source registers at trigger time (§IV-B2).
    pub fn predict_lbd_cv(&self, pc: usize, n: u64, read_reg: impl Fn(Reg) -> u64) -> Option<u64> {
        let e = self.entry(pc)?;
        if !e.increment_valid || e.comp_conf < 1 {
            return None;
        }
        let cv_a = e.ra.map(&read_reg);
        let cv_b = e.rb.map(&read_reg).or(Some(e.s_b));
        let (moving, bound) = if e.a_moves {
            (cv_a?, cv_b?)
        } else {
            (cv_b?, cv_a?)
        };
        predict_from_values(moving, bound, e.increment, n)
    }

    /// Remembers what each component predicted (for tournament training).
    pub fn record_predictions(&mut self, pc: usize, pe: Option<u64>, pl: Option<u64>) {
        let e = self.entry_mut(pc);
        let base = e.iteration;
        e.last_pred_ewma = pe;
        e.last_pred_lbd = pl;
        e.pred_base_iter = base;
    }

    /// Whether the tournament currently favours the LBD for `pc`.
    pub fn tournament_picks_lbd(&self, pc: usize) -> bool {
        self.entry(pc).map(|e| e.tournament >= 2).unwrap_or(false)
    }
}

/// `(bound - moving) / increment`, the number of iterations left.
fn predict_from_values(moving: u64, bound: u64, increment: i64, n: u64) -> Option<u64> {
    if increment == 0 {
        return None;
    }
    let remaining = bound.wrapping_sub(moving) as i64;
    let iters = remaining / increment;
    if iters <= 0 {
        Some(1)
    } else {
        Some((iters as u64).clamp(1, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn ewma_formula() {
        // Fixed point in eighths: update adds the raw iteration count.
        assert_eq!(ewma_update(0, 80), 80); // ewma value 10
        assert_eq!(ewma_update(80 * 8, 80), 640); // steady state: ewma 80
        assert!(ewma_update(511 * 8, 4096) <= 511 * 8);
    }

    #[test]
    fn ewma_prediction_uses_remaining() {
        let mut lb = LoopBounds::new(8);
        // Train: ten runs of 20 iterations (EWMA converges toward 20).
        for _ in 0..10 {
            for _ in 0..20 {
                lb.on_continue(7);
            }
            lb.on_discontinuity(7);
        }
        let e = lb.entry(7).unwrap();
        assert!(e.ewma_valid && e.ewma_x8 / 8 >= 10);
        // Mid-loop: 5 iterations consumed.
        for _ in 0..5 {
            lb.on_continue(7);
        }
        let pred_mid = lb.predict_ewma(7, 64).unwrap();
        let e = lb.entry(7).unwrap();
        assert_eq!(pred_mid, u64::from(e.ewma_x8 / 8 - 5));
    }

    #[test]
    fn compare_training_infers_increment() {
        let mut lb = LoopBounds::new(8);
        // i compares against constant bound 100, i += 1 each iteration.
        for i in 1..6u64 {
            lb.lc = Some(LcEntry {
                pc: 33,
                va: i,
                vb: 100,
                ra: Some(r(3)),
                rb: Some(r(4)),
            });
            lb.train_compare(10);
        }
        let e = lb.entry(10).unwrap();
        assert!(e.increment_valid);
        assert_eq!(e.increment, 1);
        assert!(e.a_moves);
        assert!(e.comp_conf >= 2);
        // Stored prediction: (100 - 5) / 1 = 95, clamped to N.
        assert_eq!(lb.predict_lbd_stored(10, 64), Some(64));
        assert_eq!(lb.predict_lbd_stored(10, 128), Some(95));
    }

    #[test]
    fn cv_scavenging_reads_registers() {
        let mut lb = LoopBounds::new(8);
        for i in 1..4u64 {
            lb.lc = Some(LcEntry {
                pc: 33,
                va: i * 8,
                vb: 800,
                ra: Some(r(3)),
                rb: Some(r(4)),
            });
            lb.train_compare(10);
        }
        // Registers currently hold i*8 = 720 and bound 800: 10 iterations.
        let pred = lb
            .predict_lbd_cv(10, 64, |reg| if reg == r(3) { 720 } else { 800 })
            .unwrap();
        assert_eq!(pred, 10);
    }

    #[test]
    fn changing_compare_pc_lowers_confidence_then_replaces() {
        let mut lb = LoopBounds::new(8);
        lb.lc = Some(LcEntry {
            pc: 33,
            va: 1,
            vb: 9,
            ra: Some(r(1)),
            rb: Some(r(2)),
        });
        lb.train_compare(10);
        assert_eq!(lb.entry(10).unwrap().comp_pc, 33);
        // A different compare shows up twice: first decrements, then replaces.
        lb.lc = Some(LcEntry {
            pc: 44,
            va: 2,
            vb: 9,
            ra: Some(r(1)),
            rb: Some(r(2)),
        });
        lb.train_compare(10);
        assert_eq!(lb.entry(10).unwrap().comp_pc, 33);
        lb.train_compare(10);
        assert_eq!(lb.entry(10).unwrap().comp_pc, 44);
    }

    #[test]
    fn tournament_trains_toward_better_component() {
        let mut lb = LoopBounds::new(8);
        // Record: EWMA said 50 remaining, LBD said 10; actual run length 10.
        lb.record_predictions(7, Some(50), Some(10));
        for _ in 0..10 {
            lb.on_continue(7);
        }
        lb.on_discontinuity(7);
        assert!(lb.tournament_picks_lbd(7));
        // Now EWMA is better twice: counter saturates back down.
        for _ in 0..2 {
            lb.record_predictions(7, Some(10), Some(500));
            for _ in 0..10 {
                lb.on_continue(7);
            }
            lb.on_discontinuity(7);
        }
        assert!(!lb.tournament_picks_lbd(7));
    }

    #[test]
    fn predict_from_values_edge_cases() {
        assert_eq!(predict_from_values(5, 100, 0, 16), None);
        assert_eq!(predict_from_values(100, 5, 1, 16), Some(1)); // overrun
        assert_eq!(predict_from_values(0, 5, 1, 16), Some(5));
        assert_eq!(predict_from_values(100, 20, -10, 16), Some(8));
    }

    #[test]
    fn cap_512_forces_update() {
        let mut lb = LoopBounds::new(8);
        let mut capped = false;
        for _ in 0..512 {
            capped |= lb.on_continue(3);
        }
        assert!(capped);
        assert_eq!(lb.entry(3).unwrap().iteration, 0);
        assert!(lb.entry(3).unwrap().ewma_valid);
    }
}
