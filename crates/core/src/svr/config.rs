//! SVR configuration knobs, including every ablation evaluated in §VI.

/// Loop-bound prediction mechanism (§IV-B2, evaluated in Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopBoundMode {
    /// Always generate the full vector length (no throttling).
    Maxlength,
    /// DVR-style: wait a full loop iteration for the compare/branch to train
    /// the LBD before performing runahead (slow on in-order cores).
    LbdWait,
    /// Use the LBD when trained, fall back to max length otherwise.
    LbdMaxlength,
    /// LBD plus current-value scavenging of the compare's source registers
    /// at the stride discontinuity (the paper's novel mechanism).
    LbdCv,
    /// Exponentially weighted moving average of past iteration counts.
    Ewma,
    /// 2-bit tournament between EWMA and LBD+CV (the default).
    Tournament,
}

/// Speculative-register recycling policy (§VI-D "Register Recycling").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecyclePolicy {
    /// SVR's policy: LRU-recycle the least-recently-read mapped register.
    Lru,
    /// DVR-style: never steal a live mapping; SVI generation simply fails
    /// when the SRF is exhausted.
    NoRecycle,
}

/// Full SVR configuration. [`SvrConfig::default`] matches the paper's
/// default SVR-16 design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrConfig {
    /// Scalar-vector length N (lanes per SVI): 8–128, default 16.
    pub vector_length: usize,
    /// Speculative register file entries K (default 8).
    pub srf_entries: usize,
    /// Stride-detector entries (default 32).
    pub stride_detector_entries: usize,
    /// Stride confidence threshold (2-bit counter, default 2).
    pub stride_confidence: u8,
    /// PRM timeout in main-thread instructions (default 256).
    pub timeout_insts: u64,
    /// Transient lanes entering execute per cycle (Fig. 16, default 1).
    pub scalars_per_cycle: u32,
    /// Loop-bound predictor choice (default tournament).
    pub loop_bound_mode: LoopBoundMode,
    /// Loop-bound-detector entries (default 8).
    pub lbd_entries: usize,
    /// Waiting mode (§IV-A5); disabling it is the §VI-D ablation.
    pub waiting_mode: bool,
    /// The accuracy-based global ban (§IV-A7).
    pub accuracy_ban: bool,
    /// Prefetch outcomes before the ban logic activates (default 100).
    pub accuracy_warmup: u64,
    /// Accuracy below which SVR is banned (default 0.5).
    pub accuracy_threshold: f64,
    /// Instructions between ban lifts (default 1 M).
    pub ban_reset_insts: u64,
    /// SRF recycling policy.
    pub recycle: RecyclePolicy,
    /// Model the cost of copying the scalar register file at PRM entry
    /// (§VI-D "Lockstep Coupling": 32 regs / 2 write ports).
    pub model_register_copy: bool,
    /// Cycles charged per PRM entry when `model_register_copy` is set.
    pub register_copy_cycles: u64,
    /// Use the last-indirect-load optimization (§IV-A4).
    pub lil_enabled: bool,
    /// Handle multiple concurrent indirect chains (§IV-A6).
    pub multi_chain: bool,
}

impl Default for SvrConfig {
    fn default() -> Self {
        SvrConfig {
            vector_length: 16,
            srf_entries: 8,
            stride_detector_entries: 32,
            stride_confidence: 2,
            timeout_insts: 256,
            scalars_per_cycle: 1,
            loop_bound_mode: LoopBoundMode::Tournament,
            lbd_entries: 8,
            waiting_mode: true,
            accuracy_ban: true,
            accuracy_warmup: 100,
            accuracy_threshold: 0.5,
            ban_reset_insts: 1_000_000,
            recycle: RecyclePolicy::Lru,
            model_register_copy: false,
            register_copy_cycles: 16,
            lil_enabled: true,
            multi_chain: true,
        }
    }
}

impl SvrConfig {
    /// The paper's SVR-N design point (N ∈ {8, 16, 32, 64, 128}).
    pub fn with_length(n: usize) -> Self {
        SvrConfig {
            vector_length: n,
            ..SvrConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SvrConfig::default();
        assert_eq!(c.vector_length, 16);
        assert_eq!(c.srf_entries, 8);
        assert_eq!(c.stride_detector_entries, 32);
        assert_eq!(c.timeout_insts, 256);
        assert_eq!(c.loop_bound_mode, LoopBoundMode::Tournament);
        assert!(c.waiting_mode && c.accuracy_ban && c.lil_enabled && c.multi_chain);
    }

    #[test]
    fn with_length_sets_n() {
        assert_eq!(SvrConfig::with_length(128).vector_length, 128);
        assert_eq!(SvrConfig::with_length(8).srf_entries, 8);
    }
}
