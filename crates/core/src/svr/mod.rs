//! Scalar Vector Runahead (§IV): the paper's contribution.
//!
//! The [`SvrEngine`] attaches to the in-order pipeline
//! ([`crate::InOrderCore::with_svr`]) and implements piggyback runahead mode
//! end to end: stride detection, taint tracking, the speculative register
//! file with LRU recycling, scalar-vector instruction generation, waiting
//! mode, multi-chain handling, control-flow masking, loop-bound prediction
//! (EWMA / LBD / CV scavenging / tournament) and the accuracy-based ban.

mod config;
mod detector;
mod engine;
mod lbd;
mod monitor;
mod overhead;
mod taint;

pub use config::{LoopBoundMode, RecyclePolicy, SvrConfig};
pub use detector::{SdEntry, SdUpdate, StrideDetector};
pub use engine::SvrEngine;
pub use lbd::{ewma_update, LbdEntry, LcEntry, LoopBounds};
pub use monitor::AccuracyMonitor;
pub use overhead::{bit_budget, BitBudget};
pub use taint::{RecycleOutcome, SrfReg, TaintEntry, TaintSrf};
