//! Minimal terminal bar charts for the harness binaries: the paper's
//! figures are bar plots, and a quick visual makes shape comparisons easier
//! than columns of numbers.

/// Renders a horizontal bar chart. Each row is `(label, value)`; bars are
/// scaled so the maximum value spans `width` characters.
///
/// # Examples
///
/// ```
/// use svr_bench::chart::bar_chart;
/// let s = bar_chart(&[("InO".into(), 1.0), ("SVR16".into(), 3.2)], 20);
/// assert!(s.contains("SVR16"));
/// assert!(s.lines().count() == 2);
/// ```
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NAN, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let n = if value.is_finite() && *value > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} {:width$} {value:.2}\n",
            "█".repeat(n),
        ));
    }
    // Trim per-line trailing spaces introduced by the bar padding.
    let trimmed: Vec<&str> = out.lines().map(str::trim_end).collect();
    trimmed.join("\n")
}

/// Renders grouped values as a compact sparkline (one char per value),
/// useful for sweeps like Fig. 17/18.
///
/// # Examples
///
/// ```
/// use svr_bench::chart::sparkline;
/// assert_eq!(sparkline(&[1.0, 2.0, 4.0, 8.0]).chars().count(), 4);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::NAN, f64::max);
    let min = values.iter().copied().fold(f64::NAN, f64::min);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                return ' ';
            }
            let idx = (((v - min) / span) * 7.0).round() as usize;
            TICKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let s = bar_chart(&[("a".into(), 1.0), ("bb".into(), 2.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].matches('█').count() == 10);
        assert!(lines[0].matches('█').count() == 5);
        // Labels aligned.
        assert!(lines[0].starts_with("a  "));
        assert!(lines[1].starts_with("bb "));
    }

    #[test]
    fn zero_and_nan_values_render_empty_bars() {
        let s = bar_chart(
            &[("z".into(), 0.0), ("n".into(), f64::NAN), ("x".into(), 1.0)],
            8,
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].matches('█').count(), 0);
        assert_eq!(lines[1].matches('█').count(), 0);
        assert_eq!(lines[2].matches('█').count(), 8);
    }

    #[test]
    fn sparkline_monotone() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s, "▁▃▆█");
    }

    #[test]
    fn sparkline_flat_is_low() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
    }
}
