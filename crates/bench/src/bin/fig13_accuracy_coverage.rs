//! Fig. 13: (a) prefetch accuracy of IMP and SVR-16/64 with and without
//! loop-bound prediction; (b) coverage — DRAM loads by origin normalized to
//! the in-order baseline's demand loads; (c, beyond the paper) timeliness
//! and pollution from the shared efficacy taxonomy (DESIGN.md § Profiling).
use svr_bench::{sweep, BenchArgs, Figure};
use svr_core::{LoopBoundMode, SvrConfig};
use svr_sim::{RunReport, SimConfig};
use svr_workloads::{irregular_suite, Group, Kernel};

fn svr_maxlength(n: usize) -> SimConfig {
    SimConfig::svr_with(SvrConfig {
        loop_bound_mode: LoopBoundMode::Maxlength,
        ..SvrConfig::with_length(n)
    })
}

fn group_rows<'a>(
    suite: &'a [Kernel],
    reports: &'a [&'a RunReport],
    g: Group,
) -> impl Iterator<Item = &'a RunReport> {
    suite
        .iter()
        .zip(reports)
        .filter(move |(k, _)| k.group() == g)
        .map(|(_, r)| *r)
}

fn main() {
    let args = BenchArgs::parse("fig13_accuracy_coverage");
    let suite = irregular_suite();
    let groups = [
        Group::Bc,
        Group::Bfs,
        Group::Cc,
        Group::Pr,
        Group::Sssp,
        Group::HpcDb,
    ];
    // Config 0 is the coverage baseline; 1.. are the plotted prefetchers.
    let names = ["IMP", "SVR16-Max", "SVR16", "SVR64-Max", "SVR64"];
    let res = sweep(suite.clone(), &args)
        .configs(vec![
            SimConfig::inorder(),
            SimConfig::imp(),
            svr_maxlength(16),
            SimConfig::svr(16),
            svr_maxlength(64),
            SimConfig::svr(64),
        ])
        .run(args.threads);
    res.assert_verified();
    let base = res.config_reports(0);

    let mut fig = Figure::new(
        "fig13_accuracy_coverage",
        "Fig. 13 — prefetch accuracy and coverage",
        &args,
    );
    fig.section(
        "Fig. 13a — prefetch accuracy (% of prefetched lines used)",
        "group",
        &names,
    );
    for g in groups {
        let mut row = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let reports = res.config_reports(i + 1);
            let accs: Vec<f64> = group_rows(&suite, &reports, g)
                .filter_map(|r| {
                    if *name == "IMP" {
                        r.mem.imp.accuracy()
                    } else {
                        r.svr_accuracy()
                    }
                })
                .collect();
            row.push(if accs.is_empty() {
                f64::NAN
            } else {
                accs.iter().sum::<f64>() / accs.len() as f64 * 100.0
            });
        }
        fig.row(g.label(), &row);
    }

    fig.section(
        "Fig. 13b — coverage: % DRAM demand loads remaining / prefetch traffic / total, \
         normalized to the in-order baseline's DRAM demand loads",
        "group/config",
        &["demand", "prefetch", "total"],
    );
    for g in groups {
        for (i, name) in names.iter().enumerate() {
            let reports = res.config_reports(i + 1);
            let mut demand = 0.0;
            let mut pf = 0.0;
            let mut base_demand = 0.0;
            for (r, b) in group_rows(&suite, &reports, g).zip(group_rows(&suite, &base, g)) {
                demand += r.mem.dram_demand_data as f64;
                pf += (r.mem.dram_svr_pf + r.mem.dram_imp_pf) as f64;
                base_demand += b.mem.dram_demand_data as f64;
            }
            fig.row(
                &format!("{}/{}", g.label(), name),
                &[
                    demand / base_demand * 100.0,
                    pf / base_demand * 100.0,
                    (demand + pf) / base_demand * 100.0,
                ],
            );
        }
    }
    // Beyond the paper: the full efficacy taxonomy the profiler maintains
    // (PR 5). "late" is the share of useful prefetches whose fill was still
    // in flight at first demand touch; "pollution" charges demand misses to
    // the prefetch fills that evicted the victims, per 1k issued prefetches.
    // Pollution counts are exact per victim line (PR 7) — no longer the
    // lower bound the old direct-mapped evicted-by filter produced.
    fig.section(
        "Fig. 13c — prefetch timeliness and pollution (taxonomy extension): \
         late % of useful prefetches, demand misses blamed on prefetch \
         evictions per 1k issued",
        "group/config",
        &["late", "pollution"],
    );
    for g in groups {
        for (i, name) in names.iter().enumerate() {
            let reports = res.config_reports(i + 1);
            let (mut used, mut late, mut pollution, mut issued) = (0u64, 0u64, 0u64, 0u64);
            for r in group_rows(&suite, &reports, g) {
                let c = if *name == "IMP" { &r.mem.imp } else { &r.mem.svr };
                used += c.used;
                late += c.late;
                pollution += c.pollution;
                issued += c.issued;
            }
            let late_pct = if used + late == 0 {
                f64::NAN
            } else {
                late as f64 / (used + late) as f64 * 100.0
            };
            let poll_per_k = if issued == 0 {
                f64::NAN
            } else {
                pollution as f64 / issued as f64 * 1000.0
            };
            fig.row(&format!("{}/{}", g.label(), name), &[late_pct, poll_per_k]);
        }
    }
    fig.attach(&res);
    fig.finish();
}
