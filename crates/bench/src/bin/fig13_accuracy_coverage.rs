//! Fig. 13: (a) prefetch accuracy of IMP and SVR-16/64 with and without
//! loop-bound prediction; (b) coverage — DRAM loads by origin normalized to
//! the in-order baseline's demand loads.
use svr_bench::{assert_verified, scale_from_args};
use svr_core::{LoopBoundMode, SvrConfig};
use svr_sim::{run_parallel, RunReport, SimConfig};
use svr_workloads::{irregular_suite, Group, Kernel};

fn svr_maxlength(n: usize) -> SimConfig {
    SimConfig::svr_with(SvrConfig {
        loop_bound_mode: LoopBoundMode::Maxlength,
        ..SvrConfig::with_length(n)
    })
}

fn group_rows<'a>(
    suite: &'a [Kernel],
    reports: &'a [RunReport],
    g: Group,
) -> impl Iterator<Item = &'a RunReport> {
    suite
        .iter()
        .zip(reports)
        .filter(move |(k, _)| k.group() == g)
        .map(|(_, r)| r)
}

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    let groups = [
        Group::Bc,
        Group::Bfs,
        Group::Cc,
        Group::Pr,
        Group::Sssp,
        Group::HpcDb,
    ];
    let configs: Vec<(&str, SimConfig)> = vec![
        ("IMP", SimConfig::imp()),
        ("SVR16-Max", svr_maxlength(16)),
        ("SVR16", SimConfig::svr(16)),
        ("SVR64-Max", svr_maxlength(64)),
        ("SVR64", SimConfig::svr(64)),
    ];
    let mut results: Vec<(String, Vec<RunReport>)> = Vec::new();
    let base_jobs: Vec<_> = suite
        .iter()
        .map(|k| (*k, scale, SimConfig::inorder()))
        .collect();
    let base = run_parallel(base_jobs, 1);
    assert_verified(&base);
    for (name, cfg) in &configs {
        let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
        let reports = run_parallel(jobs, 1);
        assert_verified(&reports);
        results.push((name.to_string(), reports));
    }

    println!("# Fig. 13a — prefetch accuracy (fraction of prefetched lines used)");
    print!("{:8}", "group");
    for (name, _) in &results {
        print!(" {name:>10}");
    }
    println!();
    for g in groups {
        print!("{:8}", g.label());
        for (name, reports) in &results {
            let accs: Vec<f64> = group_rows(&suite, reports, g)
                .filter_map(|r| {
                    if name == "IMP" {
                        r.mem.imp.accuracy()
                    } else {
                        r.svr_accuracy()
                    }
                })
                .collect();
            let mean = if accs.is_empty() {
                f64::NAN
            } else {
                accs.iter().sum::<f64>() / accs.len() as f64
            };
            print!(" {:>9.0}%", mean * 100.0);
        }
        println!();
    }

    println!();
    println!("# Fig. 13b — coverage: DRAM demand loads remaining + prefetch traffic,");
    println!("#           normalized to the in-order baseline's DRAM demand loads");
    println!(
        "{:8} {:>10} {:>10} {:>10} {:>10}",
        "group", "config", "demand", "prefetch", "total"
    );
    for g in groups {
        for (name, reports) in &results {
            let mut demand = 0.0;
            let mut pf = 0.0;
            let mut base_demand = 0.0;
            for (r, b) in group_rows(&suite, reports, g).zip(group_rows(&suite, &base, g)) {
                demand += r.mem.dram_demand_data as f64;
                pf += (r.mem.dram_svr_pf + r.mem.dram_imp_pf) as f64;
                base_demand += b.mem.dram_demand_data as f64;
            }
            println!(
                "{:8} {:>10} {:>9.0}% {:>9.0}% {:>9.0}%",
                g.label(),
                name,
                demand / base_demand * 100.0,
                pf / base_demand * 100.0,
                (demand + pf) / base_demand * 100.0
            );
        }
    }
}
