//! Self-timing harness for the simulator hot path.
//!
//! Re-runs the Fig. 11 sweep (the broadest all-config workload × config
//! product) with the result cache disabled, times the sweep end to end
//! (workload build + simulation), and records the measurement against the
//! checked-in pre-rework baseline in `results/perf_baseline.json`.
//! See DESIGN.md ("The performance baseline") for the schema.
//!
//! It also times the trace subsystem: the same workload simulated with the
//! `NullSink` (tracing compiled out — this is the sweep's configuration) and
//! with the bounded ring sink attached, recording both wall times and
//! asserting the traced run's `RunReport` is bit-identical.
//!
//! Finally it probes warp mode: the same workload fast-forwarded through the
//! pre-decoded functional engine (`ExecMode::Warp`) against detailed runs of
//! the in-order core and of SVR16 (the config of record, which carries the
//! documented speedup target), asserting that warp agrees with detailed on
//! retired instructions and clears that target.

use std::time::Instant;

use svr_bench::{paper_configs, sweep, BenchArgs};
use svr_sim::{run_workload, run_workload_traced, RunOptions, SimConfig};
use svr_trace::RingSink;
use svr_workloads::{irregular_suite, Kernel, Scale};

/// Wall time of `fig11_cpi --no-cache` at the default (small) scale on the
/// reference machine *before* the integer-timing / hot-path rework.
const BASELINE_WALL_MS: u64 = 154_000;

/// Documented goal of the hot-path rework: at least 2× the baseline.
const TARGET_SPEEDUP: f64 = 2.0;

/// Iterations of the trace-overhead probe (smooths scheduler noise).
const TRACE_PROBE_ITERS: u32 = 3;

/// Iterations of the warp probe (warp runs are fast; more reps, less noise).
const WARP_PROBE_ITERS: u32 = 10;

/// Documented goal of warp mode: at least 10× the detailed config of record
/// (SVR16 — the configuration a sampled run would otherwise simulate in
/// detail). The ratio against the cheapest detailed core (plain in-order) is
/// recorded alongside as the conservative bound.
const WARP_TARGET_SPEEDUP: f64 = 10.0;

fn main() {
    let mut args = BenchArgs::parse("perf_baseline");
    // The measurement is only meaningful uncached.
    args.no_cache = true;

    let start = Instant::now();
    let res = sweep(irregular_suite(), &args)
        .configs(paper_configs())
        .run(args.threads);
    let wall_ms = start.elapsed().as_millis() as u64;
    res.assert_verified();

    // Trace-overhead probe: fixed tiny pair so the numbers are comparable
    // across scales and machines.
    let probe = Kernel::Camel.build(Scale::Tiny);
    let cfg = SimConfig::svr(16);
    let budget = Scale::Tiny.max_insts();
    let t = Instant::now();
    let mut base = None;
    for _ in 0..TRACE_PROBE_ITERS {
        base = Some(run_workload(&probe, &cfg, &RunOptions::detailed(budget)).expect("valid config"));
    }
    let trace_off_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(TRACE_PROBE_ITERS);
    let t = Instant::now();
    let mut traced = None;
    let mut ring_events = 0;
    for _ in 0..TRACE_PROBE_ITERS {
        let mut ring = RingSink::new(cfg.trace.ring_capacity);
        traced = Some(
            run_workload_traced(&probe, &cfg, &RunOptions::detailed(budget), &mut ring)
                .expect("valid config"),
        );
        ring_events = ring.total();
    }
    let ring_sink_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(TRACE_PROBE_ITERS);
    let trace_identical = base == traced;
    assert!(
        trace_identical,
        "ring-sink run diverged from the untraced run"
    );

    // Warp probe: functional fast-forward vs detailed runs of the same
    // instruction stream (Camel at small scale, so per-instruction engine
    // cost dominates the shared fixed work on every side). Two detailed
    // baselines are recorded: plain in-order (the cheapest detailed config —
    // the conservative ratio) and SVR16 (the paper's config of record — what
    // a sampled run would otherwise simulate in detail; the documented 10×
    // target is gated on this one, mirroring SMARTS-style practice of
    // comparing fast-forward against the detailed config of interest). Each
    // side takes the minimum over its iterations: wall-clock interference
    // only ever adds time, so the min estimates the uncontended cost.
    // State agreement is a hard assertion (the full architectural-equality
    // matrix lives in tests/exec_modes.rs).
    let warp_probe = Kernel::Camel.build(Scale::Small);
    let warp_budget = Scale::Small.max_insts();
    let ino = SimConfig::inorder();
    let svr16 = SimConfig::svr(16);
    let mut detailed = None;
    let mut warp_det_ino_ms = f64::MAX;
    for _ in 0..TRACE_PROBE_ITERS {
        let t = Instant::now();
        detailed = Some(
            run_workload(&warp_probe, &ino, &RunOptions::detailed(warp_budget))
                .expect("valid config"),
        );
        warp_det_ino_ms = warp_det_ino_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let mut warp_det_svr_ms = f64::MAX;
    for _ in 0..TRACE_PROBE_ITERS {
        let t = Instant::now();
        run_workload(&warp_probe, &svr16, &RunOptions::detailed(warp_budget))
            .expect("valid config");
        warp_det_svr_ms = warp_det_svr_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let mut warp = None;
    let mut warp_ms = f64::MAX;
    for _ in 0..WARP_PROBE_ITERS {
        let t = Instant::now();
        warp = Some(
            run_workload(&warp_probe, &ino, &RunOptions::warp(warp_budget)).expect("valid config"),
        );
        warp_ms = warp_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let (d_report, w_report) = (detailed.expect("ran"), warp.expect("ran"));
    let warp_state_matches = d_report.core.retired == w_report.core.retired
        && w_report.verified
        && w_report.core.cycles == 0;
    assert!(
        warp_state_matches,
        "warp run disagrees with the detailed run (retired {} vs {}, verified {})",
        w_report.core.retired, d_report.core.retired, w_report.verified
    );
    let warp_speedup_ino = warp_det_ino_ms / warp_ms.max(1e-6);
    let warp_speedup = warp_det_svr_ms / warp_ms.max(1e-6);

    let speedup = BASELINE_WALL_MS as f64 / wall_ms.max(1) as f64;
    let json = format!(
        "{{\n  \"name\": \"perf_baseline\",\n  \"benchmark\": \"fig11_cpi --no-cache --scale {}\",\n  \"pairs\": {},\n  \"baseline_wall_ms\": {},\n  \"current_wall_ms\": {},\n  \"speedup\": {:.3},\n  \"target_speedup\": {:.1},\n  \"trace_probe\": \"Camel/SVR16 --scale tiny\",\n  \"trace_off_wall_ms\": {:.3},\n  \"ring_sink_wall_ms\": {:.3},\n  \"ring_sink_events\": {},\n  \"trace_identical\": {},\n  \"warp_probe\": \"Camel --scale small, min over iterations\",\n  \"warp_detailed_ino_wall_ms\": {:.3},\n  \"warp_detailed_svr16_wall_ms\": {:.3},\n  \"warp_wall_ms\": {:.3},\n  \"warp_speedup_ino\": {:.3},\n  \"warp_speedup\": {:.3},\n  \"warp_target_speedup\": {:.1},\n  \"warp_state_matches\": {}\n}}\n",
        args.scale.name(),
        res.stats.pairs,
        BASELINE_WALL_MS,
        wall_ms,
        speedup,
        TARGET_SPEEDUP,
        trace_off_ms,
        ring_sink_ms,
        ring_events,
        trace_identical,
        warp_det_ino_ms,
        warp_det_svr_ms,
        warp_ms,
        warp_speedup_ino,
        warp_speedup,
        WARP_TARGET_SPEEDUP,
        warp_state_matches,
    );
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "results/perf_baseline.json".into());
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, &json).expect("write perf_baseline.json");

    println!(
        "perf_baseline: {} pairs in {:.1}s ({:.2}x vs {:.1}s baseline, target {:.1}x)",
        res.stats.pairs,
        wall_ms as f64 / 1000.0,
        speedup,
        BASELINE_WALL_MS as f64 / 1000.0,
        TARGET_SPEEDUP,
    );
    println!(
        "trace probe: off {trace_off_ms:.2} ms, ring sink {ring_sink_ms:.2} ms \
         ({ring_events} events), identical={trace_identical}"
    );
    println!(
        "warp probe: detailed InO {warp_det_ino_ms:.2} ms / SVR16 {warp_det_svr_ms:.2} ms, \
         warp {warp_ms:.2} ms ({warp_speedup:.1}x vs SVR16, target {WARP_TARGET_SPEEDUP:.0}x; \
         {warp_speedup_ino:.1}x vs InO), state_matches={warp_state_matches}"
    );
    if warp_speedup < WARP_TARGET_SPEEDUP {
        eprintln!(
            "warning: warp speedup {warp_speedup:.2}x is below the \
             {WARP_TARGET_SPEEDUP:.1}x target"
        );
    }
    println!("wrote {}", path.display());
    if args.scale.name() == "small" && speedup < TARGET_SPEEDUP {
        eprintln!(
            "warning: speedup {speedup:.2}x is below the {TARGET_SPEEDUP:.1}x target"
        );
    }
}
