//! Self-timing harness for the simulator hot path.
//!
//! Re-runs the Fig. 11 sweep (the broadest all-config workload × config
//! product) with the result cache disabled, times the sweep end to end
//! (workload build + simulation), and records the measurement against the
//! checked-in pre-rework baseline in `results/perf_baseline.json`.
//! See DESIGN.md ("The performance baseline") for the schema.

use std::time::Instant;

use svr_bench::{paper_configs, sweep, BenchArgs};
use svr_workloads::irregular_suite;

/// Wall time of `fig11_cpi --no-cache` at the default (small) scale on the
/// reference machine *before* the integer-timing / hot-path rework.
const BASELINE_WALL_MS: u64 = 154_000;

/// Documented goal of the hot-path rework: at least 2× the baseline.
const TARGET_SPEEDUP: f64 = 2.0;

fn main() {
    let mut args = BenchArgs::parse("perf_baseline");
    // The measurement is only meaningful uncached.
    args.no_cache = true;

    let start = Instant::now();
    let res = sweep(irregular_suite(), &args)
        .configs(paper_configs())
        .run(args.threads);
    let wall_ms = start.elapsed().as_millis() as u64;
    res.assert_verified();

    let speedup = BASELINE_WALL_MS as f64 / wall_ms.max(1) as f64;
    let json = format!(
        "{{\n  \"name\": \"perf_baseline\",\n  \"benchmark\": \"fig11_cpi --no-cache --scale {}\",\n  \"pairs\": {},\n  \"baseline_wall_ms\": {},\n  \"current_wall_ms\": {},\n  \"speedup\": {:.3},\n  \"target_speedup\": {:.1}\n}}\n",
        args.scale.name(),
        res.stats.pairs,
        BASELINE_WALL_MS,
        wall_ms,
        speedup,
        TARGET_SPEEDUP,
    );
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "results/perf_baseline.json".into());
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, &json).expect("write perf_baseline.json");

    println!(
        "perf_baseline: {} pairs in {:.1}s ({:.2}x vs {:.1}s baseline, target {:.1}x)",
        res.stats.pairs,
        wall_ms as f64 / 1000.0,
        speedup,
        BASELINE_WALL_MS as f64 / 1000.0,
        TARGET_SPEEDUP,
    );
    println!("wrote {}", path.display());
    if args.scale.name() == "small" && speedup < TARGET_SPEEDUP {
        eprintln!(
            "warning: speedup {speedup:.2}x is below the {TARGET_SPEEDUP:.1}x target"
        );
    }
}
