//! Fig. 14: SVR overhead on regular (SPEC-like) workloads — normalized IPC
//! of SVR-16 vs the in-order baseline; the paper reports a 1% average
//! degradation.
use svr_bench::{sweep, BenchArgs, Figure};
use svr_sim::SimConfig;
use svr_workloads::regular_suite;

fn main() {
    let args = BenchArgs::parse("fig14_spec_overhead");
    let suite = regular_suite();
    let res = sweep(suite.clone(), &args)
        .configs(vec![SimConfig::inorder(), SimConfig::svr(16)])
        .run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "fig14_spec_overhead",
        "Fig. 14 — normalized IPC of SVR-16 on SPEC-like regular workloads",
        &args,
    );
    fig.section("", "workload", &["norm-IPC"]);
    let mut inv = 0.0;
    for (wi, k) in suite.iter().enumerate() {
        let ratio = res.report(1, wi).ipc() / res.report(0, wi).ipc();
        inv += 1.0 / ratio;
        fig.row(&k.name(), &[ratio]);
    }
    fig.row("H-mean", &[suite.len() as f64 / inv]);
    fig.attach(&res);
    fig.finish();
}
