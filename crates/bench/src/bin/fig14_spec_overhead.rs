//! Fig. 14: SVR overhead on regular (SPEC-like) workloads — normalized IPC
//! of SVR-16 vs the in-order baseline; the paper reports a 1% average
//! degradation.
use svr_bench::scale_from_args;
use svr_sim::{run_kernel, SimConfig};
use svr_workloads::regular_suite;

fn main() {
    let scale = scale_from_args();
    println!("# Fig. 14 — normalized IPC of SVR-16 on SPEC-like regular workloads");
    println!("{:12} {:>10}", "workload", "norm-IPC");
    let mut ratios = Vec::new();
    for k in regular_suite() {
        let base = run_kernel(k, scale, &SimConfig::inorder());
        let svr = run_kernel(k, scale, &SimConfig::svr(16));
        assert!(base.verified && svr.verified, "{} failed", k.name());
        let ratio = svr.ipc() / base.ipc();
        ratios.push(ratio);
        println!("{:12} {:>10.3}", k.name(), ratio);
    }
    let hmean = ratios.len() as f64 / ratios.iter().map(|r| 1.0 / r).sum::<f64>();
    println!("{:12} {:>10.3}", "H-mean", hmean);
}
