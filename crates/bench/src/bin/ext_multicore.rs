//! Extension experiment (beyond the paper): §VI-E observes that SVR does
//! not saturate memory bandwidth and conjectures that "SVR across multiple
//! cores simultaneously would give significant benefit".
//!
//! We model an M-core SoC running one SVR instance per core by giving each
//! core a 1/M share of the 50 GiB/s channel (the DRAM model is
//! bandwidth-queued, so this is the steady-state contention equivalent) and
//! report how per-core SVR speedup holds up as cores are added.

use svr_bench::{assert_verified, scale_from_args};
use svr_sim::{harmonic_mean_speedup, run_parallel, SimConfig};
use svr_workloads::irregular_suite;

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    println!("# Extension — per-core SVR speedup with M cores sharing 50 GiB/s");
    println!(
        "{:6} {:>10} {:>8} {:>8}",
        "cores", "GiB/s/core", "SVR16", "SVR64"
    );
    for &cores in &[1u32, 2, 4] {
        let bw = 50.0 / cores as f64;
        let base_cfg = SimConfig::inorder().with_bandwidth(bw);
        let base_jobs: Vec<_> = suite
            .iter()
            .map(|k| (*k, scale, base_cfg.clone()))
            .collect();
        let base = run_parallel(base_jobs, 1);
        assert_verified(&base);
        let mut row = Vec::new();
        for n in [16usize, 64] {
            let cfg = SimConfig::svr(n).with_bandwidth(bw);
            let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
            let reports = run_parallel(jobs, 1);
            assert_verified(&reports);
            row.push(harmonic_mean_speedup(&base, &reports));
        }
        println!("{:6} {:>10.2} {:>8.2} {:>8.2}", cores, bw, row[0], row[1]);
    }
}
