//! Extension experiment (beyond the paper): §VI-E observes that SVR does
//! not saturate memory bandwidth and conjectures that "SVR across multiple
//! cores simultaneously would give significant benefit".
//!
//! We model an M-core SoC running one SVR instance per core by giving each
//! core a 1/M share of the 50 GiB/s channel (the DRAM model is
//! bandwidth-queued, so this is the steady-state contention equivalent) and
//! report how per-core SVR speedup holds up as cores are added.

use svr_bench::{sweep, BenchArgs, Figure};
use svr_sim::SimConfig;
use svr_workloads::irregular_suite;

fn main() {
    let args = BenchArgs::parse("ext_multicore");
    let core_counts = [1u32, 2, 4];
    // Triples of (InO, SVR16, SVR64) per core count, flattened.
    let mut configs = Vec::new();
    for &cores in &core_counts {
        let bw = 50.0 / f64::from(cores);
        configs.push(SimConfig::inorder().with_bandwidth(bw));
        configs.push(SimConfig::svr(16).with_bandwidth(bw));
        configs.push(SimConfig::svr(64).with_bandwidth(bw));
    }
    let res = sweep(irregular_suite(), &args)
        .configs(configs)
        .run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "ext_multicore",
        "Extension — per-core SVR speedup with M cores sharing 50 GiB/s",
        &args,
    );
    fig.section("", "cores", &["GiB/s/core", "SVR16", "SVR64"]);
    for (i, cores) in core_counts.iter().enumerate() {
        let base = 3 * i;
        fig.row(
            &cores.to_string(),
            &[
                50.0 / f64::from(*cores),
                res.speedup(base, base + 1),
                res.speedup(base, base + 2),
            ],
        );
    }
    fig.attach(&res);
    fig.finish();
}
