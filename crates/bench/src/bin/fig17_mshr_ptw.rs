//! Fig. 17: harmonic-mean speedup over the in-order baseline while sweeping
//! L1 MSHRs (1..32) and page-table walkers (2/4/6), for SVR-16 and SVR-64.
use svr_bench::{assert_verified, scale_from_args};
use svr_sim::{harmonic_mean_speedup, run_parallel, SimConfig};
use svr_workloads::irregular_suite;

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    println!("# Fig. 17 — speedup vs #MSHRs and #PTWs (baseline: in-order, same MSHRs)");
    println!("{:6} {:4} {:>8} {:>8}", "mshrs", "ptw", "SVR16", "SVR64");
    for &mshrs in &[1usize, 4, 8, 16, 32] {
        for &ptw in &[2usize, 4] {
            let base_cfg = SimConfig::inorder().with_mshrs(mshrs).with_ptws(ptw);
            let base_jobs: Vec<_> = suite
                .iter()
                .map(|k| (*k, scale, base_cfg.clone()))
                .collect();
            let base = run_parallel(base_jobs, 1);
            assert_verified(&base);
            let mut row = Vec::new();
            for n in [16usize, 64] {
                let cfg = SimConfig::svr(n).with_mshrs(mshrs).with_ptws(ptw);
                let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
                let reports = run_parallel(jobs, 1);
                assert_verified(&reports);
                row.push(harmonic_mean_speedup(&base, &reports));
            }
            println!("{:6} {:4} {:>8.2} {:>8.2}", mshrs, ptw, row[0], row[1]);
        }
    }
}
