//! Fig. 17: harmonic-mean speedup over the in-order baseline while sweeping
//! L1 MSHRs (1..32) and page-table walkers (2/4), for SVR-16 and SVR-64.
use svr_bench::{sweep, BenchArgs, Figure};
use svr_sim::SimConfig;
use svr_workloads::irregular_suite;

fn main() {
    let args = BenchArgs::parse("fig17_mshr_ptw");
    let suite = irregular_suite();
    let mshr_axis = [1usize, 4, 8, 16, 32];
    let ptw_axis = [2usize, 4];
    // Triples of (InO, SVR16, SVR64) per (mshrs, ptw) design point, flattened.
    let mut configs = Vec::new();
    for &mshrs in &mshr_axis {
        for &ptw in &ptw_axis {
            configs.push(SimConfig::inorder().with_mshrs(mshrs).with_ptws(ptw));
            configs.push(SimConfig::svr(16).with_mshrs(mshrs).with_ptws(ptw));
            configs.push(SimConfig::svr(64).with_mshrs(mshrs).with_ptws(ptw));
        }
    }
    let res = sweep(suite, &args).configs(configs).run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "fig17_mshr_ptw",
        "Fig. 17 — speedup vs #MSHRs and #PTWs (baseline: in-order, same MSHRs)",
        &args,
    );
    fig.section("", "mshrs/ptw", &["SVR16", "SVR64"]);
    for (mi, mshrs) in mshr_axis.iter().enumerate() {
        for (pi, ptw) in ptw_axis.iter().enumerate() {
            let base = 3 * (mi * ptw_axis.len() + pi);
            fig.row(
                &format!("{mshrs}/{ptw}"),
                &[res.speedup(base, base + 1), res.speedup(base, base + 2)],
            );
        }
    }
    fig.attach(&res);
    fig.finish();
}
