//! Fig. 16: impact of the number of scalars entering execute per cycle
//! (1, 2, 4, 8) for SVR-16 and SVR-64 — flat in the paper, because runahead
//! is memory-bound.
use svr_bench::{assert_verified, scale_from_args};
use svr_core::SvrConfig;
use svr_sim::{harmonic_mean_speedup, run_parallel, SimConfig};
use svr_workloads::irregular_suite;

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    let base_jobs: Vec<_> = suite
        .iter()
        .map(|k| (*k, scale, SimConfig::inorder()))
        .collect();
    let base = run_parallel(base_jobs, 1);
    assert_verified(&base);
    println!("# Fig. 16 — normalized IPC vs scalars per vector unit");
    println!("{:6} {:>8} {:>8}", "spc", "SVR16", "SVR64");
    for spc in [1u32, 2, 4, 8] {
        let mut row = Vec::new();
        for n in [16usize, 64] {
            let cfg = SimConfig::svr_with(SvrConfig {
                scalars_per_cycle: spc,
                ..SvrConfig::with_length(n)
            });
            let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
            let reports = run_parallel(jobs, 1);
            assert_verified(&reports);
            row.push(harmonic_mean_speedup(&base, &reports));
        }
        println!("{:6} {:>8.2} {:>8.2}", spc, row[0], row[1]);
    }
}
