//! Fig. 16: impact of the number of scalars entering execute per cycle
//! (1, 2, 4, 8) for SVR-16 and SVR-64 — flat in the paper, because runahead
//! is memory-bound.
use svr_bench::{sweep, BenchArgs, Figure};
use svr_core::SvrConfig;
use svr_sim::SimConfig;
use svr_workloads::irregular_suite;

fn main() {
    let args = BenchArgs::parse("fig16_vector_units");
    let spcs = [1u32, 2, 4, 8];
    // Config 0 is the baseline; then (spc, n) pairs in row-major order.
    let mut configs = vec![SimConfig::inorder()];
    for &spc in &spcs {
        for n in [16usize, 64] {
            configs.push(SimConfig::svr_with(SvrConfig {
                scalars_per_cycle: spc,
                ..SvrConfig::with_length(n)
            }));
        }
    }
    let res = sweep(irregular_suite(), &args)
        .configs(configs)
        .run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "fig16_vector_units",
        "Fig. 16 — normalized IPC vs scalars per vector unit",
        &args,
    );
    fig.section("", "spc", &["SVR16", "SVR64"]);
    for (si, spc) in spcs.iter().enumerate() {
        let row: Vec<f64> = (0..2)
            .map(|half| res.speedup(0, 1 + si * 2 + half))
            .collect();
        fig.row(&spc.to_string(), &row);
    }
    fig.attach(&res);
    fig.finish();
}
