//! Fig. 18: memory-bandwidth sensitivity — SVR speedup relative to an
//! in-order baseline with the *same* bandwidth (12.5..100 GiB/s).
use svr_bench::{sweep, BenchArgs, Figure};
use svr_sim::SimConfig;
use svr_workloads::irregular_suite;

fn main() {
    let args = BenchArgs::parse("fig18_bandwidth");
    let bws = [12.5f64, 25.0, 50.0, 100.0];
    // Triples of (InO, SVR16, SVR64) per bandwidth, flattened.
    let mut configs = Vec::new();
    for &bw in &bws {
        configs.push(SimConfig::inorder().with_bandwidth(bw));
        configs.push(SimConfig::svr(16).with_bandwidth(bw));
        configs.push(SimConfig::svr(64).with_bandwidth(bw));
    }
    let res = sweep(irregular_suite(), &args)
        .configs(configs)
        .run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "fig18_bandwidth",
        "Fig. 18 — speedup vs DRAM bandwidth (baseline: in-order at same bandwidth)",
        &args,
    );
    fig.section("", "GiB/s", &["SVR16", "SVR64"]);
    for (bi, bw) in bws.iter().enumerate() {
        let base = 3 * bi;
        fig.row(
            &format!("{bw:.1}"),
            &[res.speedup(base, base + 1), res.speedup(base, base + 2)],
        );
    }
    fig.attach(&res);
    fig.finish();
}
