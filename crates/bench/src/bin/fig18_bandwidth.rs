//! Fig. 18: memory-bandwidth sensitivity — SVR speedup relative to an
//! in-order baseline with the *same* bandwidth (12.5..100 GiB/s).
use svr_bench::{assert_verified, scale_from_args};
use svr_sim::{harmonic_mean_speedup, run_parallel, SimConfig};
use svr_workloads::irregular_suite;

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    println!("# Fig. 18 — speedup vs DRAM bandwidth (baseline: in-order at same bandwidth)");
    println!("{:>10} {:>8} {:>8}", "GiB/s", "SVR16", "SVR64");
    for &bw in &[12.5f64, 25.0, 50.0, 100.0] {
        let base_cfg = SimConfig::inorder().with_bandwidth(bw);
        let base_jobs: Vec<_> = suite
            .iter()
            .map(|k| (*k, scale, base_cfg.clone()))
            .collect();
        let base = run_parallel(base_jobs, 1);
        assert_verified(&base);
        let mut row = Vec::new();
        for n in [16usize, 64] {
            let cfg = SimConfig::svr(n).with_bandwidth(bw);
            let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
            let reports = run_parallel(jobs, 1);
            assert_verified(&reports);
            row.push(harmonic_mean_speedup(&base, &reports));
        }
        println!("{:>10.1} {:>8.2} {:>8.2}", bw, row[0], row[1]);
    }
}
