//! Fig. 1: harmonic-mean speedup (IPC) and normalized whole-system energy
//! for InO, IMP, OoO and SVR-8..128 over the 33-workload irregular suite.
use svr_bench::{assert_verified, paper_configs, scale_from_args};
use svr_sim::{harmonic_mean_speedup, run_parallel, RunReport};
use svr_workloads::irregular_suite;

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    println!("# Fig. 1 — average speedup and normalized energy vs in-order baseline");
    println!("{:8} {:>8} {:>12}", "config", "speedup", "norm-energy");
    let mut base: Option<(Vec<RunReport>, f64)> = None;
    for cfg in paper_configs() {
        let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
        let reports = run_parallel(jobs, 1);
        assert_verified(&reports);
        let energy: f64 = reports.iter().map(|r| r.energy.total_nj()).sum();
        match &base {
            None => {
                println!("{:8} {:>8.2} {:>12.2}", cfg.label(), 1.0, 1.0);
                base = Some((reports, energy));
            }
            Some((b, be)) => {
                let s = harmonic_mean_speedup(b, &reports);
                println!("{:8} {:>8.2} {:>12.2}", cfg.label(), s, energy / be);
            }
        }
    }
}
