//! Fig. 1: harmonic-mean speedup (IPC) and normalized whole-system energy
//! for InO, IMP, OoO and SVR-8..128 over the 33-workload irregular suite.
use svr_bench::{paper_configs, sweep, BenchArgs, Figure};
use svr_workloads::irregular_suite;

fn main() {
    let args = BenchArgs::parse("fig01_headline");
    let configs = paper_configs();
    let res = sweep(irregular_suite(), &args)
        .configs(configs.clone())
        .run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "fig01_headline",
        "Fig. 1 — average speedup and normalized energy vs in-order baseline",
        &args,
    );
    fig.section("", "config", &["speedup", "norm-energy"]);
    let energy = |ci: usize| -> f64 {
        res.config_reports(ci)
            .iter()
            .map(|r| r.energy.total_nj())
            .sum()
    };
    let base_energy = energy(0);
    for (ci, cfg) in configs.iter().enumerate() {
        let speedup = if ci == 0 { 1.0 } else { res.speedup(0, ci) };
        fig.row(&cfg.label(), &[speedup, energy(ci) / base_energy]);
    }
    fig.attach(&res);
    fig.finish();
}
