//! Fig. 3: CPI stacks (base/branch/other vs mem-dram) for the in-order and
//! out-of-order baselines, grouped as in the paper.
use svr_bench::{sweep, BenchArgs, Figure};
use svr_sim::{RunReport, SimConfig};
use svr_workloads::{irregular_suite, Group};

fn main() {
    let args = BenchArgs::parse("fig03_cpi_stacks");
    let suite = irregular_suite();
    let res = sweep(suite.clone(), &args)
        .configs(vec![SimConfig::inorder(), SimConfig::ooo()])
        .run(args.threads);
    res.assert_verified();

    let groups = [
        Group::Bc,
        Group::Bfs,
        Group::Cc,
        Group::Pr,
        Group::Sssp,
        Group::HpcDb,
    ];
    let mut fig = Figure::new(
        "fig03_cpi_stacks",
        "Fig. 3 — CPI stacks, in-order vs out-of-order",
        &args,
    );
    for (ci, core) in ["InO", "OoO"].iter().enumerate() {
        let reports = res.config_reports(ci);
        fig.section(
            &format!("{core} baseline"),
            "group",
            &["cpi", "mem-dram", "other"],
        );
        let mut total_dram = 0.0;
        let mut total_cpi = 0.0;
        for g in groups {
            let rs: Vec<&&RunReport> = suite
                .iter()
                .zip(&reports)
                .filter(|(k, _)| k.group() == g)
                .map(|(_, r)| r)
                .collect();
            let cpi: f64 = rs.iter().map(|r| r.cpi()).sum::<f64>() / rs.len() as f64;
            let dram: f64 = rs
                .iter()
                .map(|r| r.core.stack.mem_dram as f64 / r.core.retired as f64)
                .sum::<f64>()
                / rs.len() as f64;
            fig.row(g.label(), &[cpi, dram, cpi - dram]);
            total_dram += dram;
            total_cpi += cpi;
        }
        let n = groups.len() as f64;
        fig.row(
            "Avg.",
            &[total_cpi / n, total_dram / n, (total_cpi - total_dram) / n],
        );
    }
    fig.attach(&res);
    fig.finish();
}
