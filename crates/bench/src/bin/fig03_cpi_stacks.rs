//! Fig. 3: CPI stacks (base/branch/other vs mem-dram) for the in-order and
//! out-of-order baselines, grouped as in the paper.
use svr_bench::{assert_verified, scale_from_args};
use svr_sim::{run_parallel, SimConfig};
use svr_workloads::{irregular_suite, Group};

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    println!("# Fig. 3 — CPI stacks, in-order vs out-of-order");
    println!(
        "{:8} {:>6} {:>10} {:>10} {:>10}",
        "group", "core", "cpi", "mem-dram", "other"
    );
    let groups = [
        Group::Bc,
        Group::Bfs,
        Group::Cc,
        Group::Pr,
        Group::Sssp,
        Group::HpcDb,
    ];
    for (name, cfg) in [("InO", SimConfig::inorder()), ("OoO", SimConfig::ooo())] {
        let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
        let reports = run_parallel(jobs, 1);
        assert_verified(&reports);
        let mut total_dram = 0.0;
        let mut total_cpi = 0.0;
        for g in groups {
            let rs: Vec<_> = suite
                .iter()
                .zip(&reports)
                .filter(|(k, _)| k.group() == g)
                .map(|(_, r)| r)
                .collect();
            let cpi: f64 = rs.iter().map(|r| r.cpi()).sum::<f64>() / rs.len() as f64;
            let dram: f64 = rs
                .iter()
                .map(|r| r.core.stack.mem_dram as f64 / r.core.retired as f64)
                .sum::<f64>()
                / rs.len() as f64;
            println!(
                "{:8} {:>6} {:>10.2} {:>10.2} {:>10.2}",
                g.label(),
                name,
                cpi,
                dram,
                cpi - dram
            );
            total_dram += dram;
            total_cpi += cpi;
        }
        println!(
            "{:8} {:>6} {:>10.2} {:>10.2} {:>10.2}",
            "Avg.",
            name,
            total_cpi / groups.len() as f64,
            total_dram / groups.len() as f64,
            (total_cpi - total_dram) / groups.len() as f64
        );
    }
}
