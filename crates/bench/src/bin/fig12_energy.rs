//! Fig. 12: whole-system energy per committed instruction (nJ/instr,
//! lower is better) for every workload under every configuration.
use svr_bench::{assert_verified, paper_configs, print_header, print_row, scale_from_args};
use svr_sim::run_parallel;
use svr_workloads::irregular_suite;

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    let configs = paper_configs();
    println!("# Fig. 12 — energy per committed instruction (nJ, lower is better)");
    let labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
    print_header(
        "workload",
        &labels.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut all: Vec<Vec<f64>> = vec![Vec::new(); suite.len()];
    for cfg in &configs {
        let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
        let reports = run_parallel(jobs, 1);
        assert_verified(&reports);
        for (wi, r) in reports.iter().enumerate() {
            all[wi].push(r.nj_per_inst());
        }
    }
    for (wi, k) in suite.iter().enumerate() {
        print_row(&k.name(), &all[wi]);
    }
    let n = suite.len() as f64;
    let avg: Vec<f64> = (0..configs.len())
        .map(|ci| all.iter().map(|row| row[ci]).sum::<f64>() / n)
        .collect();
    print_row("Avg.", &avg);
}
