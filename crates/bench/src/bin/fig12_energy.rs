//! Fig. 12: whole-system energy per committed instruction (nJ/instr,
//! lower is better) for every workload under every configuration.
use svr_bench::{paper_configs, sweep, BenchArgs, Figure};
use svr_workloads::irregular_suite;

fn main() {
    let args = BenchArgs::parse("fig12_energy");
    let suite = irregular_suite();
    let configs = paper_configs();
    let res = sweep(suite.clone(), &args)
        .configs(configs.clone())
        .run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "fig12_energy",
        "Fig. 12 — energy per committed instruction (nJ, lower is better)",
        &args,
    );
    let labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
    fig.section(
        "",
        "workload",
        &labels.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (wi, k) in suite.iter().enumerate() {
        let row: Vec<f64> = (0..configs.len())
            .map(|ci| res.report(ci, wi).nj_per_inst())
            .collect();
        fig.row(&k.name(), &row);
    }
    let n = suite.len() as f64;
    let avg: Vec<f64> = (0..configs.len())
        .map(|ci| {
            res.config_reports(ci)
                .iter()
                .map(|r| r.nj_per_inst())
                .sum::<f64>()
                / n
        })
        .collect();
    fig.row("Avg.", &avg);
    fig.attach(&res);
    fig.finish();
}
