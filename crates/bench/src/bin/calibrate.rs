//! Quick calibration check: headline numbers on a few workloads.
use std::time::Instant;
use svr_sim::{run_kernel, SimConfig};
use svr_workloads::{GraphInput, Kernel, Scale};

fn main() {
    let scale = Scale::Small;
    let kernels = [
        Kernel::Pr(GraphInput::Kr),
        Kernel::Bfs(GraphInput::Ur),
        Kernel::Cc(GraphInput::Tw),
        Kernel::Sssp(GraphInput::Kr),
        Kernel::HashJoin(2),
        Kernel::HashJoin(8),
        Kernel::Kangaroo,
        Kernel::NasIs,
        Kernel::Randacc,
        Kernel::Camel,
        Kernel::NasCg,
    ];
    let configs = [
        SimConfig::inorder(),
        SimConfig::imp(),
        SimConfig::ooo(),
        SimConfig::svr(16),
        SimConfig::svr(64),
    ];
    println!(
        "{:10} {:>8} {:>8} {:>8} {:>8} {:>8}  (CPI)",
        "workload", "InO", "IMP", "OoO", "SVR16", "SVR64"
    );
    for k in kernels {
        print!("{:10}", k.name());
        let t0 = Instant::now();
        let mut insts = 0;
        for c in &configs {
            let r = run_kernel(k, scale, c);
            insts += r.core.retired;
            print!(" {:8.2}", r.cpi());
            assert!(r.verified, "{} failed check", k.name());
        }
        let dt = t0.elapsed().as_secs_f64();
        println!("   [{:.1} Minst/s]", insts as f64 / dt / 1e6);
    }
    // SVR internals on PR_KR.
    let r = run_kernel(Kernel::Pr(GraphInput::Kr), scale, &SimConfig::svr(16));
    let s = r.core.svr;
    println!("PR_KR SVR16: rounds={} svis={} lanes={} lane_loads={} waiting={} retargets={} timeouts={} hslr_term={} masked={} banned_sup={} srf_recycles={} starved={} acc={:?}",
        s.prm_rounds, s.svis, s.lanes, s.lane_loads, s.waiting_suppressed, s.retargets,
        s.timeouts, s.hslr_terminations, s.masked_lanes, s.banned_suppressed,
        s.srf_recycles, s.srf_starved, r.svr_accuracy());
}
