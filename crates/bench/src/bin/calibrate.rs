//! Quick calibration check: headline CPI numbers on a few workloads, plus a
//! simulation-throughput estimate and SVR internals on PR_KR.
use std::time::Instant;
use svr_bench::{sweep, BenchArgs, Figure};
use svr_sim::SimConfig;
use svr_workloads::{GraphInput, Kernel};

fn main() {
    let args = BenchArgs::parse("calibrate");
    let kernels = vec![
        Kernel::Pr(GraphInput::Kr),
        Kernel::Bfs(GraphInput::Ur),
        Kernel::Cc(GraphInput::Tw),
        Kernel::Sssp(GraphInput::Kr),
        Kernel::HashJoin(2),
        Kernel::HashJoin(8),
        Kernel::Kangaroo,
        Kernel::NasIs,
        Kernel::Randacc,
        Kernel::Camel,
        Kernel::NasCg,
    ];
    let configs = vec![
        SimConfig::inorder(),
        SimConfig::imp(),
        SimConfig::ooo(),
        SimConfig::svr(16),
        SimConfig::svr(64),
    ];
    let t0 = Instant::now();
    let res = sweep(kernels.clone(), &args)
        .configs(configs.clone())
        .run(args.threads);
    res.assert_verified();
    let dt = t0.elapsed().as_secs_f64();

    let mut fig = Figure::new(
        "calibrate",
        "Calibration — CPI on headline workloads",
        &args,
    );
    fig.section("", "workload", &["InO", "IMP", "OoO", "SVR16", "SVR64"]);
    let mut insts = 0u64;
    for (wi, k) in kernels.iter().enumerate() {
        let row: Vec<f64> = (0..configs.len())
            .map(|ci| {
                let r = res.report(ci, wi);
                insts += r.core.retired;
                r.cpi()
            })
            .collect();
        fig.row(&k.name(), &row);
    }
    if res.stats.simulated > 0 {
        fig.note(&format!(
            "throughput: {:.1} Minst/s across {} threads",
            insts as f64 / dt / 1e6,
            args.threads
        ));
    }

    // SVR internals on PR_KR (config index 3 = SVR16, workload index 0).
    let r = res.report(3, 0);
    let s = r.core.svr;
    fig.note(&format!(
        "PR_KR SVR16: rounds={} svis={} lanes={} lane_loads={} waiting={} retargets={} \
         timeouts={} hslr_term={} masked={} banned_sup={} srf_recycles={} starved={} acc={:?}",
        s.prm_rounds,
        s.svis,
        s.lanes,
        s.lane_loads,
        s.waiting_suppressed,
        s.retargets,
        s.timeouts,
        s.hslr_terminations,
        s.masked_lanes,
        s.banned_suppressed,
        s.srf_recycles,
        s.srf_starved,
        r.svr_accuracy()
    ));
    fig.attach(&res);
    fig.finish();
}
