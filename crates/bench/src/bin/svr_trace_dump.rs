//! Trace any (workload, configuration) pair: run it with the event-trace
//! subsystem attached, print a per-interval summary table (CPI stack, MLP
//! timeline, SVR activity), and — with `--trace` — stream a Chrome
//! `trace_event` / Perfetto JSON file to `results/trace/<wl>_<cfg>.json`
//! that loads directly in <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! ```sh
//! cargo run --release -p svr-bench --bin svr_trace_dump -- PR_KR SVR16 \
//!     --scale tiny --trace
//! ```
//!
//! Every run also re-simulates the pair *untraced* and compares the two
//! `RunReport`s: tracing must never change simulated timing (the greppable
//! `trace_identical=` marker; `--check-identical` makes a mismatch fatal,
//! which CI uses).

use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

use svr_bench::{config_from_label, kernel_from_name, usage, BenchArgs};
use svr_sim::{run_workload, run_workload_traced, Json, RunOptions, SimConfig};
use svr_trace::{PerfettoSink, StallTag, WindowReport, WindowedMetrics};

fn fail(msg: &str) -> ! {
    eprintln!("svr_trace_dump: {msg}");
    eprintln!(
        "\nusage: svr_trace_dump [WORKLOAD] [CONFIG] [options] [--check-identical]\n\
         (defaults: PR_KR SVR16)\n\n{}",
        usage("svr_trace_dump")
    );
    std::process::exit(2);
}

/// A simulation failure (watchdog trip, invariant violation) is not a usage
/// error: print the structured message alone and exit 1. CI's watchdog smoke
/// test relies on this being a prompt, clean failure rather than a hang.
fn sim_fail(e: &svr_sim::SimError) -> ! {
    eprintln!("svr_trace_dump: simulation failed: {e}");
    std::process::exit(1);
}

fn print_windows(report: &WindowReport) {
    println!(
        "{:>10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>6} {:>6} {:>8} {:>5}",
        "cycle", "issued", "base", "branch", "l1", "l2", "dram", "struct", "chains", "srf",
        "mlp_avg", "peak"
    );
    for w in &report.windows {
        let a = |t: StallTag| w.attributed[t.index()];
        println!(
            "{:>10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>6} {:>6} {:>8.2} {:>5}",
            w.start,
            w.issued,
            a(StallTag::Base),
            a(StallTag::Branch),
            a(StallTag::MemL1),
            a(StallTag::MemL2),
            a(StallTag::MemDram),
            a(StallTag::Structural),
            w.svr_chains,
            w.srf_recycles,
            w.avg_dram_inflight,
            w.peak_dram_inflight,
        );
    }
}

fn main() {
    // `--check-identical` is specific to this binary; extract it before the
    // shared parser (which rejects unknown flags) sees the command line.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: svr_trace_dump [WORKLOAD] [CONFIG] [options] [--check-identical]\n\
             (defaults: PR_KR SVR16)\n\n{}",
            usage("svr_trace_dump")
        );
        return;
    }
    let check_identical = raw.iter().any(|a| a == "--check-identical");
    raw.retain(|a| a != "--check-identical");
    let args = BenchArgs::try_parse(&raw).unwrap_or_else(|e| fail(&e));
    if args.positional.len() > 2 {
        fail(&format!("unexpected arguments {:?}", &args.positional[2..]));
    }

    let wl_name = args.positional.first().map_or("PR_KR", String::as_str);
    let cfg_label = args.positional.get(1).map_or("SVR16", String::as_str);
    let kernel = kernel_from_name(wl_name)
        .unwrap_or_else(|| fail(&format!("unknown workload {wl_name} (try dump_workload --list)")));
    let mut config: SimConfig = config_from_label(cfg_label)
        .unwrap_or_else(|| fail(&format!("unknown config {cfg_label} (InO|IMP|OoO|SVR<n>)")));
    if let Some(n) = args.trace_interval {
        config.trace.interval = n;
    }

    let workload = kernel.build(args.scale);
    let budget = args.scale.max_insts();

    // Untraced reference run (NullSink: the instrumentation compiles out).
    let base = run_workload(&workload, &config, &RunOptions::detailed(budget)).unwrap_or_else(|e| sim_fail(&e));

    // Traced run: windowed metrics always; the Perfetto stream on --trace.
    let trace_path = args.trace.then(|| {
        args.trace_path.clone().unwrap_or_else(|| {
            PathBuf::from(format!(
                "results/trace/{}_{}.json",
                workload.name,
                config.label().replace('/', "-")
            ))
        })
    });
    let metrics = WindowedMetrics::new(config.trace.interval);
    let (traced, window_report, written) = match &trace_path {
        Some(path) => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)
                        .unwrap_or_else(|e| fail(&format!("create {}: {e}", dir.display())));
                }
            }
            let file = File::create(path)
                .unwrap_or_else(|e| fail(&format!("create {}: {e}", path.display())));
            let perfetto = PerfettoSink::new(BufWriter::new(file))
                .unwrap_or_else(|e| fail(&format!("write {}: {e}", path.display())));
            let mut sink = (metrics, perfetto);
            let traced = run_workload_traced(&workload, &config, &RunOptions::detailed(budget), &mut sink)
                .unwrap_or_else(|e| sim_fail(&e));
            let (metrics, perfetto) = sink;
            let report = metrics.finish();
            let metadata = Json::Obj(vec![
                ("workload".into(), Json::str(&workload.name)),
                ("config".into(), Json::str(config.label())),
                ("scale".into(), Json::str(args.scale.name())),
                ("windows".into(), report.to_json()),
            ]);
            perfetto
                .finish(Some(metadata))
                .unwrap_or_else(|e| fail(&format!("write {}: {e}", path.display())));
            (traced, report, Some(path.clone()))
        }
        None => {
            let mut sink = metrics;
            let traced = run_workload_traced(&workload, &config, &RunOptions::detailed(budget), &mut sink)
                .unwrap_or_else(|e| sim_fail(&e));
            (traced, sink.finish(), None)
        }
    };

    println!(
        "# {} under {} at {} scale: {} cycles, {} retired, CPI {:.3}",
        workload.name,
        config.label(),
        args.scale.name(),
        traced.core.cycles,
        traced.core.retired,
        traced.cpi()
    );
    print_windows(&window_report);
    println!(
        "# prm_episodes={} mshr_hist_max={} dramq_hist_max={}",
        window_report.prm_episodes.len(),
        window_report.mshr_occupancy.len().saturating_sub(1),
        window_report.dram_queue_occupancy.len().saturating_sub(1),
    );

    let identical = base == traced;
    println!("trace_events={}", window_report.events);
    println!("max_dram_overlap={}", window_report.max_dram_overlap);
    println!(
        "max_dram_overlap_in_prm={}",
        window_report.max_dram_overlap_in_prm
    );
    println!("trace_identical={}", u8::from(identical));
    if let Some(path) = &written {
        println!("trace_file={}", path.display());
    }
    if check_identical && !identical {
        eprintln!(
            "FAIL: traced RunReport diverged from the untraced run for {} under {}",
            workload.name,
            config.label()
        );
        std::process::exit(1);
    }
}
