//! Table II: SVR hardware overhead in bits, reproduced exactly.
use svr_bench::{BenchArgs, Figure};
use svr_core::bit_budget;

fn main() {
    let args = BenchArgs::parse("table2_overhead");
    let mut fig = Figure::new("table2_overhead", "Table II — SVR hardware overhead", &args);
    fig.section("", "N (K=8)", &["bits", "KiB"]);
    for n in [8u64, 16, 32, 64, 128] {
        let b = bit_budget(n, 8);
        fig.row(&n.to_string(), &[b.total_bits() as f64, b.total_kib()]);
    }
    let b = bit_budget(16, 8);
    fig.section(
        "breakdown for N=16, K=8 (paper: 17738 bits = 2.17 KiB)",
        "component",
        &["bits"],
    );
    fig.row_u64("stride detector", &[b.stride_detector]);
    fig.row_u64("taint tracker", &[b.taint_tracker]);
    fig.row_u64("HSLR", &[b.hslr]);
    fig.row_u64("SRF", &[b.srf]);
    fig.row_u64("LC", &[b.lc]);
    fig.row_u64("LBD", &[b.lbd]);
    fig.row_u64("scoreboard", &[b.scoreboard]);
    fig.row_u64("L1 tags", &[b.l1_tags]);
    fig.row_u64("total", &[b.total_bits()]);
    assert_eq!(b.total_bits(), 17_738);
    fig.finish();
}
