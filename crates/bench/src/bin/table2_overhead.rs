//! Table II: SVR hardware overhead in bits, reproduced exactly.
use svr_core::bit_budget;

fn main() {
    println!("# Table II — SVR hardware overhead");
    println!("{:6} {:4} {:>10} {:>8}", "N", "K", "bits", "KiB");
    for n in [8u64, 16, 32, 64, 128] {
        let b = bit_budget(n, 8);
        println!(
            "{:6} {:4} {:>10} {:>8.2}",
            n,
            8,
            b.total_bits(),
            b.total_kib()
        );
    }
    let b = bit_budget(16, 8);
    println!();
    println!("breakdown for N=16, K=8 (paper: 17738 bits = 2.17 KiB):");
    println!("  stride detector {:>6} bits", b.stride_detector);
    println!("  taint tracker   {:>6} bits", b.taint_tracker);
    println!("  HSLR            {:>6} bits", b.hslr);
    println!("  SRF             {:>6} bits", b.srf);
    println!("  LC              {:>6} bits", b.lc);
    println!("  LBD             {:>6} bits", b.lbd);
    println!("  scoreboard      {:>6} bits", b.scoreboard);
    println!("  L1 tags         {:>6} bits", b.l1_tags);
    println!(
        "  total           {:>6} bits = {:.2} KiB",
        b.total_bits(),
        b.total_kib()
    );
    assert_eq!(b.total_bits(), 17_738);
}
