//! §VI-D ablations comparing SVR's design decisions against DVR's:
//! lockstep register-copy cost, DVR-style register recycling with a small
//! SRF, and disabling waiting mode.
use svr_bench::{assert_verified, scale_from_args};
use svr_core::{RecyclePolicy, SvrConfig};
use svr_sim::{harmonic_mean_speedup, run_parallel, SimConfig};
use svr_workloads::irregular_suite;

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    let base_jobs: Vec<_> = suite
        .iter()
        .map(|k| (*k, scale, SimConfig::inorder()))
        .collect();
    let base = run_parallel(base_jobs, 1);
    assert_verified(&base);

    let variants: Vec<(&str, SimConfig)> = vec![
        ("SVR16", SimConfig::svr(16)),
        ("SVR64", SimConfig::svr(64)),
        (
            "SVR16+regcopy",
            SimConfig::svr_with(SvrConfig {
                model_register_copy: true,
                ..SvrConfig::with_length(16)
            }),
        ),
        (
            "SVR16 K=2 LRU",
            SimConfig::svr_with(SvrConfig {
                srf_entries: 2,
                ..SvrConfig::with_length(16)
            }),
        ),
        (
            "SVR16 K=2 DVR",
            SimConfig::svr_with(SvrConfig {
                srf_entries: 2,
                recycle: RecyclePolicy::NoRecycle,
                ..SvrConfig::with_length(16)
            }),
        ),
        (
            "SVR64 K=2 DVR",
            SimConfig::svr_with(SvrConfig {
                srf_entries: 2,
                recycle: RecyclePolicy::NoRecycle,
                ..SvrConfig::with_length(64)
            }),
        ),
        (
            "SVR16 no-wait",
            SimConfig::svr_with(SvrConfig {
                waiting_mode: false,
                ..SvrConfig::with_length(16)
            }),
        ),
        (
            "SVR64 no-wait",
            SimConfig::svr_with(SvrConfig {
                waiting_mode: false,
                ..SvrConfig::with_length(64)
            }),
        ),
    ];
    println!("# §VI-D — DVR-comparison ablations (speedup vs in-order)");
    println!("{:16} {:>8}", "variant", "speedup");
    for (name, cfg) in variants {
        let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
        let reports = run_parallel(jobs, 1);
        assert_verified(&reports);
        let s = harmonic_mean_speedup(&base, &reports);
        println!("{name:16} {s:>8.2}");
    }
}
