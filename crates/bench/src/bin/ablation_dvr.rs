//! §VI-D ablations comparing SVR's design decisions against DVR's:
//! lockstep register-copy cost, DVR-style register recycling with a small
//! SRF, and disabling waiting mode.
use svr_bench::{sweep, BenchArgs, Figure};
use svr_core::{RecyclePolicy, SvrConfig};
use svr_sim::SimConfig;
use svr_workloads::irregular_suite;

fn main() {
    let args = BenchArgs::parse("ablation_dvr");
    let variants: Vec<(&str, SimConfig)> = vec![
        ("SVR16", SimConfig::svr(16)),
        ("SVR64", SimConfig::svr(64)),
        (
            "SVR16+regcopy",
            SimConfig::svr_with(SvrConfig {
                model_register_copy: true,
                ..SvrConfig::with_length(16)
            }),
        ),
        (
            "SVR16 K=2 LRU",
            SimConfig::svr_with(SvrConfig {
                srf_entries: 2,
                ..SvrConfig::with_length(16)
            }),
        ),
        (
            "SVR16 K=2 DVR",
            SimConfig::svr_with(SvrConfig {
                srf_entries: 2,
                recycle: RecyclePolicy::NoRecycle,
                ..SvrConfig::with_length(16)
            }),
        ),
        (
            "SVR64 K=2 DVR",
            SimConfig::svr_with(SvrConfig {
                srf_entries: 2,
                recycle: RecyclePolicy::NoRecycle,
                ..SvrConfig::with_length(64)
            }),
        ),
        (
            "SVR16 no-wait",
            SimConfig::svr_with(SvrConfig {
                waiting_mode: false,
                ..SvrConfig::with_length(16)
            }),
        ),
        (
            "SVR64 no-wait",
            SimConfig::svr_with(SvrConfig {
                waiting_mode: false,
                ..SvrConfig::with_length(64)
            }),
        ),
    ];
    // Config 0 is the in-order baseline, then the variants in table order.
    let mut configs = vec![SimConfig::inorder()];
    configs.extend(variants.iter().map(|(_, c)| c.clone()));
    let res = sweep(irregular_suite(), &args)
        .configs(configs)
        .run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "ablation_dvr",
        "§VI-D — DVR-comparison ablations (speedup vs in-order)",
        &args,
    );
    fig.section("", "variant", &["speedup"]);
    for (vi, (name, _)) in variants.iter().enumerate() {
        fig.row(name, &[res.speedup(0, vi + 1)]);
    }
    fig.attach(&res);
    fig.finish();
}
