//! Guest-level profiler CLI — `perf report` for the simulated program — and
//! the golden-metrics regression gate.
//!
//! **Profile mode** (default): run one (workload, configuration) pair with a
//! [`svr_sim::Profiler`] attached, print the ranked, symbolized hot-site
//! table (per-PC stall cycles, miss/level counts, TLB walks, prefetch
//! efficacy, SVR episodes) plus a per-source efficacy summary, and write the
//! full profile to `results/profile/<wl>_<cfg>.json`:
//!
//! ```sh
//! cargo run --release -p svr-bench --bin svr_profile -- HJ8 SVR16 --scale tiny
//! ```
//!
//! Every profile run re-simulates the pair *unprofiled* and compares the two
//! `RunReport`s (`profile_identical=` marker; `--check-identical` makes a
//! mismatch fatal) and asserts the profiler's conservation laws — per-PC
//! sums must equal the aggregate CPI stack and `MemStats` exactly
//! (`profile_conserved=`, always fatal on violation).
//!
//! **Golden mode** (`--golden`): simulate a small fixed matrix of
//! (workload, config) pairs at tiny scale and compare their headline
//! metrics against the checked-in baseline `results/golden/svr_profile.json`
//! — integers exactly, floats to 1e-6 relative tolerance. Drift fails the
//! gate (exit 1) listing every differing metric by JSON path. After an
//! *intended* model change, re-baseline with `--golden --bless` and commit
//! the updated file. `--golden-path PATH` redirects the baseline (used by
//! CI's tamper-detection demo).

use std::path::{Path, PathBuf};

use svr_bench::{config_from_label, kernel_from_name, usage, BenchArgs};
use svr_sim::{golden_diff, run_workload, run_workload_traced, Json, Profiler, RunOptions, RunReport, SimConfig};
use svr_workloads::Scale;

/// Relative tolerance for float metrics in the golden gate.
const GOLDEN_REL_TOL: f64 = 1e-6;

/// The fixed golden matrix: irregular + regular behaviour across every core
/// model, small enough to simulate in seconds at tiny scale.
const GOLDEN_WORKLOADS: [&str; 3] = ["Camel", "HJ8", "Kangr"];
const GOLDEN_CONFIGS: [&str; 4] = ["InO", "IMP", "OoO", "SVR16"];

fn fail(msg: &str) -> ! {
    eprintln!("svr_profile: {msg}");
    eprintln!(
        "\nusage: svr_profile [WORKLOAD] [CONFIG] [options] [--top N] [--check-identical]\n\
         \x20      svr_profile --golden [--bless] [--golden-path PATH] [options]\n\
         (defaults: HJ8 SVR16)\n\n{}",
        usage("svr_profile")
    );
    std::process::exit(2);
}

fn sim_fail(e: &svr_sim::SimError) -> ! {
    eprintln!("svr_profile: simulation failed: {e}");
    std::process::exit(1);
}

fn write_json(path: &Path, j: &Json) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(&format!("create {}: {e}", dir.display())));
        }
    }
    std::fs::write(path, j.pretty() + "\n")
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", path.display())));
}

/// The headline metrics the golden gate pins for one run: exact integer
/// counters plus a couple of derived floats (to exercise the tolerance
/// path).
fn golden_metrics(r: &RunReport) -> Json {
    let pf = |c: &svr_mem::PfCounters| {
        Json::Obj(vec![
            ("issued".into(), Json::u64(c.issued)),
            ("used".into(), Json::u64(c.used)),
            ("late".into(), Json::u64(c.late)),
            ("evicted_unused".into(), Json::u64(c.evicted_unused)),
            ("resident_at_end".into(), Json::u64(c.resident_at_end)),
            ("pollution".into(), Json::u64(c.pollution)),
        ])
    };
    Json::Obj(vec![
        ("workload".into(), Json::str(r.workload.clone())),
        ("config".into(), Json::str(r.config.clone())),
        ("cycles".into(), Json::u64(r.core.cycles)),
        ("retired".into(), Json::u64(r.core.retired)),
        ("l1d_misses".into(), Json::u64(r.mem.l1d_misses)),
        ("l2_misses".into(), Json::u64(r.mem.l2_misses)),
        ("dram_reads".into(), Json::u64(r.mem.dram_reads())),
        ("writebacks".into(), Json::u64(r.mem.writebacks)),
        ("tlb_walks".into(), Json::u64(r.mem.tlb_walks)),
        ("cpi".into(), Json::f64(r.cpi())),
        ("nj_per_inst".into(), Json::f64(r.nj_per_inst())),
        ("stride".into(), pf(&r.mem.stride)),
        ("imp".into(), pf(&r.mem.imp)),
        ("svr".into(), pf(&r.mem.svr)),
    ])
}

/// Runs the fixed golden matrix and returns the baseline document.
fn golden_actual() -> Json {
    let mut runs = Vec::new();
    for wl in GOLDEN_WORKLOADS {
        let kernel = kernel_from_name(wl).unwrap_or_else(|| fail(&format!("unknown kernel {wl}")));
        let workload = kernel.build(Scale::Tiny);
        for cfg in GOLDEN_CONFIGS {
            let config = config_from_label(cfg)
                .unwrap_or_else(|| fail(&format!("unknown config {cfg}")));
            let report = run_workload(&workload, &config, &RunOptions::detailed(Scale::Tiny.max_insts()))
                .unwrap_or_else(|e| sim_fail(&e));
            if !report.verified {
                fail(&format!("{wl} under {cfg} failed architectural verification"));
            }
            runs.push(golden_metrics(&report));
        }
    }
    Json::Obj(vec![
        ("scale".into(), Json::str("tiny")),
        ("rel_tol".into(), Json::f64(GOLDEN_REL_TOL)),
        ("runs".into(), Json::Arr(runs)),
    ])
}

fn golden_mode(bless: bool, path: &Path) -> ! {
    let actual = golden_actual();
    if bless {
        write_json(path, &actual);
        println!("golden_blessed=1");
        println!("golden_file={}", path.display());
        std::process::exit(0);
    }
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        fail(&format!(
            "read golden baseline {}: {e}\n(run with --golden --bless to create it)",
            path.display()
        ))
    });
    let golden = Json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("parse {}: {e}", path.display())));
    let diffs = golden_diff(&golden, &actual, GOLDEN_REL_TOL);
    if diffs.is_empty() {
        println!("golden_ok=1");
        std::process::exit(0);
    }
    eprintln!(
        "FAIL: {} metric(s) drifted from the golden baseline {}:",
        diffs.len(),
        path.display()
    );
    for d in &diffs {
        eprintln!("  {d}");
    }
    eprintln!("If the change is intended, re-baseline with: svr_profile --golden --bless");
    println!("golden_ok=0");
    std::process::exit(1);
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: svr_profile [WORKLOAD] [CONFIG] [options] [--top N] [--check-identical]\n\
             \x20      svr_profile --golden [--bless] [--golden-path PATH]\n\
             (defaults: HJ8 SVR16)\n\n{}",
            usage("svr_profile")
        );
        return;
    }
    // Binary-specific flags, extracted before the shared parser (which
    // rejects unknown flags) sees the command line.
    let mut golden = false;
    let mut bless = false;
    let mut check_identical = false;
    let mut top = 20usize;
    let mut golden_path = PathBuf::from("results/golden/svr_profile.json");
    {
        let mut kept = Vec::new();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--golden" => golden = true,
                "--bless" => bless = true,
                "--check-identical" => check_identical = true,
                "--top" => {
                    let v = it.next().unwrap_or_else(|| fail("--top requires a value"));
                    top = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| fail(&format!("--top needs a positive integer, got {v}")));
                }
                "--golden-path" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| fail("--golden-path requires a value"));
                    golden_path = PathBuf::from(v);
                }
                _ => kept.push(a),
            }
        }
        raw = kept;
    }
    if bless && !golden {
        fail("--bless only makes sense with --golden");
    }
    let args = BenchArgs::try_parse(&raw).unwrap_or_else(|e| fail(&e));

    if golden {
        if !args.positional.is_empty() {
            fail("--golden runs a fixed matrix; positional arguments are not accepted");
        }
        golden_mode(bless, &golden_path);
    }

    if args.positional.len() > 2 {
        fail(&format!("unexpected arguments {:?}", &args.positional[2..]));
    }
    let wl_name = args.positional.first().map_or("HJ8", String::as_str);
    let cfg_label = args.positional.get(1).map_or("SVR16", String::as_str);
    let kernel = kernel_from_name(wl_name)
        .unwrap_or_else(|| fail(&format!("unknown workload {wl_name} (try dump_workload --list)")));
    let config: SimConfig = config_from_label(cfg_label)
        .unwrap_or_else(|| fail(&format!("unknown config {cfg_label} (InO|IMP|OoO|SVR<n>)")));

    let workload = kernel.build(args.scale);
    let budget = args.scale.max_insts();

    // Unprofiled reference run (NullSink: the instrumentation compiles out).
    let base = run_workload(&workload, &config, &RunOptions::detailed(budget)).unwrap_or_else(|e| sim_fail(&e));

    let mut prof = Profiler::new();
    let profiled =
        run_workload_traced(&workload, &config, &RunOptions::detailed(budget), &mut prof)
            .unwrap_or_else(|e| sim_fail(&e));

    println!(
        "# {} under {} at {} scale: {} cycles, {} retired, CPI {:.3}",
        workload.name,
        config.label(),
        args.scale.name(),
        profiled.core.cycles,
        profiled.core.retired,
        profiled.cpi()
    );
    let symbols = workload.program.symbols();
    print!("{}", prof.render_table(symbols, &profiled, top));

    println!("\n# prefetch efficacy (issued == used + late + evicted + resident; \
              pollution = demand misses blamed on evictions)");
    println!(
        "{:>8} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9}  {:>9} {:>6}",
        "source", "issued", "used", "late", "evicted", "resident", "pollution", "accuracy", "late%"
    );
    for (name, c) in [
        ("stride", &profiled.mem.stride),
        ("imp", &profiled.mem.imp),
        ("svr", &profiled.mem.svr),
    ] {
        let pct = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{:.1}%", x * 100.0));
        println!(
            "{:>8} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9}  {:>9} {:>6}",
            name,
            c.issued,
            c.used,
            c.late,
            c.evicted_unused,
            c.resident_at_end,
            c.pollution,
            pct(c.accuracy()),
            pct(c.late_ratio()),
        );
    }

    // Conservation: the per-PC tables must reproduce the aggregate stats
    // exactly. A violation is an attribution bug, never tolerable.
    let conserved = prof.check_against(&profiled);
    println!("profile_conserved={}", u8::from(conserved.is_ok()));
    if let Err(e) = &conserved {
        eprintln!(
            "FAIL: profiler attribution does not reconcile with aggregate statistics:\n{e}"
        );
    }

    let identical = base == profiled;
    println!("profile_identical={}", u8::from(identical));
    if check_identical && !identical {
        eprintln!(
            "FAIL: profiled RunReport diverged from the unprofiled run for {} under {}",
            workload.name,
            config.label()
        );
    }

    let out = args.json.clone().unwrap_or_else(|| {
        PathBuf::from(format!(
            "results/profile/{}_{}.json",
            workload.name,
            config.label().replace('/', "-")
        ))
    });
    write_json(&out, &prof.to_json(symbols, &profiled));
    println!("profile_file={}", out.display());

    if conserved.is_err() || (check_identical && !identical) {
        std::process::exit(1);
    }
}
