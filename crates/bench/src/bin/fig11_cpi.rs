//! Fig. 11: cycles-per-instruction for every workload under every
//! configuration (lower is better).
use svr_bench::{paper_configs, sweep, BenchArgs, Figure};
use svr_workloads::irregular_suite;

fn main() {
    let args = BenchArgs::parse("fig11_cpi");
    let suite = irregular_suite();
    let configs = paper_configs();
    let res = sweep(suite.clone(), &args)
        .configs(configs.clone())
        .run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "fig11_cpi",
        "Fig. 11 — CPI per workload (lower is better)",
        &args,
    );
    let labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
    fig.section(
        "",
        "workload",
        &labels.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (wi, k) in suite.iter().enumerate() {
        let row: Vec<f64> = (0..configs.len())
            .map(|ci| res.report(ci, wi).cpi())
            .collect();
        fig.row(&k.name(), &row);
    }
    let avg: Vec<f64> = (0..configs.len())
        .map(|ci| {
            let rs = res.config_reports(ci);
            rs.iter().map(|r| r.cpi()).sum::<f64>() / rs.len() as f64
        })
        .collect();
    fig.row("Avg.", &avg);
    fig.attach(&res);
    fig.finish();
}
