//! Fig. 11: cycles-per-instruction for every workload under every
//! configuration (lower is better).
//!
//! Under `--mode sampled` the binary doubles as the sampling validation
//! harness: it re-runs the same sweep in detailed mode and reports the
//! sampled-vs-detailed CPI error, the 95% confidence interval of each
//! estimate, and the simulation-time speedup (build time excluded), which
//! `scripts/ci.sh` gates on.
use svr_bench::{paper_configs, sweep, BenchArgs, Figure};
use svr_sim::{ExecMode, JobSource, SweepResult};
use svr_workloads::irregular_suite;

/// Wall time spent actually simulating (cache hits and workload
/// construction excluded) across a sweep, in milliseconds.
fn sim_ms(res: &SweepResult) -> f64 {
    res.traces
        .iter()
        .filter(|t| t.source == JobSource::Simulated)
        .map(|t| t.wall_ms)
        .sum()
}

fn main() {
    let args = BenchArgs::parse("fig11_cpi");
    let suite = irregular_suite();
    let configs = paper_configs();
    let res = sweep(suite.clone(), &args)
        .configs(configs.clone())
        .run(args.threads);
    res.assert_verified();

    let mut fig = Figure::new(
        "fig11_cpi",
        "Fig. 11 — CPI per workload (lower is better)",
        &args,
    );
    let labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    fig.section("", "workload", &label_refs);
    for (wi, k) in suite.iter().enumerate() {
        let row: Vec<f64> = (0..configs.len())
            .map(|ci| res.report(ci, wi).cpi())
            .collect();
        fig.row(&k.name(), &row);
    }
    let avg: Vec<f64> = (0..configs.len())
        .map(|ci| {
            let rs = res.config_reports(ci);
            rs.iter().map(|r| r.cpi()).sum::<f64>() / rs.len() as f64
        })
        .collect();
    fig.row("Avg.", &avg);
    fig.attach(&res);

    if args.mode == ExecMode::Sampled {
        let detailed_args = BenchArgs {
            mode: ExecMode::Detailed,
            ..args.clone()
        };
        let det = sweep(suite.clone(), &detailed_args)
            .configs(configs.clone())
            .run(args.threads);
        det.assert_verified();

        fig.section("Sampled vs detailed CPI error (%)", "workload", &label_refs);
        let mut max_err = 0.0f64;
        for (wi, k) in suite.iter().enumerate() {
            let row: Vec<f64> = (0..configs.len())
                .map(|ci| {
                    let s = res.report(ci, wi).cpi();
                    let d = det.report(ci, wi).cpi();
                    let err = (s - d).abs() / d * 100.0;
                    max_err = max_err.max(err);
                    err
                })
                .collect();
            fig.row(&k.name(), &row);
        }

        fig.section(
            "Sampled 95% CI half-width (cycles/inst)",
            "workload",
            &label_refs,
        );
        for (wi, k) in suite.iter().enumerate() {
            let row: Vec<f64> = (0..configs.len())
                .map(|ci| {
                    res.report(ci, wi)
                        .sampled
                        .map_or(f64::NAN, |s| s.ci95)
                })
                .collect();
            fig.row(&k.name(), &row);
        }

        let (s_ms, d_ms) = (sim_ms(&res), sim_ms(&det));
        fig.note(&format!(
            "sampled max CPI error vs detailed: {max_err:.3}%"
        ));
        if s_ms > 0.0 && d_ms > 0.0 {
            fig.note(&format!(
                "sim time: sampled {s_ms:.1} ms, detailed {d_ms:.1} ms, speedup {:.2}x \
                 (simulation only; cache hits and workload builds excluded)",
                d_ms / s_ms
            ));
        } else {
            // A fully cache-resolved sweep simulates nothing, so there is no
            // wall time to compare; rerun with --no-cache to measure speedup.
            fig.note("sim time: speedup n/a (sweep resolved from cache; rerun with --no-cache)");
        }
        fig.attach(&det);
    }

    fig.finish();
}
