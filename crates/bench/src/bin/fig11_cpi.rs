//! Fig. 11: cycles-per-instruction for every workload under every
//! configuration (lower is better).
use svr_bench::{assert_verified, paper_configs, print_header, print_row, scale_from_args};
use svr_sim::run_parallel;
use svr_workloads::irregular_suite;

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    let configs = paper_configs();
    println!("# Fig. 11 — CPI per workload (lower is better)");
    let labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
    print_header(
        "workload",
        &labels.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut per_cfg_cpi = vec![Vec::new(); configs.len()];
    let mut all: Vec<Vec<f64>> = vec![Vec::new(); suite.len()];
    for (ci, cfg) in configs.iter().enumerate() {
        let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
        let reports = run_parallel(jobs, 1);
        assert_verified(&reports);
        for (wi, r) in reports.iter().enumerate() {
            all[wi].push(r.cpi());
            per_cfg_cpi[ci].push(r.cpi());
        }
    }
    for (wi, k) in suite.iter().enumerate() {
        print_row(&k.name(), &all[wi]);
    }
    let avg: Vec<f64> = per_cfg_cpi
        .iter()
        .map(|v| v.iter().sum::<f64>() / v.len() as f64)
        .collect();
    print_row("Avg.", &avg);
}
