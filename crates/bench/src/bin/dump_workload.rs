//! Developer tool: print a workload's assembly listing, binary encoding and
//! data-footprint summary.
//!
//! ```sh
//! cargo run --release -p svr-bench --bin dump_workload -- PR_KR --scale tiny
//! cargo run --release -p svr-bench --bin dump_workload -- --list
//! ```

use svr_bench::BenchArgs;
use svr_isa::encode::encode_program;
use svr_workloads::{irregular_suite, regular_suite, Kernel};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let all: Vec<Kernel> = irregular_suite()
        .into_iter()
        .chain(regular_suite())
        .collect();
    if raw.iter().any(|a| a == "--list") {
        for k in &all {
            println!("{}", k.name());
        }
        return;
    }
    let shared: Vec<String> = raw.into_iter().filter(|a| a != "--list").collect();
    let args = BenchArgs::try_parse(&shared).unwrap_or_else(|e| {
        eprintln!("dump_workload: {e}");
        eprintln!("usage: dump_workload <name>|--list [--scale tiny|small|full]");
        std::process::exit(2);
    });
    let name = args.positional.first().unwrap_or_else(|| {
        eprintln!("usage: dump_workload <name>|--list [--scale tiny|small|full]");
        std::process::exit(2);
    });
    let kernel = all.iter().find(|k| k.name() == *name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}; try --list");
        std::process::exit(2);
    });
    let w = kernel.build(args.scale);
    println!("{}", w.program);
    match encode_program(&w.program) {
        Ok(words) => {
            println!("; binary image ({} words):", words.len());
            for (pc, word) in words.iter().enumerate() {
                println!(";   {pc:4}: {word:#018x}");
            }
        }
        Err(e) => println!("; not encodable: {e}"),
    }
    println!(
        "; data: {} bytes allocated, {} pages mapped",
        w.image.allocated_bytes(),
        w.image.mapped_pages()
    );
    println!("; check: {:?}", w.check);
}
