//! Fig. 15: normalized IPC of SVR's loop-bound prediction mechanisms
//! (LBD+Wait, Maxlength, LBD+Maxlength, LBD+CV, EWMA, Tournament) for
//! SVR-16 and SVR-64, grouped as in the paper.
use svr_bench::{sweep, BenchArgs, Figure};
use svr_core::{LoopBoundMode, SvrConfig};
use svr_sim::SimConfig;
use svr_workloads::{irregular_suite, Group};

fn main() {
    let args = BenchArgs::parse("fig15_loop_bounds");
    let suite = irregular_suite();
    let modes = [
        ("LBD+Wait", LoopBoundMode::LbdWait),
        ("Maxlength", LoopBoundMode::Maxlength),
        ("LBD+Max", LoopBoundMode::LbdMaxlength),
        ("LBD+CV", LoopBoundMode::LbdCv),
        ("EWMA", LoopBoundMode::Ewma),
        ("Tournament", LoopBoundMode::Tournament),
    ];
    let group_sets: [(&str, Vec<Group>); 3] = [
        ("BC+BFS+SSSP", vec![Group::Bc, Group::Bfs, Group::Sssp]),
        ("CC+PR", vec![Group::Cc, Group::Pr]),
        ("HPC-DB", vec![Group::HpcDb]),
    ];
    // Config 0 is the baseline; then 6 modes × {16, 64}.
    let mut configs = vec![SimConfig::inorder()];
    for n in [16usize, 64] {
        for (_, mode) in modes {
            configs.push(SimConfig::svr_with(SvrConfig {
                loop_bound_mode: mode,
                ..SvrConfig::with_length(n)
            }));
        }
    }
    let res = sweep(suite.clone(), &args)
        .configs(configs)
        .run(args.threads);
    res.assert_verified();
    let base = res.config_reports(0);

    let mut fig = Figure::new(
        "fig15_loop_bounds",
        "Fig. 15 — normalized IPC per loop-bound mechanism",
        &args,
    );
    for (half, n) in [16usize, 64].iter().enumerate() {
        fig.section(
            &format!(
                "Fig. 15{} — normalized IPC for SVR-{n} loop-bound mechanisms",
                if *n == 16 { "a" } else { "b" }
            ),
            "mode",
            &["BC+BFS+SSSP", "CC+PR", "HPC-DB", "H-mean"],
        );
        for (mi, (mname, _)) in modes.iter().enumerate() {
            let reports = res.config_reports(1 + half * modes.len() + mi);
            let mut row = Vec::new();
            for (_, gs) in &group_sets {
                let mut inv = 0.0;
                let mut count = 0;
                for ((k, r), b) in suite.iter().zip(&reports).zip(&base) {
                    if gs.contains(&k.group()) {
                        inv += b.ipc() / r.ipc();
                        count += 1;
                    }
                }
                row.push(count as f64 / inv);
            }
            let inv: f64 = reports
                .iter()
                .zip(&base)
                .map(|(r, b)| b.ipc() / r.ipc())
                .sum();
            row.push(reports.len() as f64 / inv);
            fig.row(mname, &row);
        }
    }
    fig.attach(&res);
    fig.finish();
}
