//! Fig. 15: normalized IPC of SVR's loop-bound prediction mechanisms
//! (LBD+Wait, Maxlength, LBD+Maxlength, LBD+CV, EWMA, Tournament) for
//! SVR-16 and SVR-64, grouped as in the paper.
use svr_bench::{assert_verified, scale_from_args};
use svr_core::{LoopBoundMode, SvrConfig};
use svr_sim::{run_parallel, SimConfig};
use svr_workloads::{irregular_suite, Group};

fn main() {
    let scale = scale_from_args();
    let suite = irregular_suite();
    let modes = [
        ("LBD+Wait", LoopBoundMode::LbdWait),
        ("Maxlength", LoopBoundMode::Maxlength),
        ("LBD+Max", LoopBoundMode::LbdMaxlength),
        ("LBD+CV", LoopBoundMode::LbdCv),
        ("EWMA", LoopBoundMode::Ewma),
        ("Tournament", LoopBoundMode::Tournament),
    ];
    let group_sets: [(&str, Vec<Group>); 3] = [
        ("BC+BFS+SSSP", vec![Group::Bc, Group::Bfs, Group::Sssp]),
        ("CC+PR", vec![Group::Cc, Group::Pr]),
        ("HPC-DB", vec![Group::HpcDb]),
    ];
    let base_jobs: Vec<_> = suite
        .iter()
        .map(|k| (*k, scale, SimConfig::inorder()))
        .collect();
    let base = run_parallel(base_jobs, 1);
    assert_verified(&base);
    for n in [16usize, 64] {
        println!(
            "# Fig. 15{} — normalized IPC for SVR-{n} loop-bound mechanisms",
            if n == 16 { "a" } else { "b" }
        );
        print!("{:12}", "mode");
        for (gname, _) in &group_sets {
            print!(" {gname:>12}");
        }
        println!(" {:>12}", "H-mean");
        for (mname, mode) in modes {
            let cfg = SimConfig::svr_with(SvrConfig {
                loop_bound_mode: mode,
                ..SvrConfig::with_length(n)
            });
            let jobs: Vec<_> = suite.iter().map(|k| (*k, scale, cfg.clone())).collect();
            let reports = run_parallel(jobs, 1);
            assert_verified(&reports);
            print!("{mname:12}");
            for (_, gs) in &group_sets {
                let mut inv = 0.0;
                let mut count = 0;
                for ((k, r), b) in suite.iter().zip(&reports).zip(&base) {
                    if gs.contains(&k.group()) {
                        inv += b.ipc() / r.ipc();
                        count += 1;
                    }
                }
                print!(" {:>12.2}", count as f64 / inv);
            }
            let inv: f64 = reports
                .iter()
                .zip(&base)
                .map(|(r, b)| b.ipc() / r.ipc())
                .sum();
            println!(" {:>12.2}", reports.len() as f64 / inv);
        }
        println!();
    }
}
