//! Shared helpers for the SVR benchmark harness binaries (one binary per
//! table/figure of the paper; see DESIGN.md §5 for the index).

use svr_sim::{RunReport, SimConfig};
use svr_workloads::Scale;

/// Parses `--scale tiny|small|full` from the command line (default small).
///
/// The paper simulates 200 M instructions per workload on Sniper; our
/// `small` preset uses DRAM-resident footprints with 3 M-instruction runs,
/// and `full` raises both (see [`Scale`]).
///
/// # Panics
///
/// Panics on an unknown scale name.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        Some("small") | None => Scale::Small,
        Some(other) => panic!("unknown --scale {other} (tiny|small|full)"),
    }
}

/// The paper's eight core configurations in Fig. 1/11/12 order.
pub fn paper_configs() -> Vec<SimConfig> {
    vec![
        SimConfig::inorder(),
        SimConfig::imp(),
        SimConfig::ooo(),
        SimConfig::svr(8),
        SimConfig::svr(16),
        SimConfig::svr(32),
        SimConfig::svr(64),
        SimConfig::svr(128),
    ]
}

/// Prints one formatted row: a left-aligned label and fixed-width values.
pub fn print_row(label: &str, values: &[f64]) {
    print!("{label:12}");
    for v in values {
        print!(" {v:8.2}");
    }
    println!();
}

/// Prints the standard header for a per-workload table.
pub fn print_header(first: &str, cols: &[&str]) {
    print!("{first:12}");
    for c in cols {
        print!(" {c:>8}");
    }
    println!();
}

/// Asserts all runs passed their architectural checks (capped runs pass by
/// construction).
///
/// # Panics
///
/// Panics if any report failed its check.
pub fn assert_verified(reports: &[RunReport]) {
    for r in reports {
        assert!(
            r.verified,
            "workload {} under {} failed its architectural check",
            r.workload, r.config
        );
    }
}

pub mod chart;
