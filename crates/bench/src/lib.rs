//! Shared infrastructure for the SVR harness binaries (one binary per
//! table/figure of the paper; see DESIGN.md §5 for the index): command-line
//! parsing ([`BenchArgs`]), sweep construction honouring the cache flags
//! ([`sweep`]), and the [`Figure`] recorder that prints each text table and
//! captures it — together with the raw [`RunReport`]s and sweep counters —
//! into `results/<name>.json`.

use std::path::PathBuf;
use svr_sim::{ExecMode, Json, RunOptions, RunReport, SimConfig, Sweep, SweepResult, SweepStats};
use svr_workloads::{Kernel, Scale};

pub mod chart;

/// Parsed command line shared by every harness binary.
///
/// ```text
/// --scale tiny|small|full        problem size (default small)
/// --mode detailed|warp|sampled   execution mode (default detailed)
/// --threads N               simulation threads (default: all cores)
/// --json PATH               write the JSON report here (default results/<name>.json)
/// --no-cache                ignore and do not write the result cache
/// --cache-dir DIR           result cache directory (default $SVR_CACHE_DIR or results/cache)
/// --cache-max-bytes N       evict least-recently-used cache entries beyond N bytes
/// --trace[=PATH]            capture an event trace (default results/trace/<wl>_<cfg>.json)
/// --trace-interval N        windowed-metrics interval in cycles (default 10000)
/// --sample-interval N       sampled mode: measured instructions per period
/// --sample-warmup N         sampled mode: detailed warm-up instructions per period
/// --sample-period N         sampled mode: total instructions per period
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Problem size preset.
    pub scale: Scale,
    /// Execution mode: cycle-accurate `detailed` (default) or functional
    /// `warp` fast-forward (architectural state only, zero timing).
    pub mode: ExecMode,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Explicit JSON output path (otherwise `results/<name>.json`).
    pub json: Option<PathBuf>,
    /// Disables the on-disk result cache.
    pub no_cache: bool,
    /// Overrides the result-cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Caps the result cache: after the sweep, least-recently-used entries
    /// are evicted until the cache fits (`--cache-max-bytes N`).
    pub cache_max_bytes: Option<u64>,
    /// Capture an event trace (`--trace` / `--trace=PATH`).
    pub trace: bool,
    /// Explicit trace output path (`--trace=PATH`); otherwise the binary
    /// derives `results/trace/<workload>_<config>.json`.
    pub trace_path: Option<PathBuf>,
    /// Windowed-metrics interval override in cycles (`--trace-interval N`).
    pub trace_interval: Option<u64>,
    /// Sampled mode: measured-interval override (`--sample-interval N`).
    /// `None` keeps [`svr_sim::RunOptions`]'s default.
    pub sample_interval: Option<u64>,
    /// Sampled mode: warm-up override (`--sample-warmup N`; 0 is valid).
    pub sample_warmup: Option<u64>,
    /// Sampled mode: period override (`--sample-period N`).
    pub sample_period: Option<u64>,
    /// Arguments the shared parser did not consume (binary-specific).
    pub positional: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: Scale::Small,
            mode: ExecMode::Detailed,
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            json: None,
            no_cache: false,
            cache_dir: None,
            cache_max_bytes: None,
            trace: false,
            trace_path: None,
            trace_interval: None,
            sample_interval: None,
            sample_warmup: None,
            sample_period: None,
            positional: Vec::new(),
        }
    }
}

impl BenchArgs {
    /// Parses `args` (without the program name). Unknown `--flags` are
    /// errors; non-flag arguments are collected into `positional`.
    pub fn try_parse(args: &[String]) -> Result<BenchArgs, String> {
        let mut out = BenchArgs::default();
        let mut it = args.iter();
        let value = |flag: &str, it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = value("--scale", &mut it)?;
                    out.scale = Scale::from_name(&v)
                        .ok_or_else(|| format!("unknown --scale {v} (tiny|small|full)"))?;
                }
                "--mode" => {
                    let v = value("--mode", &mut it)?;
                    out.mode = ExecMode::from_name(&v)
                        .ok_or_else(|| format!("unknown --mode {v} (detailed|warp|sampled)"))?;
                }
                "--threads" => {
                    let v = value("--threads", &mut it)?;
                    out.threads =
                        v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--threads needs a positive integer, got {v}")
                        })?;
                }
                "--json" => out.json = Some(PathBuf::from(value("--json", &mut it)?)),
                "--no-cache" => out.no_cache = true,
                "--cache-dir" => {
                    out.cache_dir = Some(PathBuf::from(value("--cache-dir", &mut it)?));
                }
                "--cache-max-bytes" => {
                    let v = value("--cache-max-bytes", &mut it)?;
                    out.cache_max_bytes =
                        v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--cache-max-bytes needs a positive integer, got {v}")
                        })?
                        .into();
                }
                "--trace" => out.trace = true,
                "--trace-interval" => {
                    let v = value("--trace-interval", &mut it)?;
                    out.trace_interval =
                        v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--trace-interval needs a positive integer, got {v}")
                        })?
                        .into();
                }
                "--sample-interval" => {
                    let v = value("--sample-interval", &mut it)?;
                    out.sample_interval =
                        v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--sample-interval needs a positive integer, got {v}")
                        })?
                        .into();
                }
                "--sample-warmup" => {
                    let v = value("--sample-warmup", &mut it)?;
                    // 0 is a valid warm-up (measure immediately after the gap).
                    out.sample_warmup = v
                        .parse::<u64>()
                        .map_err(|_| format!("--sample-warmup needs an integer, got {v}"))?
                        .into();
                }
                "--sample-period" => {
                    let v = value("--sample-period", &mut it)?;
                    out.sample_period =
                        v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--sample-period needs a positive integer, got {v}")
                        })?
                        .into();
                }
                path if path.starts_with("--trace=") => {
                    let p = &path["--trace=".len()..];
                    if p.is_empty() {
                        return Err("--trace= requires a path".into());
                    }
                    out.trace = true;
                    out.trace_path = Some(PathBuf::from(p));
                }
                flag if flag.starts_with("--") && flag != "--" => {
                    return Err(format!("unknown flag {flag}"));
                }
                other => out.positional.push(other.to_string()),
            }
        }
        Ok(out)
    }

    /// Parses the process command line; prints usage and exits with status 2
    /// on a bad flag, or 0 on `--help`.
    pub fn parse(bin: &str) -> BenchArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", usage(bin));
            std::process::exit(0);
        }
        // Every harness binary gets graceful interruption: the first
        // SIGINT/SIGTERM lets the in-flight points finish and journals the
        // rest (exit 130 with a resume hint); the second kills as usual.
        svr_sim::shutdown::install();
        match BenchArgs::try_parse(&args) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("{bin}: {e}\n\n{}", usage(bin));
                std::process::exit(2);
            }
        }
    }
}

/// The shared usage text.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [options]\n\
         \n\
         options:\n\
         \x20 --scale tiny|small|full  problem size (default small)\n\
         \x20 --mode detailed|warp|sampled  execution mode (default detailed)\n\
         \x20 --threads N              simulation threads (default: all cores)\n\
         \x20 --json PATH              JSON report path (default results/<bin>.json)\n\
         \x20 --no-cache               ignore and do not write the result cache\n\
         \x20 --cache-dir DIR          cache directory (default $SVR_CACHE_DIR or results/cache)\n\
         \x20 --cache-max-bytes N      evict least-recently-used cache entries beyond N bytes\n\
         \x20 --trace[=PATH]           capture an event trace (Perfetto/chrome://tracing JSON)\n\
         \x20 --trace-interval N       windowed-metrics interval in cycles (default 10000)\n\
         \x20 --sample-interval N      sampled mode: measured instructions per period\n\
         \x20 --sample-warmup N        sampled mode: warm-up instructions per period\n\
         \x20 --sample-period N        sampled mode: total instructions per period\n\
         \x20 --help                   show this help"
    )
}

/// The [`RunOptions`] a command line selects: the execution mode plus any
/// sampling-parameter overrides (absent flags keep the library defaults).
pub fn run_options(args: &BenchArgs) -> RunOptions {
    let mut opts = RunOptions::default().with_mode(args.mode);
    if let Some(v) = args.sample_interval {
        opts.sample_interval = v;
    }
    if let Some(v) = args.sample_warmup {
        opts.sample_warmup = v;
    }
    if let Some(v) = args.sample_period {
        opts.sample_period = v;
    }
    opts
}

/// Builds a [`Sweep`] over `suite` honouring the scale, mode/sampling and
/// cache flags.
pub fn sweep(suite: Vec<Kernel>, args: &BenchArgs) -> Sweep {
    let mut s = Sweep::new(suite, args.scale).options(run_options(args));
    if args.no_cache {
        s = s.no_cache();
    } else if let Some(dir) = &args.cache_dir {
        s = s.cache_dir(dir.clone());
    }
    if let Some(max) = args.cache_max_bytes {
        s = s.cache_max_bytes(max);
    }
    s
}

/// The paper's eight core configurations in Fig. 1/11/12 order.
pub fn paper_configs() -> Vec<SimConfig> {
    vec![
        SimConfig::inorder(),
        SimConfig::imp(),
        SimConfig::ooo(),
        SimConfig::svr(8),
        SimConfig::svr(16),
        SimConfig::svr(32),
        SimConfig::svr(64),
        SimConfig::svr(128),
    ]
}

/// Resolves a kernel by its display name (`PR_KR`, `Camel`, `HJ8`, ...),
/// searching the irregular and regular suites plus the diagnostic kernels
/// (`DiagSpin`, `DiagPanic` — used by the CI watchdog smoke test).
pub fn kernel_from_name(name: &str) -> Option<Kernel> {
    let mut all = svr_workloads::irregular_suite();
    all.extend(svr_workloads::regular_suite());
    all.push(Kernel::DiagSpin);
    all.push(Kernel::DiagPanic);
    all.into_iter().find(|k| k.name() == name)
}

/// Resolves a core configuration by its display label (`InO`, `IMP`, `OoO`,
/// `SVR16`, ...). Covers the paper configurations plus any plain `SVR<n>`
/// vector length.
pub fn config_from_label(label: &str) -> Option<SimConfig> {
    if let Some(c) = paper_configs().into_iter().find(|c| c.label() == label) {
        return Some(c);
    }
    label
        .strip_prefix("SVR")?
        .parse::<usize>()
        .ok()
        .filter(|n| (1..=128).contains(n))
        .map(SimConfig::svr)
}

/// Asserts all runs passed their architectural checks (capped runs pass by
/// construction).
///
/// # Panics
///
/// Panics if any report failed its check.
pub fn assert_verified(reports: &[RunReport]) {
    for r in reports {
        assert!(
            r.verified,
            "workload {} under {} failed its architectural check",
            r.workload, r.config
        );
    }
}

struct Section {
    heading: String,
    label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<Json>)>,
}

/// Records a figure's tables while printing them, then emits the whole
/// figure — tables, notes, attached raw runs and sweep counters — as
/// `results/<name>.json` (or the `--json` path). Printing and recording are
/// one call, so the text table and the JSON cannot diverge.
pub struct Figure {
    name: String,
    title: String,
    scale: Scale,
    json_path: PathBuf,
    sections: Vec<Section>,
    notes: Vec<String>,
    sweep: SweepStats,
    runs: Vec<RunReport>,
}

impl Figure {
    /// Starts a figure named `name` (the binary name) and prints its title.
    pub fn new(name: &str, title: &str, args: &BenchArgs) -> Figure {
        println!("# {title}");
        Figure {
            name: name.to_string(),
            title: title.to_string(),
            scale: args.scale,
            json_path: args
                .json
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("results/{name}.json"))),
            sections: Vec::new(),
            notes: Vec::new(),
            sweep: SweepStats::default(),
            runs: Vec::new(),
        }
    }

    /// Starts a table section: prints `# heading` (when non-empty) and the
    /// column header. `label` names the row-label column.
    pub fn section(&mut self, heading: &str, label: &str, columns: &[&str]) {
        if !heading.is_empty() {
            println!("# {heading}");
        }
        print!("{label:16}");
        for c in columns {
            print!(" {c:>10}");
        }
        println!();
        self.sections.push(Section {
            heading: heading.to_string(),
            label: label.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        });
    }

    fn push_row(&mut self, label: &str, values: Vec<Json>) {
        self.sections
            .last_mut()
            .expect("section() before row()")
            .rows
            .push((label.to_string(), values));
    }

    /// Prints and records one row of real-valued cells (printed as `%.3f`;
    /// non-finite values print and serialize as null).
    pub fn row(&mut self, label: &str, values: &[f64]) {
        print!("{label:16}");
        for v in values {
            if v.is_finite() {
                print!(" {v:>10.3}");
            } else {
                print!(" {:>10}", "-");
            }
        }
        println!();
        self.push_row(label, values.iter().map(|v| Json::f64(*v)).collect());
    }

    /// Prints and records one row of integer cells (serialized exactly).
    pub fn row_u64(&mut self, label: &str, values: &[u64]) {
        print!("{label:16}");
        for v in values {
            print!(" {v:>10}");
        }
        println!();
        self.push_row(label, values.iter().map(|v| Json::u64(*v)).collect());
    }

    /// Prints and records a free-form note line.
    pub fn note(&mut self, text: &str) {
        println!("{text}");
        self.notes.push(text.to_string());
    }

    /// Folds a sweep's counters and unique reports into the figure. Reports
    /// already attached (same workload and config label) are kept once.
    pub fn attach(&mut self, res: &SweepResult) {
        self.sweep.pairs += res.stats.pairs;
        self.sweep.points += res.stats.points;
        self.sweep.simulated += res.stats.simulated;
        self.sweep.cache_hits += res.stats.cache_hits;
        self.sweep.journal_hits += res.stats.journal_hits;
        self.sweep.failed += res.stats.failed;
        self.sweep.deduped += res.stats.deduped;
        self.sweep.wall_ms += res.stats.wall_ms;
        for r in res.unique_reports() {
            if !self
                .runs
                .iter()
                .any(|have| have.workload == r.workload && have.config == r.config)
            {
                self.runs.push(r.clone());
            }
        }
    }

    /// Writes the JSON report and prints the sweep summary to stderr.
    ///
    /// # Panics
    ///
    /// Panics if the report cannot be written.
    pub fn finish(self) {
        let sections = Json::Arr(
            self.sections
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("heading".into(), Json::str(&s.heading)),
                        ("label".into(), Json::str(&s.label)),
                        (
                            "columns".into(),
                            Json::Arr(s.columns.iter().map(Json::str).collect()),
                        ),
                        (
                            "rows".into(),
                            Json::Arr(
                                s.rows
                                    .iter()
                                    .map(|(label, values)| {
                                        Json::Obj(vec![
                                            ("label".into(), Json::str(label)),
                                            ("values".into(), Json::Arr(values.clone())),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let stats = &self.sweep;
        let doc = Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("title".into(), Json::str(&self.title)),
            ("scale".into(), Json::str(self.scale.name())),
            ("sections".into(), sections),
            (
                "notes".into(),
                Json::Arr(self.notes.iter().map(Json::str).collect()),
            ),
            (
                "sweep".into(),
                Json::Obj(vec![
                    ("pairs".into(), Json::u64(stats.pairs as u64)),
                    ("points".into(), Json::u64(stats.points as u64)),
                    ("simulated".into(), Json::u64(stats.simulated as u64)),
                    ("cache_hits".into(), Json::u64(stats.cache_hits as u64)),
                    ("journal_hits".into(), Json::u64(stats.journal_hits as u64)),
                    ("failed".into(), Json::u64(stats.failed as u64)),
                    ("deduped".into(), Json::u64(stats.deduped as u64)),
                    ("wall_ms".into(), Json::u64(stats.wall_ms)),
                ]),
            ),
            (
                "runs".into(),
                Json::Arr(self.runs.iter().map(svr_sim::report_to_json).collect()),
            ),
        ]);
        if let Some(dir) = self.json_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create results directory");
            }
        }
        std::fs::write(&self.json_path, doc.pretty())
            .unwrap_or_else(|e| panic!("write {}: {e}", self.json_path.display()));
        eprintln!("{}", self.sweep.summary());
        eprintln!("[sweep] report: {}", self.json_path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let a = BenchArgs::try_parse(&strs(&[
            "--scale",
            "tiny",
            "--threads",
            "3",
            "--json",
            "out.json",
            "--no-cache",
            "--cache-dir",
            "/tmp/c",
            "--cache-max-bytes",
            "1048576",
            "PR_KR",
        ]))
        .expect("parses");
        assert_eq!(a.scale, Scale::Tiny);
        assert_eq!(a.threads, 3);
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert!(a.no_cache);
        assert_eq!(a.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/c")));
        assert_eq!(a.cache_max_bytes, Some(1_048_576));
        assert_eq!(a.positional, vec!["PR_KR"]);
    }

    #[test]
    fn defaults_are_sane() {
        let a = BenchArgs::try_parse(&[]).expect("parses");
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.mode, ExecMode::Detailed);
        assert!(a.threads >= 1);
        assert!(!a.no_cache);
        assert!(a.json.is_none());
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(BenchArgs::try_parse(&strs(&["--frobnicate"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--scale", "huge"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--scale"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--threads", "0"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--threads", "many"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--json"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--mode", "turbo"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--mode"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--cache-max-bytes", "0"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--cache-max-bytes", "lots"])).is_err());
    }

    #[test]
    fn parses_mode_flag() {
        let a = BenchArgs::try_parse(&strs(&["--mode", "warp"])).expect("parses");
        assert_eq!(a.mode, ExecMode::Warp);
        let a = BenchArgs::try_parse(&strs(&["--mode", "detailed"])).expect("parses");
        assert_eq!(a.mode, ExecMode::Detailed);
        let a = BenchArgs::try_parse(&strs(&["--mode", "sampled"])).expect("parses");
        assert_eq!(a.mode, ExecMode::Sampled);
    }

    #[test]
    fn parses_sampling_flags_and_builds_options() {
        let a = BenchArgs::try_parse(&strs(&[
            "--mode",
            "sampled",
            "--sample-interval",
            "500",
            "--sample-warmup",
            "0",
            "--sample-period",
            "4000",
        ]))
        .expect("parses");
        assert_eq!(a.sample_interval, Some(500));
        assert_eq!(a.sample_warmup, Some(0));
        assert_eq!(a.sample_period, Some(4000));
        let opts = run_options(&a);
        assert_eq!(opts.mode, ExecMode::Sampled);
        assert_eq!(
            (opts.sample_interval, opts.sample_warmup, opts.sample_period),
            (500, 0, 4000)
        );

        // Absent flags keep the library defaults.
        let d = run_options(&BenchArgs::default());
        assert_eq!(d, RunOptions::default());

        assert!(BenchArgs::try_parse(&strs(&["--sample-interval", "0"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--sample-period", "0"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--sample-warmup", "x"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--sample-warmup"])).is_err());
    }

    #[test]
    fn usage_mentions_every_flag() {
        let u = usage("fig11_cpi");
        for flag in [
            "--scale",
            "--mode",
            "--threads",
            "--json",
            "--no-cache",
            "--cache-dir",
            "--trace",
            "--trace-interval",
            "--sample-interval",
            "--sample-warmup",
            "--sample-period",
        ] {
            assert!(u.contains(flag), "usage missing {flag}");
        }
        assert!(u.contains("sampled"), "usage missing the sampled mode");
    }

    #[test]
    fn parses_trace_flags() {
        let a = BenchArgs::try_parse(&strs(&["--trace"])).expect("parses");
        assert!(a.trace);
        assert!(a.trace_path.is_none());
        assert!(a.trace_interval.is_none());

        let a = BenchArgs::try_parse(&strs(&[
            "--trace=out/t.json",
            "--trace-interval",
            "5000",
        ]))
        .expect("parses");
        assert!(a.trace);
        assert_eq!(
            a.trace_path.as_deref(),
            Some(std::path::Path::new("out/t.json"))
        );
        assert_eq!(a.trace_interval, Some(5000));

        assert!(BenchArgs::try_parse(&strs(&["--trace="])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--trace-interval", "0"])).is_err());
        assert!(BenchArgs::try_parse(&strs(&["--trace-interval"])).is_err());
    }

    #[test]
    fn kernel_and_config_lookup() {
        use svr_workloads::GraphInput;
        assert_eq!(kernel_from_name("PR_KR"), Some(Kernel::Pr(GraphInput::Kr)));
        assert_eq!(kernel_from_name("Camel"), Some(Kernel::Camel));
        assert_eq!(kernel_from_name("nope"), None);
        assert_eq!(config_from_label("InO").map(|c| c.label()).as_deref(), Some("InO"));
        assert_eq!(config_from_label("SVR16").map(|c| c.label()).as_deref(), Some("SVR16"));
        assert_eq!(config_from_label("SVR24").map(|c| c.label()).as_deref(), Some("SVR24"));
        assert!(config_from_label("SVR0").is_none());
        assert!(config_from_label("bogus").is_none());
    }

    #[test]
    fn sweep_helper_honours_cache_flags() {
        use svr_workloads::Kernel;
        // Smoke: a no-cache sweep built through the helper runs and dedupes.
        let args = BenchArgs {
            scale: Scale::Tiny,
            no_cache: true,
            ..BenchArgs::default()
        };
        let res = sweep(vec![Kernel::Camel], &args)
            .configs(vec![SimConfig::inorder(), SimConfig::inorder()])
            .run(1);
        assert_eq!(res.stats.simulated, 1);
        assert_eq!(res.stats.deduped, 1);
    }

    #[test]
    fn paper_configs_have_unique_labels() {
        let labels: Vec<String> = paper_configs().iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len(), "duplicate labels: {labels:?}");
        assert_eq!(labels.len(), 8);
    }
}
