//! Criterion benchmarks: simulator throughput per core model and
//! reduced-scale versions of each experiment family. The full-scale paper
//! tables/figures are produced by the `fig*`/`table*`/`ablation*` harness
//! binaries (see DESIGN.md §5); these benches keep the same code paths
//! exercised and timed on every `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use svr_core::{LoopBoundMode, SvrConfig};
use svr_sim::{run_kernel, run_workload, SimConfig};
use svr_workloads::{GraphInput, Kernel, Scale};

/// Core-model throughput on a fixed workload (instructions simulated per
/// wall-clock second is the meaningful number; criterion reports time).
fn core_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_throughput");
    g.sample_size(10);
    let w = Kernel::Camel.build(Scale::Tiny);
    for (name, cfg) in [
        ("inorder", SimConfig::inorder()),
        ("imp", SimConfig::imp()),
        ("ooo", SimConfig::ooo()),
        ("svr16", SimConfig::svr(16)),
        ("svr128", SimConfig::svr(128)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| run_workload(&w, cfg, 200_000));
        });
    }
    g.finish();
}

/// Fig. 1/11 family: one representative workload per group under SVR-16.
fn fig11_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_cpi");
    g.sample_size(10);
    for k in [
        Kernel::Pr(GraphInput::Kr),
        Kernel::Bfs(GraphInput::Ur),
        Kernel::NasIs,
        Kernel::HashJoin(2),
    ] {
        let w = k.build(Scale::Tiny);
        g.bench_with_input(BenchmarkId::from_parameter(k.name()), &w, |b, w| {
            b.iter(|| run_workload(w, &SimConfig::svr(16), 200_000));
        });
    }
    g.finish();
}

/// Fig. 15 family: loop-bound predictor variants.
fn fig15_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_loop_bounds");
    g.sample_size(10);
    let w = Kernel::Pr(GraphInput::Ur).build(Scale::Tiny);
    for (name, mode) in [
        ("maxlength", LoopBoundMode::Maxlength),
        ("ewma", LoopBoundMode::Ewma),
        ("lbd_cv", LoopBoundMode::LbdCv),
        ("tournament", LoopBoundMode::Tournament),
    ] {
        let cfg = SimConfig::svr_with(SvrConfig {
            loop_bound_mode: mode,
            ..SvrConfig::default()
        });
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| run_workload(&w, cfg, 200_000));
        });
    }
    g.finish();
}

/// Fig. 17/18 family: memory-system sweeps.
fn sensitivity_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("sensitivity");
    g.sample_size(10);
    for mshrs in [1usize, 8, 16] {
        let cfg = SimConfig::svr(16).with_mshrs(mshrs);
        g.bench_with_input(BenchmarkId::new("mshrs", mshrs), &cfg, |b, cfg| {
            b.iter(|| run_kernel(Kernel::Randacc, Scale::Tiny, cfg));
        });
    }
    for bw in [12.5f64, 50.0] {
        let cfg = SimConfig::svr(16).with_bandwidth(bw);
        g.bench_with_input(BenchmarkId::new("bandwidth", bw as u64), &cfg, |b, cfg| {
            b.iter(|| run_kernel(Kernel::Randacc, Scale::Tiny, cfg));
        });
    }
    g.finish();
}

/// Workload construction cost (graph generation + assembly + references).
fn workload_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_build");
    g.sample_size(10);
    for k in [
        Kernel::Pr(GraphInput::Kr),
        Kernel::HashJoin(8),
        Kernel::NasCg,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(k.name()), &k, |b, k| {
            b.iter(|| k.build(Scale::Tiny));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    core_throughput,
    fig11_family,
    fig15_family,
    sensitivity_family,
    workload_build
);
criterion_main!(benches);
