//! Throughput benchmarks: simulator speed per core model and reduced-scale
//! versions of each experiment family. The full-scale paper tables/figures
//! are produced by the `fig*`/`table*`/`ablation*` harness binaries (see
//! DESIGN.md §5); these benches keep the same code paths exercised and
//! timed on every `cargo bench`.
//!
//! Hand-rolled timing loop (`harness = false`): the registry is offline, so
//! criterion is unavailable. Each case is warmed once and then timed over
//! enough iterations to smooth scheduler noise; we report wall time per
//! iteration and simulated instructions per second.

use std::time::Instant;
use svr_core::{LoopBoundMode, SvrConfig};
use svr_sim::{run_kernel, run_workload, RunOptions, SimConfig};
use svr_workloads::{GraphInput, Kernel, Scale, Workload};

const ITERS: u32 = 5;

/// Times `f` over [`ITERS`] iterations (after one warm-up) and prints one
/// report row. `f` returns the number of simulated instructions.
fn bench<F: FnMut() -> u64>(group: &str, name: &str, mut f: F) {
    let mut insts = f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..ITERS {
        insts = f();
    }
    let dt = t0.elapsed().as_secs_f64() / f64::from(ITERS);
    println!(
        "{group:18} {name:12} {:>9.2} ms/iter {:>8.2} Minst/s",
        dt * 1e3,
        insts as f64 / dt / 1e6
    );
}

fn run(w: &Workload, cfg: &SimConfig) -> u64 {
    run_workload(w, cfg, &RunOptions::detailed(200_000))
        .expect("valid config")
        .core
        .retired
}

fn run_warp(w: &Workload, cfg: &SimConfig) -> u64 {
    run_workload(w, cfg, &RunOptions::warp(200_000))
        .expect("valid config")
        .core
        .retired
}

/// Core-model throughput on a fixed workload.
fn core_throughput() {
    let w = Kernel::Camel.build(Scale::Tiny);
    for (name, cfg) in [
        ("inorder", SimConfig::inorder()),
        ("imp", SimConfig::imp()),
        ("ooo", SimConfig::ooo()),
        ("svr16", SimConfig::svr(16)),
        ("svr128", SimConfig::svr(128)),
    ] {
        bench("core_throughput", name, || run(&w, &cfg));
    }
    // Functional fast-forward, for comparison against the detailed models.
    bench("core_throughput", "warp", || {
        run_warp(&w, &SimConfig::inorder())
    });
}

/// Fig. 1/11 family: one representative workload per group under SVR-16.
fn fig11_family() {
    for k in [
        Kernel::Pr(GraphInput::Kr),
        Kernel::Bfs(GraphInput::Ur),
        Kernel::NasIs,
        Kernel::HashJoin(2),
    ] {
        let w = k.build(Scale::Tiny);
        bench("fig11_cpi", &k.name(), || run(&w, &SimConfig::svr(16)));
    }
}

/// Fig. 15 family: loop-bound predictor variants.
fn fig15_family() {
    let w = Kernel::Pr(GraphInput::Ur).build(Scale::Tiny);
    for (name, mode) in [
        ("maxlength", LoopBoundMode::Maxlength),
        ("ewma", LoopBoundMode::Ewma),
        ("lbd_cv", LoopBoundMode::LbdCv),
        ("tournament", LoopBoundMode::Tournament),
    ] {
        let cfg = SimConfig::svr_with(SvrConfig {
            loop_bound_mode: mode,
            ..SvrConfig::default()
        });
        bench("fig15_loop_bounds", name, || run(&w, &cfg));
    }
}

/// Fig. 17/18 family: memory-system sweeps.
fn sensitivity_family() {
    for mshrs in [1usize, 8, 16] {
        let cfg = SimConfig::svr(16).with_mshrs(mshrs);
        bench("sensitivity", &format!("mshrs/{mshrs}"), || {
            run_kernel(Kernel::Randacc, Scale::Tiny, &cfg, &RunOptions::default())
                .expect("valid config")
                .core
                .retired
        });
    }
    for bw in [12.5f64, 50.0] {
        let cfg = SimConfig::svr(16).with_bandwidth(bw);
        bench("sensitivity", &format!("bw/{bw}"), || {
            run_kernel(Kernel::Randacc, Scale::Tiny, &cfg, &RunOptions::default())
                .expect("valid config")
                .core
                .retired
        });
    }
}

/// Workload construction cost (graph generation + assembly + references).
fn workload_build() {
    for k in [
        Kernel::Pr(GraphInput::Kr),
        Kernel::HashJoin(8),
        Kernel::NasCg,
    ] {
        bench("workload_build", &k.name(), || {
            let w = k.build(Scale::Tiny);
            w.program.len() as u64
        });
    }
}

fn main() {
    println!(
        "{:18} {:12} {:>17} {:>16}",
        "group", "bench", "time", "throughput"
    );
    core_throughput();
    fig11_family();
    fig15_family();
    sensitivity_family();
    workload_build();
}
