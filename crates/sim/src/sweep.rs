//! The experiment engine: declarative sweeps over (workload × configuration)
//! grids with point deduplication, an on-disk result cache, parallel
//! execution and per-job tracing.
//!
//! Every figure of the paper is a sweep over the same few suites and design
//! points, and many figures share points (all sensitivity studies re-run the
//! SVR-16/64 and in-order baselines). The engine hashes the *full*
//! simulation configuration ([`SimConfig::cache_key`]) together with the
//! workload identity, so
//!
//! * identical points inside one sweep are simulated once (dedup), and
//! * points simulated by *any* earlier invocation are loaded from
//!   `results/cache/<hash>.json` instead of re-simulated (cache).
//!
//! ```no_run
//! use svr_sim::{Sweep, SimConfig};
//! use svr_workloads::{irregular_suite, Scale};
//!
//! let res = Sweep::new(irregular_suite(), Scale::Small)
//!     .configs(vec![SimConfig::inorder(), SimConfig::svr(16)])
//!     .run(8);
//! res.assert_verified();
//! println!("speedup {:.2}", res.speedup(0, 1));
//! eprintln!("{}", res.stats.summary());
//! ```

use crate::config::{ConfigError, SimConfig};
use crate::json::Json;
use crate::report::{report_from_json, report_to_json};
use crate::runner::{run_workload, RunReport};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;
use svr_workloads::{Kernel, Scale};

/// Bump when the cache-entry layout or simulator semantics change in a way
/// that invalidates stored reports; old entries then simply stop matching.
/// v2: integer fixed-point DRAM timing, `Option` MSHR `earliest_free`, and
/// racing-fill prefetch-tag accounting (PR 2) can all shift reports.
/// v3: exact CPI-stack tail attribution on the in-order core (PR 3) shifts
/// per-bucket stack entries in stored reports.
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// 64-bit FNV-1a over a string (the cache/dedup point hash).
pub fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where a job's report came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// Freshly simulated in this sweep.
    Simulated,
    /// Loaded from the on-disk result cache.
    Cached,
}

/// Trace record for one resolved design point (the progress hook payload).
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Workload name.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// How the report was obtained.
    pub source: JobSource,
    /// Wall time spent simulating (or loading) this point, in milliseconds.
    pub wall_ms: f64,
}

/// Aggregate counters for one sweep invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Requested (workload, config) pairs.
    pub pairs: usize,
    /// Unique design points after dedup.
    pub points: usize,
    /// Points resolved by fresh simulation.
    pub simulated: usize,
    /// Points resolved from the on-disk cache.
    pub cache_hits: usize,
    /// Pairs that aliased an identical point inside this sweep.
    pub deduped: usize,
    /// Total wall time of the sweep in milliseconds.
    pub wall_ms: u64,
}

impl SweepStats {
    /// One-line human summary (binaries print this to stderr).
    pub fn summary(&self) -> String {
        format!(
            "[sweep] pairs={} points={} simulated={} cached={} deduped={} wall={:.1}s",
            self.pairs,
            self.points,
            self.simulated,
            self.cache_hits,
            self.deduped,
            self.wall_ms as f64 / 1e3
        )
    }
}

/// A declarative sweep over `suite × configs` at one scale.
pub struct Sweep {
    suite: Vec<Kernel>,
    scale: Scale,
    configs: Vec<SimConfig>,
    cache_dir: Option<PathBuf>,
    on_job: Option<fn(&JobTrace)>,
}

impl Sweep {
    /// Sweep of `suite` at `scale`. The result cache defaults to
    /// `$SVR_CACHE_DIR` or `results/cache`; see [`Sweep::no_cache`].
    pub fn new(suite: Vec<Kernel>, scale: Scale) -> Self {
        let dir = std::env::var("SVR_CACHE_DIR").unwrap_or_else(|_| "results/cache".into());
        Sweep {
            suite,
            scale,
            configs: Vec::new(),
            cache_dir: Some(PathBuf::from(dir)),
            on_job: None,
        }
    }

    /// Sets the configuration axis.
    pub fn configs(mut self, configs: Vec<SimConfig>) -> Self {
        self.configs = configs;
        self
    }

    /// Appends one configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Disables the on-disk result cache (in-sweep dedup still applies).
    pub fn no_cache(mut self) -> Self {
        self.cache_dir = None;
        self
    }

    /// Uses `dir` for the on-disk result cache.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Installs a progress hook called once per resolved point (from worker
    /// threads, so interleaving is possible) with its wall time and source.
    pub fn on_job(mut self, hook: fn(&JobTrace)) -> Self {
        self.on_job = Some(hook);
        self
    }

    /// Resolves every (workload, config) pair across `threads` OS threads
    /// and returns the full grid. Deterministic: simulation results do not
    /// depend on the thread count or on cache state.
    ///
    /// # Panics
    ///
    /// Panics if any configuration fails [`SimConfig::validate`]; see
    /// [`Sweep::try_run`] for the non-panicking form.
    pub fn run(self, threads: usize) -> SweepResult {
        self.try_run(threads).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Sweep::run`], but an invalid configuration is surfaced as a
    /// [`ConfigError`] naming the offending point (config label, and the
    /// first workload of the suite it would have run against) instead of a
    /// panic from a worker thread. Every configuration is validated eagerly
    /// before any simulation starts.
    pub fn try_run(self, threads: usize) -> Result<SweepResult, ConfigError> {
        let t0 = Instant::now();
        for cfg in &self.configs {
            cfg.validate().map_err(|e| match self.suite.first() {
                Some(k) => e.for_workload(&k.name()),
                None => e,
            })?;
        }
        let mut stats = SweepStats {
            pairs: self.suite.len() * self.configs.len(),
            ..SweepStats::default()
        };

        // Dedup identical points within the grid.
        struct Point {
            kernel: Kernel,
            config: SimConfig,
            key: String,
            hash: u64,
            report: Option<RunReport>,
        }
        let mut points: Vec<Point> = Vec::new();
        let mut by_hash: HashMap<u64, usize> = HashMap::new();
        let mut point_of: Vec<Vec<usize>> = Vec::with_capacity(self.configs.len());
        for cfg in &self.configs {
            let cfg_key = cfg.cache_key();
            let mut row = Vec::with_capacity(self.suite.len());
            for k in &self.suite {
                let key = format!(
                    "v{CACHE_FORMAT_VERSION};wl={};scale={};insts={};{cfg_key}",
                    k.name(),
                    self.scale.name(),
                    self.scale.max_insts(),
                );
                let hash = fnv1a64(&key);
                let idx = *by_hash.entry(hash).or_insert_with(|| {
                    points.push(Point {
                        kernel: *k,
                        config: cfg.clone(),
                        key,
                        hash,
                        report: None,
                    });
                    points.len() - 1
                });
                row.push(idx);
            }
            point_of.push(row);
        }
        stats.points = points.len();
        stats.deduped = stats.pairs - stats.points;

        let mut traces: Vec<JobTrace> = Vec::with_capacity(points.len());

        // Probe the on-disk cache.
        if let Some(dir) = &self.cache_dir {
            for p in &mut points {
                let t = Instant::now();
                if let Some(report) = load_cached(dir, p.hash, &p.key) {
                    let trace = JobTrace {
                        workload: report.workload.clone(),
                        config: report.config.clone(),
                        source: JobSource::Cached,
                        wall_ms: t.elapsed().as_secs_f64() * 1e3,
                    };
                    emit(&self.on_job, &trace);
                    traces.push(trace);
                    p.report = Some(report);
                    stats.cache_hits += 1;
                }
            }
        }

        // Simulate the misses in parallel (deterministic per point). Points
        // are grouped by workload so each kernel is *built once per sweep*,
        // not once per configuration: graph construction (ORK/LJN inputs)
        // costs more wall time than simulating the point itself, so the old
        // per-point `run_kernel` spent most of the sweep rebuilding identical
        // inputs. Workers claim whole groups; the built workload is reused
        // for every configuration in the group and dropped before the next.
        let todo: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].report.is_none())
            .collect();
        stats.simulated = todo.len();
        if !todo.is_empty() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;
            let mut groups: Vec<(Kernel, Vec<usize>)> = Vec::new();
            for &i in &todo {
                let k = points[i].kernel;
                match groups.iter_mut().find(|(g, _)| *g == k) {
                    Some((_, idxs)) => idxs.push(i),
                    None => groups.push((k, vec![i])),
                }
            }
            let next = AtomicUsize::new(0);
            let done: Mutex<Vec<(usize, RunReport, JobTrace)>> =
                Mutex::new(Vec::with_capacity(todo.len()));
            let scale = self.scale;
            let cache_dir = self.cache_dir.as_deref();
            let on_job = self.on_job;
            {
                let groups = &groups;
                let points = &points;
                let next = &next;
                let done = &done;
                std::thread::scope(|s| {
                    for _ in 0..threads.max(1).min(groups.len()) {
                        s.spawn(move || loop {
                            let g = next.fetch_add(1, Ordering::Relaxed);
                            if g >= groups.len() {
                                break;
                            }
                            let (kernel, idxs) = &groups[g];
                            let workload = kernel.build(scale);
                            for &idx in idxs {
                                let p = &points[idx];
                                let t = Instant::now();
                                let report = run_workload(&workload, &p.config, scale.max_insts())
                                    .expect("configs validated before the sweep started");
                                let trace = JobTrace {
                                    workload: report.workload.clone(),
                                    config: report.config.clone(),
                                    source: JobSource::Simulated,
                                    wall_ms: t.elapsed().as_secs_f64() * 1e3,
                                };
                                if let Some(dir) = cache_dir {
                                    store_cached(dir, p.hash, &p.key, scale, &report);
                                }
                                emit(&on_job, &trace);
                                done.lock()
                                    .expect("no poisoned sweeps")
                                    .push((idx, report, trace));
                            }
                        });
                    }
                });
            }
            for (idx, report, trace) in done.into_inner().expect("threads joined") {
                points[idx].report = Some(report);
                traces.push(trace);
            }
        }

        stats.wall_ms = t0.elapsed().as_millis() as u64;
        Ok(SweepResult {
            suite: self.suite,
            config_labels: self.configs.iter().map(SimConfig::label).collect(),
            point_of,
            reports: points
                .into_iter()
                .map(|p| p.report.expect("all points resolved"))
                .collect(),
            traces,
            stats,
        })
    }
}

fn emit(hook: &Option<fn(&JobTrace)>, trace: &JobTrace) {
    if let Some(f) = hook {
        f(trace);
    }
    if std::env::var_os("SVR_SWEEP_LOG").is_some() {
        eprintln!(
            "[sweep] {:10} {:9.1} ms  {} / {}",
            format!("{:?}", trace.source).to_lowercase(),
            trace.wall_ms,
            trace.workload,
            trace.config
        );
    }
}

fn cache_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.json"))
}

/// Loads a cache entry, returning `None` on miss, parse failure, or a key
/// mismatch (hash collision or stale format — both re-simulate).
fn load_cached(dir: &Path, hash: u64, key: &str) -> Option<RunReport> {
    let text = std::fs::read_to_string(cache_path(dir, hash)).ok()?;
    let doc = Json::parse(&text).ok()?;
    if doc.get("key").and_then(Json::as_str) != Some(key) {
        return None;
    }
    report_from_json(doc.get("report")?).ok()
}

/// Writes a cache entry atomically (tmp file + rename), so concurrent
/// invocations never observe a torn file. Failures are non-fatal: the cache
/// is an optimization, not a correctness requirement.
fn store_cached(dir: &Path, hash: u64, key: &str, scale: Scale, report: &RunReport) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let doc = Json::Obj(vec![
        ("version".into(), Json::u64(u64::from(CACHE_FORMAT_VERSION))),
        ("key".into(), Json::str(key)),
        ("workload".into(), Json::str(&report.workload)),
        ("config".into(), Json::str(&report.config)),
        ("scale".into(), Json::str(scale.name())),
        ("report".into(), report_to_json(report)),
    ]);
    let path = cache_path(dir, hash);
    let tmp = dir.join(format!("{hash:016x}.tmp.{}", std::process::id()));
    if std::fs::write(&tmp, doc.pretty()).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

/// The resolved grid of a [`Sweep`], indexed `[config][workload]` in the
/// order the axes were declared.
#[derive(Debug)]
pub struct SweepResult {
    suite: Vec<Kernel>,
    config_labels: Vec<String>,
    /// `point_of[config][workload]` → index into `reports`.
    point_of: Vec<Vec<usize>>,
    /// One report per *unique* design point.
    reports: Vec<RunReport>,
    /// Per-point traces (simulation order; cache hits first).
    pub traces: Vec<JobTrace>,
    /// Aggregate counters.
    pub stats: SweepStats,
}

impl SweepResult {
    /// The workload axis.
    pub fn suite(&self) -> &[Kernel] {
        &self.suite
    }

    /// The configuration labels, in axis order.
    pub fn config_labels(&self) -> &[String] {
        &self.config_labels
    }

    /// The report for (config `ci`, workload `wi`).
    pub fn report(&self, ci: usize, wi: usize) -> &RunReport {
        &self.reports[self.point_of[ci][wi]]
    }

    /// All reports for configuration `ci`, in suite order.
    pub fn config_reports(&self, ci: usize) -> Vec<&RunReport> {
        self.point_of[ci]
            .iter()
            .map(|&p| &self.reports[p])
            .collect()
    }

    /// The deduplicated reports (one per unique design point).
    pub fn unique_reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// Harmonic-mean IPC speedup of configuration `ci` over `base_ci`
    /// (Fig. 1's metric), matched per workload.
    ///
    /// # Panics
    ///
    /// Panics if any speedup is non-positive or non-finite.
    pub fn speedup(&self, base_ci: usize, ci: usize) -> f64 {
        let mut denom = 0.0;
        for wi in 0..self.suite.len() {
            let b = self.report(base_ci, wi);
            let n = self.report(ci, wi);
            let s = n.ipc() / b.ipc();
            assert!(s.is_finite() && s > 0.0, "bad speedup for {}", b.workload);
            denom += 1.0 / s;
        }
        self.suite.len() as f64 / denom
    }

    /// Asserts every report passed its architectural check.
    ///
    /// # Panics
    ///
    /// Panics if any report failed.
    pub fn assert_verified(&self) {
        for r in &self.reports {
            assert!(
                r.verified,
                "workload {} under {} failed its architectural check",
                r.workload, r.config
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_kernel;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique temp cache dir per test (removed on drop).
    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "svr-sweep-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("temp dir");
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_suite() -> Vec<Kernel> {
        use svr_workloads::GraphInput;
        vec![Kernel::Camel, Kernel::Pr(GraphInput::Ur), Kernel::NasIs]
    }

    #[test]
    fn second_run_is_all_cache_hits_and_bit_identical() {
        let dir = TempDir::new("roundtrip");
        let configs = vec![SimConfig::inorder(), SimConfig::svr(16)];
        let fresh = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(configs.clone())
            .cache_dir(&dir.0)
            .run(2);
        assert_eq!(fresh.stats.simulated, 6);
        assert_eq!(fresh.stats.cache_hits, 0);

        let cached = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(configs)
            .cache_dir(&dir.0)
            .run(2);
        assert_eq!(cached.stats.simulated, 0, "zero simulations on second run");
        assert_eq!(cached.stats.cache_hits, 6);
        for ci in 0..2 {
            for wi in 0..3 {
                assert_eq!(
                    fresh.report(ci, wi),
                    cached.report(ci, wi),
                    "cached report differs at ({ci},{wi})"
                );
            }
        }
    }

    #[test]
    fn identical_points_are_deduped_within_a_sweep() {
        let configs = vec![
            SimConfig::inorder(),
            SimConfig::svr(16),
            SimConfig::inorder(), // shared baseline, declared twice
        ];
        let res = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(configs)
            .no_cache()
            .run(2);
        assert_eq!(res.stats.pairs, 9);
        assert_eq!(res.stats.points, 6, "baseline simulated once");
        assert_eq!(res.stats.deduped, 3);
        for wi in 0..3 {
            assert_eq!(res.report(0, wi), res.report(2, wi));
        }
    }

    #[test]
    fn sweep_matches_direct_runs_and_is_thread_count_invariant() {
        let configs = vec![SimConfig::inorder(), SimConfig::svr(16)];
        let base = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(configs.clone())
            .no_cache()
            .run(1);
        for threads in [2, 8] {
            let res = Sweep::new(tiny_suite(), Scale::Tiny)
                .configs(configs.clone())
                .no_cache()
                .run(threads);
            for ci in 0..2 {
                for wi in 0..3 {
                    assert_eq!(
                        base.report(ci, wi),
                        res.report(ci, wi),
                        "threads={threads} diverged at ({ci},{wi})"
                    );
                }
            }
        }
        // And against the plain runner.
        let direct = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::svr(16));
        assert_eq!(&direct, base.report(1, 0));
    }

    #[test]
    fn run_parallel_is_deterministic_across_thread_counts() {
        let jobs: Vec<(Kernel, Scale, SimConfig)> = tiny_suite()
            .into_iter()
            .map(|k| (k, Scale::Tiny, SimConfig::svr(16)))
            .collect();
        let one = crate::run_parallel(jobs.clone(), 1);
        for threads in [2, 8] {
            let many = crate::run_parallel(jobs.clone(), threads);
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn corrupt_cache_entries_are_resimulated() {
        let dir = TempDir::new("corrupt");
        let run = || {
            Sweep::new(vec![Kernel::Camel], Scale::Tiny)
                .config(SimConfig::inorder())
                .cache_dir(&dir.0)
                .run(1)
        };
        let fresh = run();
        assert_eq!(fresh.stats.simulated, 1);
        // Truncate every cache file.
        for entry in std::fs::read_dir(&dir.0).expect("dir") {
            std::fs::write(entry.expect("entry").path(), "{not json").expect("truncate");
        }
        let again = run();
        assert_eq!(again.stats.cache_hits, 0, "corrupt entry must not hit");
        assert_eq!(again.stats.simulated, 1);
        assert_eq!(fresh.report(0, 0), again.report(0, 0));
    }

    #[test]
    fn scales_do_not_share_cache_entries() {
        let dir = TempDir::new("scales");
        let run = |scale| {
            Sweep::new(vec![Kernel::Camel], scale)
                .config(SimConfig::inorder())
                .cache_dir(&dir.0)
                .run(1)
        };
        assert_eq!(run(Scale::Tiny).stats.simulated, 1);
        assert_eq!(run(Scale::Small).stats.simulated, 1, "different scale");
        assert_eq!(run(Scale::Tiny).stats.cache_hits, 1);
    }

    #[test]
    fn traces_cover_every_point() {
        let res = Sweep::new(tiny_suite(), Scale::Tiny)
            .config(SimConfig::inorder())
            .no_cache()
            .run(2);
        assert_eq!(res.traces.len(), 3);
        assert!(res.traces.iter().all(|t| t.source == JobSource::Simulated));
        assert!(res.traces.iter().all(|t| t.wall_ms >= 0.0));
        assert_eq!(res.stats.summary().contains("simulated=3"), true);
    }

    #[test]
    fn speedup_matches_harmonic_mean_helper() {
        let res = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(vec![SimConfig::inorder(), SimConfig::svr(16)])
            .no_cache()
            .run(4);
        let base: Vec<RunReport> = res.config_reports(0).into_iter().cloned().collect();
        let new: Vec<RunReport> = res.config_reports(1).into_iter().cloned().collect();
        let expect = crate::harmonic_mean_speedup(&base, &new);
        assert!((res.speedup(0, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn try_run_surfaces_invalid_configs_with_context() {
        let mut bad = SimConfig::imp();
        bad.mem.imp = None; // representable, but silently equals plain InO
        let err = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(vec![SimConfig::inorder(), bad])
            .no_cache()
            .try_run(1)
            .expect_err("invalid config must fail the sweep eagerly");
        assert_eq!(err.config, "IMP");
        assert_eq!(err.workload.as_deref(), Some("Camel"));
        assert!(err.to_string().starts_with("invalid SimConfig IMP"), "{err}");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: changing the hash silently orphans every cache entry.
        assert_eq!(fnv1a64(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64("a"), 0xaf63dc4c8601ec8c);
    }
}
