//! The experiment engine: declarative sweeps over (workload × configuration)
//! grids with point deduplication, an on-disk result cache, parallel
//! execution, per-job tracing — and a hardened failure path: every job runs
//! panic-isolated, failures come back as structured [`JobError`]s instead of
//! tearing down the sweep, a journal of completed points makes a killed
//! sweep resumable with zero recomputation, and failing jobs leave a crash
//! dump behind (see [`crate::crash`]).
//!
//! Every figure of the paper is a sweep over the same few suites and design
//! points, and many figures share points (all sensitivity studies re-run the
//! SVR-16/64 and in-order baselines). The engine hashes the *full*
//! simulation configuration ([`SimConfig::cache_key`]) together with the
//! workload identity, so
//!
//! * identical points inside one sweep are simulated once (dedup), and
//! * points simulated by *any* earlier invocation are loaded from
//!   `results/cache/<hash>.json` instead of re-simulated (cache).
//!
//! ```no_run
//! use svr_sim::{Sweep, SimConfig};
//! use svr_workloads::{irregular_suite, Scale};
//!
//! let res = Sweep::new(irregular_suite(), Scale::Small)
//!     .configs(vec![SimConfig::inorder(), SimConfig::svr(16)])
//!     .run(8);
//! res.assert_verified();
//! println!("speedup {:.2}", res.speedup(0, 1));
//! eprintln!("{}", res.stats.summary());
//! ```

use crate::cache::{load_cached, point_key, store_cached, PointKey};
use crate::config::{ConfigError, SimConfig};
use crate::crash::{default_crash_dir, write_crash_dump};
use crate::error::SimError;
use crate::fnv1a64;
use crate::metrics::CacheMetrics;
use crate::options::{ExecMode, RunOptions};
use crate::runner::{run_workload_traced, RunReport};
use crate::shutdown;
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;
use svr_trace::RingSink;
use svr_workloads::{Kernel, Scale, Workload};

/// Where a job's report came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// Freshly simulated in this sweep.
    Simulated,
    /// Loaded from the on-disk result cache.
    Cached,
    /// Loaded from the cache *and* recorded in this sweep's journal — i.e.
    /// completed by an earlier (killed) invocation of the same sweep.
    Journal,
    /// The job failed; see the matching [`JobError`].
    Failed,
}

/// One failed sweep job: the structured error plus the crash-dump path when
/// the flight recorder managed to write one.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Workload name.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// What went wrong.
    pub error: SimError,
    /// Where the crash dump landed, if one was written.
    pub crash_dump: Option<PathBuf>,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)?;
        if let Some(p) = &self.crash_dump {
            write!(f, " (crash dump: {})", p.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for JobError {}

/// The outcome of one sweep job: a report, or the structured failure that
/// replaced it.
pub type JobResult = Result<RunReport, JobError>;

/// Trace record for one resolved design point (the progress hook payload).
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Workload name.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// How the report was obtained.
    pub source: JobSource,
    /// Wall time spent simulating (or loading) this point, in milliseconds.
    pub wall_ms: f64,
}

/// Aggregate counters for one sweep invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Requested (workload, config) pairs.
    pub pairs: usize,
    /// Unique design points after dedup.
    pub points: usize,
    /// Points resolved by fresh simulation.
    pub simulated: usize,
    /// Points resolved from the on-disk cache.
    pub cache_hits: usize,
    /// Cache hits that were journaled by a killed invocation of this sweep
    /// (a subset of `cache_hits`).
    pub journal_hits: usize,
    /// Points whose job failed (panic, watchdog, invariant violation).
    pub failed: usize,
    /// Points skipped because a shutdown signal arrived mid-sweep (their
    /// slots carry [`SimError::Interrupted`]; the journal is kept so an
    /// identical re-run resumes the completed points).
    pub interrupted: usize,
    /// Pairs that aliased an identical point inside this sweep.
    pub deduped: usize,
    /// Total wall time of the sweep in milliseconds.
    pub wall_ms: u64,
}

impl SweepStats {
    /// One-line human summary (binaries print this to stderr).
    pub fn summary(&self) -> String {
        let interrupted = if self.interrupted > 0 {
            format!(" interrupted={}", self.interrupted)
        } else {
            String::new()
        };
        format!(
            "[sweep] pairs={} points={} simulated={} cached={} journal={} \
             failed={}{interrupted} deduped={} wall={:.1}s",
            self.pairs,
            self.points,
            self.simulated,
            self.cache_hits,
            self.journal_hits,
            self.failed,
            self.deduped,
            self.wall_ms as f64 / 1e3
        )
    }
}

/// A declarative sweep over `suite × configs` at one scale.
pub struct Sweep {
    suite: Vec<Kernel>,
    scale: Scale,
    configs: Vec<SimConfig>,
    options: RunOptions,
    cache_dir: Option<PathBuf>,
    cache_max_bytes: Option<u64>,
    crash_dir: Option<PathBuf>,
    on_job: Option<fn(&JobTrace)>,
    stop: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    metrics: Option<std::sync::Arc<CacheMetrics>>,
}

impl Sweep {
    /// Sweep of `suite` at `scale`. The result cache defaults to
    /// `$SVR_CACHE_DIR` or `results/cache`; see [`Sweep::no_cache`]. Crash
    /// dumps default to `$SVR_CRASH_DIR` or `results/crash`.
    pub fn new(suite: Vec<Kernel>, scale: Scale) -> Self {
        let dir = std::env::var("SVR_CACHE_DIR").unwrap_or_else(|_| "results/cache".into());
        Sweep {
            suite,
            scale,
            configs: Vec::new(),
            options: RunOptions::default(),
            cache_dir: Some(PathBuf::from(dir)),
            cache_max_bytes: None,
            crash_dir: Some(default_crash_dir()),
            on_job: None,
            stop: None,
            metrics: None,
        }
    }

    /// Sets the execution mode for every point (default:
    /// [`ExecMode::Detailed`]). Warp points are cached under distinct keys
    /// (`;mode=warp` suffix), so a warp sweep never pollutes — or reuses —
    /// detailed results.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.options.mode = mode;
        self
    }

    /// Replaces the full per-run options (mode, instruction cap, watchdog
    /// override). The effective cap of each point is the minimum of
    /// [`Scale::max_insts`] and [`RunOptions::max_insts`].
    pub fn options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the configuration axis.
    pub fn configs(mut self, configs: Vec<SimConfig>) -> Self {
        self.configs = configs;
        self
    }

    /// Appends one configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Disables the on-disk result cache (in-sweep dedup still applies; the
    /// resume journal is also disabled, since it lives in the cache dir).
    pub fn no_cache(mut self) -> Self {
        self.cache_dir = None;
        self
    }

    /// Uses `dir` for the on-disk result cache.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Caps the on-disk result cache at `max_bytes`: after the sweep
    /// resolves, the oldest entries (LRU by mtime) are evicted until the
    /// cache fits (see [`crate::ResultCache::gc`]; journal and quarantine
    /// files are never evicted). `None` (the default) means unbounded.
    pub fn cache_max_bytes(mut self, max_bytes: u64) -> Self {
        self.cache_max_bytes = Some(max_bytes);
        self
    }

    /// Uses `dir` for crash dumps (the flight recorder output).
    pub fn crash_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.crash_dir = Some(dir.into());
        self
    }

    /// Disables the crash flight recorder (failures still come back as
    /// structured [`JobError`]s, just without a dump on disk).
    pub fn no_crash_dumps(mut self) -> Self {
        self.crash_dir = None;
        self
    }

    /// Installs a progress hook called once per resolved point (from worker
    /// threads, so interleaving is possible) with its wall time and source.
    pub fn on_job(mut self, hook: fn(&JobTrace)) -> Self {
        self.on_job = Some(hook);
        self
    }

    /// Adds a sweep-local stop flag, checked alongside the process-wide
    /// [`crate::shutdown`] flag: when either is set, workers stop claiming
    /// points and surface the remainder as [`SimError::Interrupted`]. The
    /// simulation server drains individual sweeps this way without asking
    /// the whole process to shut down (and tests interrupt deterministically
    /// without touching global state).
    pub fn stop_flag(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.stop = Some(flag);
        self
    }

    /// Attaches a cache instrument cluster (see [`CacheMetrics`]): cache
    /// probes, stores and GC evictions performed by this sweep are counted
    /// into it. Out-of-band — reports and cache bytes are unaffected.
    pub fn metrics(mut self, metrics: std::sync::Arc<CacheMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Resolves every (workload, config) pair across `threads` OS threads
    /// and returns the full grid. Deterministic: simulation results do not
    /// depend on the thread count or on cache state.
    ///
    /// # Panics
    ///
    /// Panics if any configuration fails [`SimConfig::validate`] or if any
    /// job failed (listing every failure and its crash dump); see
    /// [`Sweep::try_run`] for the non-panicking form.
    ///
    /// # Exits
    ///
    /// When a shutdown signal (SIGINT/SIGTERM, with
    /// [`crate::shutdown::install`]ed handlers) arrives mid-sweep, the sweep
    /// stops claiming new points, journals what completed, prints the
    /// partial summary, and exits the process with status 130 — the
    /// conventional interrupted-by-signal code — instead of panicking over
    /// the unfinished points. Re-running the identical command resumes from
    /// the journal. Library callers that need to survive an interruption
    /// should use [`Sweep::try_run`] and inspect
    /// [`SweepStats::interrupted`].
    pub fn run(self, threads: usize) -> SweepResult {
        let res = self.try_run(threads).unwrap_or_else(|e| panic!("{e}"));
        if res.stats.interrupted > 0 {
            eprintln!("{}", res.stats.summary());
            eprintln!(
                "[sweep] interrupted by signal: {} of {} points unresolved; \
                 completed points are journaled — re-run the same command to resume",
                res.stats.interrupted, res.stats.points
            );
            std::process::exit(130);
        }
        let errors = res.errors();
        if !errors.is_empty() {
            let lines: Vec<String> = errors.iter().map(|e| format!("  {e}")).collect();
            panic!("{} sweep job(s) failed:\n{}", errors.len(), lines.join("\n"));
        }
        res
    }

    /// [`Sweep::run`], but failures are data instead of panics:
    ///
    /// * an invalid configuration is surfaced eagerly as a [`ConfigError`]
    ///   naming the offending point, before any simulation starts;
    /// * a job that panics, trips the watchdog, or violates a simulator
    ///   invariant becomes a [`JobError`] on its own grid slot — sibling
    ///   jobs complete normally ([`SweepResult::errors`] lists failures).
    ///
    /// When the cache is enabled, completed points are journaled under
    /// `<cache_dir>/journal/`; re-running an identical sweep after a kill
    /// resumes from the journal with zero recomputation, and a sweep that
    /// completes with no failures removes its journal.
    pub fn try_run(self, threads: usize) -> Result<SweepResult, ConfigError> {
        let t0 = Instant::now();
        for cfg in &self.configs {
            cfg.validate().map_err(|e| match self.suite.first() {
                Some(k) => e.for_workload(&k.name()),
                None => e,
            })?;
        }
        let mut stats = SweepStats {
            pairs: self.suite.len() * self.configs.len(),
            ..SweepStats::default()
        };

        // Dedup identical points within the grid.
        struct Point {
            kernel: Kernel,
            config: SimConfig,
            key: String,
            hash: u64,
            outcome: Option<JobResult>,
        }
        let mut points: Vec<Point> = Vec::new();
        let mut by_hash: HashMap<u64, usize> = HashMap::new();
        let mut point_of: Vec<Vec<usize>> = Vec::with_capacity(self.configs.len());
        // Point identity comes from the shared `point_key` (see
        // `crate::cache`): byte-identical to the historical sweep format so
        // existing caches stay valid, with mode/sampling tags appended for
        // non-detailed runs.
        for cfg in &self.configs {
            let mut row = Vec::with_capacity(self.suite.len());
            for k in &self.suite {
                let PointKey { key, hash } =
                    point_key(&k.name(), self.scale, cfg, &self.options);
                let idx = *by_hash.entry(hash).or_insert_with(|| {
                    points.push(Point {
                        kernel: *k,
                        config: cfg.clone(),
                        key,
                        hash,
                        outcome: None,
                    });
                    points.len() - 1
                });
                row.push(idx);
            }
            point_of.push(row);
        }
        stats.points = points.len();
        stats.deduped = stats.pairs - stats.points;

        let mut traces: Vec<JobTrace> = Vec::with_capacity(points.len());

        // The resume journal is keyed by the full point set, so "the same
        // sweep, invoked again" maps to the same journal file.
        let journal = self.cache_dir.as_ref().map(|dir| {
            let mut id_src = String::new();
            for p in &points {
                id_src.push_str(&p.key);
                id_src.push('\n');
            }
            Journal::new(dir, fnv1a64(&id_src))
        });
        let journaled: HashSet<u64> = journal.as_ref().map(Journal::load).unwrap_or_default();

        // Probe the on-disk cache.
        let cache_metrics = self.metrics.clone();
        if let Some(dir) = &self.cache_dir {
            for p in &mut points {
                let t = Instant::now();
                if let Some(report) = load_cached(dir, p.hash, &p.key) {
                    if let Some(m) = &cache_metrics {
                        m.hits.inc();
                    }
                    let source = if journaled.contains(&p.hash) {
                        stats.journal_hits += 1;
                        JobSource::Journal
                    } else {
                        JobSource::Cached
                    };
                    let trace = JobTrace {
                        workload: report.workload.clone(),
                        config: report.config.clone(),
                        source,
                        wall_ms: t.elapsed().as_secs_f64() * 1e3,
                    };
                    emit(&self.on_job, &trace);
                    traces.push(trace);
                    p.outcome = Some(Ok(report));
                    stats.cache_hits += 1;
                }
            }
        }

        // Simulate the misses in parallel (deterministic per point). Points
        // are grouped by workload so each kernel is *built once per sweep*,
        // not once per configuration: graph construction (ORK/LJN inputs)
        // costs more wall time than simulating the point itself, so the old
        // per-point `run_kernel` spent most of the sweep rebuilding identical
        // inputs. Workers claim whole groups; the built workload is reused
        // for every configuration in the group and dropped before the next.
        //
        // Every job — including workload construction — runs panic-isolated:
        // one failing point (panic, watchdog trip, invariant violation)
        // becomes a `JobError` on its own slot and its siblings finish
        // normally.
        let todo: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].outcome.is_none())
            .collect();
        if let Some(m) = &cache_metrics {
            m.misses.add(todo.len() as u64);
        }
        if !todo.is_empty() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let mut groups: Vec<(Kernel, Vec<usize>)> = Vec::new();
            for &i in &todo {
                let k = points[i].kernel;
                match groups.iter_mut().find(|(g, _)| *g == k) {
                    Some((_, idxs)) => idxs.push(i),
                    None => groups.push((k, vec![i])),
                }
            }
            let next = AtomicUsize::new(0);
            let done: Mutex<Vec<(usize, JobResult, JobTrace)>> =
                Mutex::new(Vec::with_capacity(todo.len()));
            let scale = self.scale;
            let options = self.options;
            let cache_dir = self.cache_dir.as_deref();
            let crash_dir = self.crash_dir.as_deref();
            let journal = journal.as_ref();
            let on_job = self.on_job;
            let stop = self.stop.clone();
            let interrupted_now = move || {
                shutdown::requested()
                    || stop
                        .as_ref()
                        .is_some_and(|f| f.load(Ordering::SeqCst))
            };
            {
                let interrupted_now = &interrupted_now;
                let groups = &groups;
                let points = &points;
                let next = &next;
                let done = &done;
                let cache_metrics = &cache_metrics;
                std::thread::scope(|s| {
                    for _ in 0..threads.max(1).min(groups.len()) {
                        s.spawn(move || loop {
                            let g = next.fetch_add(1, Ordering::Relaxed);
                            if g >= groups.len() {
                                break;
                            }
                            let (kernel, idxs) = &groups[g];
                            // A shutdown signal mid-sweep: stop claiming
                            // work. Every unstarted point is surfaced as a
                            // structured `Interrupted` error; completed
                            // points are already journaled, so an identical
                            // re-run resumes without recomputation.
                            if interrupted_now() {
                                for &idx in idxs {
                                    let p = &points[idx];
                                    let job = interrupt_failure(kernel, p.config.label());
                                    let trace = JobTrace {
                                        workload: job.workload.clone(),
                                        config: job.config.clone(),
                                        source: JobSource::Failed,
                                        wall_ms: 0.0,
                                    };
                                    emit(&on_job, &trace);
                                    lock_ok(done).push((idx, Err(job), trace));
                                }
                                continue;
                            }
                            // Workload construction can panic too (a build
                            // bug); that fails this group's points only.
                            let built = catch_unwind(AssertUnwindSafe(|| kernel.build(scale)));
                            let workload = match built {
                                Ok(w) => w,
                                Err(payload) => {
                                    let msg = panic_message(payload);
                                    for &idx in idxs {
                                        let p = &points[idx];
                                        let job = build_failure(
                                            kernel,
                                            p.config.label(),
                                            &p.key,
                                            &msg,
                                            crash_dir,
                                        );
                                        let trace = JobTrace {
                                            workload: job.workload.clone(),
                                            config: job.config.clone(),
                                            source: JobSource::Failed,
                                            wall_ms: 0.0,
                                        };
                                        emit(&on_job, &trace);
                                        lock_ok(done).push((idx, Err(job), trace));
                                    }
                                    continue;
                                }
                            };
                            for &idx in idxs {
                                let p = &points[idx];
                                if interrupted_now() {
                                    let job = interrupt_failure(kernel, p.config.label());
                                    let trace = JobTrace {
                                        workload: job.workload.clone(),
                                        config: job.config.clone(),
                                        source: JobSource::Failed,
                                        wall_ms: 0.0,
                                    };
                                    emit(&on_job, &trace);
                                    lock_ok(done).push((idx, Err(job), trace));
                                    continue;
                                }
                                let t = Instant::now();
                                let result = simulate_point(
                                    &workload, &p.config, &p.key, scale, &options, crash_dir,
                                );
                                let source = match &result {
                                    Ok(report) => {
                                        if let Some(dir) = cache_dir {
                                            store_cached(dir, p.hash, &p.key, scale, report);
                                            if let Some(m) = cache_metrics {
                                                m.stores.inc();
                                            }
                                        }
                                        if let Some(j) = journal {
                                            j.append(p.hash);
                                        }
                                        JobSource::Simulated
                                    }
                                    Err(_) => JobSource::Failed,
                                };
                                let trace = JobTrace {
                                    workload: workload.name.clone(),
                                    config: p.config.label(),
                                    source,
                                    wall_ms: t.elapsed().as_secs_f64() * 1e3,
                                };
                                emit(&on_job, &trace);
                                lock_ok(done).push((idx, result, trace));
                            }
                        });
                    }
                });
            }
            for (idx, outcome, trace) in lock_ok(&done).drain(..) {
                points[idx].outcome = Some(outcome);
                traces.push(trace);
            }
        }

        let reports: Vec<JobResult> = points
            .into_iter()
            .map(
                #[allow(clippy::result_large_err)] // cold path: errors only exist on failed jobs
                |p| p.outcome.expect("all points resolved"),
            )
            .collect();
        stats.interrupted = reports
            .iter()
            .filter(|r| {
                matches!(r, Err(e) if matches!(e.error, SimError::Interrupted { .. }))
            })
            .count();
        stats.failed = reports.iter().filter(|r| r.is_err()).count() - stats.interrupted;
        stats.simulated = todo.len() - stats.failed - stats.interrupted;
        // A fully successful sweep no longer needs its journal (the cache
        // answers everything); keep it when anything failed or was
        // interrupted, so a fixed or resumed re-run still skips the
        // completed points.
        if stats.failed == 0 && stats.interrupted == 0 {
            if let Some(j) = &journal {
                j.remove();
            }
        }
        // Size-capped cache: evict the oldest entries now that this sweep's
        // results are stored (so the points just computed are the newest and
        // survive preferentially).
        if let (Some(dir), Some(max)) = (&self.cache_dir, self.cache_max_bytes) {
            let mut store = crate::ResultCache::new(dir);
            if let Some(m) = &cache_metrics {
                store = store.with_metrics(m.clone());
            }
            let gc = store.gc(max);
            if gc.evicted > 0 {
                eprintln!(
                    "[sweep] cache gc: evicted {} entr{} ({} bytes) to fit {max} bytes",
                    gc.evicted,
                    if gc.evicted == 1 { "y" } else { "ies" },
                    gc.evicted_bytes
                );
            }
        }
        stats.wall_ms = t0.elapsed().as_millis() as u64;
        Ok(SweepResult {
            suite: self.suite,
            config_labels: self.configs.iter().map(SimConfig::label).collect(),
            point_of,
            reports,
            traces,
            stats,
        })
    }
}

/// Locks a mutex, riding through poisoning: a panicking sweep worker is
/// already caught at the job boundary, and the per-slot data is consistent.
fn lock_ok<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Renders a panic payload (the common `&str`/`String` cases).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one design point exactly as a sweep job would — panic-isolated,
/// with one bounded retry and a crash dump on failure — without requiring a
/// [`Sweep`]. This is the job executor the simulation server (`svr-serve`)
/// schedules onto; the caller owns cache lookup/store (see
/// [`crate::ResultCache`]) and supplies the point's content key for the
/// crash dump.
///
/// # Errors
///
/// A structured [`JobError`] naming the workload and configuration, with
/// the crash-dump path when the flight recorder managed to write one.
#[allow(clippy::result_large_err)] // cold path: the Err carries full diagnostics by design
pub fn run_point(
    workload: &Workload,
    config: &SimConfig,
    key: &PointKey,
    scale: Scale,
    options: &RunOptions,
    crash_dir: Option<&Path>,
) -> JobResult {
    simulate_point(workload, config, &key.key, scale, options, crash_dir)
}

/// [`run_point`] with a caller-owned trace sink attached (the simulation
/// server streams windowed progress to its clients this way). The sink sees
/// the events of every attempt: if the panic-isolated first attempt fails
/// and the traced retry runs, cycle timestamps restart from zero — live
/// consumers should treat a cycle regression as "the run restarted".
#[allow(clippy::result_large_err)] // cold path: the Err carries full diagnostics by design
pub fn run_point_traced<S: svr_trace::TraceSink>(
    workload: &Workload,
    config: &SimConfig,
    key: &PointKey,
    scale: Scale,
    options: &RunOptions,
    crash_dir: Option<&Path>,
    sink: &mut S,
) -> JobResult {
    simulate_point_traced(workload, config, &key.key, scale, options, crash_dir, sink)
}

/// The structured error for a point skipped because shutdown was requested.
fn interrupt_failure(kernel: &Kernel, config_label: String) -> JobError {
    let workload = kernel.name();
    JobError {
        error: SimError::Interrupted {
            workload: workload.clone(),
            config: config_label.clone(),
        },
        workload,
        config: config_label,
        crash_dump: None,
    }
}

/// Runs one point panic-isolated, with one bounded retry.
///
/// The first attempt is untraced (full speed). If it fails *in any way* —
/// panic or structured error — the point is retried once with the ring sink
/// attached: the simulator is deterministic, so a real failure reproduces
/// with the event history needed for the crash dump, while a flaky
/// host-environment panic (OOM kill of a neighbor, filesystem hiccup in a
/// workload build) gets its one retry and recovers.
#[allow(clippy::result_large_err)] // cold path: the Err carries full diagnostics by design
fn simulate_point(
    workload: &Workload,
    config: &SimConfig,
    key: &str,
    scale: Scale,
    options: &RunOptions,
    crash_dir: Option<&Path>,
) -> JobResult {
    simulate_point_traced(
        workload,
        config,
        key,
        scale,
        options,
        crash_dir,
        &mut svr_trace::NullSink,
    )
}

#[allow(clippy::result_large_err)] // cold path: the Err carries full diagnostics by design
fn simulate_point_traced<S: svr_trace::TraceSink>(
    workload: &Workload,
    config: &SimConfig,
    key: &str,
    scale: Scale,
    options: &RunOptions,
    crash_dir: Option<&Path>,
    sink: &mut S,
) -> JobResult {
    let opts = RunOptions {
        max_insts: scale.max_insts().min(options.max_insts),
        ..*options
    };
    if let Ok(Ok(report)) = catch_unwind(AssertUnwindSafe(|| {
        // The worker-panic fault lives inside the first attempt ONLY: the
        // panic-isolated retry below is deliberately not a site, so an
        // injected panic always recovers (that recovery is the thing the
        // chaos suite is proving).
        crate::fault::maybe_panic(crate::fault::FaultSite::WorkerPanic);
        run_workload_traced(workload, config, &opts, &mut *sink)
    })) {
        return Ok(report);
    }
    // The ring lives OUTSIDE the closure (inside the tee) so the events
    // leading into a panic survive the unwind and reach the crash dump.
    let mut tee = (RingSink::new(config.trace.ring_capacity), &mut *sink);
    let second = catch_unwind(AssertUnwindSafe(|| {
        run_workload_traced(workload, config, &opts, &mut tee)
    }));
    let ring = tee.0;
    let error = match second {
        Ok(Ok(report)) => return Ok(report), // flaky first failure, recovered
        Ok(Err(e)) => e,
        Err(payload) => SimError::Panic {
            workload: workload.name.clone(),
            config: config.label(),
            message: panic_message(payload),
        },
    };
    let crash_dump = crash_dir.and_then(|dir| {
        write_crash_dump(dir, &workload.name, &config.label(), key, &error, &ring)
            .map_err(|e| eprintln!("[sweep] warning: could not write crash dump: {e}"))
            .ok()
    });
    Err(JobError {
        workload: workload.name.clone(),
        config: config.label(),
        error,
        crash_dump,
    })
}

/// A workload-build panic fails every point of its group; there is no trace
/// history yet, so the dump records only the point identity and the error.
fn build_failure(
    kernel: &Kernel,
    config_label: String,
    key: &str,
    message: &str,
    crash_dir: Option<&Path>,
) -> JobError {
    let workload = kernel.name();
    let error = SimError::Panic {
        workload: workload.clone(),
        config: config_label.clone(),
        message: format!("workload build panicked: {message}"),
    };
    let empty = RingSink::new(1);
    let crash_dump = crash_dir.and_then(|dir| {
        write_crash_dump(dir, &workload, &config_label, key, &error, &empty).ok()
    });
    JobError {
        workload,
        config: config_label,
        error,
        crash_dump,
    }
}

/// Append-only journal of completed point hashes, enabling kill-and-resume.
///
/// Format: one `{hash:016x}` line per completed point, appended (fsync-free;
/// a torn final line is ignored on load). The file lives at
/// `<cache_dir>/journal/<sweep_id:016x>.journal` where the sweep id hashes
/// the full point-key set — identical sweep invocations share a journal,
/// different sweeps never collide.
struct Journal {
    path: PathBuf,
    lock: Mutex<()>,
}

impl Journal {
    fn new(cache_dir: &Path, sweep_id: u64) -> Journal {
        Journal {
            path: cache_dir.join("journal").join(format!("{sweep_id:016x}.journal")),
            lock: Mutex::new(()),
        }
    }

    /// The completed-point hashes from a previous (killed) invocation.
    fn load(&self) -> HashSet<u64> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return HashSet::new();
        };
        text.lines()
            .filter_map(|l| u64::from_str_radix(l.trim(), 16).ok())
            .collect()
    }

    /// Records `hash` as completed. Best-effort: journaling failures cost
    /// resumability, never correctness.
    fn append(&self, hash: u64) {
        let _guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        let Some(parent) = self.path.parent() else { return };
        if std::fs::create_dir_all(parent).is_err() {
            return;
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            let line = format!("{hash:016x}");
            if crate::fault::fires(crate::fault::FaultSite::JournalTorn) {
                // Injected crash mid-append: half a line, no newline. The
                // loader's per-line parse skips it, costing one resume hit.
                let _ = f.write_all(&line.as_bytes()[..line.len() / 2]);
                return;
            }
            if crate::fault::fires(crate::fault::FaultSite::JournalDup) {
                let _ = writeln!(f, "{line}");
            }
            let _ = writeln!(f, "{line}");
        }
    }

    fn remove(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn emit(hook: &Option<fn(&JobTrace)>, trace: &JobTrace) {
    if let Some(f) = hook {
        f(trace);
    }
    if std::env::var_os("SVR_SWEEP_LOG").is_some() {
        eprintln!(
            "[sweep] {:10} {:9.1} ms  {} / {}",
            format!("{:?}", trace.source).to_lowercase(),
            trace.wall_ms,
            trace.workload,
            trace.config
        );
    }
}

/// The resolved grid of a [`Sweep`], indexed `[config][workload]` in the
/// order the axes were declared.
#[derive(Debug)]
pub struct SweepResult {
    suite: Vec<Kernel>,
    config_labels: Vec<String>,
    /// `point_of[config][workload]` → index into `reports`.
    point_of: Vec<Vec<usize>>,
    /// One outcome per *unique* design point.
    reports: Vec<JobResult>,
    /// Per-point traces (simulation order; cache hits first).
    pub traces: Vec<JobTrace>,
    /// Aggregate counters.
    pub stats: SweepStats,
}

impl SweepResult {
    /// The workload axis.
    pub fn suite(&self) -> &[Kernel] {
        &self.suite
    }

    /// The configuration labels, in axis order.
    pub fn config_labels(&self) -> &[String] {
        &self.config_labels
    }

    /// The report for (config `ci`, workload `wi`).
    ///
    /// # Panics
    ///
    /// Panics (with the structured error) if that job failed; use
    /// [`SweepResult::try_report`] to handle failures.
    pub fn report(&self, ci: usize, wi: usize) -> &RunReport {
        match &self.reports[self.point_of[ci][wi]] {
            Ok(r) => r,
            Err(e) => panic!("sweep point ({ci},{wi}) failed: {e}"),
        }
    }

    /// The outcome for (config `ci`, workload `wi`).
    pub fn try_report(&self, ci: usize, wi: usize) -> Result<&RunReport, &JobError> {
        self.reports[self.point_of[ci][wi]].as_ref()
    }

    /// All reports for configuration `ci`, in suite order.
    ///
    /// # Panics
    ///
    /// Panics if any job of that configuration failed.
    pub fn config_reports(&self, ci: usize) -> Vec<&RunReport> {
        (0..self.suite.len()).map(|wi| self.report(ci, wi)).collect()
    }

    /// The deduplicated successful reports (one per unique design point
    /// whose job succeeded).
    pub fn unique_reports(&self) -> Vec<&RunReport> {
        self.reports.iter().filter_map(|r| r.as_ref().ok()).collect()
    }

    /// Every failed job, in point order.
    pub fn errors(&self) -> Vec<&JobError> {
        self.reports.iter().filter_map(|r| r.as_ref().err()).collect()
    }

    /// Harmonic-mean IPC speedup of configuration `ci` over `base_ci`
    /// (Fig. 1's metric), matched per workload.
    ///
    /// # Panics
    ///
    /// Panics if any involved job failed, or if any speedup is non-positive
    /// or non-finite.
    pub fn speedup(&self, base_ci: usize, ci: usize) -> f64 {
        let mut denom = 0.0;
        for wi in 0..self.suite.len() {
            let b = self.report(base_ci, wi);
            let n = self.report(ci, wi);
            let s = n.ipc() / b.ipc();
            assert!(s.is_finite() && s > 0.0, "bad speedup for {}", b.workload);
            denom += 1.0 / s;
        }
        self.suite.len() as f64 / denom
    }

    /// Asserts every job succeeded and passed its architectural check.
    ///
    /// # Panics
    ///
    /// Panics if any job failed or any report failed verification.
    pub fn assert_verified(&self) {
        let errors = self.errors();
        assert!(
            errors.is_empty(),
            "{} sweep job(s) failed; first: {}",
            errors.len(),
            errors[0]
        );
        for r in self.reports.iter().filter_map(|r| r.as_ref().ok()) {
            assert!(
                r.verified,
                "workload {} under {} failed its architectural check",
                r.workload, r.config
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::runner::run_kernel;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique temp cache dir per test (removed on drop).
    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "svr-sweep-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("temp dir");
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_suite() -> Vec<Kernel> {
        use svr_workloads::GraphInput;
        vec![Kernel::Camel, Kernel::Pr(GraphInput::Ur), Kernel::NasIs]
    }

    #[test]
    fn second_run_is_all_cache_hits_and_bit_identical() {
        let dir = TempDir::new("roundtrip");
        let configs = vec![SimConfig::inorder(), SimConfig::svr(16)];
        let fresh = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(configs.clone())
            .cache_dir(&dir.0)
            .run(2);
        assert_eq!(fresh.stats.simulated, 6);
        assert_eq!(fresh.stats.cache_hits, 0);

        let cached = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(configs)
            .cache_dir(&dir.0)
            .run(2);
        assert_eq!(cached.stats.simulated, 0, "zero simulations on second run");
        assert_eq!(cached.stats.cache_hits, 6);
        for ci in 0..2 {
            for wi in 0..3 {
                assert_eq!(
                    fresh.report(ci, wi),
                    cached.report(ci, wi),
                    "cached report differs at ({ci},{wi})"
                );
            }
        }
    }

    #[test]
    fn identical_points_are_deduped_within_a_sweep() {
        let configs = vec![
            SimConfig::inorder(),
            SimConfig::svr(16),
            SimConfig::inorder(), // shared baseline, declared twice
        ];
        let res = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(configs)
            .no_cache()
            .run(2);
        assert_eq!(res.stats.pairs, 9);
        assert_eq!(res.stats.points, 6, "baseline simulated once");
        assert_eq!(res.stats.deduped, 3);
        for wi in 0..3 {
            assert_eq!(res.report(0, wi), res.report(2, wi));
        }
    }

    #[test]
    fn sweep_matches_direct_runs_and_is_thread_count_invariant() {
        let configs = vec![SimConfig::inorder(), SimConfig::svr(16)];
        let base = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(configs.clone())
            .no_cache()
            .run(1);
        for threads in [2, 8] {
            let res = Sweep::new(tiny_suite(), Scale::Tiny)
                .configs(configs.clone())
                .no_cache()
                .run(threads);
            for ci in 0..2 {
                for wi in 0..3 {
                    assert_eq!(
                        base.report(ci, wi),
                        res.report(ci, wi),
                        "threads={threads} diverged at ({ci},{wi})"
                    );
                }
            }
        }
        // And against the plain runner.
        let direct = run_kernel(
            Kernel::Camel,
            Scale::Tiny,
            &SimConfig::svr(16),
            &RunOptions::default(),
        )
        .expect("camel runs");
        assert_eq!(&direct, base.report(1, 0));
    }

    #[test]
    fn warp_points_use_distinct_cache_keys() {
        let dir = TempDir::new("warpkey");
        let sweep = || {
            Sweep::new(vec![Kernel::Camel], Scale::Tiny)
                .config(SimConfig::inorder())
                .cache_dir(&dir.0)
        };
        let detailed = sweep().run(1);
        let warp = sweep().mode(ExecMode::Warp).run(1);
        assert_eq!(warp.stats.cache_hits, 0, "warp must not reuse detailed results");
        assert_eq!(warp.stats.simulated, 1);
        let r = warp.report(0, 0);
        assert_eq!(r.core.cycles, 0, "warp reports carry no timing");
        assert_eq!(r.core.retired, detailed.report(0, 0).core.retired);
        // Warp results are themselves cached, under their own key.
        let again = sweep().mode(ExecMode::Warp).run(1);
        assert_eq!(again.stats.cache_hits, 1);
        assert_eq!(again.report(0, 0), r);
    }

    #[test]
    fn sampled_points_key_on_mode_and_sampling_params() {
        let dir = TempDir::new("samplekey");
        let sweep = |opts: RunOptions| {
            Sweep::new(vec![Kernel::Camel], Scale::Tiny)
                .config(SimConfig::inorder())
                .cache_dir(&dir.0)
                .options(opts)
        };
        let detailed = sweep(RunOptions::default()).run(1);
        let sampled = sweep(RunOptions::sampled(u64::MAX)).run(1);
        assert_eq!(
            sampled.stats.cache_hits, 0,
            "sampled must not reuse detailed results"
        );
        let r = sampled.report(0, 0);
        let est = r.sampled.expect("sampled reports carry the estimator");
        assert_eq!(est.total_retired, detailed.report(0, 0).core.retired);
        // Same sampling parameters hit the cache; different ones miss.
        let again = sweep(RunOptions::sampled(u64::MAX)).run(1);
        assert_eq!(again.stats.cache_hits, 1);
        assert_eq!(again.report(0, 0), r);
        let other = sweep(RunOptions::sampled(u64::MAX).with_sampling(500, 500, 5_000)).run(1);
        assert_eq!(other.stats.cache_hits, 0, "params are part of the key");
    }

    #[test]
    fn run_parallel_is_deterministic_across_thread_counts() {
        let jobs: Vec<(Kernel, Scale, SimConfig)> = tiny_suite()
            .into_iter()
            .map(|k| (k, Scale::Tiny, SimConfig::svr(16)))
            .collect();
        let one = crate::run_parallel(jobs.clone(), 1).expect("jobs valid");
        for threads in [2, 8] {
            let many = crate::run_parallel(jobs.clone(), threads).expect("jobs valid");
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn corrupt_cache_entries_are_quarantined_and_resimulated() {
        let dir = TempDir::new("corrupt");
        let run = || {
            Sweep::new(vec![Kernel::Camel], Scale::Tiny)
                .config(SimConfig::inorder())
                .cache_dir(&dir.0)
                .run(1)
        };
        let fresh = run();
        assert_eq!(fresh.stats.simulated, 1);
        // Truncate every cache file.
        for entry in std::fs::read_dir(&dir.0).expect("dir") {
            let path = entry.expect("entry").path();
            if path.extension().and_then(|e| e.to_str()) == Some("json") {
                std::fs::write(path, "{not json").expect("truncate");
            }
        }
        let again = run();
        assert_eq!(again.stats.cache_hits, 0, "corrupt entry must not hit");
        assert_eq!(again.stats.simulated, 1);
        assert_eq!(fresh.report(0, 0), again.report(0, 0));
        // The corrupt original was moved aside for forensics, not deleted.
        let quarantined = std::fs::read_dir(dir.0.join("quarantine"))
            .expect("quarantine dir exists")
            .count();
        assert_eq!(quarantined, 1, "corrupt entry lands in quarantine/");
    }

    #[test]
    fn cache_loader_survives_arbitrary_corruption() {
        // Property test: feed `load_cached` every prefix truncation of a
        // valid entry plus a batch of random single-byte corruptions (and a
        // guaranteed non-UTF-8 one); it must never panic — `None` and
        // quarantining are the only acceptable outcomes.
        let dir = TempDir::new("fuzz");
        Sweep::new(vec![Kernel::Camel], Scale::Tiny)
            .config(SimConfig::inorder())
            .cache_dir(&dir.0)
            .run(1);
        let (path, hash) = std::fs::read_dir(&dir.0)
            .expect("dir")
            .filter_map(|e| {
                let p = e.ok()?.path();
                let stem = p.file_stem()?.to_str()?;
                let hash = u64::from_str_radix(stem, 16).ok()?;
                Some((p, hash))
            })
            .next()
            .expect("one cache entry");
        let valid = std::fs::read(&path).expect("entry bytes");
        let key = "v-any;does-not-matter";
        // Every prefix truncation.
        for len in 0..valid.len() {
            std::fs::write(&path, &valid[..len]).expect("write");
            let _ = load_cached(&dir.0, hash, key);
        }
        // Random single-byte corruptions (deterministic xorshift).
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..256 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mut bytes = valid.clone();
            let pos = (state as usize) % bytes.len();
            bytes[pos] = (state >> 32) as u8;
            std::fs::write(&path, &bytes).expect("write");
            let _ = load_cached(&dir.0, hash, key);
        }
        // Guaranteed invalid UTF-8.
        std::fs::write(&path, [0xff, 0xfe, b'{', 0xff]).expect("write");
        assert!(load_cached(&dir.0, hash, key).is_none());
    }

    #[test]
    fn panicking_and_livelocking_jobs_fail_in_isolation() {
        let dir = TempDir::new("isolate");
        let crash = TempDir::new("isolate-crash");
        let res = Sweep::new(
            vec![Kernel::Camel, Kernel::DiagSpin, Kernel::DiagPanic],
            Scale::Tiny,
        )
        .config(SimConfig::inorder())
        .cache_dir(&dir.0)
        .crash_dir(&crash.0)
        .try_run(2)
        .expect("configs valid");
        assert_eq!(res.stats.failed, 2);
        assert_eq!(res.stats.simulated, 1);

        // The healthy sibling completed normally.
        let camel = res.try_report(0, 0).expect("camel unaffected");
        assert!(camel.verified);

        // The livelocking guest was terminated by the forward-progress
        // watchdog, with a non-empty flight recording.
        let spin = res.try_report(0, 1).expect_err("DiagSpin must fail");
        assert!(
            matches!(spin.error, SimError::NoForwardProgress { .. }),
            "expected NoForwardProgress, got: {}",
            spin.error
        );
        let dump = spin.crash_dump.as_ref().expect("crash dump written");
        let doc = Json::parse(&std::fs::read_to_string(dump).expect("dump readable"))
            .expect("dump is valid JSON");
        let events = doc.get("events").and_then(Json::as_arr).expect("events array");
        assert!(!events.is_empty(), "flight recording must not be empty");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("no_forward_progress")
        );

        // The build panic was contained to its own point, payload preserved.
        let pan = res.try_report(0, 2).expect_err("DiagPanic must fail");
        assert!(matches!(pan.error, SimError::Panic { .. }), "{}", pan.error);
        assert!(pan.error.to_string().contains("DiagPanic"), "{}", pan.error);
        assert!(pan.crash_dump.is_some(), "build panics get a dump too");

        // errors() lists exactly the two failures.
        assert_eq!(res.errors().len(), 2);
    }

    #[test]
    fn failed_sweeps_keep_their_journal_and_resume_from_it() {
        let dir = TempDir::new("resume");
        let crash = TempDir::new("resume-crash");
        let run = || {
            Sweep::new(vec![Kernel::Camel, Kernel::DiagSpin], Scale::Tiny)
                .config(SimConfig::inorder())
                .cache_dir(&dir.0)
                .crash_dir(&crash.0)
                .try_run(2)
                .expect("configs valid")
        };
        let first = run();
        assert_eq!(first.stats.failed, 1);
        assert_eq!(first.stats.simulated, 1);
        let journal_dir = dir.0.join("journal");
        assert_eq!(
            std::fs::read_dir(&journal_dir).expect("journal dir").count(),
            1,
            "a failed sweep keeps its journal"
        );

        let second = run();
        assert_eq!(second.stats.journal_hits, 1, "Camel resumes from the journal");
        assert_eq!(second.stats.simulated, 0, "zero recomputation on resume");
        assert_eq!(second.stats.failed, 1, "the livelock still fails");
        assert!(second
            .traces
            .iter()
            .any(|t| t.source == JobSource::Journal));
    }

    #[test]
    fn interrupted_sweeps_journal_partial_work_and_resume() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let dir = TempDir::new("interrupt");
        // Stop flag pre-set: every point is surfaced as Interrupted without
        // simulating anything. (A sweep-local flag, not the global shutdown
        // flag, so parallel sibling tests are unaffected.)
        let stop = Arc::new(AtomicBool::new(true));
        let first = Sweep::new(vec![Kernel::Camel, Kernel::Kangaroo], Scale::Tiny)
            .config(SimConfig::inorder())
            .cache_dir(&dir.0)
            .stop_flag(stop)
            .try_run(2)
            .expect("configs valid");
        assert_eq!(first.stats.interrupted, 2);
        assert_eq!(first.stats.simulated, 0);
        assert_eq!(first.stats.failed, 0, "interruption is not failure");
        assert!(first.stats.summary().contains("interrupted=2"));
        let err = first.try_report(0, 0).expect_err("point was interrupted");
        assert!(
            matches!(err.error, SimError::Interrupted { .. }),
            "{}",
            err.error
        );
        assert!(err.crash_dump.is_none(), "no crash dump for interruption");

        // The identical sweep without the flag resumes and completes.
        let second = Sweep::new(vec![Kernel::Camel, Kernel::Kangaroo], Scale::Tiny)
            .config(SimConfig::inorder())
            .cache_dir(&dir.0)
            .try_run(2)
            .expect("configs valid");
        assert_eq!(second.stats.interrupted, 0);
        assert_eq!(second.stats.simulated, 2);
        second.assert_verified();
        let journal_dir = dir.0.join("journal");
        assert_eq!(
            std::fs::read_dir(&journal_dir).map(|d| d.count()).unwrap_or(0),
            0,
            "completed resume removes the journal"
        );
    }

    #[test]
    fn stop_flag_set_mid_sweep_keeps_completed_points() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let dir = TempDir::new("interrupt-mid");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        // Single worker, two workload groups: flip the flag from the first
        // group's progress hook, so the second group must be interrupted.
        static FLAG: Mutex<Option<Arc<AtomicBool>>> = Mutex::new(None);
        *lock_ok(&FLAG) = Some(flag);
        fn hook(_: &JobTrace) {
            if let Some(f) = lock_ok(&FLAG).as_ref() {
                f.store(true, Ordering::SeqCst);
            }
        }
        let res = Sweep::new(vec![Kernel::Camel, Kernel::Kangaroo], Scale::Tiny)
            .config(SimConfig::inorder())
            .cache_dir(&dir.0)
            .stop_flag(stop)
            .on_job(hook)
            .try_run(1)
            .expect("configs valid");
        *lock_ok(&FLAG) = None;
        assert_eq!(res.stats.simulated, 1, "first point completed");
        assert_eq!(res.stats.interrupted, 1, "second point interrupted");
        // The completed point is cached: a re-run only simulates the rest.
        let second = Sweep::new(vec![Kernel::Camel, Kernel::Kangaroo], Scale::Tiny)
            .config(SimConfig::inorder())
            .cache_dir(&dir.0)
            .try_run(1)
            .expect("configs valid");
        assert_eq!(second.stats.simulated, 1, "completed work is not redone");
        assert_eq!(second.stats.interrupted, 0);
        second.assert_verified();
    }

    #[test]
    fn successful_sweeps_remove_their_journal() {
        let dir = TempDir::new("journal-gc");
        Sweep::new(vec![Kernel::Camel], Scale::Tiny)
            .config(SimConfig::inorder())
            .cache_dir(&dir.0)
            .run(1);
        let journal_dir = dir.0.join("journal");
        let remaining = std::fs::read_dir(&journal_dir)
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(remaining, 0, "completed sweep leaves no journal behind");
    }

    #[test]
    fn journal_roundtrip_ignores_garbage_lines() {
        let dir = TempDir::new("journal-unit");
        let j = Journal::new(&dir.0, 0xabcd);
        assert!(j.load().is_empty());
        j.append(42);
        j.append(0xdead_beef);
        std::fs::OpenOptions::new()
            .append(true)
            .open(&j.path)
            .and_then(|mut f| writeln!(f, "not-hex"))
            .expect("garbage line");
        j.append(7);
        let loaded = j.load();
        assert_eq!(loaded.len(), 3);
        assert!(loaded.contains(&42) && loaded.contains(&0xdead_beef) && loaded.contains(&7));
        j.remove();
        assert!(j.load().is_empty());
    }

    #[test]
    fn scales_do_not_share_cache_entries() {
        let dir = TempDir::new("scales");
        let run = |scale| {
            Sweep::new(vec![Kernel::Camel], scale)
                .config(SimConfig::inorder())
                .cache_dir(&dir.0)
                .run(1)
        };
        assert_eq!(run(Scale::Tiny).stats.simulated, 1);
        assert_eq!(run(Scale::Small).stats.simulated, 1, "different scale");
        assert_eq!(run(Scale::Tiny).stats.cache_hits, 1);
    }

    #[test]
    fn traces_cover_every_point() {
        let res = Sweep::new(tiny_suite(), Scale::Tiny)
            .config(SimConfig::inorder())
            .no_cache()
            .run(2);
        assert_eq!(res.traces.len(), 3);
        assert!(res.traces.iter().all(|t| t.source == JobSource::Simulated));
        assert!(res.traces.iter().all(|t| t.wall_ms >= 0.0));
        assert!(res.stats.summary().contains("simulated=3"));
    }

    #[test]
    fn speedup_matches_harmonic_mean_helper() {
        let res = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(vec![SimConfig::inorder(), SimConfig::svr(16)])
            .no_cache()
            .run(4);
        let base: Vec<RunReport> = res.config_reports(0).into_iter().cloned().collect();
        let new: Vec<RunReport> = res.config_reports(1).into_iter().cloned().collect();
        let expect = crate::harmonic_mean_speedup(&base, &new);
        assert!((res.speedup(0, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn try_run_surfaces_invalid_configs_with_context() {
        let mut bad = SimConfig::imp();
        bad.mem.imp = None; // representable, but silently equals plain InO
        let err = Sweep::new(tiny_suite(), Scale::Tiny)
            .configs(vec![SimConfig::inorder(), bad])
            .no_cache()
            .try_run(1)
            .expect_err("invalid config must fail the sweep eagerly");
        assert_eq!(err.config, "IMP");
        assert_eq!(err.workload.as_deref(), Some("Camel"));
        assert!(err.to_string().starts_with("invalid SimConfig IMP"), "{err}");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: changing the hash silently orphans every cache entry.
        assert_eq!(fnv1a64(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64("a"), 0xaf63dc4c8601ec8c);
    }
}
