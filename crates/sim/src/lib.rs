//! # svr-sim — simulation driver for the SVR reproduction
//!
//! Glues the workspace together: configurations for every design point in
//! Table III (and the sensitivity variants of §VI-E), a runner that
//! simulates a workload on a chosen core and collects timing, memory,
//! prefetch-effectiveness and energy statistics, and helpers for the
//! aggregate metrics the paper reports (harmonic-mean speedup, grouped
//! results, parallel sweeps).
//!
//! # Examples
//!
//! ```
//! use svr_sim::{run_kernel, RunOptions, SimConfig};
//! use svr_workloads::{Kernel, Scale};
//!
//! let opts = RunOptions::default();
//! let base = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::inorder(), &opts).unwrap();
//! let svr = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::svr(16), &opts).unwrap();
//! assert!(svr.core.cycles < base.core.cycles, "SVR speeds up Camel");
//!
//! // Warp mode: functional fast-forward, no timing model at all.
//! let warp = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::inorder(), &RunOptions::default().with_mode(svr_sim::ExecMode::Warp)).unwrap();
//! assert_eq!(warp.core.retired, base.core.retired);
//! assert_eq!(warp.core.cycles, 0);
//! ```

mod cache;
mod config;
mod crash;
mod error;
pub mod fault;
pub mod metrics;
mod options;
mod profile;
mod report;
mod runner;
pub mod shutdown;
mod sweep;

/// The hand-rolled JSON support now lives in the dependency-free `svr-trace`
/// crate (the streaming Perfetto writer needs it below this layer);
/// re-exported here so `svr_sim::json` keeps working.
pub use svr_trace::json;

pub use cache::{
    fnv1a64, point_key, CacheGcStats, Claim, ClaimGuard, PointKey, ResultCache,
    CACHE_FORMAT_VERSION,
};
pub use config::{ConfigError, CoreChoice, SimConfig, TraceConfig};
pub use crash::{default_crash_dir, write_crash_dump};
pub use error::SimError;
pub use fault::{FaultPlan, FaultSite};
pub use json::Json;
pub use metrics::{
    CacheMetrics, Counter, Gauge, HistSnapshot, Histogram, MetricsRegistry, MetricsSnapshot,
};
pub use options::{ExecMode, RunOptions};
pub use profile::{
    golden_diff, pf_source_index, PcProfile, Profiler, NUM_BUCKETS, NUM_PF_SOURCES,
    PF_SOURCE_NAMES,
};
pub use report::{report_from_json, report_to_json};
pub use runner::{
    energy_input, harmonic_mean_speedup, run_kernel, run_parallel, run_workload,
    run_workload_traced, RunReport, SampledStats,
};
pub use sweep::{
    run_point, run_point_traced, JobError, JobResult, JobSource, JobTrace, Sweep, SweepResult,
    SweepStats,
};

/// Groups reports by the kernel group label and averages a metric within
/// each group (used by Figs. 13 and 15, which aggregate similar workloads).
pub fn group_mean<F>(
    reports: &[(svr_workloads::Kernel, RunReport)],
    metric: F,
) -> Vec<(String, f64)>
where
    F: Fn(&RunReport) -> f64,
{
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for (k, r) in reports {
        let e = acc.entry(k.group().label().to_string()).or_insert((0.0, 0));
        e.0 += metric(r);
        e.1 += 1;
    }
    acc.into_iter()
        .map(|(g, (sum, n))| (g, sum / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_workloads::{GraphInput, Kernel, Scale};

    #[test]
    fn group_mean_averages_within_groups() {
        let mk = |k: Kernel, cpi: u64| {
            (
                k,
                RunReport {
                    workload: k.name(),
                    config: "x".into(),
                    core: svr_core::CoreStats {
                        cycles: cpi * 100,
                        retired: 100,
                        ..svr_core::CoreStats::default()
                    },
                    mem: svr_mem::MemStats::default(),
                    energy: svr_energy::EnergyBreakdown::default(),
                    verified: true,
                    sampled: None,
                },
            )
        };
        let reports = vec![
            mk(Kernel::Pr(GraphInput::Kr), 4),
            mk(Kernel::Pr(GraphInput::Ur), 8),
            mk(Kernel::Camel, 10),
        ];
        let means = group_mean(&reports, |r| r.cpi());
        let pr = means.iter().find(|(g, _)| g == "PR").expect("PR group");
        assert!((pr.1 - 6.0).abs() < 1e-9);
        let hpc = means.iter().find(|(g, _)| g == "HPC-DB").expect("HPC-DB");
        assert!((hpc.1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn svr_beats_inorder_on_tiny_camel() {
        let opts = RunOptions::default();
        let base = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::inorder(), &opts).unwrap();
        let svr = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::svr(16), &opts).unwrap();
        assert!(svr.core.cycles < base.core.cycles);
    }
}
