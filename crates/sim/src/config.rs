//! Simulation configurations: the Table III design points and every
//! sensitivity-study variant.

use svr_core::{InOrderConfig, OooConfig, SvrConfig};
use svr_mem::prefetch::ImpConfig;
use svr_mem::{DramConfig, MemConfig, TlbConfig};

/// Which core model (and attachment) to simulate.
#[derive(Debug, Clone)]
pub enum CoreChoice {
    /// Baseline 3-wide in-order core.
    InOrder,
    /// In-order core with the IMP prefetcher at the L1 (prior art).
    Imp,
    /// 3-wide out-of-order core.
    OutOfOrder,
    /// In-order core with the SVR engine.
    Svr(SvrConfig),
}

impl CoreChoice {
    /// Display label used in tables ("InO", "IMP", "OoO", "SVR16", ...).
    pub fn label(&self) -> String {
        match self {
            CoreChoice::InOrder => "InO".into(),
            CoreChoice::Imp => "IMP".into(),
            CoreChoice::OutOfOrder => "OoO".into(),
            CoreChoice::Svr(c) => format!("SVR{}", c.vector_length),
        }
    }
}

/// A complete simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Core model.
    pub core: CoreChoice,
    /// Memory-hierarchy parameters (Table III defaults).
    pub mem: MemConfig,
    /// In-order pipeline parameters (shared by InO/IMP/SVR).
    pub inorder: InOrderConfig,
    /// Out-of-order parameters.
    pub ooo: OooConfig,
}

impl SimConfig {
    /// The baseline in-order configuration.
    pub fn inorder() -> Self {
        SimConfig {
            core: CoreChoice::InOrder,
            mem: MemConfig::default(),
            inorder: InOrderConfig::default(),
            ooo: OooConfig::default(),
        }
    }

    /// The IMP comparison point: in-order core + IMP at the L1-D.
    pub fn imp() -> Self {
        let mut c = Self::inorder();
        c.core = CoreChoice::Imp;
        c.mem.imp = Some(ImpConfig::default());
        c
    }

    /// The out-of-order comparison point.
    pub fn ooo() -> Self {
        let mut c = Self::inorder();
        c.core = CoreChoice::OutOfOrder;
        c
    }

    /// SVR with vector length `n` (8–128; paper default 16).
    pub fn svr(n: usize) -> Self {
        Self::svr_with(SvrConfig::with_length(n))
    }

    /// SVR with a fully custom engine configuration (ablations).
    pub fn svr_with(svr: SvrConfig) -> Self {
        let mut c = Self::inorder();
        c.core = CoreChoice::Svr(svr);
        c
    }

    /// Overrides the number of L1-D MSHRs (Fig. 17).
    pub fn with_mshrs(mut self, mshrs: usize) -> Self {
        self.mem.mshrs = mshrs;
        self
    }

    /// Overrides the number of page-table walkers (Fig. 17).
    pub fn with_ptws(mut self, walkers: usize) -> Self {
        self.mem.tlb = TlbConfig {
            walkers,
            ..self.mem.tlb
        };
        self
    }

    /// Overrides DRAM bandwidth in GiB/s (Fig. 18).
    pub fn with_bandwidth(mut self, gibps: f64) -> Self {
        self.mem.dram = DramConfig {
            bandwidth_gibps: gibps,
            ..self.mem.dram
        };
        self
    }

    /// Label combining the core choice (for table rows).
    pub fn label(&self) -> String {
        self.core.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SimConfig::inorder().label(), "InO");
        assert_eq!(SimConfig::imp().label(), "IMP");
        assert_eq!(SimConfig::ooo().label(), "OoO");
        assert_eq!(SimConfig::svr(64).label(), "SVR64");
    }

    #[test]
    fn imp_config_enables_prefetcher() {
        assert!(SimConfig::imp().mem.imp.is_some());
        assert!(SimConfig::inorder().mem.imp.is_none());
    }

    #[test]
    fn sweep_builders() {
        let c = SimConfig::svr(16)
            .with_mshrs(4)
            .with_ptws(6)
            .with_bandwidth(12.5);
        assert_eq!(c.mem.mshrs, 4);
        assert_eq!(c.mem.tlb.walkers, 6);
        assert!((c.mem.dram.bandwidth_gibps - 12.5).abs() < 1e-9);
    }
}
