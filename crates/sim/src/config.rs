//! Simulation configurations: the Table III design points and every
//! sensitivity-study variant.

use svr_core::{InOrderConfig, LoopBoundMode, OooConfig, SvrConfig};
use svr_mem::prefetch::ImpConfig;
use svr_mem::{DramConfig, MemConfig, TlbConfig};

/// An internally inconsistent [`SimConfig`], rejected before any simulation
/// runs. Carries enough context (config label, and the workload when the run
/// was attempted for one) to point at the offending sweep point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Configuration label ([`SimConfig::label`]).
    pub config: String,
    /// Workload the run was attempted for, when known.
    pub workload: Option<String>,
    /// What is inconsistent.
    pub message: String,
}

impl ConfigError {
    /// Attaches the workload the run was attempted for.
    pub(crate) fn for_workload(mut self, workload: &str) -> Self {
        self.workload = Some(workload.to_string());
        self
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SimConfig {}", self.config)?;
        if let Some(w) = &self.workload {
            write!(f, " for {w}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Observability knobs: how the tracing subsystem behaves when a run is
/// traced. Deliberately **excluded** from [`SimConfig::cache_key`] and
/// [`SimConfig::label`]: tracing never changes simulated timing (the
/// [`svr_trace::NullSink`] path is compiled out), so two configurations that
/// differ only here simulate identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Windowed-metrics interval in cycles (per-interval CPI stacks, MLP
    /// timelines).
    pub interval: u64,
    /// Capacity of the bounded in-memory ring sink.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            interval: 10_000,
            ring_capacity: 1 << 20,
        }
    }
}

/// Which core model (and attachment) to simulate.
#[derive(Debug, Clone)]
pub enum CoreChoice {
    /// Baseline 3-wide in-order core.
    InOrder,
    /// In-order core with the IMP prefetcher at the L1 (prior art).
    Imp,
    /// 3-wide out-of-order core.
    OutOfOrder,
    /// In-order core with the SVR engine.
    Svr(SvrConfig),
}

impl CoreChoice {
    /// Display label used in tables ("InO", "IMP", "OoO", "SVR16", ...).
    /// SVR engine knobs that differ from the paper's SVR-N design point are
    /// appended as `/tag` suffixes (e.g. "SVR16/K2/norecycle") so ablation
    /// and sensitivity rows stay distinguishable.
    pub fn label(&self) -> String {
        match self {
            CoreChoice::InOrder => "InO".into(),
            CoreChoice::Imp => "IMP".into(),
            CoreChoice::OutOfOrder => "OoO".into(),
            CoreChoice::Svr(c) => {
                let d = SvrConfig::with_length(c.vector_length);
                let mut label = format!("SVR{}", c.vector_length);
                if c.loop_bound_mode != d.loop_bound_mode {
                    label += match c.loop_bound_mode {
                        LoopBoundMode::Maxlength => "/max",
                        LoopBoundMode::LbdWait => "/lbdwait",
                        LoopBoundMode::LbdMaxlength => "/lbdmax",
                        LoopBoundMode::LbdCv => "/lbdcv",
                        LoopBoundMode::Ewma => "/ewma",
                        LoopBoundMode::Tournament => "/tour",
                    };
                }
                if c.srf_entries != d.srf_entries {
                    label += &format!("/K{}", c.srf_entries);
                }
                if c.recycle != d.recycle {
                    label += "/norecycle";
                }
                if c.scalars_per_cycle != d.scalars_per_cycle {
                    label += &format!("/spc{}", c.scalars_per_cycle);
                }
                if c.waiting_mode != d.waiting_mode {
                    label += "/nowait";
                }
                if c.accuracy_ban != d.accuracy_ban {
                    label += "/noban";
                }
                if c.model_register_copy != d.model_register_copy {
                    label += "/regcopy";
                }
                if c.lil_enabled != d.lil_enabled {
                    label += "/nolil";
                }
                if c.multi_chain != d.multi_chain {
                    label += "/nochain";
                }
                if c.timeout_insts != d.timeout_insts {
                    label += &format!("/to{}", c.timeout_insts);
                }
                label
            }
        }
    }
}

/// A complete simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Core model.
    pub core: CoreChoice,
    /// Memory-hierarchy parameters (Table III defaults).
    pub mem: MemConfig,
    /// In-order pipeline parameters (shared by InO/IMP/SVR).
    pub inorder: InOrderConfig,
    /// Out-of-order parameters.
    pub ooo: OooConfig,
    /// Observability knobs (excluded from `cache_key` and `label`).
    pub trace: TraceConfig,
}

impl SimConfig {
    /// The baseline in-order configuration.
    pub fn inorder() -> Self {
        SimConfig {
            core: CoreChoice::InOrder,
            mem: MemConfig::default(),
            inorder: InOrderConfig::default(),
            ooo: OooConfig::default(),
            trace: TraceConfig::default(),
        }
    }

    /// The IMP comparison point: in-order core + IMP at the L1-D.
    pub fn imp() -> Self {
        let mut c = Self::inorder();
        c.core = CoreChoice::Imp;
        c.mem.imp = Some(ImpConfig::default());
        c
    }

    /// The out-of-order comparison point.
    pub fn ooo() -> Self {
        let mut c = Self::inorder();
        c.core = CoreChoice::OutOfOrder;
        c
    }

    /// SVR with vector length `n` (8–128; paper default 16).
    pub fn svr(n: usize) -> Self {
        Self::svr_with(SvrConfig::with_length(n))
    }

    /// SVR with a fully custom engine configuration (ablations).
    pub fn svr_with(svr: SvrConfig) -> Self {
        let mut c = Self::inorder();
        c.core = CoreChoice::Svr(svr);
        c
    }

    /// Overrides the number of L1-D MSHRs (Fig. 17).
    pub fn with_mshrs(mut self, mshrs: usize) -> Self {
        self.mem.mshrs = mshrs;
        self
    }

    /// Overrides the number of page-table walkers (Fig. 17).
    pub fn with_ptws(mut self, walkers: usize) -> Self {
        self.mem.tlb = TlbConfig {
            walkers,
            ..self.mem.tlb
        };
        self
    }

    /// Overrides DRAM bandwidth in GiB/s (Fig. 18).
    pub fn with_bandwidth(mut self, gibps: f64) -> Self {
        self.mem.dram = DramConfig {
            bandwidth_gibps: gibps,
            ..self.mem.dram
        };
        self
    }

    /// Label combining the core choice and any memory-system overrides
    /// relative to the Table III defaults (for table rows and reports):
    /// `SimConfig::svr(16).with_mshrs(4)` labels "SVR16/mshr4", keeping
    /// Fig. 17/18 sensitivity rows unambiguous.
    pub fn label(&self) -> String {
        let mut label = self.core.label();
        let d = MemConfig::default();
        if self.mem.mshrs != d.mshrs {
            label += &format!("/mshr{}", self.mem.mshrs);
        }
        if self.mem.tlb.walkers != d.tlb.walkers {
            label += &format!("/ptw{}", self.mem.tlb.walkers);
        }
        if self.mem.dram.bandwidth_gibps != d.dram.bandwidth_gibps {
            label += &format!("/bw{}", self.mem.dram.bandwidth_gibps);
        }
        if self.mem.stride_pf.is_none() && d.stride_pf.is_some() {
            label += "/nostride";
        }
        label
    }

    /// Resolves a configuration from a *paper design point* label: the four
    /// Table III points (`InO`, `IMP`, `OoO`) and `SVR<n>` for 1 ≤ n ≤ 128.
    /// The partial inverse of [`SimConfig::label`] — sensitivity suffixes
    /// (`/mshr4`, `/K2`, ...) are deliberately not parsed; callers wanting
    /// those construct them with the builder methods. CLI flags and the
    /// simulation server's wire protocol both resolve through here.
    pub fn from_label(label: &str) -> Option<SimConfig> {
        match label {
            "InO" => Some(Self::inorder()),
            "IMP" => Some(Self::imp()),
            "OoO" => Some(Self::ooo()),
            _ => label
                .strip_prefix("SVR")?
                .parse::<usize>()
                .ok()
                .filter(|n| (1..=128).contains(n))
                .map(Self::svr),
        }
    }

    /// Checks internal consistency. [`crate::run_workload`] refuses invalid
    /// configurations: [`CoreChoice::Imp`] with `mem.imp = None` would
    /// silently degenerate to the plain in-order baseline, and a non-IMP
    /// core with an IMP prefetcher attached would mislabel its rows.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let message = match (&self.core, &self.mem.imp) {
            (CoreChoice::Imp, None) => {
                "CoreChoice::Imp requires mem.imp: Some(ImpConfig); without it the \
                 configuration silently degenerates to the in-order baseline \
                 (use SimConfig::imp())"
                    .to_string()
            }
            (CoreChoice::InOrder | CoreChoice::OutOfOrder | CoreChoice::Svr(_), Some(_)) => {
                format!(
                    "mem.imp is set but the core choice is {:?}; the IMP prefetcher \
                     would run under a non-IMP label (use SimConfig::imp())",
                    self.core
                )
            }
            _ => return Ok(()),
        };
        Err(ConfigError {
            config: self.label(),
            workload: None,
            message,
        })
    }

    /// Canonical content key covering **every** field of the configuration.
    /// Two configurations share a key iff they simulate identically, so the
    /// sweep engine hashes this string to deduplicate design points within a
    /// run and address the on-disk result cache across runs.
    pub fn cache_key(&self) -> String {
        let core = match &self.core {
            CoreChoice::InOrder => "core=ino".to_string(),
            CoreChoice::Imp => "core=imp".to_string(),
            CoreChoice::OutOfOrder => "core=ooo".to_string(),
            CoreChoice::Svr(c) => format!(
                "core=svr;n={};k={};sde={};sconf={};to={};spc={};lbm={:?};lbde={};\
                 wait={};ban={};warm={};thr={};reset={};rec={:?};copy={};copyc={};\
                 lil={};mc={}",
                c.vector_length,
                c.srf_entries,
                c.stride_detector_entries,
                c.stride_confidence,
                c.timeout_insts,
                c.scalars_per_cycle,
                c.loop_bound_mode,
                c.lbd_entries,
                c.waiting_mode,
                c.accuracy_ban,
                c.accuracy_warmup,
                c.accuracy_threshold,
                c.ban_reset_insts,
                c.recycle,
                c.model_register_copy,
                c.register_copy_cycles,
                c.lil_enabled,
                c.multi_chain,
            ),
        };
        let stride = match &self.mem.stride_pf {
            None => "none".to_string(),
            Some(s) => format!("{}/{}/{}", s.entries, s.threshold, s.degree),
        };
        let imp = match &self.mem.imp {
            None => "none".to_string(),
            Some(i) => format!(
                "{}/{}/{:?}/{}/{}",
                i.pt_entries, i.stream_threshold, i.shifts, i.distance, i.verify_matches
            ),
        };
        format!(
            "{core};\
             ino={}/{}/{}/{};\
             ooo={}/{}/{}/{}/{}/{};\
             l1d={}/{};l1i={}/{};l2={}/{};lat={}/{};mshrs={};\
             dram={}/{}/{};\
             tlb={}/{}/{}/{}/{}/{};\
             stride={stride};imp={imp}",
            self.inorder.width,
            self.inorder.scoreboard,
            self.inorder.mispredict_penalty,
            self.inorder.model_fetch,
            self.ooo.width,
            self.ooo.rob,
            self.ooo.lsq,
            self.ooo.mispredict_penalty,
            self.ooo.model_fetch,
            self.ooo.rs_delay,
            self.mem.l1d.size_bytes,
            self.mem.l1d.ways,
            self.mem.l1i.size_bytes,
            self.mem.l1i.ways,
            self.mem.l2.size_bytes,
            self.mem.l2.ways,
            self.mem.l1_latency,
            self.mem.l2_latency,
            self.mem.mshrs,
            self.mem.dram.latency_cycles,
            self.mem.dram.bandwidth_gibps,
            self.mem.dram.freq_ghz,
            self.mem.tlb.l1_entries,
            self.mem.tlb.l2_entries,
            self.mem.tlb.l2_ways,
            self.mem.tlb.l2_hit_cycles,
            self.mem.tlb.walk_cycles,
            self.mem.tlb.walkers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SimConfig::inorder().label(), "InO");
        assert_eq!(SimConfig::imp().label(), "IMP");
        assert_eq!(SimConfig::ooo().label(), "OoO");
        assert_eq!(SimConfig::svr(64).label(), "SVR64");
    }

    #[test]
    fn from_label_inverts_label_for_paper_points() {
        for l in ["InO", "IMP", "OoO", "SVR8", "SVR16", "SVR128"] {
            let c = SimConfig::from_label(l).expect(l);
            assert_eq!(c.label(), l);
        }
        assert!(SimConfig::from_label("SVR0").is_none());
        assert!(SimConfig::from_label("SVR129").is_none());
        assert!(SimConfig::from_label("SVR16/mshr4").is_none());
        assert!(SimConfig::from_label("bogus").is_none());
    }

    #[test]
    fn imp_config_enables_prefetcher() {
        assert!(SimConfig::imp().mem.imp.is_some());
        assert!(SimConfig::inorder().mem.imp.is_none());
    }

    #[test]
    fn labels_include_mem_overrides() {
        assert_eq!(SimConfig::svr(16).with_mshrs(4).label(), "SVR16/mshr4");
        assert_eq!(
            SimConfig::svr(16).with_mshrs(4).with_ptws(6).label(),
            "SVR16/mshr4/ptw6"
        );
        assert_eq!(
            SimConfig::inorder().with_bandwidth(12.5).label(),
            "InO/bw12.5"
        );
        // Default values add no suffix.
        assert_eq!(SimConfig::svr(16).with_mshrs(16).label(), "SVR16");
    }

    #[test]
    fn labels_include_svr_overrides() {
        let cfg = SimConfig::svr_with(SvrConfig {
            srf_entries: 2,
            recycle: svr_core::RecyclePolicy::NoRecycle,
            ..SvrConfig::with_length(64)
        });
        assert_eq!(cfg.label(), "SVR64/K2/norecycle");
        let cfg = SimConfig::svr_with(SvrConfig {
            loop_bound_mode: LoopBoundMode::Maxlength,
            ..SvrConfig::with_length(16)
        });
        assert_eq!(cfg.label(), "SVR16/max");
        let cfg = SimConfig::svr_with(SvrConfig {
            waiting_mode: false,
            ..SvrConfig::with_length(16)
        });
        assert_eq!(cfg.label(), "SVR16/nowait");
    }

    #[test]
    fn distinct_sensitivity_points_have_distinct_labels_and_keys() {
        let a = SimConfig::svr(16);
        let b = SimConfig::svr(16).with_mshrs(4);
        assert_ne!(a.label(), b.label());
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn cache_key_is_stable_for_equal_configs() {
        assert_eq!(
            SimConfig::svr(16).with_ptws(6).cache_key(),
            SimConfig::svr(16).with_ptws(6).cache_key()
        );
        assert_ne!(
            SimConfig::inorder().cache_key(),
            SimConfig::imp().cache_key()
        );
        assert_ne!(
            SimConfig::svr(16).cache_key(),
            SimConfig::svr(32).cache_key()
        );
    }

    #[test]
    fn validate_rejects_degenerate_imp() {
        let mut c = SimConfig::imp();
        c.mem.imp = None;
        assert!(c.validate().is_err());
        let mut c = SimConfig::inorder();
        c.mem.imp = Some(ImpConfig::default());
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_accepts_all_paper_configs() {
        for c in [
            SimConfig::inorder(),
            SimConfig::imp(),
            SimConfig::ooo(),
            SimConfig::svr(16),
        ] {
            assert!(c.validate().is_ok(), "{}", c.label());
        }
    }

    #[test]
    fn sweep_builders() {
        let c = SimConfig::svr(16)
            .with_mshrs(4)
            .with_ptws(6)
            .with_bandwidth(12.5);
        assert_eq!(c.mem.mshrs, 4);
        assert_eq!(c.mem.tlb.walkers, 6);
        assert!((c.mem.dram.bandwidth_gibps - 12.5).abs() < 1e-9);
    }
}
