//! Deterministic, seeded fault injection for the storage and service tiers.
//!
//! The claim protocol, journal resume, quarantine, and retry paths all
//! promise to survive hostile conditions — torn writes, stolen claims,
//! panicking workers, dropped connections. This module is how those promises
//! get *provoked* instead of hoped for: a [`FaultPlan`] names injection
//! sites threaded through the existing layers and decides, deterministically
//! per seed, which consults of each site fire.
//!
//! # Sites
//!
//! | site               | layer              | effect when it fires                           |
//! |--------------------|--------------------|------------------------------------------------|
//! | `cache_store_torn` | `ResultCache`      | store writes half the entry to its tmp file and never renames (crash mid-write) |
//! | `cache_load_err`   | `ResultCache`      | load behaves as an I/O error (pure miss)       |
//! | `claim_steal`      | `ResultCache`      | a waiter steals a live claim as if it were stale |
//! | `gc_mid_claim`     | `ResultCache`      | a full GC pass (`max_bytes=0`) runs while the claim is held |
//! | `journal_torn`     | sweep journal      | an append writes half a line and no newline    |
//! | `journal_dup`      | sweep journal      | an append writes its line twice                |
//! | `worker_panic`     | simulation workers | the *first* attempt of a point panics (the panic-isolated retry is deliberately not a site, so the fault is always recoverable) |
//! | `worker_stall`     | simulation workers | the worker sleeps `stall_ms` before simulating |
//! | `conn_slow_read`   | HTTP server        | the connection stalls `stall_ms` before the request is read |
//! | `conn_drop_chunk`  | HTTP streaming     | a chunked response writes half a frame and severs the socket |
//!
//! # Determinism
//!
//! The decision for the k-th consult of a site is a pure function of
//! `(seed, site, k)` — two runs with the same seed see the same per-site
//! decision *sequence*. Which thread lands on which consult is scheduling,
//! not randomness; per-site `max_fires` caps bound the total damage either
//! way. With no plan installed (or an empty plan) every hook is one relaxed
//! atomic load and injection changes nothing — not a byte of any report.
//!
//! # Wiring
//!
//! The plan is process-global (workers, connection threads, and the cache
//! all consult the same schedule): [`install`] / [`clear`] set it, and
//! [`install_from_env`] parses the `SVR_FAULTS` spec the `svr_serve`
//! `--faults` flag also accepts. Tests that install a plan must serialize
//! with each other (the chaos suite holds one lock across its tests).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;
use svr_workloads::Rng64;

/// A named injection point. See the module docs for the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// `ResultCache` store tears mid-write (tmp written, never renamed).
    CacheStoreTorn,
    /// `ResultCache` load behaves as an I/O error.
    CacheLoadErr,
    /// A claim waiter steals a live (non-stale) claim.
    ClaimSteal,
    /// A full GC pass runs while a claim is held.
    GcMidClaim,
    /// A journal append is torn (half a line, no newline).
    JournalTorn,
    /// A journal append duplicates its line.
    JournalDup,
    /// The first simulation attempt of a point panics.
    WorkerPanic,
    /// The worker stalls before simulating.
    WorkerStall,
    /// The connection stalls before the request is read.
    ConnSlowRead,
    /// A chunked response tears a frame and severs the socket.
    ConnDropChunk,
}

/// Number of sites (array sizes below).
const NUM_SITES: usize = 10;

impl FaultSite {
    /// Every site, in spec/display order.
    pub const ALL: [FaultSite; NUM_SITES] = [
        FaultSite::CacheStoreTorn,
        FaultSite::CacheLoadErr,
        FaultSite::ClaimSteal,
        FaultSite::GcMidClaim,
        FaultSite::JournalTorn,
        FaultSite::JournalDup,
        FaultSite::WorkerPanic,
        FaultSite::WorkerStall,
        FaultSite::ConnSlowRead,
        FaultSite::ConnDropChunk,
    ];

    /// The spec name (`cache_store_torn`, ...).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CacheStoreTorn => "cache_store_torn",
            FaultSite::CacheLoadErr => "cache_load_err",
            FaultSite::ClaimSteal => "claim_steal",
            FaultSite::GcMidClaim => "gc_mid_claim",
            FaultSite::JournalTorn => "journal_torn",
            FaultSite::JournalDup => "journal_dup",
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::WorkerStall => "worker_stall",
            FaultSite::ConnSlowRead => "conn_slow_read",
            FaultSite::ConnDropChunk => "conn_drop_chunk",
        }
    }

    /// Inverse of [`FaultSite::name`].
    pub fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.name() == name)
    }

    fn idx(self) -> usize {
        match self {
            FaultSite::CacheStoreTorn => 0,
            FaultSite::CacheLoadErr => 1,
            FaultSite::ClaimSteal => 2,
            FaultSite::GcMidClaim => 3,
            FaultSite::JournalTorn => 4,
            FaultSite::JournalDup => 5,
            FaultSite::WorkerPanic => 6,
            FaultSite::WorkerStall => 7,
            FaultSite::ConnSlowRead => 8,
            FaultSite::ConnDropChunk => 9,
        }
    }
}

/// One site's schedule: fire probability per consult and a lifetime cap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Rule {
    prob: f64,
    max_fires: u64,
}

/// A seeded fault schedule. Empty plans (no rules) are inert: installing
/// one changes nothing, and every hook stays a single relaxed atomic load.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    stall_ms: u64,
    rules: [Option<Rule>; NUM_SITES],
}

/// Default stall for `worker_stall` / `conn_slow_read` (override with
/// `stall_ms=` in the spec).
const DEFAULT_STALL_MS: u64 = 50;

impl FaultPlan {
    /// An empty plan with `seed` (add sites with [`FaultPlan::with`]).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            stall_ms: DEFAULT_STALL_MS,
            rules: [None; NUM_SITES],
        }
    }

    /// Arms `site` to fire each consult with probability `prob` (clamped to
    /// `[0, 1]`), with no lifetime cap.
    pub fn with(self, site: FaultSite, prob: f64) -> FaultPlan {
        self.with_capped(site, prob, u64::MAX)
    }

    /// Arms `site` with a lifetime cap: after `max_fires` fires the site
    /// never fires again (bounds the damage of high-probability schedules).
    pub fn with_capped(mut self, site: FaultSite, prob: f64, max_fires: u64) -> FaultPlan {
        self.rules[site.idx()] = Some(Rule {
            prob: prob.clamp(0.0, 1.0),
            max_fires,
        });
        self
    }

    /// Sets the stall duration used by the stalling sites.
    pub fn stall_ms(mut self, ms: u64) -> FaultPlan {
        self.stall_ms = ms;
        self
    }

    /// Whether the plan arms no site at all.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(Option::is_none)
    }

    /// Parses a spec: `;`-separated `key=value` pairs where `key` is
    /// `seed`, `stall_ms`, or a site name and a site's value is
    /// `PROB[xMAX_FIRES]` — e.g.
    /// `seed=42;stall_ms=20;worker_panic=1x2;cache_store_torn=0.5`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::seeded(0);
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!("fault spec item {part:?} is not key=value"));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("fault spec seed {value:?}: {e}"))?;
                }
                "stall_ms" => {
                    plan.stall_ms = value
                        .parse()
                        .map_err(|e| format!("fault spec stall_ms {value:?}: {e}"))?;
                }
                site_name => {
                    let Some(site) = FaultSite::from_name(site_name) else {
                        let known: Vec<&str> =
                            FaultSite::ALL.iter().map(|s| s.name()).collect();
                        return Err(format!(
                            "unknown fault site {site_name:?} (known: seed, stall_ms, {})",
                            known.join(", ")
                        ));
                    };
                    let (prob_str, max) = match value.split_once('x') {
                        Some((p, m)) => (
                            p,
                            m.parse::<u64>().map_err(|e| {
                                format!("fault spec {site_name}={value:?} max fires: {e}")
                            })?,
                        ),
                        None => (value, u64::MAX),
                    };
                    let prob: f64 = prob_str
                        .parse()
                        .map_err(|e| format!("fault spec {site_name}={value:?}: {e}"))?;
                    plan = plan.with_capped(site, prob, max);
                }
            }
        }
        Ok(plan)
    }

    /// The deterministic decision for the `k`-th consult of `site`: a pure
    /// function of `(seed, site, k)`, independent of global state (the
    /// lifetime cap is applied by the installed plan, not here).
    pub fn decide(&self, site: FaultSite, k: u64) -> bool {
        let Some(rule) = self.rules[site.idx()] else {
            return false;
        };
        if rule.prob >= 1.0 {
            return true;
        }
        if rule.prob <= 0.0 {
            return false;
        }
        let stream = self.seed
            ^ (site.idx() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ k.wrapping_mul(0xd134_2543_de82_ef95);
        Rng64::new(stream).next_f64() < rule.prob
    }
}

/// The installed plan plus per-site consult/fire counters.
#[derive(Debug)]
struct ActivePlan {
    plan: FaultPlan,
    consults: [AtomicU64; NUM_SITES],
    fires: [AtomicU64; NUM_SITES],
}

impl ActivePlan {
    /// One consult of `site`: advances the deterministic decision stream
    /// and applies the lifetime cap.
    fn consult(&self, site: FaultSite) -> bool {
        let i = site.idx();
        let Some(rule) = self.plan.rules[i] else {
            return false;
        };
        let k = self.consults[i].fetch_add(1, Ordering::Relaxed);
        if !self.plan.decide(site, k) {
            return false;
        }
        // Reserve a fire slot under the cap (CAS so counts stay exact).
        let mut fired = self.fires[i].load(Ordering::Relaxed);
        loop {
            if fired >= rule.max_fires {
                return false;
            }
            match self.fires[i].compare_exchange_weak(
                fired,
                fired + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => fired = now,
            }
        }
    }
}

/// Fast-path gate: false whenever no non-empty plan is installed, so every
/// hook in the hot paths is one relaxed load when injection is off.
static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: RwLock<Option<Arc<ActivePlan>>> = RwLock::new(None);

fn active() -> Option<Arc<ActivePlan>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    ACTIVE
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// Installs `plan` process-wide, resetting all counters. An empty plan is
/// equivalent to [`clear`].
pub fn install(plan: FaultPlan) {
    let enable = !plan.is_empty();
    let state = Arc::new(ActivePlan {
        plan,
        consults: Default::default(),
        fires: Default::default(),
    });
    *ACTIVE.write().unwrap_or_else(|p| p.into_inner()) = Some(state);
    ENABLED.store(enable, Ordering::SeqCst);
}

/// Removes the installed plan; every site stops firing.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *ACTIVE.write().unwrap_or_else(|p| p.into_inner()) = None;
}

/// Installs the plan named by the `SVR_FAULTS` environment variable.
/// Returns `Ok(true)` when a non-empty plan was installed, `Ok(false)` when
/// the variable is unset or empty, and the parse error otherwise.
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var("SVR_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = FaultPlan::parse(&spec)?;
            let armed = !plan.is_empty();
            install(plan);
            Ok(armed)
        }
        _ => Ok(false),
    }
}

/// Consults `site` once: true when the installed plan fires it. The no-plan
/// fast path is a single relaxed atomic load.
pub fn fires(site: FaultSite) -> bool {
    match active() {
        Some(a) => a.consult(site),
        None => false,
    }
}

/// Consults a stalling site: the configured stall duration when it fires.
pub fn stall(site: FaultSite) -> Option<Duration> {
    let a = active()?;
    if a.consult(site) {
        Some(Duration::from_millis(a.plan.stall_ms))
    } else {
        None
    }
}

/// Consults `site` and panics when it fires (the injected worker fault).
/// Only call under a `catch_unwind` isolation boundary — in this codebase
/// that is the panic-isolated first simulation attempt, whose retry is
/// deliberately not a site, so the injected panic always recovers.
pub fn maybe_panic(site: FaultSite) {
    if fires(site) {
        std::panic::panic_any(format!("injected fault: {}", site.name()));
    }
}

/// Per-site fire counts of the installed plan (empty when none), for drain
/// logs and the chaos suite's "the schedule was actually hostile" check.
pub fn fire_counts() -> Vec<(&'static str, u64)> {
    let Some(a) = active() else {
        return Vec::new();
    };
    FaultSite::ALL
        .into_iter()
        .map(|s| (s.name(), a.fires[s.idx()].load(Ordering::Relaxed)))
        .collect()
}

/// One-line fire report (`worker_panic=2 cache_store_torn=3`), omitting
/// silent sites; `None` when nothing fired or no plan is installed.
pub fn report_line() -> Option<String> {
    let fired: Vec<String> = fire_counts()
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(name, n)| format!("{name}={n}"))
        .collect();
    if fired.is_empty() {
        None
    } else {
        Some(fired.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: these tests only exercise the *pure* surface (parse, decide).
    // Tests that install a global plan live in the serve crate's chaos
    // binary, where one lock serializes them; installing here would race
    // the rest of this crate's parallel test threads through the cache.

    #[test]
    fn spec_round_trips_and_rejects_garbage() {
        let plan =
            FaultPlan::parse("seed=42; stall_ms=20; worker_panic=1x2; cache_store_torn=0.5")
                .expect("valid spec");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.stall_ms, 20);
        assert_eq!(
            plan.rules[FaultSite::WorkerPanic.idx()],
            Some(Rule {
                prob: 1.0,
                max_fires: 2
            })
        );
        assert_eq!(
            plan.rules[FaultSite::CacheStoreTorn.idx()],
            Some(Rule {
                prob: 0.5,
                max_fires: u64::MAX
            })
        );
        assert!(!plan.is_empty());
        assert!(FaultPlan::parse("").expect("empty spec is fine").is_empty());
        assert!(FaultPlan::parse("seed=7").expect("seed only").is_empty());

        let err = FaultPlan::parse("no_such_site=1").expect_err("unknown site");
        assert!(err.contains("no_such_site") && err.contains("cache_store_torn"), "{err}");
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("worker_panic").is_err(), "missing =value");
        assert!(FaultPlan::parse("worker_panic=0.5xY").is_err());
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_differ_across_seeds() {
        let a = FaultPlan::seeded(1).with(FaultSite::CacheLoadErr, 0.5);
        let b = FaultPlan::seeded(1).with(FaultSite::CacheLoadErr, 0.5);
        let c = FaultPlan::seeded(2).with(FaultSite::CacheLoadErr, 0.5);
        let seq = |p: &FaultPlan| -> Vec<bool> {
            (0..256).map(|k| p.decide(FaultSite::CacheLoadErr, k)).collect()
        };
        assert_eq!(seq(&a), seq(&b), "same seed, same decision stream");
        assert_ne!(seq(&a), seq(&c), "different seed, different stream");
        let hits = seq(&a).iter().filter(|&&d| d).count();
        assert!(
            (64..192).contains(&hits),
            "p=0.5 over 256 consults should fire roughly half the time, got {hits}"
        );
        // Sites draw from independent streams of the same seed.
        let torn: Vec<bool> = {
            let p = FaultPlan::seeded(1).with(FaultSite::CacheStoreTorn, 0.5);
            (0..256).map(|k| p.decide(FaultSite::CacheStoreTorn, k)).collect()
        };
        assert_ne!(seq(&a), torn, "per-site streams must be independent");
    }

    #[test]
    fn empty_and_unarmed_sites_never_fire() {
        let empty = FaultPlan::seeded(9);
        assert!(empty.is_empty());
        assert!((0..64).all(|k| !empty.decide(FaultSite::WorkerPanic, k)));
        let armed = FaultPlan::seeded(9).with(FaultSite::WorkerPanic, 1.0);
        assert!(armed.decide(FaultSite::WorkerPanic, 0));
        assert!(!armed.decide(FaultSite::WorkerStall, 0), "other sites stay quiet");
        let zero = FaultPlan::seeded(9).with(FaultSite::WorkerPanic, 0.0);
        assert!((0..64).all(|k| !zero.decide(FaultSite::WorkerPanic, k)));
    }

    #[test]
    fn site_names_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::from_name(site.name()), Some(site));
        }
        assert_eq!(FaultSite::from_name("bogus"), None);
    }
}
