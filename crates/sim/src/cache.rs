//! The content-addressed result store, factored out of the sweep engine so
//! it can be shared by anything that resolves design points: one-shot
//! sweeps ([`crate::Sweep`]), the long-running simulation server
//! (`svr-serve`), and ad-hoc CLI runs.
//!
//! Three capabilities live here:
//!
//! * **Point identity** — [`point_key`] renders the canonical content key of
//!   one (workload, scale, config, options) design point. The string (and
//!   its FNV-1a hash) is byte-identical to what [`crate::Sweep`] has always
//!   used, so existing caches stay valid and every consumer of the store
//!   agrees on what "the same simulation" means.
//! * **The store itself** — [`ResultCache`] loads and writes
//!   `<dir>/<hash>.json` entries atomically, quarantines corrupt entries,
//!   and (new) arbitrates *cross-process* duplicate work with claim files:
//!   two processes racing on the same key cost one simulation globally.
//! * **Eviction** — [`ResultCache::gc`] enforces a byte-size cap with an
//!   LRU-by-mtime policy, skipping the `journal/` and `quarantine/`
//!   sub-directories (journals are resume state, quarantined entries are
//!   forensic evidence; neither is a cache hit candidate).

use crate::config::SimConfig;
use crate::fault::{self, FaultSite};
use crate::json::Json;
use crate::metrics::CacheMetrics;
use crate::options::{ExecMode, RunOptions};
use crate::report::{report_from_json, report_to_json};
use crate::runner::RunReport;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};
use svr_workloads::{Rng64, Scale};

/// Bump when the cache-entry layout or simulator semantics change in a way
/// that invalidates stored reports; old entries then simply stop matching.
/// v2: integer fixed-point DRAM timing, `Option` MSHR `earliest_free`, and
/// racing-fill prefetch-tag accounting (PR 2) can all shift reports.
/// v3: exact CPI-stack tail attribution on the in-order core (PR 3) shifts
/// per-bucket stack entries in stored reports.
/// v4: the prefetch efficacy taxonomy (PR 5) — install-point `issued`
/// semantics (feeds the energy model's L1-access count), the late/used
/// split feeding the SVR accuracy ban, and new `PfCounters` JSON fields.
/// v5: exact per-line pollution tagging (PR 7) shifts `pollution` counters,
/// and reports gain an optional `sampled` estimator block.
pub const CACHE_FORMAT_VERSION: u32 = 5;

/// First claim-wait backoff step; doubles per miss up to the cap. The
/// actual sleep is jittered (half the step plus a random half) so waiters
/// de-synchronize instead of polling in lockstep.
const CLAIM_BACKOFF_START_MS: u64 = 4;
/// Ceiling on the claim-wait backoff step.
const CLAIM_BACKOFF_CAP_MS: u64 = 200;

/// 64-bit FNV-1a over a string (the cache/dedup point hash).
pub fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical identity of one design point: the full content key and its
/// FNV-1a hash (the on-disk entry name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointKey {
    /// Human-readable content key (versioned; every semantic field).
    pub key: String,
    /// `fnv1a64(key)` — names the cache entry and the dedup slot.
    pub hash: u64,
}

/// Renders the canonical content key of one design point.
///
/// Detailed-mode keys are byte-identical to the historical sweep format so
/// existing caches stay valid; warp keys append a `;mode=warp` tag and
/// sampled keys a `;mode=sampled` tag carrying the three sampling
/// parameters (they change the report, so they must key the cache). The
/// watchdog override is deliberately absent (it never changes the report of
/// a run that completes; see `WatchdogConfig`).
pub fn point_key(
    workload: &str,
    scale: Scale,
    config: &SimConfig,
    options: &RunOptions,
) -> PointKey {
    let mode_key = match options.mode {
        ExecMode::Detailed => String::new(),
        ExecMode::Warp => ";mode=warp".to_string(),
        ExecMode::Sampled => format!(
            ";mode=sampled;si={};sw={};sp={}",
            options.sample_interval, options.sample_warmup, options.sample_period
        ),
    };
    let effective_insts = scale.max_insts().min(options.max_insts);
    let key = format!(
        "v{CACHE_FORMAT_VERSION};wl={workload};scale={};insts={effective_insts};{}{mode_key}",
        scale.name(),
        config.cache_key(),
    );
    let hash = fnv1a64(&key);
    PointKey { key, hash }
}

/// What [`ResultCache::claim`] resolved to.
#[derive(Debug)]
pub enum Claim {
    /// The entry already exists: here is the report.
    Hit(Box<RunReport>),
    /// This process won the claim: simulate, [`ResultCache::store`], and
    /// drop the guard (dropping without storing releases the claim so a
    /// waiter can take over).
    Won(ClaimGuard),
}

/// Holds a cross-process claim file; removed on drop.
#[derive(Debug)]
pub struct ClaimGuard {
    path: PathBuf,
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Counters from one [`ResultCache::gc`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheGcStats {
    /// Entries present before the pass.
    pub entries: usize,
    /// Bytes of entries present before the pass.
    pub bytes: u64,
    /// Entries evicted (oldest mtime first).
    pub evicted: usize,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: u64,
}

/// A content-addressed on-disk result store rooted at one directory.
///
/// Entries are `<dir>/<hash:016x>.json` documents carrying the full content
/// key (verified on load, so hash collisions and stale formats re-simulate
/// instead of aliasing). Writes are atomic (tmp + rename), corrupt entries
/// are quarantined to `<dir>/quarantine/`, and all operations are
/// best-effort: the cache is an optimization, never a correctness
/// requirement.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    metrics: Option<Arc<CacheMetrics>>,
}

impl ResultCache {
    /// A store rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            dir: dir.into(),
            metrics: None,
        }
    }

    /// Attaches an instrument cluster (see [`CacheMetrics`]): claim
    /// resolutions, steals, stores, GC evictions and claim-wait latency
    /// are recorded into it. Strictly out-of-band — nothing about the
    /// stored bytes or keys changes.
    pub fn with_metrics(mut self, metrics: Arc<CacheMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// A store at the conventional location: `$SVR_CACHE_DIR` or
    /// `results/cache`.
    pub fn default_dir() -> Self {
        let dir = std::env::var("SVR_CACHE_DIR").unwrap_or_else(|_| "results/cache".into());
        ResultCache::new(dir)
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of the entry for `hash` (exists only after a store).
    pub fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.json"))
    }

    fn claim_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.claim"))
    }

    /// Loads the entry for `point`, returning `None` on miss, key mismatch
    /// (hash collision or stale format — both re-simulate), or corruption
    /// (the entry is quarantined with a warning).
    pub fn load(&self, point: &PointKey) -> Option<RunReport> {
        load_cached(&self.dir, point.hash, &point.key)
    }

    /// Writes the entry for `point` atomically. Failures are non-fatal.
    pub fn store(&self, point: &PointKey, scale: Scale, report: &RunReport) {
        store_cached(&self.dir, point.hash, &point.key, scale, report);
        if let Some(m) = &self.metrics {
            m.stores.inc();
        }
    }

    /// Resolves `point` with cross-process arbitration: a cache hit returns
    /// the report; otherwise exactly one caller (across *all* processes
    /// sharing this directory) wins a claim file and must simulate, while
    /// everyone else blocks in here until the winner's entry appears.
    ///
    /// Waiters poll with jittered exponential backoff (seeded by the point
    /// hash and pid, ~4 ms doubling to a 200 ms cap) so hundreds of waiters
    /// on one hot point don't thundering-herd the filesystem in lockstep.
    /// If the claim disappears without an entry (the winner crashed or
    /// declined), the next waiter re-claims. A claim older than
    /// `stale_after` is stolen — a SIGKILLed winner cannot remove its claim
    /// file, and simulating twice is always safe. After `timeout` of
    /// unproductive waiting the caller simulates anyway (atomic entry writes
    /// make duplicated work harmless, just not free).
    pub fn claim(&self, point: &PointKey, timeout: Duration, stale_after: Duration) -> Claim {
        let t0 = Instant::now();
        let claim = self.claim_inner(point, timeout, stale_after);
        if let Some(m) = &self.metrics {
            m.claim_wait_us.record_duration_us(t0.elapsed());
            match &claim {
                Claim::Hit(_) => m.hits.inc(),
                Claim::Won(_) => m.misses.inc(),
            }
        }
        claim
    }

    fn claim_inner(&self, point: &PointKey, timeout: Duration, stale_after: Duration) -> Claim {
        let deadline = Instant::now() + timeout;
        let mut rng = Rng64::new(point.hash ^ u64::from(std::process::id()));
        let mut backoff_ms: u64 = CLAIM_BACKOFF_START_MS;
        loop {
            if let Some(report) = self.load(point) {
                return Claim::Hit(Box::new(report));
            }
            if std::fs::create_dir_all(&self.dir).is_err() {
                // Unwritable store: behave as a pure miss.
                return Claim::Won(ClaimGuard {
                    path: self.claim_path(point.hash),
                });
            }
            let path = self.claim_path(point.hash);
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => {
                    // Double-check: the previous holder may have stored the
                    // entry between our load miss and our claim win.
                    if let Some(report) = self.load(point) {
                        let _ = std::fs::remove_file(&path);
                        return Claim::Hit(Box::new(report));
                    }
                    if fault::fires(FaultSite::GcMidClaim) {
                        self.gc(0);
                    }
                    return Claim::Won(ClaimGuard { path });
                }
                Err(_) => {
                    // Someone else holds the claim. Steal it when stale.
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| SystemTime::now().duration_since(m).ok())
                        .is_some_and(|age| age > stale_after)
                        || fault::fires(FaultSite::ClaimSteal);
                    if stale {
                        if let Some(m) = &self.metrics {
                            m.steals.inc();
                        }
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Claim::Won(ClaimGuard { path });
                    }
                    // Jittered exponential backoff: sleep half the current
                    // step plus a random half, never past the deadline.
                    let half = backoff_ms / 2;
                    let jittered = half + rng.below(half + 1);
                    let remaining = deadline - now;
                    std::thread::sleep(Duration::from_millis(jittered.max(1)).min(remaining));
                    backoff_ms = (backoff_ms * 2).min(CLAIM_BACKOFF_CAP_MS);
                }
            }
        }
    }

    /// Removes orphaned `*.tmp.*` staging files older than `max_age` —
    /// residue of writers that died between the tmp write and the rename.
    /// Young tmp files are left alone (a live writer may be about to rename
    /// them). Returns the number removed.
    pub fn sweep_tmp(&self, max_age: Duration) -> usize {
        self.sweep_tmp_matching(|_, meta| {
            meta.modified()
                .ok()
                .and_then(|m| SystemTime::now().duration_since(m).ok())
                .is_some_and(|age| age > max_age)
        })
    }

    /// Removes `*.tmp.<this pid>` staging files regardless of age. Only
    /// safe when this process provably has no store in flight — e.g. a
    /// server at drain, after every worker has been joined.
    pub fn sweep_own_tmp(&self) -> usize {
        let suffix = format!(".tmp.{}", std::process::id());
        self.sweep_tmp_matching(|name, _| name.ends_with(&suffix))
    }

    fn sweep_tmp_matching(
        &self,
        remove_if: impl Fn(&str, &std::fs::Metadata) -> bool,
    ) -> usize {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for e in dir.flatten() {
            let path = e.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.contains(".tmp.") {
                continue;
            }
            let Ok(meta) = e.metadata() else { continue };
            if meta.is_file() && remove_if(name, &meta) && std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Enforces `max_bytes` over the top-level `*.json` entries with an
    /// LRU-by-mtime policy: oldest entries are removed until the total fits.
    /// `journal/` and `quarantine/` sub-directories (and claim files) are
    /// never touched — they are resume state and forensic evidence, not
    /// reloadable results. Stale `*.tmp.*` staging files (dead writers) are
    /// swept as a side effect.
    pub fn gc(&self, max_bytes: u64) -> CacheGcStats {
        self.sweep_tmp(Duration::from_secs(600));
        let mut stats = CacheGcStats::default();
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return stats;
        };
        let mut entries: Vec<(PathBuf, u64, SystemTime)> = Vec::new();
        for e in dir.flatten() {
            let path = e.path();
            if path.extension().and_then(|x| x.to_str()) != Some("json") {
                continue;
            }
            let Ok(meta) = e.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            entries.push((path, meta.len(), mtime));
        }
        stats.entries = entries.len();
        stats.bytes = entries.iter().map(|(_, len, _)| *len).sum();
        if stats.bytes <= max_bytes {
            return stats;
        }
        // Oldest first; ties broken by path for determinism.
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut live = stats.bytes;
        for (path, len, _) in entries {
            if live <= max_bytes {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                live -= len;
                stats.evicted += 1;
                stats.evicted_bytes += len;
            }
        }
        if let Some(m) = &self.metrics {
            m.gc_evicted.add(stats.evicted as u64);
        }
        stats
    }
}

fn cache_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.json"))
}

/// Loads a cache entry, returning `None` on miss, parse failure, or a key
/// mismatch (hash collision or stale format — both re-simulate).
///
/// A file that exists but does not parse — or parses but lacks the expected
/// structure — is *corrupt* (torn write from a killed process, disk fault,
/// manual edit) and is quarantined to `<dir>/quarantine/` with a warning so
/// it never shadows the slot again and stays available for forensics.
pub(crate) fn load_cached(dir: &Path, hash: u64, key: &str) -> Option<RunReport> {
    if fault::fires(FaultSite::CacheLoadErr) {
        // Injected read error: behave exactly like an I/O failure (a pure
        // miss) — the caller must re-simulate, never crash or quarantine.
        return None;
    }
    let path = cache_path(dir, hash);
    let bytes = std::fs::read(&path).ok()?;
    let Ok(text) = String::from_utf8(bytes) else {
        quarantine(dir, &path, "not valid UTF-8");
        return None;
    };
    let Ok(doc) = Json::parse(&text) else {
        quarantine(dir, &path, "not valid JSON");
        return None;
    };
    match doc.get("key").and_then(Json::as_str) {
        // A different key at the same hash is a stale format or a genuine
        // hash collision, not corruption: leave the entry alone.
        Some(k) if k == key => {}
        Some(_) => return None,
        None => {
            quarantine(dir, &path, "missing \"key\" field");
            return None;
        }
    }
    let Some(report) = doc.get("report") else {
        quarantine(dir, &path, "missing \"report\" field");
        return None;
    };
    match report_from_json(report) {
        Ok(r) => Some(r),
        Err(e) => {
            quarantine(dir, &path, &format!("bad report: {e}"));
            None
        }
    }
}

/// Moves a corrupt cache entry aside (best-effort) and warns.
fn quarantine(dir: &Path, path: &Path, reason: &str) {
    let qdir = dir.join("quarantine");
    let moved = std::fs::create_dir_all(&qdir).is_ok()
        && path
            .file_name()
            .map(|n| std::fs::rename(path, qdir.join(n)).is_ok())
            .unwrap_or(false);
    eprintln!(
        "[sweep] warning: corrupt cache entry {} ({reason}); {} — will re-simulate",
        path.display(),
        if moved {
            "quarantined to quarantine/"
        } else {
            "could not quarantine it"
        }
    );
}

/// Writes a cache entry atomically (tmp file + rename), so concurrent
/// invocations never observe a torn file. Failures are non-fatal: the cache
/// is an optimization, not a correctness requirement.
pub(crate) fn store_cached(dir: &Path, hash: u64, key: &str, scale: Scale, report: &RunReport) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let doc = Json::Obj(vec![
        ("version".into(), Json::u64(u64::from(CACHE_FORMAT_VERSION))),
        ("key".into(), Json::str(key)),
        ("workload".into(), Json::str(&report.workload)),
        ("config".into(), Json::str(&report.config)),
        ("scale".into(), Json::str(scale.name())),
        ("report".into(), report_to_json(report)),
    ]);
    let path = cache_path(dir, hash);
    let tmp = dir.join(format!("{hash:016x}.tmp.{}", std::process::id()));
    let text = doc.pretty();
    if fault::fires(FaultSite::CacheStoreTorn) {
        // Injected crash mid-write: half the document lands in the staging
        // file and the rename never happens. The final path stays untouched
        // (that is the invariant tmp+rename buys), so readers see a miss and
        // the orphaned tmp is swept by gc / the server's drain.
        let _ = std::fs::write(&tmp, &text.as_bytes()[..text.len() / 2]);
        return;
    }
    if std::fs::write(&tmp, text).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_kernel;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use svr_workloads::Kernel;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "svr-cache-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("temp dir");
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn a_report() -> (PointKey, RunReport) {
        let cfg = SimConfig::inorder();
        let opts = RunOptions::default();
        let report =
            run_kernel(Kernel::Camel, Scale::Tiny, &cfg, &opts).expect("camel runs");
        let key = point_key("Camel", Scale::Tiny, &cfg, &opts);
        (key, report)
    }

    #[test]
    fn point_key_matches_historical_sweep_format() {
        let cfg = SimConfig::svr(16);
        let pk = point_key("PR_KR", Scale::Tiny, &cfg, &RunOptions::default());
        let expect = format!(
            "v{CACHE_FORMAT_VERSION};wl=PR_KR;scale=tiny;insts={};{}",
            Scale::Tiny.max_insts(),
            cfg.cache_key()
        );
        assert_eq!(pk.key, expect);
        assert_eq!(pk.hash, fnv1a64(&expect));
        // Mode and sampling parameters key distinctly.
        let warp = point_key("PR_KR", Scale::Tiny, &cfg, &RunOptions::warp(u64::MAX));
        assert!(warp.key.ends_with(";mode=warp"));
        let sam = point_key(
            "PR_KR",
            Scale::Tiny,
            &cfg,
            &RunOptions::sampled(u64::MAX).with_sampling(1, 2, 30),
        );
        assert!(sam.key.ends_with(";mode=sampled;si=1;sw=2;sp=30"), "{}", sam.key);
        assert_ne!(pk.hash, warp.hash);
        assert_ne!(warp.hash, sam.hash);
    }

    #[test]
    fn store_load_round_trips() {
        let dir = TempDir::new("roundtrip");
        let cache = ResultCache::new(&dir.0);
        let (key, report) = a_report();
        assert!(cache.load(&key).is_none());
        cache.store(&key, Scale::Tiny, &report);
        assert_eq!(cache.load(&key).as_ref(), Some(&report));
    }

    #[test]
    fn claim_hit_claim_won_and_release() {
        let dir = TempDir::new("claim");
        let cache = ResultCache::new(&dir.0);
        let (key, report) = a_report();
        let t = Duration::from_millis(100);
        let stale = Duration::from_secs(600);
        // Miss: first caller wins the claim.
        let won = cache.claim(&key, t, stale);
        let guard = match won {
            Claim::Won(g) => g,
            Claim::Hit(_) => panic!("empty cache cannot hit"),
        };
        assert!(cache.dir().join(format!("{:016x}.claim", key.hash)).exists());
        // A second caller times out waiting and falls back to simulating.
        let start = Instant::now();
        assert!(matches!(cache.claim(&key, t, stale), Claim::Won(_)));
        assert!(start.elapsed() >= t, "second claim must wait out the timeout");
        // Store + drop releases the claim; the next caller hits.
        cache.store(&key, Scale::Tiny, &report);
        drop(guard);
        assert!(!cache.dir().join(format!("{:016x}.claim", key.hash)).exists());
        assert!(matches!(cache.claim(&key, t, stale), Claim::Hit(_)));
    }

    #[test]
    fn stale_claims_are_stolen() {
        let dir = TempDir::new("stale");
        let cache = ResultCache::new(&dir.0);
        let (key, _) = a_report();
        // Plant a claim file that looks ancient (zero stale_after: any age
        // qualifies on the next poll).
        std::fs::create_dir_all(&dir.0).expect("dir");
        std::fs::write(cache.claim_path(key.hash), b"").expect("plant claim");
        std::thread::sleep(Duration::from_millis(30));
        let got = cache.claim(&key, Duration::from_secs(5), Duration::from_millis(1));
        assert!(matches!(got, Claim::Won(_)), "stale claim must be stolen");
    }

    #[test]
    fn gc_evicts_lru_and_spares_journal_and_quarantine() {
        let dir = TempDir::new("gc");
        let cache = ResultCache::new(&dir.0);
        // Three fake entries with distinct mtimes (oldest first).
        for (i, name) in ["aaa.json", "bbb.json", "ccc.json"].iter().enumerate() {
            std::fs::write(dir.0.join(name), vec![b'x'; 100]).expect("entry");
            // Space mtimes out so the LRU order is unambiguous.
            std::thread::sleep(Duration::from_millis(20));
            let _ = i;
        }
        std::fs::create_dir_all(dir.0.join("journal")).expect("journal dir");
        std::fs::write(dir.0.join("journal/j.journal"), b"deadbeef").expect("journal");
        std::fs::create_dir_all(dir.0.join("quarantine")).expect("q dir");
        std::fs::write(dir.0.join("quarantine/q.json"), b"{}").expect("quarantined");
        std::fs::write(dir.0.join("held.claim"), b"").expect("claim");

        // Cap at 250 bytes: must evict exactly the oldest entry.
        let stats = cache.gc(250);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.bytes, 300);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.evicted_bytes, 100);
        assert!(!dir.0.join("aaa.json").exists(), "oldest entry evicted");
        assert!(dir.0.join("bbb.json").exists());
        assert!(dir.0.join("ccc.json").exists());
        assert!(dir.0.join("journal/j.journal").exists(), "journal spared");
        assert!(dir.0.join("quarantine/q.json").exists(), "quarantine spared");
        assert!(dir.0.join("held.claim").exists(), "claims spared");

        // Under the cap: nothing to do.
        let stats = cache.gc(10_000);
        assert_eq!(stats.evicted, 0);
        // Cap of zero clears every entry.
        let stats = cache.gc(0);
        assert_eq!(stats.evicted, 2);
        assert_eq!(cache.gc(0).entries, 0);
    }

    #[test]
    fn tmp_sweeps_respect_age_and_ownership() {
        let dir = TempDir::new("tmpsweep");
        let cache = ResultCache::new(&dir.0);
        let own = format!("0000000000000001.tmp.{}", std::process::id());
        let other = "0000000000000002.tmp.99999999";
        std::fs::write(dir.0.join(&own), b"torn").expect("own tmp");
        std::fs::write(dir.0.join(other), b"torn").expect("other tmp");
        std::fs::write(dir.0.join("entry.json"), b"{}").expect("entry");
        // Fresh tmp files survive an age-based sweep (a live writer may be
        // about to rename them)...
        assert_eq!(cache.sweep_tmp(Duration::from_secs(600)), 0);
        // ...and an aggressive one takes both.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(cache.sweep_tmp(Duration::from_millis(1)), 2);
        assert!(dir.0.join("entry.json").exists(), "entries untouched");
        // Ownership sweep only touches this pid's files.
        std::fs::write(dir.0.join(&own), b"torn").expect("own tmp again");
        std::fs::write(dir.0.join(other), b"torn").expect("other tmp again");
        assert_eq!(cache.sweep_own_tmp(), 1);
        assert!(!dir.0.join(&own).exists());
        assert!(dir.0.join(other).exists(), "foreign tmp spared");
    }

    #[test]
    fn gc_on_missing_dir_is_a_noop() {
        let cache = ResultCache::new("/nonexistent/svr-cache-gc-test");
        assert_eq!(cache.gc(0), CacheGcStats::default());
    }
}
