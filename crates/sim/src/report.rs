//! Structured (JSON) serialization of [`RunReport`]s — the interchange
//! format of the experiment engine: result-cache entries and the `runs`
//! section of every figure's `results/<name>.json` report.
//!
//! All integer counters are emitted exactly; `f64` energies use shortest
//! round-trip formatting, so deserializing a serialized report reproduces it
//! bit-identically (asserted by the cache round-trip tests).

use crate::json::Json;
use crate::runner::{RunReport, SampledStats};
use svr_core::{CoreStats, CpiStack, SvrActivity};
use svr_energy::EnergyBreakdown;
use svr_mem::{MemStats, PfCounters};

macro_rules! obj {
    ($($k:literal : $v:expr),* $(,)?) => { Json::Obj(vec![$(($k.into(), $v)),*]) };
}

fn u(j: &Json, k: &str) -> Result<u64, String> {
    j.get(k)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid u64 field `{k}`"))
}

fn f(j: &Json, k: &str) -> Result<f64, String> {
    j.get(k)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing/invalid f64 field `{k}`"))
}

fn s(j: &Json, k: &str) -> Result<String, String> {
    j.get(k)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing/invalid string field `{k}`"))
}

fn sub<'j>(j: &'j Json, k: &str) -> Result<&'j Json, String> {
    j.get(k)
        .ok_or_else(|| format!("missing object field `{k}`"))
}

fn stack_to_json(v: &CpiStack) -> Json {
    obj! {
        "base": Json::u64(v.base),
        "branch": Json::u64(v.branch),
        "fetch": Json::u64(v.fetch),
        "mem_l1": Json::u64(v.mem_l1),
        "mem_l2": Json::u64(v.mem_l2),
        "mem_dram": Json::u64(v.mem_dram),
        "structural": Json::u64(v.structural),
    }
}

fn stack_from_json(j: &Json) -> Result<CpiStack, String> {
    Ok(CpiStack {
        base: u(j, "base")?,
        branch: u(j, "branch")?,
        fetch: u(j, "fetch")?,
        mem_l1: u(j, "mem_l1")?,
        mem_l2: u(j, "mem_l2")?,
        mem_dram: u(j, "mem_dram")?,
        structural: u(j, "structural")?,
    })
}

fn svr_to_json(v: &SvrActivity) -> Json {
    obj! {
        "prm_rounds": Json::u64(v.prm_rounds),
        "svis": Json::u64(v.svis),
        "lanes": Json::u64(v.lanes),
        "lane_loads": Json::u64(v.lane_loads),
        "timeouts": Json::u64(v.timeouts),
        "hslr_terminations": Json::u64(v.hslr_terminations),
        "lil_suppressed": Json::u64(v.lil_suppressed),
        "waiting_suppressed": Json::u64(v.waiting_suppressed),
        "banned_suppressed": Json::u64(v.banned_suppressed),
        "non_indirect_suppressed": Json::u64(v.non_indirect_suppressed),
        "retargets": Json::u64(v.retargets),
        "masked_lanes": Json::u64(v.masked_lanes),
        "srf_recycles": Json::u64(v.srf_recycles),
        "srf_starved": Json::u64(v.srf_starved),
    }
}

fn svr_from_json(j: &Json) -> Result<SvrActivity, String> {
    Ok(SvrActivity {
        prm_rounds: u(j, "prm_rounds")?,
        svis: u(j, "svis")?,
        lanes: u(j, "lanes")?,
        lane_loads: u(j, "lane_loads")?,
        timeouts: u(j, "timeouts")?,
        hslr_terminations: u(j, "hslr_terminations")?,
        lil_suppressed: u(j, "lil_suppressed")?,
        waiting_suppressed: u(j, "waiting_suppressed")?,
        banned_suppressed: u(j, "banned_suppressed")?,
        non_indirect_suppressed: u(j, "non_indirect_suppressed")?,
        retargets: u(j, "retargets")?,
        masked_lanes: u(j, "masked_lanes")?,
        srf_recycles: u(j, "srf_recycles")?,
        srf_starved: u(j, "srf_starved")?,
    })
}

fn core_to_json(v: &CoreStats) -> Json {
    obj! {
        "cycles": Json::u64(v.cycles),
        "retired": Json::u64(v.retired),
        "issued_uops": Json::u64(v.issued_uops),
        "branches": Json::u64(v.branches),
        "mispredicts": Json::u64(v.mispredicts),
        "loads": Json::u64(v.loads),
        "stores": Json::u64(v.stores),
        "stack": stack_to_json(&v.stack),
        "svr": svr_to_json(&v.svr),
    }
}

fn core_from_json(j: &Json) -> Result<CoreStats, String> {
    Ok(CoreStats {
        cycles: u(j, "cycles")?,
        retired: u(j, "retired")?,
        issued_uops: u(j, "issued_uops")?,
        branches: u(j, "branches")?,
        mispredicts: u(j, "mispredicts")?,
        loads: u(j, "loads")?,
        stores: u(j, "stores")?,
        stack: stack_from_json(sub(j, "stack")?)?,
        svr: svr_from_json(sub(j, "svr")?)?,
    })
}

fn pf_to_json(v: &PfCounters) -> Json {
    obj! {
        "issued": Json::u64(v.issued),
        "used": Json::u64(v.used),
        "late": Json::u64(v.late),
        "evicted_unused": Json::u64(v.evicted_unused),
        "resident_at_end": Json::u64(v.resident_at_end),
        "pollution": Json::u64(v.pollution),
    }
}

fn pf_from_json(j: &Json) -> Result<PfCounters, String> {
    Ok(PfCounters {
        issued: u(j, "issued")?,
        used: u(j, "used")?,
        late: u(j, "late")?,
        evicted_unused: u(j, "evicted_unused")?,
        resident_at_end: u(j, "resident_at_end")?,
        pollution: u(j, "pollution")?,
    })
}

fn mem_to_json(v: &MemStats) -> Json {
    obj! {
        "l1d_hits": Json::u64(v.l1d_hits),
        "l1d_misses": Json::u64(v.l1d_misses),
        "l2_hits": Json::u64(v.l2_hits),
        "l2_misses": Json::u64(v.l2_misses),
        "l1i_hits": Json::u64(v.l1i_hits),
        "l1i_misses": Json::u64(v.l1i_misses),
        "dram_demand_data": Json::u64(v.dram_demand_data),
        "dram_inst": Json::u64(v.dram_inst),
        "dram_stride_pf": Json::u64(v.dram_stride_pf),
        "dram_imp_pf": Json::u64(v.dram_imp_pf),
        "dram_svr_pf": Json::u64(v.dram_svr_pf),
        "writebacks": Json::u64(v.writebacks),
        "tlb_walks": Json::u64(v.tlb_walks),
        "stride": pf_to_json(&v.stride),
        "imp": pf_to_json(&v.imp),
        "svr": pf_to_json(&v.svr),
    }
}

fn mem_from_json(j: &Json) -> Result<MemStats, String> {
    Ok(MemStats {
        l1d_hits: u(j, "l1d_hits")?,
        l1d_misses: u(j, "l1d_misses")?,
        l2_hits: u(j, "l2_hits")?,
        l2_misses: u(j, "l2_misses")?,
        l1i_hits: u(j, "l1i_hits")?,
        l1i_misses: u(j, "l1i_misses")?,
        dram_demand_data: u(j, "dram_demand_data")?,
        dram_inst: u(j, "dram_inst")?,
        dram_stride_pf: u(j, "dram_stride_pf")?,
        dram_imp_pf: u(j, "dram_imp_pf")?,
        dram_svr_pf: u(j, "dram_svr_pf")?,
        writebacks: u(j, "writebacks")?,
        tlb_walks: u(j, "tlb_walks")?,
        stride: pf_from_json(sub(j, "stride")?)?,
        imp: pf_from_json(sub(j, "imp")?)?,
        svr: pf_from_json(sub(j, "svr")?)?,
    })
}

fn energy_to_json(v: &EnergyBreakdown) -> Json {
    obj! {
        "core_dynamic_nj": Json::f64(v.core_dynamic_nj),
        "cache_dynamic_nj": Json::f64(v.cache_dynamic_nj),
        "dram_dynamic_nj": Json::f64(v.dram_dynamic_nj),
        "static_nj": Json::f64(v.static_nj),
    }
}

fn energy_from_json(j: &Json) -> Result<EnergyBreakdown, String> {
    Ok(EnergyBreakdown {
        core_dynamic_nj: f(j, "core_dynamic_nj")?,
        cache_dynamic_nj: f(j, "cache_dynamic_nj")?,
        dram_dynamic_nj: f(j, "dram_dynamic_nj")?,
        static_nj: f(j, "static_nj")?,
    })
}

fn sampled_to_json(v: &SampledStats) -> Json {
    obj! {
        "intervals": Json::u64(v.intervals),
        "interval_insts": Json::u64(v.interval_insts),
        "warmup_insts": Json::u64(v.warmup_insts),
        "period_insts": Json::u64(v.period_insts),
        "total_retired": Json::u64(v.total_retired),
        "measured_retired": Json::u64(v.measured_retired),
        "measured_cycles": Json::u64(v.measured_cycles),
        "cpi": Json::f64(v.cpi),
        "ci95": Json::f64(v.ci95),
    }
}

fn sampled_from_json(j: &Json) -> Result<SampledStats, String> {
    Ok(SampledStats {
        intervals: u(j, "intervals")?,
        interval_insts: u(j, "interval_insts")?,
        warmup_insts: u(j, "warmup_insts")?,
        period_insts: u(j, "period_insts")?,
        total_retired: u(j, "total_retired")?,
        measured_retired: u(j, "measured_retired")?,
        measured_cycles: u(j, "measured_cycles")?,
        cpi: f(j, "cpi")?,
        ci95: f(j, "ci95")?,
    })
}

/// Serializes a report. The `derived` block (CPI, energy/inst, prefetch
/// accuracy) is redundant with the raw counters and exists for downstream
/// consumers; [`report_from_json`] ignores it.
pub fn report_to_json(r: &RunReport) -> Json {
    let acc = |a: Option<f64>| a.map_or(Json::Null, Json::f64);
    let mut j = obj! {
        "workload": Json::str(&r.workload),
        "config": Json::str(&r.config),
        "verified": Json::Bool(r.verified),
        "core": core_to_json(&r.core),
        "mem": mem_to_json(&r.mem),
        "energy": energy_to_json(&r.energy),
        "derived": obj! {
            "cpi": Json::f64(r.cpi()),
            "ipc": Json::f64(r.ipc()),
            "nj_per_inst": Json::f64(r.nj_per_inst()),
            "total_nj": Json::f64(r.energy.total_nj()),
            "svr_accuracy": acc(r.svr_accuracy()),
            "imp_accuracy": acc(r.mem.imp.accuracy()),
            "stride_accuracy": acc(r.mem.stride.accuracy()),
        },
    };
    // The block is present exactly when the report carries an estimate, so
    // detailed/warp reports serialize byte-identically to the v4 layout.
    if let (Json::Obj(members), Some(sampled)) = (&mut j, &r.sampled) {
        members.push(("sampled".into(), sampled_to_json(sampled)));
    }
    j
}

/// Deserializes a report produced by [`report_to_json`].
pub fn report_from_json(j: &Json) -> Result<RunReport, String> {
    Ok(RunReport {
        workload: s(j, "workload")?,
        config: s(j, "config")?,
        verified: j
            .get("verified")
            .and_then(Json::as_bool)
            .ok_or("missing bool field `verified`")?,
        core: core_from_json(sub(j, "core")?)?,
        mem: mem_from_json(sub(j, "mem")?)?,
        energy: energy_from_json(sub(j, "energy")?)?,
        sampled: match j.get("sampled") {
            Some(sj) => Some(sampled_from_json(sj)?),
            None => None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_kernel, RunOptions, SimConfig};
    use svr_workloads::{Kernel, Scale};

    #[test]
    fn report_round_trips_bit_identically() {
        for cfg in [SimConfig::inorder(), SimConfig::imp(), SimConfig::svr(16)] {
            let r = run_kernel(Kernel::Camel, Scale::Tiny, &cfg, &RunOptions::default()).expect("valid config");
            let text = report_to_json(&r).pretty();
            let back = report_from_json(&Json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(r, back, "round trip for {}", r.config);
        }
    }

    #[test]
    fn sampled_report_round_trips_and_detailed_omits_block() {
        let detailed = run_kernel(
            Kernel::Camel,
            Scale::Tiny,
            &SimConfig::inorder(),
            &RunOptions::default(),
        )
        .expect("valid config");
        assert!(report_to_json(&detailed).get("sampled").is_none());

        let opts = RunOptions::sampled(u64::MAX).with_sampling(500, 500, 5_000);
        let r = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::inorder(), &opts)
            .expect("valid config");
        assert!(r.sampled.is_some());
        let text = report_to_json(&r).pretty();
        let back = report_from_json(&Json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(r, back, "sampled round trip");
    }

    #[test]
    fn derived_block_matches_methods() {
        let r = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::svr(16), &RunOptions::default()).expect("valid config");
        let j = report_to_json(&r);
        let derived = j.get("derived").expect("derived");
        assert_eq!(derived.get("cpi").and_then(Json::as_f64), Some(r.cpi()));
        assert_eq!(
            derived.get("svr_accuracy").and_then(Json::as_f64),
            r.svr_accuracy()
        );
    }

    #[test]
    fn decode_rejects_missing_fields() {
        let r = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::inorder(), &RunOptions::default()).expect("valid config");
        let mut j = report_to_json(&r);
        if let Json::Obj(members) = &mut j {
            members.retain(|(k, _)| k != "core");
        }
        assert!(report_from_json(&j).is_err());
    }
}
