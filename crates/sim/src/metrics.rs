//! Dependency-free observability primitives for the sweep and service
//! tiers: atomic counters, gauges, and HDR-style log₂ latency histograms,
//! collected in a global-free [`MetricsRegistry`] that snapshots into both
//! hand-rolled JSON and the Prometheus text exposition format.
//!
//! Design constraints (see DESIGN.md §12):
//!
//! * **Global-free.** A registry is an ordinary value owned by whoever wants
//!   one (the server holds its own; tests hold theirs). Registration hands
//!   back `Arc` handles; the hot path never touches the registry lock.
//! * **Cheap when unscraped.** Recording is a handful of relaxed atomic
//!   ops — no formatting, no allocation, no branches on level. All the
//!   string work happens at scrape time in [`MetricsRegistry::snapshot`].
//! * **Out-of-band.** Nothing in here ever touches `RunReport` bytes or
//!   cache keys; metrics observe the harness, never the modeled machine.
//!
//! # Histogram bucketing
//!
//! Buckets are power-of-two octaves split into 16 linear sub-buckets
//! (`SUB_BITS = 4`), the classic HDR scheme: values below 16 get exact
//! unit buckets, and every larger value lands in a bucket whose width is
//! 1/16th of its magnitude, so quantiles are exact to ~6.25% at any scale
//! from nanoseconds to hours. 976 buckets cover the full `u64` range in
//! ~7.8 KiB of atomics per histogram. Quantiles report the *inclusive
//! upper edge* of the selected bucket — a true bound ("p99 ≤ this"), never
//! an interpolated guess — and the max is tracked exactly.

use crate::json::Json;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave: 2^4 = 16.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64` (index of `u64::MAX` is 975).
pub const HIST_BUCKETS: usize = 976;

/// The bucket index of a recorded value.
///
/// Values below 16 get exact unit buckets (`index == value`); a larger
/// value with most-significant bit `m` lands in octave `m - 4` at the
/// sub-bucket named by its next four bits. Monotone in `v`, continuous at
/// the seam (`index(15) == 15`, `index(16) == 16`).
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as u64;
    (SUBS + octave * SUBS + ((v >> octave) - SUBS)) as usize
}

/// The inclusive `[lower, upper]` value range of bucket `idx`.
/// The last bucket's upper edge saturates at `u64::MAX`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUBS {
        return (idx, idx);
    }
    let octave = (idx - SUBS) / SUBS;
    let sub = (idx - SUBS) % SUBS;
    let width = 1u64 << octave;
    let lower = (SUBS << octave) + sub * width;
    (lower, lower.saturating_add(width - 1))
}

/// A monotonically increasing counter (relaxed atomics; merge by adding).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depth, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed latency histogram (see the module docs for the scheme).
/// Recording is wait-free: one relaxed `fetch_add` per of bucket/sum/count
/// plus a `fetch_max` for the exact maximum.
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64; HIST_BUCKETS]>,
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: Box::new([const { AtomicU64::new(0) }; HIST_BUCKETS]),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in microseconds (saturating).
    pub fn record_duration_us(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the bucket counts (not atomic across
    /// buckets; fine for monitoring, by design).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`]: mergeable (element-wise addition, so
/// merging is associative and commutative) and queryable for quantiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (`HIST_BUCKETS` long, or empty for zero).
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// Folds `other` into `self` (element-wise; associative).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        // Wrapping, like the recorder's atomic fetch_add (still associative).
        self.sum = self.sum.wrapping_add(other.sum);
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// The inclusive upper bound of the bucket holding the sample at rank
    /// `ceil(q · count)` — an exact "q-quantile ≤ this" statement, not an
    /// interpolation. Returns 0 for an empty histogram; `q ≥ 1` returns
    /// the upper edge of the last occupied bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(idx).1;
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// The value half of one snapshot entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram reading.
    Hist(HistSnapshot),
}

/// One metric in a [`MetricsSnapshot`]: name, help, label set, value.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapEntry {
    /// Prometheus-style metric name (e.g. `jobs_simulated_total`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Label key/value pairs (unescaped values).
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SnapValue,
}

/// A frozen, mergeable view of a registry (plus any entries appended at
/// scrape time — the server injects fault-site counters and
/// authoritative gauges this way).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Entries in registration/insertion order.
    pub entries: Vec<SnapEntry>,
}

impl MetricsSnapshot {
    /// Appends a counter reading.
    pub fn push_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        self.entries.push(SnapEntry {
            name: name.to_string(),
            help: help.to_string(),
            labels: own_labels(labels),
            value: SnapValue::Counter(v),
        });
    }

    /// Appends a gauge reading.
    pub fn push_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: i64) {
        self.entries.push(SnapEntry {
            name: name.to_string(),
            help: help.to_string(),
            labels: own_labels(labels),
            value: SnapValue::Gauge(v),
        });
    }

    /// Folds `other` into `self`: entries with the same (name, labels) are
    /// combined (counters/gauges add, histograms merge element-wise), new
    /// entries are appended. Associative, since every combine rule is.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for e in &other.entries {
            match self
                .entries
                .iter_mut()
                .find(|m| m.name == e.name && m.labels == e.labels)
            {
                Some(mine) => match (&mut mine.value, &e.value) {
                    (SnapValue::Counter(a), SnapValue::Counter(b)) => *a += b,
                    (SnapValue::Gauge(a), SnapValue::Gauge(b)) => *a += b,
                    (SnapValue::Hist(a), SnapValue::Hist(b)) => a.merge(b),
                    // Kind mismatch: keep ours (malformed input, not worth
                    // crashing a monitoring path over).
                    _ => {}
                },
                None => self.entries.push(e.clone()),
            }
        }
    }

    /// Renders the snapshot as a JSON array of metric objects (histograms
    /// carry count/sum/max and the exact-bound p50/p90/p99).
    pub fn to_json(&self) -> Json {
        let arr = self
            .entries
            .iter()
            .map(|e| {
                let mut obj = vec![("name".to_string(), Json::str(&e.name))];
                if !e.labels.is_empty() {
                    obj.push((
                        "labels".to_string(),
                        Json::Obj(
                            e.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::str(v)))
                                .collect(),
                        ),
                    ));
                }
                match &e.value {
                    SnapValue::Counter(v) => {
                        obj.push(("type".to_string(), Json::str("counter")));
                        obj.push(("value".to_string(), Json::u64(*v)));
                    }
                    SnapValue::Gauge(v) => {
                        obj.push(("type".to_string(), Json::str("gauge")));
                        obj.push(("value".to_string(), Json::Num(v.to_string())));
                    }
                    SnapValue::Hist(h) => {
                        obj.push(("type".to_string(), Json::str("histogram")));
                        obj.push(("count".to_string(), Json::u64(h.count)));
                        obj.push(("sum".to_string(), Json::u64(h.sum)));
                        obj.push(("max".to_string(), Json::u64(h.max)));
                        obj.push(("p50".to_string(), Json::u64(h.p50())));
                        obj.push(("p90".to_string(), Json::u64(h.p90())));
                        obj.push(("p99".to_string(), Json::u64(h.p99())));
                    }
                }
                Json::Obj(obj)
            })
            .collect();
        Json::Arr(arr)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): families grouped with one `# HELP`/`# TYPE` header,
    /// label values escaped, histograms as cumulative `_bucket{le=...}`
    /// series (empty buckets elided; `+Inf` always present) plus `_sum`
    /// and `_count`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut family_order: Vec<&str> = Vec::new();
        for e in &self.entries {
            if !family_order.contains(&e.name.as_str()) {
                family_order.push(&e.name);
            }
        }
        for fam in family_order {
            let members: Vec<&SnapEntry> =
                self.entries.iter().filter(|e| e.name == fam).collect();
            let Some(first) = members.first() else { continue };
            let kind = match first.value {
                SnapValue::Counter(_) => "counter",
                SnapValue::Gauge(_) => "gauge",
                SnapValue::Hist(_) => "histogram",
            };
            if !first.help.is_empty() {
                let _ = writeln!(out, "# HELP {fam} {}", escape_help(&first.help));
            }
            let _ = writeln!(out, "# TYPE {fam} {kind}");
            for e in members {
                let labels = render_labels(&e.labels);
                match &e.value {
                    SnapValue::Counter(v) => {
                        let _ = writeln!(out, "{fam}{labels} {v}");
                    }
                    SnapValue::Gauge(v) => {
                        let _ = writeln!(out, "{fam}{labels} {v}");
                    }
                    SnapValue::Hist(h) => {
                        let mut cum = 0u64;
                        for (idx, &n) in h.counts.iter().enumerate() {
                            if n == 0 {
                                continue;
                            }
                            cum += n;
                            let le = bucket_bounds(idx).1;
                            let _ = writeln!(
                                out,
                                "{fam}_bucket{} {cum}",
                                render_labels_with(&e.labels, "le", &le.to_string())
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{fam}_bucket{} {}",
                            render_labels_with(&e.labels, "le", "+Inf"),
                            h.count
                        );
                        let _ = writeln!(out, "{fam}_sum{labels} {}", h.sum);
                        let _ = writeln!(out, "{fam}_count{labels} {}", h.count);
                    }
                }
            }
        }
        out
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Escapes a label value for the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverts [`escape_label_value`]. Unknown escapes pass the escaped
/// character through (lenient, like real scrapers).
pub fn unescape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

fn escape_help(h: &str) -> String {
    h.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn render_labels_with(labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    inner.push(format!("{key}=\"{}\"", escape_label_value(value)));
    format!("{{{}}}", inner.join(","))
}

/// One parsed sample line from an exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms this includes `_bucket`/`_sum`/...).
    pub name: String,
    /// Unescaped label pairs.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition output into samples, skipping
/// comments and malformed lines (lenient: this backs test assertions and
/// `svr_loadgen`'s scrape, not a full scraper).
pub fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value_str) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => continue,
        };
        let Ok(value) = value_str.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let Some(body) = rest.strip_suffix('}') else {
                    continue;
                };
                (name.to_string(), parse_labels(body))
            }
        };
        out.push(Sample { name, labels, value });
    }
    out
}

/// Finds one sample by name and exact label set.
pub fn find_sample<'a>(
    samples: &'a [Sample],
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a Sample> {
    samples.iter().find(|s| {
        s.name == name
            && s.labels.len() == labels.len()
            && labels
                .iter()
                .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
    })
}

fn parse_labels(body: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start_matches(',').trim_start();
        if rest.is_empty() {
            break;
        }
        let Some((key, after_eq)) = rest.split_once("=\"") else {
            break;
        };
        // Find the closing quote, honoring backslash escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in after_eq.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let Some(end) = end else { break };
        out.push((key.to_string(), unescape_label_value(&after_eq[..end])));
        rest = &after_eq[end + 1..];
    }
    out
}

enum MetricKind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Hist(Arc<Histogram>),
}

struct MetricDef {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    kind: MetricKind,
}

/// A set of registered metrics. Registration (get-or-create by name +
/// label set) takes a lock; the returned `Arc` handles are lock-free to
/// record into. Scraping walks the registry once and freezes everything
/// into a [`MetricsSnapshot`].
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<MetricDef>>,
}

/// A poisoned registry lock only means a panic elsewhere mid-registration;
/// the Vec is always structurally valid, so keep serving.
fn lock_defs(m: &Mutex<Vec<MetricDef>>) -> MutexGuard<'_, Vec<MetricDef>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Gets or registers an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or registers a labeled counter (e.g. `{route="/v1/jobs"}`).
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let labels = own_labels(labels);
        let mut defs = lock_defs(&self.metrics);
        for d in defs.iter() {
            if let MetricKind::Counter(c) = &d.kind {
                if d.name == name && d.labels == labels {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::default());
        defs.push(MetricDef {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind: MetricKind::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Gets or registers an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut defs = lock_defs(&self.metrics);
        for d in defs.iter() {
            if let MetricKind::Gauge(g) = &d.kind {
                if d.name == name && d.labels.is_empty() {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::default());
        defs.push(MetricDef {
            name: name.to_string(),
            help: help.to_string(),
            labels: Vec::new(),
            kind: MetricKind::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Gets or registers an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut defs = lock_defs(&self.metrics);
        for d in defs.iter() {
            if let MetricKind::Hist(h) = &d.kind {
                if d.name == name && d.labels.is_empty() {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Histogram::default());
        defs.push(MetricDef {
            name: name.to_string(),
            help: help.to_string(),
            labels: Vec::new(),
            kind: MetricKind::Hist(Arc::clone(&h)),
        });
        h
    }

    /// Freezes every registered metric into a snapshot (registration
    /// order preserved).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let defs = lock_defs(&self.metrics);
        let entries = defs
            .iter()
            .map(|d| SnapEntry {
                name: d.name.clone(),
                help: d.help.clone(),
                labels: d.labels.clone(),
                value: match &d.kind {
                    MetricKind::Counter(c) => SnapValue::Counter(c.get()),
                    MetricKind::Gauge(g) => SnapValue::Gauge(g.get()),
                    MetricKind::Hist(h) => SnapValue::Hist(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// The cache-tier instrument cluster: hit/miss/steal/store/GC counters and
/// the claim-wait histogram, handed to [`crate::ResultCache::with_metrics`]
/// (the server attaches one; a bare cache records nothing). Hits and
/// misses count *resolutions* — one per [`crate::ResultCache::claim`]
/// outcome or sweep probe — not raw file reads, so `hits + misses` equals
/// the number of points resolved.
#[derive(Debug)]
pub struct CacheMetrics {
    /// Points resolved from the store.
    pub hits: Arc<Counter>,
    /// Points that required simulation.
    pub misses: Arc<Counter>,
    /// Entries written.
    pub stores: Arc<Counter>,
    /// Stale cross-process claims stolen.
    pub steals: Arc<Counter>,
    /// Entries evicted by the size-cap GC.
    pub gc_evicted: Arc<Counter>,
    /// Wall time spent inside `claim` (µs), including backoff waits.
    pub claim_wait_us: Arc<Histogram>,
}

impl CacheMetrics {
    /// Registers the cluster's metrics in `reg` under their canonical
    /// names (`cache_hits_total`, `cache_misses_total`, ...).
    pub fn register(reg: &MetricsRegistry) -> Arc<CacheMetrics> {
        Arc::new(CacheMetrics {
            hits: reg.counter("cache_hits_total", "Points resolved from the result cache"),
            misses: reg.counter("cache_misses_total", "Points that required simulation"),
            stores: reg.counter("cache_stores_total", "Result-cache entries written"),
            steals: reg.counter("cache_steals_total", "Stale cross-process claims stolen"),
            gc_evicted: reg.counter("cache_gc_evicted_total", "Entries evicted by the size-cap GC"),
            claim_wait_us: reg
                .histogram("claim_wait_us", "Wall time inside cache claim arbitration (us)"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_workloads::Rng64;

    #[test]
    fn bucket_index_is_monotone_and_bounds_contain_values() {
        let mut rng = Rng64::new(0x5eed);
        let mut probes: Vec<u64> = (0..16u64).collect();
        probes.extend([15, 16, 17, 31, 32, 1023, 1024, 1025, u64::MAX - 1, u64::MAX]);
        for _ in 0..4000 {
            let bits = rng.below(64);
            probes.push(rng.next_u64() >> bits);
        }
        probes.sort_unstable();
        let mut last_idx = 0usize;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx >= last_idx, "index must be monotone (v={v})");
            assert!(idx < HIST_BUCKETS);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} outside bucket [{lo},{hi}]");
            last_idx = idx;
        }
        // Sub-16 values get exact unit buckets; the seam is continuous.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_bounds(bucket_index(u64::MAX)).1, u64::MAX);
    }

    #[test]
    fn quantiles_bound_the_true_sample() {
        // Property: for random sample sets, the reported quantile is the
        // inclusive upper edge of the bucket holding the true rank sample,
        // so true_sample <= reported, and reported is within one bucket.
        let mut rng = Rng64::new(0xdead_beef);
        for round in 0..50 {
            let h = Histogram::default();
            let n = 1 + rng.below(400) as usize;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix scales: some tiny, some huge.
                let v = rng.next_u64() >> rng.below(60);
                samples.push(v);
                h.record(v);
            }
            samples.sort_unstable();
            let snap = h.snapshot();
            assert_eq!(snap.count, n as u64);
            assert_eq!(snap.max, *samples.last().unwrap());
            for q in [0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let truth = samples[rank - 1];
                let bound = snap.quantile(q);
                assert!(
                    truth <= bound,
                    "round {round}: q={q} true={truth} > bound={bound}"
                );
                let (lo, _) = bucket_bounds(bucket_index(bound));
                assert!(
                    lo <= truth || bucket_index(truth) == bucket_index(bound),
                    "round {round}: bound {bound} not from truth's bucket (true={truth})"
                );
            }
        }
    }

    #[test]
    fn snapshot_merge_is_associative() {
        let mut rng = Rng64::new(42);
        let mk = |rng: &mut Rng64| {
            let h = Histogram::default();
            for _ in 0..rng.below(100) {
                h.record(rng.next_u64() >> rng.below(50));
            }
            let mut s = MetricsSnapshot::default();
            s.push_counter("c_total", "", &[], rng.below(1000));
            s.push_counter("labeled_total", "", &[("site", "x")], rng.below(10));
            s.push_gauge("g", "", &[], rng.below(50) as i64 - 25);
            s.entries.push(SnapEntry {
                name: "h_us".into(),
                help: String::new(),
                labels: Vec::new(),
                value: SnapValue::Hist(h.snapshot()),
            });
            s
        };
        for _ in 0..20 {
            let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
            // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right);
        }
    }

    #[test]
    fn prometheus_exposition_round_trips_label_escaping() {
        let mut rng = Rng64::new(7);
        let alphabet: Vec<char> =
            "ab\"\\\nμ {}=,x".chars().collect();
        for _ in 0..60 {
            let len = rng.below(12) as usize;
            let value: String =
                (0..len).map(|_| alphabet[rng.index(alphabet.len())]).collect();
            let mut snap = MetricsSnapshot::default();
            snap.push_counter("fault_fired_total", "h", &[("site", &value)], 3);
            let text = snap.to_prometheus();
            let samples = parse_exposition(&text);
            assert_eq!(samples.len(), 1, "one sample line in:\n{text}");
            assert_eq!(samples[0].name, "fault_fired_total");
            assert_eq!(samples[0].labels, vec![("site".to_string(), value.clone())]);
            assert_eq!(samples[0].value, 3.0);
            // Direct escape/unescape inverse.
            assert_eq!(unescape_label_value(&escape_label_value(&value)), value);
        }
    }

    #[test]
    fn exposition_shape_is_valid() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jobs_simulated_total", "Jobs simulated");
        let g = reg.gauge("queue_depth", "Queued jobs");
        let h = reg.histogram("submit_latency_us", "Submit latency (us)");
        c.add(2);
        g.set(5);
        h.record(3);
        h.record(300);
        reg.counter_with("http_requests_total", "Requests", &[("route", "/v1/jobs")])
            .inc();
        reg.counter_with("http_requests_total", "Requests", &[("route", "/v1/status")])
            .add(4);
        let text = reg.snapshot().to_prometheus();
        // Families have exactly one TYPE line each.
        assert_eq!(text.matches("# TYPE http_requests_total counter").count(), 1);
        assert!(text.contains("# TYPE jobs_simulated_total counter"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("# TYPE submit_latency_us histogram"));
        assert!(text.contains("jobs_simulated_total 2"));
        assert!(text.contains("queue_depth 5"));
        // Histogram: cumulative buckets, +Inf, sum, count.
        assert!(text.contains("submit_latency_us_bucket{le=\"3\"} 1"));
        assert!(text.contains("submit_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("submit_latency_us_sum 303"));
        assert!(text.contains("submit_latency_us_count 2"));
        let samples = parse_exposition(&text);
        let s = find_sample(&samples, "http_requests_total", &[("route", "/v1/status")])
            .expect("labeled sample");
        assert_eq!(s.value, 4.0);
        // Cumulative bucket counts are monotone.
        let mut last = 0.0;
        for s in samples.iter().filter(|s| s.name == "submit_latency_us_bucket") {
            assert!(s.value >= last);
            last = s.value;
        }
    }

    #[test]
    fn registry_get_or_create_returns_same_handle() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "x");
        let b = reg.counter("x_total", "x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().entries.len(), 1);
        let g1 = reg.gauge("g", "");
        g1.add(7);
        g1.sub(3);
        assert_eq!(reg.gauge("g", "").get(), 4);
        let h1 = reg.histogram("h_us", "");
        h1.record_duration_us(Duration::from_micros(250));
        assert_eq!(reg.histogram("h_us", "").snapshot().count, 1);
    }

    #[test]
    fn quantile_handles_empty_and_edges() {
        let snap = HistSnapshot::default();
        assert_eq!(snap.quantile(0.5), 0);
        let h = Histogram::default();
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.sum, 0);
    }
}
