//! Running workloads under configurations and collecting reports.

use crate::config::{CoreChoice, SimConfig};
use crate::error::SimError;
use crate::options::{ExecMode, RunOptions};
use svr_core::{CoreStats, InOrderCore, OooCore, RunError};
use svr_energy::{CoreKind, EnergyBreakdown, EnergyInput, EnergyModel};
use svr_isa::{ArchState, DecodedProgram};
use svr_mem::{MemImage, MemStats};
use svr_trace::{NullSink, TraceSink};
use svr_workloads::{Kernel, Scale, Workload};

/// Sampling-estimator summary of an [`ExecMode::Sampled`] run.
///
/// The run is divided into periods of `period_insts` retired instructions;
/// each period runs `warmup_insts` detailed instructions (timed, but not
/// sampled), then `interval_insts` *measured* detailed instructions whose
/// cycle/retire deltas form one sample, then warp fast-forward for the rest
/// of the period. The CPI point estimate is the ratio of sums
/// `measured_cycles / measured_retired` (so long intervals are not
/// under-weighted), and `ci95` is the half-width of the 95% confidence
/// interval computed from the sample variance of the per-interval CPIs
/// (`1.96·s/√n`; zero when fewer than two intervals were measured).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampledStats {
    /// Number of measured intervals (samples).
    pub intervals: u64,
    /// Configured measured-interval length, instructions.
    pub interval_insts: u64,
    /// Configured detailed warm-up length, instructions.
    pub warmup_insts: u64,
    /// Effective sampling period, instructions (after clamping to at least
    /// warm-up + interval).
    pub period_insts: u64,
    /// Total instructions retired across all segments, detailed and warp.
    pub total_retired: u64,
    /// Instructions retired inside measured intervals.
    pub measured_retired: u64,
    /// Cycles elapsed inside measured intervals.
    pub measured_cycles: u64,
    /// CPI point estimate (ratio of sums over measured intervals).
    pub cpi: f64,
    /// 95% confidence-interval half-width of the CPI estimate.
    pub ci95: f64,
}

/// The result of simulating one workload under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Workload name ("PR_KR", ...).
    pub workload: String,
    /// Configuration label ("SVR16", ...).
    pub config: String,
    /// Core-side statistics (cycles, CPI stack, SVR activity).
    pub core: CoreStats,
    /// Memory-side statistics (misses, DRAM traffic, prefetch accuracy).
    pub mem: MemStats,
    /// Whole-system energy.
    pub energy: EnergyBreakdown,
    /// Whether the architectural check passed (always true for capped runs
    /// that did not reach `halt`).
    pub verified: bool,
    /// Sampling-estimator summary ([`ExecMode::Sampled`] runs only).
    pub sampled: Option<SampledStats>,
}

impl RunReport {
    /// Cycles per instruction: the sampling estimate for sampled runs (so
    /// figure binaries work unchanged across modes), the exact core ratio
    /// otherwise.
    pub fn cpi(&self) -> f64 {
        match &self.sampled {
            Some(s) if s.measured_retired > 0 => s.cpi,
            _ => self.core.cpi(),
        }
    }

    /// Instructions per cycle (reciprocal of [`RunReport::cpi`]).
    pub fn ipc(&self) -> f64 {
        match &self.sampled {
            Some(s) if s.measured_retired > 0 && s.cpi > 0.0 => 1.0 / s.cpi,
            _ => self.core.ipc(),
        }
    }

    /// Whole-system energy per committed instruction (nJ).
    pub fn nj_per_inst(&self) -> f64 {
        self.energy.nj_per_inst(self.core.retired)
    }

    /// SVR prefetch accuracy, if any outcomes were observed.
    pub fn svr_accuracy(&self) -> Option<f64> {
        self.mem.svr.accuracy()
    }
}

/// Simulates `workload` under `config` as directed by `opts`.
///
/// In [`ExecMode::Detailed`] (the default) this is the cycle-accurate
/// simulator and the report is bit-identical to the historical runner. In
/// [`ExecMode::Warp`] the pre-decoded program executes functionally (no
/// timing, no memory hierarchy): final architectural state and `retired`
/// match a detailed run, while every timing/memory statistic is zero. In
/// [`ExecMode::Sampled`] the run alternates warp fast-forward with detailed
/// warm-up and measurement intervals; the report's core/memory statistics
/// cover the detailed-executed portion and [`RunReport::sampled`] carries
/// the extrapolated CPI estimate with its confidence interval.
///
/// # Errors
///
/// Returns a [`SimError`] naming the workload and configuration label:
///
/// * [`SimError::Config`] if the configuration is internally inconsistent
///   (see [`SimConfig::validate`]) — e.g. [`CoreChoice::Imp`] without an
///   attached `ImpConfig`, which would silently simulate the plain in-order
///   baseline;
/// * [`SimError::NoForwardProgress`] / [`SimError::CycleBudgetExceeded`] if
///   the watchdog terminated a livelocked or runaway guest (see
///   [`svr_core::WatchdogConfig`] and [`RunOptions::watchdog`]; in warp
///   mode — and the warp gaps of sampled mode — the progress window counts
///   consecutive effect-free retired instructions, since a functional run
///   has no cycles);
/// * [`SimError::InvariantViolation`] if a post-run simulator self-check
///   failed — checked in release builds too, so accounting bugs surface in
///   real sweeps and not only under `debug_assert!`.
pub fn run_workload(
    workload: &Workload,
    config: &SimConfig,
    opts: &RunOptions,
) -> Result<RunReport, SimError> {
    run_workload_traced(workload, config, opts, &mut NullSink)
}

/// [`run_workload`] with a caller-owned trace sink attached to the core and
/// memory hierarchy.
///
/// The sink is *lent* for the duration of the run (via the forwarding
/// `TraceSink for &mut S` impl), so the caller keeps ownership of ring
/// buffers / writers and can inspect them afterwards. Passing
/// [`NullSink`] makes this exactly [`run_workload`]: all emission sites
/// monomorphize away.
///
/// Warp-mode runs emit no trace events (there is no timing to trace); the
/// sink is simply left untouched.
///
/// # Errors
///
/// Same contract as [`run_workload`].
pub fn run_workload_traced<S: TraceSink>(
    workload: &Workload,
    config: &SimConfig,
    opts: &RunOptions,
    sink: &mut S,
) -> Result<RunReport, SimError> {
    config
        .validate()
        .map_err(|e| e.for_workload(&workload.name))?;
    // A watchdog override applies to whichever core the config selects; it
    // only bounds runs that would not terminate, never the timing of one
    // that does, so (like `SimConfig`'s own watchdog) it stays out of cache
    // keys and labels.
    let owned_config;
    let config = match opts.watchdog {
        Some(wd) => {
            let mut c = config.clone();
            c.inorder.watchdog = wd;
            c.ooo.watchdog = wd;
            owned_config = c;
            &owned_config
        }
        None => config,
    };
    let max_insts = opts.max_insts;
    let label = config.label();
    let (program, mut image, mut arch) = workload.instantiate();
    // Each detailed-mode arm runs the core to completion, finalizes the
    // prefetch ledger (still-resident lines become `resident_at_end`), then
    // checks the memory hierarchy's cross-counter invariants while the core
    // still owns it — including the per-source `issued == used + late +
    // evicted_unused + resident_at_end` balance. Warp mode bypasses the
    // cores entirely: the lowered program runs straight against the image,
    // so timing stats stay zero and the shared invariants below degenerate
    // to `0 == 0`.
    let (core_stats, mem_stats, kind, mem_check, sampled) = if opts.mode == ExecMode::Warp {
        let decoded = DecodedProgram::lower(&program);
        // Warp has no cycles, so the watchdog's progress window counts
        // consecutive effect-free retirements instead of quiet cycles; the
        // cycle budget does not apply (retirement is bounded by the cap).
        let window = config.inorder.watchdog.window();
        let mut quiet = 0u64;
        let (retired, trip) =
            arch.run_decoded_watched(&decoded, &mut image, max_insts, window, &mut quiet);
        if let Some(pc) = trip {
            return Err(warp_spin_error(
                (&workload.name, &label),
                pc,
                retired,
                quiet,
                window,
            ));
        }
        let core = CoreStats {
            retired,
            issued_uops: retired,
            ..CoreStats::default()
        };
        (core, MemStats::default(), CoreKind::InOrder, Ok(()), None)
    } else if opts.mode == ExecMode::Sampled {
        let decoded = DecodedProgram::lower(&program);
        let ctx = (workload.name.as_str(), label.as_str());
        match &config.core {
            CoreChoice::InOrder | CoreChoice::Imp => {
                let core = InOrderCore::with_sink(config.inorder, config.mem.clone(), sink);
                let window = config.inorder.watchdog.window();
                let (stats, mem, check, s) =
                    sampled_arm(core, &decoded, &mut image, &mut arch, opts, window, ctx)?;
                (stats, mem, CoreKind::InOrder, check, Some(s))
            }
            CoreChoice::Svr(svr) => {
                let core =
                    InOrderCore::with_svr_sink(config.inorder, config.mem.clone(), *svr, sink);
                let window = config.inorder.watchdog.window();
                let (stats, mem, check, s) =
                    sampled_arm(core, &decoded, &mut image, &mut arch, opts, window, ctx)?;
                (stats, mem, CoreKind::InOrder, check, Some(s))
            }
            CoreChoice::OutOfOrder => {
                let core = OooCore::with_sink(config.ooo, config.mem.clone(), sink);
                let window = config.ooo.watchdog.window();
                let (stats, mem, check, s) =
                    sampled_arm(core, &decoded, &mut image, &mut arch, opts, window, ctx)?;
                (stats, mem, CoreKind::OutOfOrder, check, Some(s))
            }
        }
    } else {
        match &config.core {
            CoreChoice::InOrder | CoreChoice::Imp => {
                let mut core = InOrderCore::with_sink(config.inorder, config.mem.clone(), sink);
                core.run(&program, &mut image, &mut arch, max_insts)
                    .map_err(|e| SimError::from_run_error(e, &workload.name, &label))?;
                core.finalize_mem();
                let check = core.hierarchy().check_invariants();
                (*core.stats(), *core.mem_stats(), CoreKind::InOrder, check, None)
            }
            CoreChoice::Svr(svr) => {
                let mut core =
                    InOrderCore::with_svr_sink(config.inorder, config.mem.clone(), *svr, sink);
                core.run(&program, &mut image, &mut arch, max_insts)
                    .map_err(|e| SimError::from_run_error(e, &workload.name, &label))?;
                core.finalize_mem();
                let check = core.hierarchy().check_invariants();
                (*core.stats(), *core.mem_stats(), CoreKind::InOrder, check, None)
            }
            CoreChoice::OutOfOrder => {
                let mut core = OooCore::with_sink(config.ooo, config.mem.clone(), sink);
                core.run(&program, &mut image, &mut arch, max_insts)
                    .map_err(|e| SimError::from_run_error(e, &workload.name, &label))?;
                core.finalize_mem();
                let check = core.hierarchy().check_invariants();
                (*core.stats(), *core.mem_stats(), CoreKind::OutOfOrder, check, None)
            }
        }
    };
    let violation = |invariant: &str, detail: String| SimError::InvariantViolation {
        workload: workload.name.clone(),
        config: label.clone(),
        invariant: invariant.to_string(),
        detail,
    };
    if let Err(detail) = mem_check {
        return Err(violation("mem-counters", detail));
    }
    // CPI-stack drift: every simulated cycle must be attributed to exactly
    // one stall bucket (pinned exact on both cores).
    if core_stats.stack.total() != core_stats.cycles {
        return Err(violation(
            "cpi-stack",
            format!(
                "stack attributes {} cycles but the core ran {}",
                core_stats.stack.total(),
                core_stats.cycles
            ),
        ));
    }
    // Retire-count mismatch: the run loop may only end by halting or by
    // exhausting the instruction cap; anything else is a lost instruction.
    // Sampled runs retire across detailed and warp segments, so the total
    // comes from the scheduler, not the (detailed-only) core stats.
    let total_retired = sampled.map_or(core_stats.retired, |s: SampledStats| s.total_retired);
    if !arch.halted() && total_retired < max_insts {
        return Err(violation(
            "retire-count",
            format!(
                "run ended without halt after {total_retired} of {max_insts} instructions"
            ),
        ));
    }
    let energy = EnergyModel::default().energy(&energy_input(&core_stats, &mem_stats, kind));
    let verified = !arch.halted() || workload.verify(&image, &arch);
    Ok(RunReport {
        workload: workload.name.clone(),
        config: label,
        core: core_stats,
        mem: mem_stats,
        energy,
        verified,
        sampled,
    })
}

/// Synthesizes the watchdog error for an effect-free spin detected in a warp
/// segment. Warp has no cycles, so the "clock" in the error is retired
/// instructions: `cycle` is the total retired count at the trip and
/// `last_effect` the retirement index of the last effectful instruction.
fn warp_spin_error(
    (workload, config): (&str, &str),
    pc: usize,
    retired: u64,
    quiet: u64,
    window: u64,
) -> SimError {
    SimError::NoForwardProgress {
        workload: workload.to_string(),
        config: config.to_string(),
        pc,
        cycle: retired,
        last_effect: retired.saturating_sub(quiet),
        window,
        stall: "EffectFreeSpin".to_string(),
        outstanding_mshrs: 0,
    }
}

/// Uniform driver interface over the three detailed core models, letting the
/// sampled scheduler stay generic. Both cores' `run_decoded` loops keep all
/// state in member fields and gate on `stats.retired < max_insts`, so
/// repeated calls with growing cumulative targets resume exactly where the
/// previous segment stopped.
trait SampledCore {
    /// Runs the detailed model until `target` *cumulative* retired
    /// instructions (or halt).
    fn run_segment(
        &mut self,
        prog: &DecodedProgram,
        image: &mut MemImage,
        arch: &mut ArchState,
        target: u64,
    ) -> Result<(), RunError>;

    /// Statistics of the detailed portion so far.
    fn core_stats(&self) -> &CoreStats;

    /// Finalizes the prefetch ledger and runs the hierarchy's cross-counter
    /// checks; returns the memory statistics and the check verdict.
    fn finish(&mut self) -> (MemStats, Result<(), String>);
}

impl<S: TraceSink> SampledCore for InOrderCore<S> {
    fn run_segment(
        &mut self,
        prog: &DecodedProgram,
        image: &mut MemImage,
        arch: &mut ArchState,
        target: u64,
    ) -> Result<(), RunError> {
        self.run_decoded(prog, image, arch, target)
    }

    fn core_stats(&self) -> &CoreStats {
        self.stats()
    }

    fn finish(&mut self) -> (MemStats, Result<(), String>) {
        self.finalize_mem();
        (*self.mem_stats(), self.hierarchy().check_invariants())
    }
}

impl<S: TraceSink> SampledCore for OooCore<S> {
    fn run_segment(
        &mut self,
        prog: &DecodedProgram,
        image: &mut MemImage,
        arch: &mut ArchState,
        target: u64,
    ) -> Result<(), RunError> {
        self.run_decoded(prog, image, arch, target)
    }

    fn core_stats(&self) -> &CoreStats {
        self.stats()
    }

    fn finish(&mut self) -> (MemStats, Result<(), String>) {
        self.finalize_mem();
        (*self.mem_stats(), self.hierarchy().check_invariants())
    }
}

/// Why the sampled scheduler stopped early.
enum SampledFailure {
    /// The detailed core's own watchdog tripped inside a segment.
    Core(RunError),
    /// A warp fast-forward segment detected an effect-free spin.
    Spin { pc: usize, retired: u64, quiet: u64 },
    /// A measured interval's CPI-stack delta did not cover its cycle delta.
    Interval(String),
}

/// The SMARTS interval scheduler: alternates detailed warm-up, a measured
/// detailed interval, and warp fast-forward, one period at a time, against a
/// single live core so microarchitectural state carries across segments
/// (caches and predictors stay warm through the functional gaps — slightly
/// stale, which is the documented bias the warm-up re-converges).
fn run_sampled<C: SampledCore>(
    core: &mut C,
    prog: &DecodedProgram,
    image: &mut MemImage,
    arch: &mut ArchState,
    opts: &RunOptions,
    window: u64,
) -> Result<SampledStats, SampledFailure> {
    let interval = opts.sample_interval.max(1);
    let warmup = opts.sample_warmup;
    let period = opts.sample_period.max(interval.saturating_add(warmup));
    let max_insts = opts.max_insts;
    let mut warp_retired: u64 = 0;
    let mut quiet: u64 = 0; // effect-free retirement counter, carried across warp segments
    let mut samples: Vec<(u64, u64)> = Vec::new(); // (insts, cycles) per measured interval
    loop {
        let total = warp_retired + core.core_stats().retired;
        if total >= max_insts || arch.halted() {
            break;
        }
        // Detailed warm-up: timed (its cycles land in the core stats) but
        // not sampled, so the estimator never sees post-gap cold state.
        let warm = warmup.min(max_insts - total);
        if warm > 0 {
            let target = core.core_stats().retired + warm;
            core.run_segment(prog, image, arch, target)
                .map_err(SampledFailure::Core)?;
        }
        let total = warp_retired + core.core_stats().retired;
        if total >= max_insts || arch.halted() {
            break;
        }
        // Measured interval: this segment's cycle/retire delta is one sample.
        let before = *core.core_stats();
        let meas = interval.min(max_insts - total);
        core.run_segment(prog, image, arch, before.retired + meas)
            .map_err(SampledFailure::Core)?;
        let after = core.core_stats();
        let d_insts = after.retired - before.retired;
        let d_cycles = after.cycles - before.cycles;
        // Per-interval CPI-stack conservation: segment boundaries land after
        // each core's tail/commit attribution, so the stack delta must cover
        // the cycle delta exactly — the same invariant the whole-run check
        // pins, enforced per sample.
        let d_stack = after.stack.total() - before.stack.total();
        if d_stack != d_cycles {
            return Err(SampledFailure::Interval(format!(
                "measured interval {} attributed {d_stack} cycles in the stack but ran {d_cycles}",
                samples.len()
            )));
        }
        if d_insts > 0 {
            samples.push((d_insts, d_cycles));
        }
        let total = warp_retired + core.core_stats().retired;
        if total >= max_insts || arch.halted() {
            break;
        }
        // Warp fast-forward to the end of the period (functional only; no
        // cycles pass, so the core's own cycle-based watchdog is blind here
        // and the effect-free retirement window covers livelocks instead).
        let ff = (period - warmup - interval).min(max_insts - total);
        if ff > 0 {
            let (r, trip) = arch.run_decoded_watched(prog, image, ff, window, &mut quiet);
            warp_retired += r;
            if let Some(pc) = trip {
                return Err(SampledFailure::Spin {
                    pc,
                    retired: warp_retired + core.core_stats().retired,
                    quiet,
                });
            }
        }
    }
    let measured_retired: u64 = samples.iter().map(|s| s.0).sum();
    let measured_cycles: u64 = samples.iter().map(|s| s.1).sum();
    let n = samples.len() as u64;
    let cpi = if measured_retired > 0 {
        measured_cycles as f64 / measured_retired as f64
    } else {
        0.0
    };
    let ci95 = if n >= 2 {
        let xs = samples.iter().map(|&(i, c)| c as f64 / i as f64);
        let mean = xs.clone().sum::<f64>() / n as f64;
        let var = xs.map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        1.96 * (var / n as f64).sqrt()
    } else {
        0.0
    };
    Ok(SampledStats {
        intervals: n,
        interval_insts: interval,
        warmup_insts: warmup,
        period_insts: period,
        total_retired: warp_retired + core.core_stats().retired,
        measured_retired,
        measured_cycles,
        cpi,
        ci95,
    })
}

/// Runs one core model through the sampled scheduler and folds its failure
/// modes into [`SimError`]s carrying the workload/config context.
fn sampled_arm<C: SampledCore>(
    mut core: C,
    decoded: &DecodedProgram,
    image: &mut MemImage,
    arch: &mut ArchState,
    opts: &RunOptions,
    window: u64,
    ctx: (&str, &str),
) -> Result<(CoreStats, MemStats, Result<(), String>, SampledStats), SimError> {
    let sampled = run_sampled(&mut core, decoded, image, arch, opts, window).map_err(|e| {
        match e {
            SampledFailure::Core(e) => SimError::from_run_error(e, ctx.0, ctx.1),
            SampledFailure::Spin { pc, retired, quiet } => {
                warp_spin_error(ctx, pc, retired, quiet, window)
            }
            SampledFailure::Interval(detail) => SimError::InvariantViolation {
                workload: ctx.0.to_string(),
                config: ctx.1.to_string(),
                invariant: "interval-cpi-stack".to_string(),
                detail,
            },
        }
    })?;
    let stats = *core.core_stats();
    let (mem, check) = core.finish();
    Ok((stats, mem, check, sampled))
}

/// Builds and runs a registry kernel (convenience wrapper).
///
/// The effective instruction cap is the *minimum* of the scale's own cap
/// ([`Scale::max_insts`]) and [`RunOptions::max_insts`], so
/// `RunOptions::default()` reproduces the historical behaviour exactly.
///
/// # Errors
///
/// Same contract as [`run_workload`]; registry kernels terminate and their
/// configurations are valid, so callers that only use paper kernels and
/// [`SimConfig`] constructors typically `.expect(...)` the result.
pub fn run_kernel(
    kernel: Kernel,
    scale: Scale,
    config: &SimConfig,
    opts: &RunOptions,
) -> Result<RunReport, SimError> {
    let w = kernel.build(scale);
    let effective = RunOptions {
        max_insts: scale.max_insts().min(opts.max_insts),
        ..*opts
    };
    run_workload(&w, config, &effective)
}

/// Assembles the energy-model event counts from simulator statistics.
pub fn energy_input(core: &CoreStats, mem: &MemStats, kind: CoreKind) -> EnergyInput {
    EnergyInput {
        cycles: core.cycles,
        retired: core.retired,
        issued_uops: core.issued_uops,
        svr_lanes: core.svr.lanes,
        l1_accesses: mem.l1d_hits
            + mem.l1d_misses
            + mem.stride.issued
            + mem.imp.issued
            + core.svr.lane_loads
            + mem.l1i_hits
            + mem.l1i_misses,
        l2_accesses: mem.l2_hits + mem.l2_misses,
        dram_lines: mem.dram_reads() + mem.writebacks,
        core: kind,
    }
}

/// Harmonic-mean speedup of `new` over `base`, matching reports by IPC
/// ratio per workload (Fig. 1's metric).
///
/// # Panics
///
/// Panics if the slices have different lengths or a base IPC is zero.
pub fn harmonic_mean_speedup(base: &[RunReport], new: &[RunReport]) -> f64 {
    assert_eq!(base.len(), new.len(), "mismatched report sets");
    assert!(!base.is_empty(), "empty report sets");
    let mut denom = 0.0;
    for (b, n) in base.iter().zip(new) {
        assert_eq!(b.workload, n.workload, "reports must align by workload");
        let s = n.ipc() / b.ipc();
        assert!(s.is_finite() && s > 0.0, "bad speedup for {}", b.workload);
        denom += 1.0 / s;
    }
    base.len() as f64 / denom
}

/// Runs `jobs` across `threads` OS threads; results come back in job order.
///
/// # Errors
///
/// If any job fails, the error of the *earliest* failing job (in declaration
/// order, independent of thread interleaving) is returned; the remaining
/// jobs still run to completion first, so a transient failure never leaves
/// detached worker threads behind.
pub fn run_parallel(
    jobs: Vec<(Kernel, Scale, SimConfig)>,
    threads: usize,
) -> Result<Vec<RunReport>, SimError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let n = jobs.len();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<RunReport, SimError>>>> = Mutex::new(vec![None; n]);
    {
        let jobs = &jobs;
        let next = &next;
        let results = &results;
        std::thread::scope(|s| {
            for _ in 0..threads.max(1).min(n.max(1)) {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (kernel, scale, config) = &jobs[i];
                    let report = run_kernel(*kernel, *scale, config, &RunOptions::default());
                    // A worker that panicked while holding the lock poisons
                    // it; the data (one slot per job) is still consistent.
                    results
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())[i] = Some(report);
                });
            }
        });
    }
    results
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_workloads::GraphInput;

    use crate::options::{DEFAULT_SAMPLE_INTERVAL, DEFAULT_SAMPLE_PERIOD, DEFAULT_SAMPLE_WARMUP};

    /// Default options: detailed mode, uncapped, config-supplied watchdog.
    const OPTS: RunOptions = RunOptions {
        mode: ExecMode::Detailed,
        max_insts: u64::MAX,
        watchdog: None,
        sample_interval: DEFAULT_SAMPLE_INTERVAL,
        sample_warmup: DEFAULT_SAMPLE_WARMUP,
        sample_period: DEFAULT_SAMPLE_PERIOD,
    };

    #[test]
    fn run_kernel_produces_verified_report() {
        let r = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::inorder(), &OPTS).expect("camel runs");
        assert!(r.verified, "camel must verify");
        assert!(r.cpi() > 0.0);
        assert!(r.nj_per_inst() > 0.0);
        assert_eq!(r.config, "InO");
        assert_eq!(r.workload, "Camel");
    }

    #[test]
    fn svr_report_contains_activity() {
        let r = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::svr(16), &OPTS).expect("camel runs");
        assert!(r.core.svr.prm_rounds > 0);
        assert!(r.svr_accuracy().is_some());
        assert!(r.verified);
    }

    #[test]
    fn harmonic_mean_is_correct() {
        let mk = |w: &str, cycles: u64| RunReport {
            workload: w.into(),
            config: "x".into(),
            core: CoreStats {
                cycles,
                retired: 1000,
                ..CoreStats::default()
            },
            mem: MemStats::default(),
            energy: EnergyBreakdown::default(),
            verified: true,
            sampled: None,
        };
        let base = vec![mk("a", 4000), mk("b", 4000)];
        let new = vec![mk("a", 2000), mk("b", 1000)]; // speedups 2 and 4
        let h = harmonic_mean_speedup(&base, &new);
        assert!((h - 2.0 / (1.0 / 2.0 + 1.0 / 4.0)).abs() < 1e-12);
    }

    #[test]
    fn energy_input_accounting() {
        use svr_core::SvrActivity;
        let core = CoreStats {
            cycles: 1000,
            retired: 100,
            issued_uops: 300,
            svr: SvrActivity {
                lanes: 200,
                lane_loads: 150,
                ..SvrActivity::default()
            },
            ..CoreStats::default()
        };
        let mem = MemStats {
            l1d_hits: 40,
            l1d_misses: 10,
            l1i_hits: 5,
            l2_hits: 6,
            l2_misses: 4,
            dram_demand_data: 4,
            writebacks: 2,
            ..MemStats::default()
        };
        let input = energy_input(&core, &mem, svr_energy::CoreKind::InOrder);
        assert_eq!(input.issued_uops, 300);
        assert_eq!(input.svr_lanes, 200);
        assert_eq!(input.l1_accesses, 40 + 10 + 150 + 5);
        assert_eq!(input.l2_accesses, 10);
        assert_eq!(input.dram_lines, 4 + 2);
    }

    #[test]
    fn imp_config_actually_prefetches() {
        let r = run_kernel(Kernel::NasIs, Scale::Tiny, &SimConfig::imp(), &OPTS).expect("IS runs");
        assert!(r.mem.imp.issued > 0, "IMP should fire on IS");
        let r2 = run_kernel(Kernel::NasIs, Scale::Tiny, &SimConfig::inorder(), &OPTS).expect("IS runs");
        assert_eq!(r2.mem.imp.issued, 0);
    }

    #[test]
    fn degenerate_imp_config_is_rejected() {
        let mut cfg = SimConfig::imp();
        cfg.mem.imp = None; // representable, but silently equals plain InO
        let err = run_kernel(Kernel::Camel, Scale::Tiny, &cfg, &OPTS).expect_err("must be rejected");
        assert!(err.to_string().starts_with("invalid SimConfig"), "{err}");
    }

    #[test]
    fn imp_prefetcher_under_wrong_core_is_rejected() {
        let mut cfg = SimConfig::svr(16);
        cfg.mem.imp = Some(svr_mem::prefetch::ImpConfig::default());
        let err = run_kernel(Kernel::Camel, Scale::Tiny, &cfg, &OPTS).expect_err("must be rejected");
        assert!(err.to_string().starts_with("invalid SimConfig"), "{err}");
    }

    #[test]
    fn run_workload_surfaces_config_errors_with_context() {
        let mut cfg = SimConfig::imp();
        cfg.mem.imp = None;
        let w = Kernel::Camel.build(Scale::Tiny);
        let err = run_workload(&w, &cfg, &RunOptions::detailed(1000)).expect_err("degenerate IMP must be rejected");
        assert_eq!(err.kind_name(), "config");
        assert_eq!(err.workload(), Some("Camel"));
        assert_eq!(err.config(), "IMP");
        assert!(
            err.to_string().starts_with("invalid SimConfig"),
            "{err}"
        );
    }

    #[test]
    fn watchdog_errors_carry_run_context() {
        // A pathologically small cycle budget trips on a healthy kernel,
        // proving the core error is wrapped with workload/config context.
        let mut cfg = SimConfig::inorder();
        cfg.inorder.watchdog.cycles_per_inst = 0; // budget = 0 would disable;
        cfg.inorder.watchdog.progress_window = 1; // ...window of 1 must trip.
        let err = run_kernel(Kernel::Camel, Scale::Tiny, &cfg, &OPTS)
            .expect_err("a 1-cycle progress window cannot be met");
        assert_eq!(err.workload(), Some("Camel"));
        assert_eq!(err.config(), "InO");
        assert!(
            matches!(
                err,
                SimError::NoForwardProgress { .. } | SimError::CycleBudgetExceeded { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn traced_run_report_is_bit_identical_to_untraced() {
        for cfg in [SimConfig::inorder(), SimConfig::ooo(), SimConfig::svr(16)] {
            let w = Kernel::Camel.build(Scale::Tiny);
            let base = run_workload(&w, &cfg, &RunOptions::detailed(100_000)).expect("valid config");
            let mut ring = svr_trace::RingSink::new(1 << 16);
            let traced =
                run_workload_traced(&w, &cfg, &RunOptions::detailed(100_000), &mut ring).expect("valid config");
            assert_eq!(base, traced, "tracing changed the run under {}", cfg.label());
            assert!(ring.total() > 0, "no events under {}", cfg.label());
        }
    }

    #[test]
    fn warp_mode_verifies_with_zero_timing() {
        let warp = run_kernel(
            Kernel::Camel,
            Scale::Tiny,
            &SimConfig::inorder(),
            &RunOptions::default().with_mode(ExecMode::Warp),
        )
        .expect("camel runs in warp mode");
        assert!(warp.verified, "warp run must still pass the workload check");
        assert_eq!(warp.core.cycles, 0, "warp mode models no time");
        assert_eq!(warp.mem, MemStats::default(), "warp mode touches no hierarchy");
        assert!(warp.core.retired > 0);
        let detailed =
            run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::inorder(), &OPTS).expect("camel");
        assert_eq!(
            warp.core.retired, detailed.core.retired,
            "both modes retire the same instruction stream"
        );
    }

    #[test]
    fn warp_mode_ignores_core_choice() {
        let w = Kernel::Camel.build(Scale::Tiny);
        let opts = RunOptions::warp(100_000);
        let a = run_workload(&w, &SimConfig::inorder(), &opts).expect("warp InO");
        let b = run_workload(&w, &SimConfig::ooo(), &opts).expect("warp OoO");
        assert_eq!(a.core, b.core, "warp bypasses the core models");
        assert_eq!(a.mem, b.mem);
    }

    #[test]
    fn options_watchdog_override_applies() {
        use svr_core::WatchdogConfig;
        let tight = WatchdogConfig {
            cycles_per_inst: 0,
            progress_window: 1,
        };
        let opts = RunOptions::default().with_watchdog(tight);
        let err = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::inorder(), &opts)
            .expect_err("a 1-cycle progress window cannot be met");
        assert!(
            matches!(
                err,
                SimError::NoForwardProgress { .. } | SimError::CycleBudgetExceeded { .. }
            ),
            "{err}"
        );
        // Warp mode honours the watchdog too, but counts the progress
        // window in consecutive effect-free retirements (it has no cycles):
        // an effect-free spin trips the default window, and disabling the
        // watchdog via the override lets the same spin run to its cap.
        let spin = Kernel::DiagSpin.build(Scale::Tiny);
        let err = run_workload(&spin, &SimConfig::inorder(), &RunOptions::warp(200_000))
            .expect_err("an effect-free spin must trip the warp watchdog");
        assert!(matches!(err, SimError::NoForwardProgress { .. }), "{err}");
        let off = RunOptions::warp(200_000).with_watchdog(WatchdogConfig::off());
        let ok = run_workload(&spin, &SimConfig::inorder(), &off)
            .expect("a disabled watchdog lets the spin run to its cap");
        assert_eq!(ok.core.retired, 200_000);
    }

    #[test]
    fn sampled_mode_reports_estimate_and_ci() {
        let opts = RunOptions::sampled(u64::MAX).with_sampling(500, 500, 5_000);
        for cfg in [SimConfig::inorder(), SimConfig::ooo(), SimConfig::svr(16)] {
            let r = run_kernel(Kernel::Camel, Scale::Tiny, &cfg, &opts).expect("camel samples");
            let s = r.sampled.expect("sampled runs carry the estimator block");
            assert!(s.intervals >= 2, "{}: {} intervals", cfg.label(), s.intervals);
            assert!(s.cpi > 0.0);
            assert!(s.ci95 >= 0.0);
            assert!(s.measured_retired <= s.total_retired);
            assert_eq!(r.cpi(), s.cpi, "report CPI switches to the estimate");
            assert!((r.ipc() - 1.0 / s.cpi).abs() < 1e-12);
            assert!(r.verified, "functional execution is exact, so checks pass");
            // The instruction stream is the same in every mode.
            let detailed =
                run_kernel(Kernel::Camel, Scale::Tiny, &cfg, &OPTS).expect("camel runs");
            assert_eq!(s.total_retired, detailed.core.retired);
        }
    }

    #[test]
    fn sampled_mode_with_full_coverage_matches_detailed_exactly() {
        // period == interval and no warm-up: every instruction is measured,
        // so the "estimate" degenerates to the exact detailed run.
        let opts = RunOptions::sampled(u64::MAX).with_sampling(2_048, 0, 2_048);
        let detailed = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::svr(16), &OPTS)
            .expect("camel runs");
        let sampled = run_kernel(Kernel::Camel, Scale::Tiny, &SimConfig::svr(16), &opts)
            .expect("camel samples");
        let s = sampled.sampled.expect("estimator block");
        assert_eq!(s.measured_retired, detailed.core.retired);
        assert_eq!(s.measured_cycles, detailed.core.cycles);
        // Segment boundaries fall on instruction boundaries, so cycle totals
        // and memory traffic are exact; only stack *attribution* may shift
        // (the in-order drain charge lands in the tail bucket per segment).
        assert_eq!(sampled.core.cycles, detailed.core.cycles, "segmentation is exact");
        assert_eq!(sampled.mem, detailed.mem);
    }

    #[test]
    fn parallel_matches_serial() {
        let jobs = vec![
            (Kernel::Camel, Scale::Tiny, SimConfig::inorder()),
            (Kernel::Pr(GraphInput::Ur), Scale::Tiny, SimConfig::svr(16)),
        ];
        let par = run_parallel(jobs.clone(), 2).expect("all jobs valid");
        let ser: Vec<RunReport> = jobs
            .iter()
            .map(|(k, s, c)| run_kernel(*k, *s, c, &OPTS).expect("job valid"))
            .collect();
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.core.cycles, b.core.cycles, "determinism violated");
        }
    }
}
