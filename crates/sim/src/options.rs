//! Execution-mode selection and per-run options.
//!
//! Every entry point that simulates a workload — [`crate::run_workload`],
//! [`crate::run_workload_traced`], [`crate::run_kernel`], and
//! [`crate::Sweep`] — takes a [`RunOptions`] describing *how* to execute:
//! which [`ExecMode`], the instruction cap, and an optional watchdog
//! override. `RunOptions::default()` reproduces the historical behaviour
//! exactly (detailed timing, uncapped, config-supplied watchdog).

use svr_core::WatchdogConfig;

/// How a workload is executed.
///
/// * [`ExecMode::Detailed`] is the cycle-accurate simulator: the chosen core
///   model ([`crate::CoreChoice`]), the full memory hierarchy, prefetchers,
///   and CPI-stack accounting. Reports are bit-identical to the pre-`ExecMode`
///   runner.
/// * [`ExecMode::Warp`] is a pure-functional fast-forward: the pre-decoded
///   program ([`svr_isa::DecodedProgram`]) runs directly against the memory
///   image with **no timing model at all** — no caches, no predictors, no
///   cycles. Final architectural state (registers, flags, PC, halt, memory)
///   is identical to a detailed run of the same workload; every timing
///   statistic in the report is zero. Use it to fast-forward to a region of
///   interest, to verify workloads, or to generate reference state cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Cycle-accurate simulation on the configured core model.
    #[default]
    Detailed,
    /// Functional fast-forward: architectural state only, zero timing.
    Warp,
}

impl ExecMode {
    /// Stable lower-case name (`"detailed"` / `"warp"`), used by CLI flags
    /// and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Detailed => "detailed",
            ExecMode::Warp => "warp",
        }
    }

    /// Parses [`ExecMode::name`] output; `None` for anything else.
    pub fn from_name(s: &str) -> Option<ExecMode> {
        match s {
            "detailed" => Some(ExecMode::Detailed),
            "warp" => Some(ExecMode::Warp),
            _ => None,
        }
    }
}

/// Options governing one simulated run.
///
/// Construct with [`RunOptions::detailed`] / [`RunOptions::warp`] for the
/// common cases, or start from `RunOptions::default()` (detailed, uncapped)
/// and refine with the `with_*` builders.
///
/// # Examples
///
/// ```
/// use svr_sim::{ExecMode, RunOptions};
///
/// let opts = RunOptions::warp(10_000);
/// assert_eq!(opts.mode, ExecMode::Warp);
/// assert_eq!(opts.max_insts, 10_000);
///
/// let dflt = RunOptions::default();
/// assert_eq!(dflt.mode, ExecMode::Detailed);
/// assert_eq!(dflt.max_insts, u64::MAX);
/// assert!(dflt.watchdog.is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Execution mode (default: [`ExecMode::Detailed`]).
    pub mode: ExecMode,
    /// Retired-instruction cap (default: `u64::MAX`, i.e. run to `halt`).
    /// Entry points that also receive a [`svr_workloads::Scale`] cap the run
    /// at the *minimum* of the two limits.
    pub max_insts: u64,
    /// When `Some`, overrides the watchdog of whichever core the
    /// [`crate::SimConfig`] selects. `None` keeps the config's own
    /// thresholds. Ignored in warp mode (a functional run has no cycles for
    /// a watchdog to count; termination is bounded by `max_insts`).
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            mode: ExecMode::Detailed,
            max_insts: u64::MAX,
            watchdog: None,
        }
    }
}

impl RunOptions {
    /// Detailed mode capped at `max_insts` retired instructions.
    pub fn detailed(max_insts: u64) -> Self {
        RunOptions {
            max_insts,
            ..RunOptions::default()
        }
    }

    /// Warp mode capped at `max_insts` retired instructions.
    pub fn warp(max_insts: u64) -> Self {
        RunOptions {
            mode: ExecMode::Warp,
            max_insts,
            ..RunOptions::default()
        }
    }

    /// Replaces the execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the instruction cap.
    pub fn with_max_insts(mut self, max_insts: u64) -> Self {
        self.max_insts = max_insts;
        self
    }

    /// Overrides the core watchdog (detailed mode only).
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in [ExecMode::Detailed, ExecMode::Warp] {
            assert_eq!(ExecMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(ExecMode::from_name("Warp"), None);
        assert_eq!(ExecMode::from_name(""), None);
    }

    #[test]
    fn builders_compose() {
        let wd = WatchdogConfig::off();
        let o = RunOptions::default()
            .with_mode(ExecMode::Warp)
            .with_max_insts(42)
            .with_watchdog(wd);
        assert_eq!(o, RunOptions::warp(42).with_watchdog(wd));
        assert_eq!(o.watchdog, Some(wd));
    }
}
