//! Execution-mode selection and per-run options.
//!
//! Every entry point that simulates a workload — [`crate::run_workload`],
//! [`crate::run_workload_traced`], [`crate::run_kernel`], and
//! [`crate::Sweep`] — takes a [`RunOptions`] describing *how* to execute:
//! which [`ExecMode`], the instruction cap, and an optional watchdog
//! override. `RunOptions::default()` reproduces the historical behaviour
//! exactly (detailed timing, uncapped, config-supplied watchdog).

use svr_core::WatchdogConfig;

/// How a workload is executed.
///
/// * [`ExecMode::Detailed`] is the cycle-accurate simulator: the chosen core
///   model ([`crate::CoreChoice`]), the full memory hierarchy, prefetchers,
///   and CPI-stack accounting. Reports are bit-identical to the pre-`ExecMode`
///   runner.
/// * [`ExecMode::Warp`] is a pure-functional fast-forward: the pre-decoded
///   program ([`svr_isa::DecodedProgram`]) runs directly against the memory
///   image with **no timing model at all** — no caches, no predictors, no
///   cycles. Final architectural state (registers, flags, PC, halt, memory)
///   is identical to a detailed run of the same workload; every timing
///   statistic in the report is zero. Use it to fast-forward to a region of
///   interest, to verify workloads, or to generate reference state cheaply.
/// * [`ExecMode::Sampled`] is SMARTS-style systematic sampling: the run is
///   divided into fixed periods of [`RunOptions::sample_period`] retired
///   instructions, each of which runs [`RunOptions::sample_warmup`]
///   instructions on the detailed model (timing recorded but the sample
///   discarded, so microarchitectural state re-converges after the gap),
///   then [`RunOptions::sample_interval`] *measured* detailed instructions,
///   then warp fast-forward for the remainder of the period. CPI is
///   estimated from the measured intervals (ratio of sums) with a 95%
///   confidence interval; see [`crate::SampledStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Cycle-accurate simulation on the configured core model.
    #[default]
    Detailed,
    /// Functional fast-forward: architectural state only, zero timing.
    Warp,
    /// Systematic sampling: short detailed intervals between warp gaps.
    Sampled,
}

impl ExecMode {
    /// Stable lower-case name (`"detailed"` / `"warp"` / `"sampled"`), used
    /// by CLI flags and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Detailed => "detailed",
            ExecMode::Warp => "warp",
            ExecMode::Sampled => "sampled",
        }
    }

    /// Parses [`ExecMode::name`] output; `None` for anything else.
    pub fn from_name(s: &str) -> Option<ExecMode> {
        match s {
            "detailed" => Some(ExecMode::Detailed),
            "warp" => Some(ExecMode::Warp),
            "sampled" => Some(ExecMode::Sampled),
            _ => None,
        }
    }
}

/// Options governing one simulated run.
///
/// Construct with [`RunOptions::detailed`] / [`RunOptions::warp`] for the
/// common cases, or start from `RunOptions::default()` (detailed, uncapped)
/// and refine with the `with_*` builders.
///
/// # Examples
///
/// ```
/// use svr_sim::{ExecMode, RunOptions};
///
/// let opts = RunOptions::warp(10_000);
/// assert_eq!(opts.mode, ExecMode::Warp);
/// assert_eq!(opts.max_insts, 10_000);
///
/// let dflt = RunOptions::default();
/// assert_eq!(dflt.mode, ExecMode::Detailed);
/// assert_eq!(dflt.max_insts, u64::MAX);
/// assert!(dflt.watchdog.is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Execution mode (default: [`ExecMode::Detailed`]).
    pub mode: ExecMode,
    /// Retired-instruction cap (default: `u64::MAX`, i.e. run to `halt`).
    /// Entry points that also receive a [`svr_workloads::Scale`] cap the run
    /// at the *minimum* of the two limits.
    pub max_insts: u64,
    /// When `Some`, overrides the watchdog of whichever core the
    /// [`crate::SimConfig`] selects. `None` keeps the config's own
    /// thresholds. Warp (and the warp gaps of sampled mode) has no cycles
    /// to count, so only `progress_window` applies there, measured in
    /// consecutive effect-free retired instructions instead of quiet cycles.
    pub watchdog: Option<WatchdogConfig>,
    /// Sampled mode: measured detailed instructions per sampling period.
    pub sample_interval: u64,
    /// Sampled mode: detailed warm-up instructions run (and timed, but not
    /// sampled) before each measured interval, re-converging cache/TLB/
    /// predictor timing state after the functional gap.
    pub sample_warmup: u64,
    /// Sampled mode: total retired instructions per period (warm-up +
    /// measured interval + warp fast-forward). Clamped at use to at least
    /// `sample_warmup + sample_interval`.
    pub sample_period: u64,
}

/// Default measured-interval length (instructions) for sampled mode.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 1_000;
/// Default detailed warm-up length (instructions) for sampled mode.
pub const DEFAULT_SAMPLE_WARMUP: u64 = 2_000;
/// Default sampling period (instructions) for sampled mode.
pub const DEFAULT_SAMPLE_PERIOD: u64 = 50_000;

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            mode: ExecMode::Detailed,
            max_insts: u64::MAX,
            watchdog: None,
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
            sample_warmup: DEFAULT_SAMPLE_WARMUP,
            sample_period: DEFAULT_SAMPLE_PERIOD,
        }
    }
}

impl RunOptions {
    /// Detailed mode capped at `max_insts` retired instructions.
    pub fn detailed(max_insts: u64) -> Self {
        RunOptions {
            max_insts,
            ..RunOptions::default()
        }
    }

    /// Warp mode capped at `max_insts` retired instructions.
    pub fn warp(max_insts: u64) -> Self {
        RunOptions {
            mode: ExecMode::Warp,
            max_insts,
            ..RunOptions::default()
        }
    }

    /// Sampled mode capped at `max_insts` retired instructions, with the
    /// default interval/warm-up/period.
    pub fn sampled(max_insts: u64) -> Self {
        RunOptions {
            mode: ExecMode::Sampled,
            max_insts,
            ..RunOptions::default()
        }
    }

    /// Replaces the execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the instruction cap.
    pub fn with_max_insts(mut self, max_insts: u64) -> Self {
        self.max_insts = max_insts;
        self
    }

    /// Overrides the core watchdog.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Replaces the sampled-mode parameters (measured interval, warm-up,
    /// period — all in retired instructions).
    pub fn with_sampling(mut self, interval: u64, warmup: u64, period: u64) -> Self {
        self.sample_interval = interval;
        self.sample_warmup = warmup;
        self.sample_period = period;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in [ExecMode::Detailed, ExecMode::Warp, ExecMode::Sampled] {
            assert_eq!(ExecMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(ExecMode::from_name("Warp"), None);
        assert_eq!(ExecMode::from_name(""), None);
    }

    #[test]
    fn builders_compose() {
        let wd = WatchdogConfig::off();
        let o = RunOptions::default()
            .with_mode(ExecMode::Warp)
            .with_max_insts(42)
            .with_watchdog(wd);
        assert_eq!(o, RunOptions::warp(42).with_watchdog(wd));
        assert_eq!(o.watchdog, Some(wd));
    }

    #[test]
    fn sampled_builder_sets_mode_and_params() {
        let o = RunOptions::sampled(1_000_000).with_sampling(500, 1_000, 10_000);
        assert_eq!(o.mode, ExecMode::Sampled);
        assert_eq!(o.max_insts, 1_000_000);
        assert_eq!(
            (o.sample_interval, o.sample_warmup, o.sample_period),
            (500, 1_000, 10_000)
        );
        let d = RunOptions::default();
        assert_eq!(
            (d.sample_interval, d.sample_warmup, d.sample_period),
            (
                DEFAULT_SAMPLE_INTERVAL,
                DEFAULT_SAMPLE_WARMUP,
                DEFAULT_SAMPLE_PERIOD
            )
        );
    }
}
