//! Guest-level profiler: `perf report` for the *simulated* program.
//!
//! [`Profiler`] is a [`TraceSink`] that folds the event stream of one run
//! into per-guest-PC tables: stall cycles by CPI-stack bucket (charged to
//! the *causing* instruction — the producer load for data stalls, the branch
//! for redirects), demand-miss counts by service level, TLB walks, the full
//! prefetch-efficacy taxonomy per triggering PC and source, and SVR episode
//! attribution (PRM rounds / chains per HSLR load).
//!
//! The tables are not approximate. Every counter mirrors an aggregate
//! statistic the simulator already maintains, and [`Profiler::check_against`]
//! asserts the conservation laws after a run:
//!
//! * `base_cycles + Σ_pc Σ_bucket stalls == CpiStack::total() == cycles`
//!   (per bucket too),
//! * `Σ_pc l1d_misses == MemStats::l1d_misses` (and `l2_hits`, `l2_misses`,
//!   `l1i_misses`, `tlb_walks`),
//! * per prefetch source, every [`PfCounters`] field equals the sum of the
//!   per-PC breakdown,
//! * `Σ_pc prm_rounds == SvrActivity::prm_rounds`.
//!
//! Profiling is zero-cost when off: the profiler is just another sink, so an
//! unprofiled run uses [`svr_trace::NullSink`] and monomorphizes every
//! emission site away. Attaching a profiler must not change timing — the
//! `svr_profile` binary asserts bit-identical [`RunReport`]s with and
//! without one.
//!
//! The same module hosts the golden-metrics comparator ([`golden_diff`])
//! used by the regression gate: integers compare exactly, floats to a
//! relative tolerance, and any structural drift (missing/extra keys, type
//! changes) is reported with its JSON path.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::runner::RunReport;
use svr_isa::SymbolMap;
use svr_mem::PfCounters;
use svr_trace::{MemKind, MemLevel, PfEvent, StallTag, TraceEvent, TraceSink};

/// Number of CPI-stack buckets (see [`StallTag::ALL`]).
pub const NUM_BUCKETS: usize = StallTag::ALL.len();

/// Number of hardware prefetch sources, indexed by [`pf_source_index`].
pub const NUM_PF_SOURCES: usize = 3;

/// Stable names for the prefetch-source axis of [`PcProfile::pf`].
pub const PF_SOURCE_NAMES: [&str; NUM_PF_SOURCES] = ["stride", "imp", "svr"];

/// Maps a prefetch [`MemKind`] onto the source axis of [`PcProfile::pf`];
/// `None` for demand/ifetch kinds.
pub fn pf_source_index(kind: MemKind) -> Option<usize> {
    match kind {
        MemKind::StridePf => Some(0),
        MemKind::ImpPf => Some(1),
        MemKind::SvrPf => Some(2),
        MemKind::DemandLoad | MemKind::DemandStore | MemKind::InstFetch => None,
    }
}

/// Everything the profiler attributes to one guest PC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcProfile {
    /// Stall cycles charged to this PC, indexed by [`StallTag::index`].
    /// Baseline issue cycles are global ([`Profiler::base_cycles`]), not
    /// per-PC: they belong to the issuing instruction, not to a culprit.
    pub stalls: [u64; NUM_BUCKETS],
    /// Demand data accesses issued by this PC (hits + misses).
    pub accesses: u64,
    /// Demand data accesses that missed the L1-D (including coalesced
    /// misses that piggybacked on an in-flight line).
    pub l1d_misses: u64,
    /// Demand data misses served by the L2.
    pub l2_hits: u64,
    /// Demand data misses served by DRAM.
    pub dram: u64,
    /// Instruction fetches of this PC that missed the L1-I.
    pub ifetch_misses: u64,
    /// TLB walks (data- or instruction-side) triggered by this PC.
    pub tlb_walks: u64,
    /// Prefetch-efficacy taxonomy for prefetches *triggered by* this PC
    /// (the trained load, not the prefetched address), per source
    /// ([`PF_SOURCE_NAMES`] order).
    pub pf: [PfCounters; NUM_PF_SOURCES],
    /// SVR pseudo-runahead rounds entered with this PC as the HSLR.
    pub prm_rounds: u64,
    /// SVR scalar-vector chains generated for this load.
    pub svr_chains: u64,
    /// Total vector lanes across those chains.
    pub svr_lanes: u64,
}

impl PcProfile {
    /// Stall cycles in one bucket.
    pub fn stall(&self, tag: StallTag) -> u64 {
        self.stalls[tag.index()]
    }

    /// Memory-stall cycles (L1 + L2 + DRAM buckets).
    pub fn mem_stall(&self) -> u64 {
        self.stall(StallTag::MemL1) + self.stall(StallTag::MemL2) + self.stall(StallTag::MemDram)
    }

    /// All stall cycles charged to this PC.
    pub fn total_stall(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Prefetches this PC triggered that delivered value (used + late),
    /// summed over sources.
    pub fn pf_useful(&self) -> u64 {
        self.pf.iter().map(|c| c.used + c.late).sum()
    }

    /// Prefetches this PC triggered, summed over sources.
    pub fn pf_issued(&self) -> u64 {
        self.pf.iter().map(|c| c.issued).sum()
    }
}

/// A [`TraceSink`] that builds per-PC attribution tables from one run's
/// event stream. See the module docs for the exact semantics and the
/// conservation laws [`Profiler::check_against`] enforces.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    rows: BTreeMap<u64, PcProfile>,
    base_cycles: u64,
    events: u64,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    fn row_mut(&mut self, pc: u64) -> &mut PcProfile {
        self.rows.entry(pc).or_default()
    }

    /// The profile row for one guest PC, if anything was attributed to it.
    pub fn row(&self, pc: u64) -> Option<&PcProfile> {
        self.rows.get(&pc)
    }

    /// All rows in ascending PC order.
    pub fn rows(&self) -> impl Iterator<Item = (u64, &PcProfile)> {
        self.rows.iter().map(|(&pc, r)| (pc, r))
    }

    /// Baseline issue cycles (the CPI-stack `base` component; global, not
    /// attributed to a culprit PC).
    pub fn base_cycles(&self) -> u64 {
        self.base_cycles
    }

    /// Total events consumed (all kinds, including ones the profiler only
    /// counts).
    pub fn total_events(&self) -> u64 {
        self.events
    }

    /// Rows ranked by total stall cycles (descending), ties broken by PC.
    pub fn hot_sites(&self) -> Vec<(u64, &PcProfile)> {
        let mut v: Vec<(u64, &PcProfile)> = self.rows().collect();
        v.sort_by(|a, b| b.1.total_stall().cmp(&a.1.total_stall()).then(a.0.cmp(&b.0)));
        v
    }

    /// Asserts the conservation laws between the per-PC tables and the
    /// aggregate statistics of the same run.
    ///
    /// # Errors
    ///
    /// Returns every violated law, one per line — a non-empty result means
    /// the profiler and the simulator disagree about where cycles or misses
    /// went, i.e. an attribution bug.
    pub fn check_against(&self, report: &RunReport) -> Result<(), String> {
        let mut errs: Vec<String> = Vec::new();
        let mut check = |name: &str, got: u64, want: u64| {
            if got != want {
                errs.push(format!("{name}: per-PC sum {got} != aggregate {want}"));
            }
        };

        // CPI stack: per-bucket and total conservation.
        let mut stall_sum = [0u64; NUM_BUCKETS];
        for r in self.rows.values() {
            for (acc, s) in stall_sum.iter_mut().zip(r.stalls.iter()) {
                *acc += s;
            }
        }
        let stack = &report.core.stack;
        let per_bucket = [
            stack.base,
            stack.branch,
            stack.fetch,
            stack.mem_l1,
            stack.mem_l2,
            stack.mem_dram,
            stack.structural,
        ];
        for (tag, want) in StallTag::ALL.iter().zip(per_bucket) {
            let mut got = stall_sum[tag.index()];
            if *tag == StallTag::Base {
                got += self.base_cycles;
            }
            check(&format!("stack.{}", tag.name()), got, want);
        }
        check(
            "stack.total",
            self.base_cycles + stall_sum.iter().sum::<u64>(),
            stack.total(),
        );

        // Memory-side sums.
        let mem = &report.mem;
        let sum = |f: fn(&PcProfile) -> u64| self.rows.values().map(f).sum::<u64>();
        check("accesses", sum(|r| r.accesses), mem.l1d_hits + mem.l1d_misses);
        check("l1d_misses", sum(|r| r.l1d_misses), mem.l1d_misses);
        check("l2_hits", sum(|r| r.l2_hits), mem.l2_hits);
        check("l2_misses", sum(|r| r.dram), mem.l2_misses);
        check("l1i_misses", sum(|r| r.ifetch_misses), mem.l1i_misses);
        check("tlb_walks", sum(|r| r.tlb_walks), mem.tlb_walks);

        // Prefetch taxonomy, per source and field.
        for (i, name) in PF_SOURCE_NAMES.iter().enumerate() {
            let agg = [&mem.stride, &mem.imp, &mem.svr][i];
            type PfField = (&'static str, fn(&PfCounters) -> u64);
            let fields: [PfField; 6] = [
                ("issued", |c| c.issued),
                ("used", |c| c.used),
                ("late", |c| c.late),
                ("evicted_unused", |c| c.evicted_unused),
                ("resident_at_end", |c| c.resident_at_end),
                ("pollution", |c| c.pollution),
            ];
            for (fname, get) in fields {
                check(
                    &format!("pf.{name}.{fname}"),
                    self.rows.values().map(|r| get(&r.pf[i])).sum(),
                    get(agg),
                );
            }
        }

        // SVR episode attribution.
        check("prm_rounds", sum(|r| r.prm_rounds), report.core.svr.prm_rounds);

        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs.join("\n"))
        }
    }

    /// Renders the top-`top` hot sites as an aligned text table, PCs
    /// resolved through `symbols` (`name+offset`, or `pc N` when unmapped).
    pub fn render_table(&self, symbols: &SymbolMap, report: &RunReport, top: usize) -> String {
        let cycles = report.core.cycles.max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4}  {:<18} {:>6} {:>7}  {:>9} {:>9} {:>8} {:>6} {:>5}  {:>9} {:>7}  {:>6} {:>6}\n",
            "rank",
            "site",
            "pc",
            "cyc%",
            "mem-stall",
            "br-stall",
            "l1d-miss",
            "dram",
            "tlb",
            "pf-issued",
            "pf-used",
            "prm",
            "chains",
        ));
        for (rank, (pc, r)) in self.hot_sites().into_iter().take(top).enumerate() {
            out.push_str(&format!(
                "{:>4}  {:<18} {:>6} {:>6.2}%  {:>9} {:>9} {:>8} {:>6} {:>5}  {:>9} {:>7}  {:>6} {:>6}\n",
                rank + 1,
                symbols.symbolize(pc as usize),
                pc,
                r.total_stall() as f64 / cycles as f64 * 100.0,
                r.mem_stall(),
                r.stall(StallTag::Branch),
                r.l1d_misses,
                r.dram,
                r.tlb_walks,
                r.pf_issued(),
                r.pf_useful(),
                r.prm_rounds,
                r.svr_chains,
            ));
        }
        out
    }

    /// Serializes the whole profile (plus headline run metrics) as the
    /// `results/profile/<workload>_<config>.json` artifact. Sites are in
    /// ascending PC order; all counters are exact integers, so the output
    /// is deterministic and golden-diffable.
    pub fn to_json(&self, symbols: &SymbolMap, report: &RunReport) -> Json {
        let sites: Vec<Json> = self
            .rows()
            .map(|(pc, r)| {
                let mut m = vec![
                    ("pc".to_string(), Json::u64(pc)),
                    ("site".to_string(), Json::str(symbols.symbolize(pc as usize))),
                ];
                let stalls = StallTag::ALL
                    .iter()
                    .map(|t| (t.name().to_string(), Json::u64(r.stall(*t))))
                    .collect();
                m.push(("stalls".to_string(), Json::Obj(stalls)));
                for (k, v) in [
                    ("accesses", r.accesses),
                    ("l1d_misses", r.l1d_misses),
                    ("l2_hits", r.l2_hits),
                    ("dram", r.dram),
                    ("ifetch_misses", r.ifetch_misses),
                    ("tlb_walks", r.tlb_walks),
                    ("prm_rounds", r.prm_rounds),
                    ("svr_chains", r.svr_chains),
                    ("svr_lanes", r.svr_lanes),
                ] {
                    m.push((k.to_string(), Json::u64(v)));
                }
                let pf = PF_SOURCE_NAMES
                    .iter()
                    .zip(r.pf.iter())
                    .filter(|(_, c)| **c != PfCounters::default())
                    .map(|(name, c)| {
                        (
                            name.to_string(),
                            Json::Obj(vec![
                                ("issued".to_string(), Json::u64(c.issued)),
                                ("used".to_string(), Json::u64(c.used)),
                                ("late".to_string(), Json::u64(c.late)),
                                ("evicted_unused".to_string(), Json::u64(c.evicted_unused)),
                                ("resident_at_end".to_string(), Json::u64(c.resident_at_end)),
                                ("pollution".to_string(), Json::u64(c.pollution)),
                            ]),
                        )
                    })
                    .collect();
                m.push(("pf".to_string(), Json::Obj(pf)));
                Json::Obj(m)
            })
            .collect();
        Json::Obj(vec![
            ("workload".to_string(), Json::str(report.workload.clone())),
            ("config".to_string(), Json::str(report.config.clone())),
            ("cycles".to_string(), Json::u64(report.core.cycles)),
            ("retired".to_string(), Json::u64(report.core.retired)),
            ("base_cycles".to_string(), Json::u64(self.base_cycles)),
            ("events".to_string(), Json::u64(self.events)),
            ("sites".to_string(), Json::Arr(sites)),
        ])
    }
}

impl TraceSink for Profiler {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match *ev {
            TraceEvent::Attrib {
                bucket, base, stall, pc, ..
            } => {
                self.base_cycles += u64::from(base);
                if stall > 0 {
                    self.row_mut(pc).stalls[bucket.index()] += stall;
                }
            }
            TraceEvent::Mem {
                level, kind, pc, miss, ..
            } => match kind {
                MemKind::DemandLoad | MemKind::DemandStore => {
                    let r = self.row_mut(pc);
                    r.accesses += 1;
                    if miss {
                        r.l1d_misses += 1;
                        match level {
                            MemLevel::L2 => r.l2_hits += 1,
                            MemLevel::Dram => r.dram += 1,
                            // Coalesced onto an in-flight line: an L1 miss
                            // with no service level of its own.
                            MemLevel::L1 => {}
                        }
                    }
                }
                MemKind::InstFetch => {
                    if miss {
                        self.row_mut(pc).ifetch_misses += 1;
                    }
                }
                MemKind::StridePf | MemKind::ImpPf | MemKind::SvrPf => {}
            },
            TraceEvent::TlbWalk { pc, .. } => self.row_mut(pc).tlb_walks += 1,
            TraceEvent::Pf {
                kind, pc, outcome, ..
            } => {
                if let Some(i) = pf_source_index(kind) {
                    let c = &mut self.row_mut(pc).pf[i];
                    match outcome {
                        PfEvent::Issued => c.issued += 1,
                        PfEvent::Used => c.used += 1,
                        PfEvent::Late => c.late += 1,
                        PfEvent::EvictedUnused => c.evicted_unused += 1,
                        PfEvent::Pollution => c.pollution += 1,
                        PfEvent::Resident => c.resident_at_end += 1,
                    }
                }
            }
            TraceEvent::PrmEnter { hslr_pc, .. } => self.row_mut(hslr_pc).prm_rounds += 1,
            TraceEvent::SvrChain { pc, lanes, .. } => {
                let r = self.row_mut(pc);
                r.svr_chains += 1;
                r.svr_lanes += u64::from(lanes);
            }
            TraceEvent::MshrAlloc { .. }
            | TraceEvent::MshrCoalesce { .. }
            | TraceEvent::MshrRetire { .. }
            | TraceEvent::Dram { .. }
            | TraceEvent::PrmExit { .. }
            | TraceEvent::SrfRecycle { .. } => {}
        }
    }
}

/// Compares a metrics JSON artifact against a golden baseline.
///
/// Integers (tokens that parse as `u64`/`i64`) must match exactly; other
/// numbers are floats and must agree to `rel_tol` relative tolerance
/// (`|a-b| <= rel_tol * max(1, |a|, |b|)`). Objects must have identical key
/// sets (order-insensitive), arrays identical lengths. Returns one line per
/// difference, prefixed with the JSON path — empty means "no drift".
pub fn golden_diff(golden: &Json, actual: &Json, rel_tol: f64) -> Vec<String> {
    let mut diffs = Vec::new();
    diff_at("$", golden, actual, rel_tol, &mut diffs);
    diffs
}

fn diff_at(path: &str, golden: &Json, actual: &Json, rel_tol: f64, out: &mut Vec<String>) {
    match (golden, actual) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(a), Json::Bool(b)) => {
            if a != b {
                out.push(format!("{path}: golden {a} != actual {b}"));
            }
        }
        (Json::Str(a), Json::Str(b)) => {
            if a != b {
                out.push(format!("{path}: golden {a:?} != actual {b:?}"));
            }
        }
        (Json::Num(a), Json::Num(b)) => {
            if a == b {
                return; // identical tokens
            }
            let ints = (a.parse::<u64>().ok().zip(b.parse::<u64>().ok())).is_some()
                || (a.parse::<i64>().ok().zip(b.parse::<i64>().ok())).is_some();
            if ints {
                out.push(format!("{path}: golden {a} != actual {b} (exact integer)"));
                return;
            }
            match (a.parse::<f64>(), b.parse::<f64>()) {
                (Ok(x), Ok(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    // NaN must fail, so test "within" rather than "beyond".
                    let within = (x - y).abs() <= rel_tol * scale;
                    if !within {
                        out.push(format!(
                            "{path}: golden {a} != actual {b} (beyond {rel_tol:e} relative)"
                        ));
                    }
                }
                _ => out.push(format!("{path}: unparseable number ({a:?} vs {b:?})")),
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                out.push(format!(
                    "{path}: golden has {} elements, actual {}",
                    a.len(),
                    b.len()
                ));
                return;
            }
            for (i, (ga, ac)) in a.iter().zip(b).enumerate() {
                diff_at(&format!("{path}[{i}]"), ga, ac, rel_tol, out);
            }
        }
        (Json::Obj(a), Json::Obj(b)) => {
            for (k, ga) in a {
                match b.iter().find(|(bk, _)| bk == k) {
                    Some((_, ac)) => diff_at(&format!("{path}.{k}"), ga, ac, rel_tol, out),
                    None => out.push(format!("{path}.{k}: missing from actual")),
                }
            }
            for (k, _) in b {
                if !a.iter().any(|(ak, _)| ak == k) {
                    out.push(format!("{path}.{k}: not in golden (new key)"));
                }
            }
        }
        _ => out.push(format!(
            "{path}: type mismatch (golden {} vs actual {})",
            type_name(golden),
            type_name(actual)
        )),
    }
}

fn type_name(j: &Json) -> &'static str {
    match j {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::options::RunOptions;
    use crate::runner::{run_workload, run_workload_traced};
    use svr_workloads::{Kernel, Scale};

    fn profile(kernel: Kernel, config: &SimConfig) -> (Profiler, RunReport) {
        let wl = kernel.build(Scale::Tiny);
        let mut prof = Profiler::new();
        let report = run_workload_traced(&wl, config, &RunOptions::detailed(2_000_000), &mut prof).expect("run");
        (prof, report)
    }

    #[test]
    fn per_pc_sums_reconcile_on_every_core_model() {
        for config in [
            SimConfig::inorder(),
            SimConfig::imp(),
            SimConfig::ooo(),
            SimConfig::svr(16),
        ] {
            for kernel in [Kernel::Camel, Kernel::HashJoin(2)] {
                let (prof, report) = profile(kernel, &config);
                prof.check_against(&report).unwrap_or_else(|e| {
                    panic!("{} under {}:\n{e}", kernel.name(), config.label())
                });
                assert!(prof.rows().count() > 0, "profile is empty");
            }
        }
    }

    #[test]
    fn profiled_run_is_bit_identical_to_unprofiled() {
        let wl = Kernel::Camel.build(Scale::Tiny);
        let config = SimConfig::svr(16);
        let plain = run_workload(&wl, &config, &RunOptions::detailed(2_000_000)).expect("plain");
        let mut prof = Profiler::new();
        let profiled = run_workload_traced(&wl, &config, &RunOptions::detailed(2_000_000), &mut prof).expect("profiled");
        assert_eq!(plain, profiled, "attaching a profiler changed the simulation");
    }

    #[test]
    fn svr_rounds_land_on_the_hslr_load() {
        let (prof, report) = profile(Kernel::Camel, &SimConfig::svr(16));
        assert!(report.core.svr.prm_rounds > 0, "SVR never engaged");
        let attributed: u64 = prof.rows().map(|(_, r)| r.prm_rounds).sum();
        assert_eq!(attributed, report.core.svr.prm_rounds);
        // Chains land on the HSLR; the issued SVR prefetches land on the
        // lane loads that triggered them (for Camel, the dependent gather —
        // the head lanes are usually probe-skipped as already resident).
        let chains: u64 = prof.rows().map(|(_, r)| r.svr_chains).sum();
        assert!(chains > 0, "no chains attributed");
        let issued: u64 = prof.rows().map(|(_, r)| r.pf[2].issued).sum();
        assert_eq!(issued, report.mem.svr.issued);
        assert!(issued > 0, "no SVR prefetches attributed to any pc");
    }

    #[test]
    fn hot_sites_rank_by_stall_and_table_symbolizes() {
        let (prof, report) = profile(Kernel::HashJoin(2), &SimConfig::inorder());
        let hot = prof.hot_sites();
        for w in hot.windows(2) {
            assert!(w[0].1.total_stall() >= w[1].1.total_stall());
        }
        let wl = Kernel::HashJoin(2).build(Scale::Tiny);
        let (program, _, _) = wl.instantiate();
        let table = prof.render_table(program.symbols(), &report, 8);
        assert!(table.contains("rank"), "missing header:\n{table}");
        // hashjoin's probe loop is labeled; the hottest sites must resolve
        // through those symbols rather than printing raw `pc N`.
        assert!(
            table.contains("scan") || table.contains("top") || table.contains("next_tuple"),
            "no symbolized site in:\n{table}"
        );
    }

    #[test]
    fn profile_json_is_parseable_and_self_consistent() {
        let (prof, report) = profile(Kernel::Camel, &SimConfig::svr(16));
        let wl = Kernel::Camel.build(Scale::Tiny);
        let (program, _, _) = wl.instantiate();
        let j = prof.to_json(program.symbols(), &report);
        let reparsed = Json::parse(&j.dump()).expect("round trip");
        assert_eq!(reparsed, j);
        let sites = j.get("sites").and_then(Json::as_arr).expect("sites");
        assert_eq!(sites.len(), prof.rows().count());
        let stall_sum: u64 = sites
            .iter()
            .map(|s| {
                let stalls = s.get("stalls").expect("stalls");
                StallTag::ALL
                    .iter()
                    .map(|t| stalls.get(t.name()).and_then(Json::as_u64).unwrap())
                    .sum::<u64>()
            })
            .sum();
        let base = j.get("base_cycles").and_then(Json::as_u64).unwrap();
        assert_eq!(base + stall_sum, report.core.cycles);
    }

    #[test]
    fn golden_diff_flags_integer_drift_exactly() {
        let g = Json::parse(r#"{"cycles": 100, "ipc": 0.5}"#).unwrap();
        let a = Json::parse(r#"{"cycles": 101, "ipc": 0.5}"#).unwrap();
        let d = golden_diff(&g, &a, 1e-6);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("$.cycles") && d[0].contains("exact integer"), "{d:?}");
    }

    #[test]
    fn golden_diff_tolerates_float_noise_but_not_drift() {
        let g = Json::parse(r#"{"nj": 1.0000001}"#).unwrap();
        let close = Json::parse(r#"{"nj": 1.0000002}"#).unwrap();
        let far = Json::parse(r#"{"nj": 1.01}"#).unwrap();
        assert!(golden_diff(&g, &close, 1e-6).is_empty());
        assert_eq!(golden_diff(&g, &far, 1e-6).len(), 1);
    }

    #[test]
    fn golden_diff_reports_structural_drift_with_paths() {
        let g = Json::parse(r#"{"a": {"b": [1, 2]}, "gone": 1}"#).unwrap();
        let a = Json::parse(r#"{"a": {"b": [1]}, "new": 2}"#).unwrap();
        let d = golden_diff(&g, &a, 1e-6).join("\n");
        assert!(d.contains("$.a.b: golden has 2 elements"), "{d}");
        assert!(d.contains("$.gone: missing from actual"), "{d}");
        assert!(d.contains("$.new: not in golden"), "{d}");
        let t = golden_diff(
            &Json::parse("{\"x\": 1}").unwrap(),
            &Json::parse("{\"x\": \"1\"}").unwrap(),
            1e-6,
        );
        assert!(t[0].contains("type mismatch"), "{t:?}");
    }
}
