//! Cooperative shutdown: a process-wide flag set by SIGINT/SIGTERM.
//!
//! The registry is vendored and offline, so there is no `signal_hook` /
//! `ctrlc` to lean on; instead we register a minimal `extern "C"` handler
//! through libc's `signal(2)` (already linked by std) that flips one
//! [`AtomicBool`]. Long-running loops — sweep workers between jobs, the
//! `svr_serve` accept loop — poll [`requested`] and wind down cleanly:
//! in-flight jobs finish and are journaled/cached, queued work is surfaced
//! as structured [`crate::SimError::Interrupted`] errors instead of dying
//! mid-write.
//!
//! Installing is idempotent and opt-in: library code never installs
//! handlers behind a caller's back (a test harness may own SIGINT), the
//! binaries do it at startup. A second signal while draining falls back to
//! the default disposition, so a stuck drain can still be interrupted.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    // `signal(2)` from the libc that std already links; no crate needed.
    // usize stands in for the handler function pointer / SIG_DFL(0).
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(signum: i32) {
        super::REQUESTED.store(true, Ordering::SeqCst);
        // Restore the default disposition: a second ^C / TERM while the
        // drain is in progress kills the process the ordinary way.
        unsafe {
            signal(signum, 0);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Registers the SIGINT/SIGTERM handlers (idempotent; no-op off Unix).
/// Call once at binary startup; see the module docs for why this is not
/// done automatically.
pub fn install() {
    imp::install();
}

/// Whether a shutdown signal has been received (or [`request`] called).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Programmatic shutdown request — same effect as receiving SIGTERM. Used
/// by the server's `/v1/shutdown` endpoint and by tests.
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests; a daemon that chooses to survive a drain).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_round_trip() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
        // Installing must not panic or flip the flag.
        install();
        assert!(!requested());
    }
}
