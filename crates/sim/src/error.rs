//! Structured simulation-failure taxonomy.
//!
//! Everything that can go wrong in a run — an inconsistent configuration, a
//! guest that stops making forward progress, a blown cycle budget, a broken
//! simulator invariant, or an outright panic inside a sweep job — is folded
//! into one [`SimError`] enum that always names the workload and the
//! configuration label of the failing point. Harness code matches on the
//! variant; humans read [`std::fmt::Display`]; tools read
//! [`SimError::to_json`] (the crash flight recorder embeds it verbatim).

use crate::config::ConfigError;
use crate::json::Json;
use svr_core::RunError;

/// Why a simulation run failed.
///
/// Construction goes through [`SimError::from_run_error`] /
/// `From<ConfigError>` so the workload/config context is attached exactly
/// once, at the boundary where the run was started.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration was rejected before any cycle was simulated.
    Config(ConfigError),
    /// The watchdog saw no architectural effect for a whole progress window
    /// (a livelocked guest: e.g. a branch spin whose condition can never
    /// change).
    NoForwardProgress {
        /// Workload name.
        workload: String,
        /// Configuration label.
        config: String,
        /// PC of the instruction issuing when the watchdog fired.
        pc: usize,
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Cycle of the last architectural effect.
        last_effect: u64,
        /// The configured progress window.
        window: u64,
        /// Dominant stall bucket at the firing instruction.
        stall: String,
        /// MSHRs still in flight when the watchdog fired.
        outstanding_mshrs: usize,
    },
    /// The run exceeded its hard cycle budget
    /// (`max_insts × cycles_per_inst`) while still retiring instructions —
    /// a runaway guest rather than a livelocked one.
    CycleBudgetExceeded {
        /// Workload name.
        workload: String,
        /// Configuration label.
        config: String,
        /// PC of the instruction issuing when the budget tripped.
        pc: usize,
        /// Cycle count at the trip.
        cycles: u64,
        /// The configured budget.
        budget: u64,
        /// Instructions retired before the trip.
        retired: u64,
    },
    /// A simulator self-check failed after the run: counters that hold by
    /// construction diverged (leaked MSHR, CPI-stack drift, retire-count
    /// mismatch). Always a simulator bug, never a guest bug.
    InvariantViolation {
        /// Workload name.
        workload: String,
        /// Configuration label.
        config: String,
        /// Short invariant name ("cpi-stack", "retire-count", "mshr", ...).
        invariant: String,
        /// Full diagnostic.
        detail: String,
    },
    /// A sweep job panicked; the panic was caught at the job boundary and
    /// the payload preserved. Sibling jobs are unaffected.
    Panic {
        /// Workload name.
        workload: String,
        /// Configuration label.
        config: String,
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
    /// The run was never started (or was abandoned before starting) because
    /// a shutdown was requested — SIGINT/SIGTERM mid-sweep, or a draining
    /// simulation server. Not a failure of the point itself: re-running the
    /// identical sweep resumes from the journal, and a restarted server
    /// re-enqueues the point from its pending journal.
    Interrupted {
        /// Workload name.
        workload: String,
        /// Configuration label.
        config: String,
    },
}

impl SimError {
    /// Attaches run context to a core-level [`RunError`].
    pub fn from_run_error(e: RunError, workload: &str, config: &str) -> Self {
        match e {
            RunError::NoForwardProgress {
                pc,
                cycle,
                last_effect,
                window,
                stall,
                outstanding_mshrs,
            } => SimError::NoForwardProgress {
                workload: workload.to_string(),
                config: config.to_string(),
                pc,
                cycle,
                last_effect,
                window,
                stall: format!("{stall:?}"),
                outstanding_mshrs,
            },
            RunError::CycleBudgetExceeded {
                pc,
                cycles,
                budget,
                retired,
            } => SimError::CycleBudgetExceeded {
                workload: workload.to_string(),
                config: config.to_string(),
                pc,
                cycles,
                budget,
                retired,
            },
        }
    }

    /// Stable machine-readable variant name (crash-dump `error.kind`).
    pub fn kind_name(&self) -> &'static str {
        match self {
            SimError::Config(_) => "config",
            SimError::NoForwardProgress { .. } => "no_forward_progress",
            SimError::CycleBudgetExceeded { .. } => "cycle_budget_exceeded",
            SimError::InvariantViolation { .. } => "invariant_violation",
            SimError::Panic { .. } => "panic",
            SimError::Interrupted { .. } => "interrupted",
        }
    }

    /// The workload the failing run was for, when known.
    pub fn workload(&self) -> Option<&str> {
        match self {
            SimError::Config(e) => e.workload.as_deref(),
            SimError::NoForwardProgress { workload, .. }
            | SimError::CycleBudgetExceeded { workload, .. }
            | SimError::InvariantViolation { workload, .. }
            | SimError::Panic { workload, .. }
            | SimError::Interrupted { workload, .. } => Some(workload),
        }
    }

    /// The configuration label of the failing run.
    pub fn config(&self) -> &str {
        match self {
            SimError::Config(e) => &e.config,
            SimError::NoForwardProgress { config, .. }
            | SimError::CycleBudgetExceeded { config, .. }
            | SimError::InvariantViolation { config, .. }
            | SimError::Panic { config, .. }
            | SimError::Interrupted { config, .. } => config,
        }
    }

    /// JSON form for the crash flight recorder and the server's error
    /// bodies: `{"kind", "message", "workload", "config"}` plus the
    /// variant's numeric diagnostics as flat fields. The workload/config
    /// context PR 4 threads through every variant is always present (the
    /// workload is `null` only for a [`ConfigError`] raised before any run
    /// was attempted), so no consumer ever has to parse it back out of the
    /// message text.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind".into(), Json::str(self.kind_name())),
            ("message".into(), Json::str(self.to_string())),
            (
                "workload".into(),
                self.workload().map_or(Json::Null, Json::str),
            ),
            ("config".into(), Json::str(self.config())),
        ];
        match self {
            SimError::NoForwardProgress {
                pc,
                cycle,
                last_effect,
                window,
                stall,
                outstanding_mshrs,
                ..
            } => {
                fields.push(("pc".into(), Json::u64(*pc as u64)));
                fields.push(("cycle".into(), Json::u64(*cycle)));
                fields.push(("last_effect".into(), Json::u64(*last_effect)));
                fields.push(("window".into(), Json::u64(*window)));
                fields.push(("stall".into(), Json::str(stall)));
                fields.push((
                    "outstanding_mshrs".into(),
                    Json::u64(*outstanding_mshrs as u64),
                ));
            }
            SimError::CycleBudgetExceeded {
                pc,
                cycles,
                budget,
                retired,
                ..
            } => {
                fields.push(("pc".into(), Json::u64(*pc as u64)));
                fields.push(("cycles".into(), Json::u64(*cycles)));
                fields.push(("budget".into(), Json::u64(*budget)));
                fields.push(("retired".into(), Json::u64(*retired)));
            }
            SimError::InvariantViolation { invariant, .. } => {
                fields.push(("invariant".into(), Json::str(invariant)));
            }
            SimError::Config(_) | SimError::Panic { .. } | SimError::Interrupted { .. } => {}
        }
        Json::Obj(fields)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
            SimError::NoForwardProgress {
                workload,
                config,
                pc,
                cycle,
                last_effect,
                window,
                stall,
                outstanding_mshrs,
            } => write!(
                f,
                "{workload} under {config}: no forward progress — pc {pc} \
                 issued at cycle {cycle} but no architectural effect since \
                 cycle {last_effect} (window {window}); stalled on {stall} \
                 with {outstanding_mshrs} MSHRs outstanding"
            ),
            SimError::CycleBudgetExceeded {
                workload,
                config,
                pc,
                cycles,
                budget,
                retired,
            } => write!(
                f,
                "{workload} under {config}: cycle budget exceeded — cycle \
                 {cycles} > budget {budget} with {retired} instructions \
                 retired (pc {pc})"
            ),
            SimError::InvariantViolation {
                workload,
                config,
                invariant,
                detail,
            } => write!(
                f,
                "{workload} under {config}: simulator invariant '{invariant}' \
                 violated: {detail}"
            ),
            SimError::Panic {
                workload,
                config,
                message,
            } => write!(f, "{workload} under {config}: job panicked: {message}"),
            SimError::Interrupted { workload, config } => write!(
                f,
                "{workload} under {config}: interrupted before the run \
                 started (shutdown requested); completed work is journaled — \
                 resume by re-running"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_workload_config_and_diagnostics() {
        let e = SimError::NoForwardProgress {
            workload: "DiagSpin".into(),
            config: "SVR16".into(),
            pc: 7,
            cycle: 200_123,
            last_effect: 100_000,
            window: 100_000,
            stall: "DCacheMiss".into(),
            outstanding_mshrs: 3,
        };
        let s = e.to_string();
        for needle in ["DiagSpin", "SVR16", "pc 7", "window 100000", "3 MSHRs"] {
            assert!(s.contains(needle), "missing {needle:?} in {s}");
        }
        assert_eq!(e.kind_name(), "no_forward_progress");
        assert_eq!(e.workload(), Some("DiagSpin"));
        assert_eq!(e.config(), "SVR16");
    }

    #[test]
    fn json_form_is_flat_and_typed() {
        let e = SimError::CycleBudgetExceeded {
            workload: "w".into(),
            config: "c".into(),
            pc: 4,
            cycles: 900,
            budget: 800,
            retired: 12,
        };
        let j = e.to_json();
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("cycle_budget_exceeded"));
        assert_eq!(j.get("budget").and_then(Json::as_u64), Some(800));
        assert_eq!(j.get("retired").and_then(Json::as_u64), Some(12));
        // The PR-4 context rides along as first-class fields.
        assert_eq!(j.get("workload").and_then(Json::as_str), Some("w"));
        assert_eq!(j.get("config").and_then(Json::as_str), Some("c"));
    }

    #[test]
    fn interrupted_names_the_point_and_promises_resume() {
        let e = SimError::Interrupted {
            workload: "PR_KR".into(),
            config: "SVR16".into(),
        };
        assert_eq!(e.kind_name(), "interrupted");
        assert_eq!(e.workload(), Some("PR_KR"));
        assert_eq!(e.config(), "SVR16");
        assert!(e.to_string().contains("resume"), "{e}");
        let j = e.to_json();
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("interrupted"));
        assert_eq!(j.get("workload").and_then(Json::as_str), Some("PR_KR"));
        assert_eq!(j.get("config").and_then(Json::as_str), Some("SVR16"));
    }

    #[test]
    fn config_errors_convert_with_context_preserved() {
        let c = ConfigError {
            config: "IMP".into(),
            workload: Some("Camel".into()),
            message: "degenerate".into(),
        };
        let e: SimError = c.into();
        assert_eq!(e.kind_name(), "config");
        assert_eq!(e.workload(), Some("Camel"));
        assert!(e.to_string().starts_with("invalid SimConfig IMP"));
    }
}
