//! Crash flight recorder: when a sweep job dies (panic, watchdog trip,
//! invariant violation), the last-K trace events from the job's
//! [`svr_trace::RingSink`] plus the failing point's identity and the
//! structured [`SimError`] are dumped to one JSON file under
//! `results/crash/` (override with `$SVR_CRASH_DIR`).
//!
//! The simulator is deterministic, so the dump is produced by *re-running*
//! the failing point with tracing attached — the first (untraced, fast)
//! attempt only decides whether a dump is needed. The events in the dump are
//! therefore exactly the events leading into the failure, not a lossy
//! sample of a different run.

use crate::error::SimError;
use crate::json::Json;
use std::io;
use std::path::{Path, PathBuf};
use svr_trace::RingSink;

/// The crash-dump directory: `$SVR_CRASH_DIR` or `results/crash`.
pub fn default_crash_dir() -> PathBuf {
    std::env::var("SVR_CRASH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results/crash"))
}

/// Maps a workload/config pair to a filesystem-safe dump filename.
/// Config labels contain `/` ("SVR16/mshr4"), which must not create
/// subdirectories.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes a crash dump for one failed job and returns its path.
///
/// Schema (documented in DESIGN.md §Robustness):
///
/// ```json
/// {
///   "workload": "DiagSpin", "config": "SVR16",
///   "cache_key": "v3;wl=DiagSpin;...",
///   "error": { "kind": "no_forward_progress", "message": "...", ... },
///   "events_total": 12345, "events_dropped": 12000,
///   "events": [ { "kind": "retire", ... }, ... ]
/// }
/// ```
///
/// `events` holds the last `ring.len()` events (the ring's capacity bounds
/// K); `events_total`/`events_dropped` say how much history was discarded.
/// The write is atomic (tmp + rename) so a dump is never observed torn.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be created or
/// the file cannot be written; callers treat dumps as best-effort.
pub fn write_crash_dump(
    dir: &Path,
    workload: &str,
    config: &str,
    cache_key: &str,
    error: &SimError,
    ring: &RingSink,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let events: Vec<Json> = ring.iter().map(|e| e.to_json()).collect();
    let doc = Json::Obj(vec![
        ("workload".into(), Json::str(workload)),
        ("config".into(), Json::str(config)),
        ("cache_key".into(), Json::str(cache_key)),
        ("error".into(), error.to_json()),
        ("events_total".into(), Json::u64(ring.total())),
        ("events_dropped".into(), Json::u64(ring.dropped())),
        ("events".into(), Json::Arr(events)),
    ]);
    let name = format!("{}_{}.json", sanitize(workload), sanitize(config));
    let path = dir.join(&name);
    let tmp = dir.join(format!("{name}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, doc.pretty())?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_trace::{TraceEvent, TraceSink};

    #[test]
    fn sanitize_flattens_path_separators() {
        assert_eq!(sanitize("SVR16/mshr4"), "SVR16_mshr4");
        assert_eq!(sanitize("PR_KR"), "PR_KR");
        assert_eq!(sanitize("a b:c"), "a_b_c");
    }

    #[test]
    fn dump_roundtrips_events_and_error() {
        let dir = std::env::temp_dir().join(format!("svr-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ring = RingSink::new(4);
        for i in 0..6 {
            ring.emit(&TraceEvent::MshrCoalesce { cycle: i, line: i });
        }
        let err = SimError::Panic {
            workload: "W".into(),
            config: "SVR16/mshr4".into(),
            message: "boom".into(),
        };
        let path = write_crash_dump(&dir, "W", "SVR16/mshr4", "v3;wl=W", &err, &ring)
            .expect("dump written");
        assert_eq!(path.file_name().unwrap(), "W_SVR16_mshr4.json");
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("events_total").and_then(Json::as_u64), Some(6));
        assert_eq!(doc.get("events_dropped").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("events").and_then(Json::as_arr).unwrap().len(), 4);
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("panic")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
