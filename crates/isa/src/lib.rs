//! # svr-isa — a small RISC-like ISA for the SVR simulator
//!
//! This crate defines the instruction set that all workloads in the Scalar
//! Vector Runahead (SVR) reproduction are written in, together with an
//! assembler (label resolution, loop helpers) and the functional semantics
//! used by every core model (in-order, out-of-order, and SVR).
//!
//! The ISA is deliberately minimal but sufficient to express the paper's
//! workloads: 32 64-bit integer registers (`x0` hardwired to zero), a flags
//! register written by compare instructions (the SVR loop-bound detector
//! snoops compares, see §IV-B2 of the paper), loads/stores with
//! base+immediate and base+index<<shift addressing, ALU operations, and
//! conditional branches.
//!
//! # Examples
//!
//! ```
//! use svr_isa::{Assembler, Reg, AluOp, Cond};
//!
//! // sum = 0; for (i = 0; i != n; i++) sum += a[i];
//! let a = Reg::new(1);
//! let n = Reg::new(2);
//! let i = Reg::new(3);
//! let sum = Reg::new(4);
//! let t = Reg::new(5);
//! let mut asm = Assembler::new("sum");
//! asm.li(i, 0);
//! asm.li(sum, 0);
//! let top = asm.label();
//! asm.bind(top);
//! asm.ldx(t, a, i, 3);
//! asm.alu(AluOp::Add, sum, sum, t);
//! asm.alui(AluOp::Add, i, i, 1);
//! asm.cmp(i, n);
//! asm.b(Cond::Ne, top);
//! asm.halt();
//! let program = asm.finish();
//! assert!(program.len() > 0);
//! ```

mod asm;
mod decoded;
pub mod encode;
mod error;
mod exec;
mod inst;
pub mod parse;
mod program;
mod reg;

pub use asm::{Assembler, Label};
pub use decoded::{DecodedOp, DecodedProgram, FusedBranch, MicroOp, NO_REG};
pub use error::AsmError;
pub use exec::{ArchState, DataMemory, Flags, MemAccessKind, Outcome, VecMemory};
pub use inst::{eval_alu, eval_cond, AluOp, Cond, Inst};
pub use program::{Program, SymbolMap};
pub use reg::{Reg, NUM_REGS, ZERO};
