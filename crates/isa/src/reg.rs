//! Architectural register identifiers.

use std::fmt;

/// Number of architectural integer registers.
pub const NUM_REGS: usize = 32;

/// Register `x0`, hardwired to zero (writes are discarded).
pub const ZERO: Reg = Reg(0);

/// An architectural register identifier (`x0`..`x31`).
///
/// `x0` is hardwired to zero, matching common RISC conventions. The SVR taint
/// tracker (paper Fig. 8) is indexed by this identifier.
///
/// # Examples
///
/// ```
/// use svr_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(format!("{r}"), "x5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range (0..{NUM_REGS})"
        );
        Reg(index)
    }

    /// The raw register number in `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register `x0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in 0..NUM_REGS as u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_register() {
        assert!(ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Reg::new(17).to_string(), "x17");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Reg::new(3) < Reg::new(4));
    }
}
