//! Functional (architectural) execution semantics.
//!
//! All core timing models in the workspace share this single functional
//! implementation: the in-order and out-of-order cores call [`ArchState::step`]
//! to retire instructions, and the SVR scalar-vector unit reuses
//! [`crate::eval_alu`] / [`crate::eval_cond`] plus [`DataMemory`] reads to
//! execute transient lanes without affecting architectural state.

use crate::decoded::{DecodedOp, DecodedProgram};
use crate::inst::Inst;
use crate::program::Program;
use crate::reg::{Reg, NUM_REGS};

/// The flags register, written by `cmp`/`cmpi` and read by conditional
/// branches. We record the compared operand values and evaluate conditions
/// lazily, which is exact and keeps the model simple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// First compared operand.
    pub a: u64,
    /// Second compared operand.
    pub b: u64,
}

/// Byte-addressed 64-bit word data memory, as seen by the cores.
///
/// Addresses are arbitrary 64-bit values; implementations decide the backing
/// store. Reads of unmapped locations return 0 so speculative (runahead)
/// accesses are always safe.
pub trait DataMemory {
    /// Reads the 64-bit word at `addr`.
    fn read_u64(&self, addr: u64) -> u64;
    /// Writes the 64-bit word at `addr`.
    fn write_u64(&mut self, addr: u64, value: u64);

    /// Bulk-reads `out.len()` consecutive words starting at `addr` (used by
    /// warp-mode checkpointing and state comparison). The default impl loops
    /// [`DataMemory::read_u64`], so every implementation — `VecMemory`,
    /// `MemImage`, test doubles — observes identical values; backends may
    /// override it with a faster page-aware copy but must not change the
    /// result.
    fn read_block(&self, addr: u64, out: &mut [u64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.read_u64(addr.wrapping_add(8 * i as u64));
        }
    }
}

/// A simple dense `Vec`-backed memory for tests and examples: word `i` lives
/// at address `8 * i`; out-of-range reads return 0 and out-of-range writes
/// grow the vector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecMemory {
    words: Vec<u64>,
}

impl VecMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memory holding `words`, word `i` at address `8*i`.
    pub fn from_words(words: Vec<u64>) -> Self {
        VecMemory { words }
    }

    /// Borrows the backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl DataMemory for VecMemory {
    fn read_u64(&self, addr: u64) -> u64 {
        self.words.get((addr / 8) as usize).copied().unwrap_or(0)
    }

    fn write_u64(&mut self, addr: u64, value: u64) {
        let idx = (addr / 8) as usize;
        if idx >= self.words.len() {
            self.words.resize(idx + 1, 0);
        }
        self.words[idx] = value;
    }
}

/// Kind of data-memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccessKind {
    /// A demand load.
    Load,
    /// A demand store.
    Store,
}

/// Everything a timing model needs to know about one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// PC of the executed instruction.
    pub pc: usize,
    /// PC of the next instruction to execute.
    pub next_pc: usize,
    /// Data-memory access performed, if any.
    pub mem: Option<(MemAccessKind, u64)>,
    /// Value loaded from memory (loads only; avoids timing models paying a
    /// second functional read on the hot path).
    pub loaded: Option<u64>,
    /// For branches: `(taken, taken_target)`.
    pub branch: Option<(bool, usize)>,
    /// Whether the program halted on this instruction.
    pub halted: bool,
}

/// Architectural register/flags/PC state of one hardware thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    pub(crate) regs: [u64; NUM_REGS],
    pub(crate) flags: Flags,
    pub(crate) pc: usize,
    pub(crate) halted: bool,
}

impl Default for ArchState {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchState {
    /// Creates a reset state: all registers zero, PC 0.
    pub fn new() -> Self {
        ArchState {
            regs: [0; NUM_REGS],
            flags: Flags::default(),
            pc: 0,
            halted: false,
        }
    }

    /// Reads register `r` (`x0` always reads 0).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes register `r` (writes to `x0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Current flags value.
    #[inline]
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Overrides the program counter (used by trace replay and tests).
    pub fn set_pc(&mut self, pc: usize) {
        self.pc = pc;
    }

    /// Whether a `halt` has been executed.
    #[inline]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Computes the effective address of a memory instruction given this
    /// state, without executing it. Returns `None` for non-memory
    /// instructions.
    pub fn effective_addr(&self, inst: &Inst) -> Option<u64> {
        match *inst {
            Inst::Ld { base, offset, .. } | Inst::St { base, offset, .. } => {
                Some(self.reg(base).wrapping_add(offset as u64))
            }
            Inst::LdX {
                base, index, shift, ..
            }
            | Inst::StX {
                base, index, shift, ..
            } => Some(self.reg(base).wrapping_add(self.reg(index) << shift)),
            _ => None,
        }
    }

    /// Executes the instruction at the current PC and advances.
    ///
    /// Returns `None` when the state is already halted or the PC ran off the
    /// end of the program (treated as an implicit halt). Decodes on the fly —
    /// convenient for single steps; hot loops should lower once with
    /// [`crate::DecodedProgram::lower`] and dispatch via
    /// [`ArchState::step_op`] instead.
    pub fn step<M: DataMemory>(&mut self, program: &Program, mem: &mut M) -> Option<Outcome> {
        if self.halted {
            return None;
        }
        let inst = match program.get(self.pc) {
            Some(i) => *i,
            None => {
                self.halted = true;
                return None;
            }
        };
        Some(self.step_op(&DecodedOp::from_inst(inst), mem))
    }

    /// Executes `inst` — which must be the instruction at the current PC,
    /// already fetched and checked by the caller — and advances.
    #[deprecated(
        since = "0.2.0",
        note = "decode once with `DecodedProgram::lower` (or `DecodedOp::from_inst`) and \
                dispatch through `ArchState::step_op`"
    )]
    pub fn step_fetched<M: DataMemory>(&mut self, inst: Inst, mem: &mut M) -> Outcome {
        self.step_op(&DecodedOp::from_inst(inst), mem)
    }

    /// Runs until halt or until `max_insts` instructions retire; returns the
    /// number of retired instructions.
    ///
    /// Lowers the program once and executes in warp mode
    /// ([`ArchState::run_decoded`]); callers that already hold a
    /// [`DecodedProgram`] should call that directly to skip re-lowering.
    pub fn run<M: DataMemory>(&mut self, program: &Program, mem: &mut M, max_insts: u64) -> u64 {
        self.run_decoded(&DecodedProgram::lower(program), mem, max_insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::inst::{AluOp, Cond};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn loop_sums_array() {
        // sum a[0..4]
        let base = r(1);
        let n = r(2);
        let i = r(3);
        let sum = r(4);
        let t = r(5);
        let mut asm = Assembler::new("sum");
        let top = asm.label();
        asm.bind(top);
        asm.ldx(t, base, i, 3);
        asm.alu(AluOp::Add, sum, sum, t);
        asm.alui(AluOp::Add, i, i, 1);
        asm.cmp(i, n);
        asm.b(Cond::Ne, top);
        asm.halt();
        let p = asm.finish();

        let mut mem = VecMemory::from_words(vec![10, 20, 30, 40]);
        let mut st = ArchState::new();
        st.set_reg(base, 0);
        st.set_reg(n, 4);
        let retired = st.run(&p, &mut mem, 1000);
        assert!(st.halted());
        assert_eq!(st.reg(sum), 100);
        assert_eq!(retired, 4 * 5 + 1);
    }

    #[test]
    fn x0_reads_zero_and_discards_writes() {
        let p = Program::new(
            "z",
            vec![
                Inst::Li {
                    dst: Reg::new(0),
                    imm: 42,
                },
                Inst::Halt,
            ],
        );
        let mut mem = VecMemory::new();
        let mut st = ArchState::new();
        st.run(&p, &mut mem, 10);
        assert_eq!(st.reg(Reg::new(0)), 0);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut asm = Assembler::new("sl");
        asm.li(r(1), 0x1234);
        asm.li(r(2), 64);
        asm.st(r(1), r(2), 8);
        asm.ld(r(3), r(2), 8);
        asm.halt();
        let p = asm.finish();
        let mut mem = VecMemory::new();
        let mut st = ArchState::new();
        st.run(&p, &mut mem, 10);
        assert_eq!(st.reg(r(3)), 0x1234);
        assert_eq!(mem.read_u64(72), 0x1234);
    }

    #[test]
    fn outcome_reports_memory_and_branches() {
        let mut asm = Assembler::new("o");
        let skip = asm.label();
        asm.li(r(1), 8);
        asm.ld(r(2), r(1), 0);
        asm.cmpi(r(2), 0);
        asm.b(Cond::Eq, skip);
        asm.nop();
        asm.bind(skip);
        asm.halt();
        let p = asm.finish();
        let mut mem = VecMemory::from_words(vec![0, 0]);
        let mut st = ArchState::new();
        st.step(&p, &mut mem); // li
        let ld = st.step(&p, &mut mem).unwrap();
        assert_eq!(ld.mem, Some((MemAccessKind::Load, 8)));
        st.step(&p, &mut mem); // cmpi
        let b = st.step(&p, &mut mem).unwrap();
        assert_eq!(b.branch, Some((true, 5)));
        assert_eq!(b.next_pc, 5);
        let h = st.step(&p, &mut mem).unwrap();
        assert!(h.halted);
        assert!(st.step(&p, &mut mem).is_none());
    }

    #[test]
    fn pc_off_end_halts() {
        let p = Program::new("end", vec![Inst::Nop]);
        let mut mem = VecMemory::new();
        let mut st = ArchState::new();
        assert_eq!(st.run(&p, &mut mem, 10), 1);
        assert!(st.halted());
    }

    #[test]
    fn effective_addr_matches_semantics() {
        let mut st = ArchState::new();
        st.set_reg(r(1), 100);
        st.set_reg(r(2), 3);
        let ld = Inst::LdX {
            dst: r(3),
            base: r(1),
            index: r(2),
            shift: 3,
        };
        assert_eq!(st.effective_addr(&ld), Some(124));
        assert_eq!(st.effective_addr(&Inst::Nop), None);
    }
}
