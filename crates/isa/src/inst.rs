//! Instruction definitions and pure ALU/condition evaluation.

use crate::reg::Reg;
use std::fmt;

/// Arithmetic/logical operations, used by both register-register ([`Inst::Alu`])
/// and register-immediate ([`Inst::AluI`]) forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping 64-bit addition.
    Add,
    /// Wrapping 64-bit subtraction.
    Sub,
    /// Wrapping 64-bit multiplication (low half).
    Mul,
    /// Unsigned division; division by zero yields all-ones (like RISC-V).
    Divu,
    /// Unsigned remainder; remainder by zero yields the dividend (like RISC-V).
    Remu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (shift amount masked to 6 bits).
    Sll,
    /// Logical right shift (shift amount masked to 6 bits).
    Srl,
    /// Arithmetic right shift (shift amount masked to 6 bits).
    Sra,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Unsigned set-less-than: `(a < b) as u64`.
    Sltu,
}

/// Branch conditions, evaluated against the flags produced by [`Inst::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// A single instruction.
///
/// PCs are instruction indices into a [`crate::Program`]. All memory accesses
/// move 64-bit values; workload data structures are laid out as `u64` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = imm`.
    Li { dst: Reg, imm: i64 },
    /// `dst = op(a, b)`.
    Alu { op: AluOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = op(src, imm)`.
    AluI {
        op: AluOp,
        dst: Reg,
        src: Reg,
        imm: i64,
    },
    /// `dst = mem[base + offset]` (64-bit).
    Ld { dst: Reg, base: Reg, offset: i64 },
    /// `dst = mem[base + (index << shift)]` (64-bit).
    LdX {
        dst: Reg,
        base: Reg,
        index: Reg,
        shift: u8,
    },
    /// `mem[base + offset] = src` (64-bit).
    St { src: Reg, base: Reg, offset: i64 },
    /// `mem[base + (index << shift)] = src` (64-bit).
    StX {
        src: Reg,
        base: Reg,
        index: Reg,
        shift: u8,
    },
    /// Compare two registers and set the flags register.
    Cmp { a: Reg, b: Reg },
    /// Compare a register against an immediate and set the flags register.
    CmpI { a: Reg, imm: i64 },
    /// Conditional branch on flags to an absolute instruction index.
    B { cond: Cond, target: usize },
    /// Unconditional jump to an absolute instruction index.
    J { target: usize },
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

impl Inst {
    /// Whether this instruction reads data memory.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Ld { .. } | Inst::LdX { .. })
    }

    /// Whether this instruction writes data memory.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::St { .. } | Inst::StX { .. })
    }

    /// Whether this instruction is a (conditional or unconditional) branch.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::B { .. } | Inst::J { .. })
    }

    /// Whether this instruction writes the flags register.
    #[inline]
    pub fn writes_flags(&self) -> bool {
        matches!(self, Inst::Cmp { .. } | Inst::CmpI { .. })
    }

    /// Destination register, if any. Writes to `x0` are reported as `None`.
    pub fn dst(&self) -> Option<Reg> {
        let d = match *self {
            Inst::Li { dst, .. }
            | Inst::Alu { dst, .. }
            | Inst::AluI { dst, .. }
            | Inst::Ld { dst, .. }
            | Inst::LdX { dst, .. } => dst,
            _ => return None,
        };
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// Source registers (up to three: store data + base + index).
    pub fn srcs(&self) -> SrcIter {
        let mut s = [None; 3];
        match *self {
            Inst::Li { .. } | Inst::B { .. } | Inst::J { .. } | Inst::Nop | Inst::Halt => {}
            Inst::Alu { a, b, .. } => {
                s[0] = Some(a);
                s[1] = Some(b);
            }
            Inst::AluI { src, .. } => s[0] = Some(src),
            Inst::Ld { base, .. } => s[0] = Some(base),
            Inst::LdX { base, index, .. } => {
                s[0] = Some(base);
                s[1] = Some(index);
            }
            Inst::St { src, base, .. } => {
                s[0] = Some(src);
                s[1] = Some(base);
            }
            Inst::StX {
                src, base, index, ..
            } => {
                s[0] = Some(src);
                s[1] = Some(base);
                s[2] = Some(index);
            }
            Inst::Cmp { a, b } => {
                s[0] = Some(a);
                s[1] = Some(b);
            }
            Inst::CmpI { a, .. } => s[0] = Some(a),
        }
        SrcIter { srcs: s, pos: 0 }
    }

    /// Address-generation source registers only (base and index for memory ops).
    pub fn addr_srcs(&self) -> SrcIter {
        let mut s = [None; 3];
        match *self {
            Inst::Ld { base, .. } | Inst::St { base, .. } => s[0] = Some(base),
            Inst::LdX { base, index, .. } | Inst::StX { base, index, .. } => {
                s[0] = Some(base);
                s[1] = Some(index);
            }
            _ => {}
        }
        SrcIter { srcs: s, pos: 0 }
    }
}

/// Iterator over an instruction's source registers (see [`Inst::srcs`]).
#[derive(Debug, Clone)]
pub struct SrcIter {
    srcs: [Option<Reg>; 3],
    pos: usize,
}

impl Iterator for SrcIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        while self.pos < 3 {
            let v = self.srcs[self.pos];
            self.pos += 1;
            if v.is_some() {
                return v;
            }
        }
        None
    }
}

/// Evaluates an ALU operation on two 64-bit values.
///
/// This is the single source of truth for ALU semantics; core models reuse it
/// to execute transient scalar-vector lanes on SRF data.
///
/// # Examples
///
/// ```
/// use svr_isa::{eval_alu, AluOp};
/// assert_eq!(eval_alu(AluOp::Add, 2, 3), 5);
/// assert_eq!(eval_alu(AluOp::Divu, 7, 0), u64::MAX);
/// ```
#[inline]
pub fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Remu => a.checked_rem(b).unwrap_or(a),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a << (b & 63),
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Min => (a as i64).min(b as i64) as u64,
        AluOp::Max => (a as i64).max(b as i64) as u64,
        AluOp::Sltu => u64::from(a < b),
    }
}

/// Evaluates a branch condition against a compare of `a` and `b`.
///
/// Equivalent to `Cmp a, b` followed by testing `cond`, without going through
/// the flags register — used by the SVR unit to evaluate per-lane predicates.
///
/// # Examples
///
/// ```
/// use svr_isa::{eval_cond, Cond};
/// assert!(eval_cond(Cond::Ltu, 1, 2));
/// assert!(eval_cond(Cond::Lt, u64::MAX, 2)); // signed: -1 < 2
/// assert!(!eval_cond(Cond::Ltu, u64::MAX, 2)); // unsigned: huge value
/// ```
#[inline]
pub fn eval_cond(cond: Cond, a: u64, b: u64) -> bool {
    match cond {
        Cond::Eq => a == b,
        Cond::Ne => a != b,
        Cond::Lt => (a as i64) < (b as i64),
        Cond::Ge => (a as i64) >= (b as i64),
        Cond::Ltu => a < b,
        Cond::Geu => a >= b,
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Li { dst, imm } => write!(f, "li {dst}, {imm}"),
            Inst::Alu { op, dst, a, b } => write!(f, "{op:?} {dst}, {a}, {b}"),
            Inst::AluI { op, dst, src, imm } => write!(f, "{op:?}i {dst}, {src}, {imm}"),
            Inst::Ld { dst, base, offset } => write!(f, "ld {dst}, {offset}({base})"),
            Inst::LdX {
                dst,
                base,
                index,
                shift,
            } => write!(f, "ldx {dst}, ({base} + {index}<<{shift})"),
            Inst::St { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Inst::StX {
                src,
                base,
                index,
                shift,
            } => write!(f, "stx {src}, ({base} + {index}<<{shift})"),
            Inst::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Inst::CmpI { a, imm } => write!(f, "cmpi {a}, {imm}"),
            Inst::B { cond, target } => write!(f, "b.{cond:?} @{target}"),
            Inst::J { target } => write!(f, "j @{target}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(eval_alu(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(eval_alu(AluOp::Sub, 0, 1), u64::MAX);
        assert_eq!(eval_alu(AluOp::Mul, 3, 5), 15);
        assert_eq!(eval_alu(AluOp::Divu, 10, 3), 3);
        assert_eq!(eval_alu(AluOp::Divu, 10, 0), u64::MAX);
        assert_eq!(eval_alu(AluOp::Remu, 10, 3), 1);
        assert_eq!(eval_alu(AluOp::Remu, 10, 0), 10);
        assert_eq!(eval_alu(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(eval_alu(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(eval_alu(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(eval_alu(AluOp::Sll, 1, 65), 2); // shift masked to 6 bits
        assert_eq!(eval_alu(AluOp::Srl, u64::MAX, 63), 1);
        assert_eq!(eval_alu(AluOp::Sra, (-8i64) as u64, 2), (-2i64) as u64);
        assert_eq!(eval_alu(AluOp::Min, (-1i64) as u64, 1), (-1i64) as u64);
        assert_eq!(eval_alu(AluOp::Max, (-1i64) as u64, 1), 1);
        assert_eq!(eval_alu(AluOp::Sltu, 1, 2), 1);
        assert_eq!(eval_alu(AluOp::Sltu, 2, 1), 0);
    }

    #[test]
    fn cond_semantics() {
        assert!(eval_cond(Cond::Eq, 4, 4));
        assert!(eval_cond(Cond::Ne, 4, 5));
        assert!(eval_cond(Cond::Lt, (-1i64) as u64, 0));
        assert!(!eval_cond(Cond::Ltu, (-1i64) as u64, 0));
        assert!(eval_cond(Cond::Ge, 0, (-1i64) as u64));
        assert!(eval_cond(Cond::Geu, (-1i64) as u64, 0));
    }

    #[test]
    fn classification() {
        let ld = Inst::Ld {
            dst: r(1),
            base: r(2),
            offset: 8,
        };
        assert!(ld.is_load() && !ld.is_store() && !ld.is_branch());
        let st = Inst::StX {
            src: r(1),
            base: r(2),
            index: r(3),
            shift: 3,
        };
        assert!(st.is_store() && !st.is_load());
        let b = Inst::B {
            cond: Cond::Ne,
            target: 0,
        };
        assert!(b.is_branch());
        assert!(Inst::Cmp { a: r(1), b: r(2) }.writes_flags());
    }

    #[test]
    fn dst_hides_x0() {
        let w0 = Inst::Li {
            dst: Reg::new(0),
            imm: 5,
        };
        assert_eq!(w0.dst(), None);
        let w1 = Inst::Li { dst: r(1), imm: 5 };
        assert_eq!(w1.dst(), Some(r(1)));
    }

    #[test]
    fn srcs_enumeration() {
        let st = Inst::StX {
            src: r(1),
            base: r(2),
            index: r(3),
            shift: 3,
        };
        let got: Vec<Reg> = st.srcs().collect();
        assert_eq!(got, vec![r(1), r(2), r(3)]);
        let addr: Vec<Reg> = st.addr_srcs().collect();
        assert_eq!(addr, vec![r(2), r(3)]);
        assert_eq!(Inst::Nop.srcs().count(), 0);
    }
}
