//! Text-format assembly parser: the inverse of the `Display` impls, so
//! program listings produced by `dump_workload` (or written by hand) can be
//! loaded back. Lines look like:
//!
//! ```text
//!    0: li x1, 42
//!    1: ldx x5, (x1 + x3<<3)
//!    2: Add x7, x7, x6
//!    3: cmp x3, x4
//!    4: b.Ltu @0
//!    5: halt
//! ```
//!
//! Leading `NNN:` indices, blank lines and `;` comments are ignored. A bare
//! `name:` line (as emitted for named labels) binds a symbol to the next
//! instruction's pc, so listings round-trip with their symbol table intact.
//!
//! Errors are [`AsmError`]s carrying the 1-based line *and column* of the
//! offending token, so a bad listing points straight at the problem.

use crate::inst::{AluOp, Cond, Inst};
use crate::program::{Program, SymbolMap};
use crate::reg::Reg;

pub use crate::error::AsmError as ParseError;

fn err(line: usize, col: usize, reason: impl Into<String>) -> ParseError {
    ParseError::at(line, col, reason)
}

/// 1-based column of the subslice `tok` within `src`, or 0 if `tok` is not
/// actually a subslice of `src` (e.g. a lowercased copy).
fn col_of(src: &str, tok: &str) -> usize {
    let base = src.as_ptr() as usize;
    let t = tok.as_ptr() as usize;
    if t >= base && t <= base + src.len() {
        t - base + 1
    } else {
        0
    }
}

fn parse_reg(line: usize, src: &str, tok: &str) -> Result<Reg, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    let idx = tok
        .strip_prefix('x')
        .and_then(|s| s.parse::<u8>().ok())
        .filter(|&i| (i as usize) < crate::reg::NUM_REGS)
        .ok_or_else(|| err(line, col_of(src, tok), format!("bad register `{tok}`")))?;
    Ok(Reg::new(idx))
}

fn parse_imm(line: usize, src: &str, tok: &str) -> Result<i64, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    tok.parse::<i64>()
        .map_err(|_| err(line, col_of(src, tok), format!("bad immediate `{tok}`")))
}

fn parse_alu_op(tok: &str) -> Option<(AluOp, bool)> {
    let (name, imm) = match tok.strip_suffix('i') {
        // `Srli` etc.: trailing `i` marks the immediate form, but beware of
        // ops whose own name could end differently; all our op names do not
        // end in 'i'.
        Some(base) => (base, true),
        None => (tok, false),
    };
    let op = match name.to_ascii_lowercase().as_str() {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "divu" => AluOp::Divu,
        "remu" => AluOp::Remu,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        "sltu" => AluOp::Sltu,
        _ => return None,
    };
    Some((op, imm))
}

fn parse_cond(line: usize, col: usize, tok: &str) -> Result<Cond, ParseError> {
    Ok(match tok.to_ascii_lowercase().as_str() {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "lt" => Cond::Lt,
        "ge" => Cond::Ge,
        "ltu" => Cond::Ltu,
        "geu" => Cond::Geu,
        other => return Err(err(line, col, format!("bad condition `{other}`"))),
    })
}

/// Parses `(xB + xI<<S)` into (base, index, shift).
fn parse_indexed(line: usize, src: &str, s: &str) -> Result<(Reg, Reg, u8), ParseError> {
    let s_trim = s.trim();
    let at = col_of(src, s_trim);
    let inner = s_trim
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| err(line, at, format!("expected (base + index<<shift), got `{s_trim}`")))?;
    let (b, rest) = inner
        .split_once('+')
        .ok_or_else(|| err(line, at, "expected `+` in indexed operand"))?;
    let (i, sh) = rest
        .split_once("<<")
        .ok_or_else(|| err(line, at, "expected `<<` in indexed operand"))?;
    let shift = sh
        .trim()
        .parse::<u8>()
        .map_err(|_| err(line, col_of(src, sh.trim()), format!("bad shift `{sh}`")))?;
    Ok((parse_reg(line, src, b)?, parse_reg(line, src, i)?, shift))
}

/// Parses `OFF(xB)` into (base, offset).
fn parse_based(line: usize, src: &str, s: &str) -> Result<(Reg, i64), ParseError> {
    let s_trim = s.trim();
    let at = col_of(src, s_trim);
    let (off, rest) = s_trim
        .split_once('(')
        .ok_or_else(|| err(line, at, format!("expected off(base), got `{s_trim}`")))?;
    let base = rest
        .strip_suffix(')')
        .ok_or_else(|| err(line, at, "missing `)`"))?;
    Ok((parse_reg(line, src, base)?, parse_imm(line, src, off)?))
}

/// Parses one instruction line (without any `NNN:` prefix). Error columns
/// are relative to `text` as passed in.
pub fn parse_inst(line: usize, text: &str) -> Result<Inst, ParseError> {
    let src = text;
    let text = text.trim();
    let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let mcol = col_of(src, mnemonic);
    let args: Vec<&str> = if rest.trim().is_empty() {
        Vec::new()
    } else {
        split_operands(rest)
    };
    let need = |n: usize| -> Result<(), ParseError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                mcol,
                format!("`{mnemonic}` expects {n} operands, got {}", args.len()),
            ))
        }
    };
    match mnemonic.to_ascii_lowercase().as_str() {
        "li" => {
            need(2)?;
            Ok(Inst::Li {
                dst: parse_reg(line, src, args[0])?,
                imm: parse_imm(line, src, args[1])?,
            })
        }
        "ld" => {
            need(2)?;
            let (base, offset) = parse_based(line, src, args[1])?;
            Ok(Inst::Ld {
                dst: parse_reg(line, src, args[0])?,
                base,
                offset,
            })
        }
        "ldx" => {
            need(2)?;
            let (base, index, shift) = parse_indexed(line, src, args[1])?;
            Ok(Inst::LdX {
                dst: parse_reg(line, src, args[0])?,
                base,
                index,
                shift,
            })
        }
        "st" => {
            need(2)?;
            let (base, offset) = parse_based(line, src, args[1])?;
            Ok(Inst::St {
                src: parse_reg(line, src, args[0])?,
                base,
                offset,
            })
        }
        "stx" => {
            need(2)?;
            let (base, index, shift) = parse_indexed(line, src, args[1])?;
            Ok(Inst::StX {
                src: parse_reg(line, src, args[0])?,
                base,
                index,
                shift,
            })
        }
        "cmp" => {
            need(2)?;
            Ok(Inst::Cmp {
                a: parse_reg(line, src, args[0])?,
                b: parse_reg(line, src, args[1])?,
            })
        }
        "cmpi" => {
            need(2)?;
            Ok(Inst::CmpI {
                a: parse_reg(line, src, args[0])?,
                imm: parse_imm(line, src, args[1])?,
            })
        }
        "j" => {
            need(1)?;
            let t = args[0]
                .strip_prefix('@')
                .ok_or_else(|| err(line, col_of(src, args[0]), "jump target must be @N"))?;
            Ok(Inst::J {
                target: t
                    .parse()
                    .map_err(|_| err(line, col_of(src, t), format!("bad target `{t}`")))?,
            })
        }
        "nop" => {
            need(0)?;
            Ok(Inst::Nop)
        }
        "halt" => {
            need(0)?;
            Ok(Inst::Halt)
        }
        m if m.starts_with("b.") => {
            need(1)?;
            // `m` is a lowercased copy, so point the column at the condition
            // suffix within the original mnemonic token.
            let cond = parse_cond(line, mcol + 2, &m[2..])?;
            let t = args[0]
                .strip_prefix('@')
                .ok_or_else(|| err(line, col_of(src, args[0]), "branch target must be @N"))?;
            Ok(Inst::B {
                cond,
                target: t
                    .parse()
                    .map_err(|_| err(line, col_of(src, t), format!("bad target `{t}`")))?,
            })
        }
        m => {
            let (op, imm_form) = parse_alu_op(m)
                .ok_or_else(|| err(line, mcol, format!("unknown mnemonic `{mnemonic}`")))?;
            need(3)?;
            let dst = parse_reg(line, src, args[0])?;
            if imm_form {
                Ok(Inst::AluI {
                    op,
                    dst,
                    src: parse_reg(line, src, args[1])?,
                    imm: parse_imm(line, src, args[2])?,
                })
            } else {
                Ok(Inst::Alu {
                    op,
                    dst,
                    a: parse_reg(line, src, args[1])?,
                    b: parse_reg(line, src, args[2])?,
                })
            }
        }
    }
}

/// Splits operand text on top-level commas (commas inside `(...)` stay).
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = s[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

/// Parses a full listing into a [`Program`]. `NNN:` prefixes, blank lines
/// and `;` comments are skipped; branch targets are absolute indices as in
/// the `Display` output.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, with `line` and `col`
/// relative to the raw input text (prefix stripping does not shift columns).
///
/// # Examples
///
/// ```
/// use svr_isa::parse::parse_program;
/// let p = parse_program("demo", "
///     ; a tiny loop
///     0: li x1, 3
///     1: Subi x1, x1, 1
///     2: cmpi x1, 0
///     3: b.Ne @1
///     4: halt
/// ").unwrap();
/// assert_eq!(p.len(), 5);
/// ```
pub fn parse_program(name: &str, text: &str) -> Result<Program, ParseError> {
    let mut insts = Vec::new();
    let mut syms: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let mut line = raw.trim();
        if let Some(pos) = line.find(';') {
            line = line[..pos].trim();
        }
        if line.is_empty() {
            continue;
        }
        // Strip a leading `NNN:` index.
        if let Some((prefix, rest)) = line.split_once(':') {
            if prefix.trim().parse::<usize>().is_ok() {
                line = rest.trim();
            }
        }
        if line.is_empty() {
            continue;
        }
        // A bare `name:` line binds a symbol to the next instruction's pc.
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            let ident = !label.is_empty()
                && !label.starts_with(|c: char| c.is_ascii_digit())
                && label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.');
            if ident {
                syms.push((insts.len(), label.to_string()));
                continue;
            }
        }
        insts.push(parse_inst(line_no, line).map_err(|mut e| {
            // `line` is a subslice of `raw`; shift the column so it indexes
            // into the raw line, NNN: prefix and leading whitespace included.
            if e.col > 0 {
                e.col += line.as_ptr() as usize - raw.as_ptr() as usize;
            }
            e
        })?);
    }
    Ok(Program::with_symbols(name, insts, SymbolMap::new(syms)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::inst::{AluOp, Cond};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Round-trip: Display → parse → identical program.
    #[test]
    fn display_parse_round_trip() {
        let mut asm = Assembler::new("rt");
        let top = asm.label();
        asm.bind(top);
        asm.li(r(1), -42);
        asm.ldx(r(2), r(3), r(1), 3);
        asm.ld(r(4), r(2), -16);
        asm.alu(AluOp::Xor, r(5), r(4), r(2));
        asm.alui(AluOp::Srl, r(6), r(5), 7);
        asm.st(r(6), r(2), 8);
        asm.stx(r(6), r(2), r(1), 6);
        asm.cmp(r(6), r(1));
        asm.b(Cond::Geu, top);
        asm.cmpi(r(6), 100);
        asm.j(top);
        asm.nop();
        asm.halt();
        let p = asm.finish();
        let text = p.to_string();
        let back = parse_program("rt", &text).expect("listing parses");
        assert_eq!(back, p);
    }

    /// Named labels print as `name:` lines and parse back into the symbol
    /// map, bound to the following instruction's pc.
    #[test]
    fn symbol_labels_round_trip() {
        let mut asm = Assembler::new("sym");
        let top = asm.named_label("top");
        asm.nop();
        asm.bind(top);
        asm.cmpi(r(1), 0);
        let out = asm.named_label("out");
        asm.b(Cond::Ne, top);
        asm.bind(out);
        asm.halt();
        let p = asm.finish();
        let back = parse_program("sym", &p.to_string()).expect("listing parses");
        assert_eq!(back, p);
        assert_eq!(back.symbols().lookup("top"), Some(1));
        assert_eq!(back.symbols().symbolize(2), "top+1");
        assert_eq!(back.symbols().symbolize(3), "out");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_program("c", "; header\n\n  0: nop ; trailing\n halt").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("e", "nop\nfrobnicate x1, x2, x3").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 1);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn errors_carry_columns_in_raw_coordinates() {
        // The bad register starts at byte 6 of the raw line (1-based col 7),
        // after the `0: ` prefix that parse_program strips.
        let e = parse_program("e", "0: li xbad, 1").unwrap_err();
        assert_eq!((e.line, e.col), (1, 7));
        assert!(e.to_string().contains("column 7"));
        assert!(e.to_string().contains("xbad"));

        // Indented continuation lines shift too.
        let e = parse_program("e", "nop\n   1: cmpi x1, zzz").unwrap_err();
        assert_eq!((e.line, e.col), (2, 16));
    }

    #[test]
    fn bad_register_rejected() {
        assert!(parse_program("e", "li x99, 1").is_err());
        assert!(parse_program("e", "li y1, 1").is_err());
    }

    #[test]
    fn operand_arity_checked() {
        assert!(parse_program("e", "cmp x1").is_err());
        assert!(parse_program("e", "halt x1").is_err());
    }

    #[test]
    fn alui_form_detected_by_suffix() {
        let p = parse_program("a", "Addi x1, x2, 5\nAdd x1, x2, x3\nhalt").unwrap();
        assert!(matches!(p[0], Inst::AluI { op: AluOp::Add, .. }));
        assert!(matches!(p[1], Inst::Alu { op: AluOp::Add, .. }));
    }

    #[test]
    fn whitespace_variants_accepted() {
        let a = parse_inst(1, "ldx x2, (x3 + x1<<3)").unwrap();
        let b = parse_inst(1, "ldx   x2 ,  ( x3 +x1<<3 )").unwrap();
        assert_eq!(a, b);
    }
}
