//! The assembler/parser error type, carrying a source position.

use std::fmt;

/// An error from the text parser or the label assembler.
///
/// Parser errors carry a 1-based `line` and `col` pointing at the offending
/// token in the source listing. Assembler errors (label misuse) have no
/// source text; they carry the instruction index in `line` and `col == 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line (or instruction pc for assembler errors).
    pub line: usize,
    /// 1-based column of the offending token; 0 when not applicable.
    pub col: usize,
    /// Description of the problem.
    pub reason: String,
}

impl AsmError {
    /// A parser error at `line`:`col`.
    pub fn at(line: usize, col: usize, reason: impl Into<String>) -> Self {
        AsmError {
            line,
            col,
            reason: reason.into(),
        }
    }

    /// An assembler error at instruction `pc` (no source column).
    pub fn at_pc(pc: usize, reason: impl Into<String>) -> Self {
        AsmError {
            line: pc,
            col: 0,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(
                f,
                "parse error on line {}, column {}: {}",
                self.line, self.col, self.reason
            )
        } else {
            write!(f, "assembly error: {}", self.reason)
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_when_known() {
        let e = AsmError::at(3, 7, "bad register `x99`");
        assert_eq!(
            e.to_string(),
            "parse error on line 3, column 7: bad register `x99`"
        );
        let a = AsmError::at_pc(5, "unbound label referenced at pc 5");
        assert_eq!(a.to_string(), "assembly error: unbound label referenced at pc 5");
    }
}
