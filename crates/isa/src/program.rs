//! Assembled programs.

use crate::inst::Inst;
use std::fmt;
use std::ops::Index;

/// Maps guest PCs back to the source-level label names the assembler bound
/// there — the moral equivalent of an ELF symbol table, so profilers can
/// print `scan+2` instead of a bare instruction index.
///
/// Symbols are kept sorted by PC; [`SymbolMap::resolve`] charges a PC to the
/// nearest preceding symbol (again like `perf` does for stripped-down symbol
/// tables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolMap {
    /// `(pc, name)` pairs sorted by pc (ties keep insertion order).
    syms: Vec<(usize, String)>,
}

impl SymbolMap {
    /// Builds a map from arbitrary `(pc, name)` pairs.
    pub fn new(mut syms: Vec<(usize, String)>) -> Self {
        syms.sort_by_key(|&(pc, _)| pc);
        SymbolMap { syms }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the map holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Iterates `(pc, name)` in ascending pc order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.syms.iter().map(|(pc, n)| (*pc, n.as_str()))
    }

    /// The pc a symbol name is bound to (first match wins).
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.syms.iter().find(|(_, n)| n == name).map(|&(pc, _)| pc)
    }

    /// Resolves `pc` to the nearest preceding symbol and the offset from it.
    pub fn resolve(&self, pc: usize) -> Option<(&str, usize)> {
        let idx = self.syms.partition_point(|&(sym_pc, _)| sym_pc <= pc);
        let (sym_pc, name) = self.syms.get(idx.checked_sub(1)?)?;
        Some((name.as_str(), pc - sym_pc))
    }

    /// Human-readable form of [`SymbolMap::resolve`]: `name`, `name+off`, or
    /// the bare pc when no symbol precedes it.
    pub fn symbolize(&self, pc: usize) -> String {
        match self.resolve(pc) {
            Some((name, 0)) => name.to_string(),
            Some((name, off)) => format!("{name}+{off}"),
            None => format!("pc {pc}"),
        }
    }
}

/// An assembled, label-resolved program.
///
/// PCs are instruction indices (`0..len`). Programs are produced by
/// [`crate::Assembler::finish`] and are immutable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    symbols: SymbolMap,
}

impl Program {
    /// Creates a program from already-resolved instructions.
    ///
    /// # Panics
    ///
    /// Panics if any branch target is out of range.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        Program::with_symbols(name, insts, SymbolMap::default())
    }

    /// Creates a program carrying a symbol table (named labels the
    /// assembler retained).
    ///
    /// # Panics
    ///
    /// Panics if any branch target is out of range.
    pub fn with_symbols(name: impl Into<String>, insts: Vec<Inst>, symbols: SymbolMap) -> Self {
        let len = insts.len();
        for (pc, inst) in insts.iter().enumerate() {
            if let Inst::B { target, .. } | Inst::J { target } = *inst {
                assert!(
                    target < len,
                    "branch at pc {pc} targets {target} but program has {len} instructions"
                );
            }
        }
        Program {
            name: name.into(),
            insts,
            symbols,
        }
    }

    /// The retained label names, keyed by pc.
    pub fn symbols(&self) -> &SymbolMap {
        &self.symbols
    }

    /// The program's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn get(&self, pc: usize) -> Option<&Inst> {
        self.insts.get(pc)
    }

    /// Iterates over the static instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }
}

impl Index<usize> for Program {
    type Output = Inst;

    fn index(&self, pc: usize) -> &Inst {
        &self.insts[pc]
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program {}", self.name)?;
        for (pc, inst) in self.insts.iter().enumerate() {
            for (sym_pc, name) in self.symbols.iter() {
                if sym_pc == pc {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "{pc:4}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Cond;

    #[test]
    fn round_trip() {
        let p = Program::new("t", vec![Inst::Nop, Inst::Halt]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p[0], Inst::Nop);
        assert_eq!(p.get(2), None);
        assert_eq!(p.name(), "t");
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "targets")]
    fn rejects_out_of_range_branch() {
        let _ = Program::new(
            "bad",
            vec![Inst::B {
                cond: Cond::Eq,
                target: 7,
            }],
        );
    }

    #[test]
    fn display_lists_instructions() {
        let p = Program::new("d", vec![Inst::Nop, Inst::Halt]);
        let s = p.to_string();
        assert!(s.contains("nop"));
        assert!(s.contains("halt"));
    }

    #[test]
    fn symbol_map_resolves_to_nearest_preceding_symbol() {
        let m = SymbolMap::new(vec![(5, "scan".into()), (0, "top".into())]);
        assert_eq!(m.resolve(0), Some(("top", 0)));
        assert_eq!(m.resolve(3), Some(("top", 3)));
        assert_eq!(m.resolve(5), Some(("scan", 0)));
        assert_eq!(m.resolve(9), Some(("scan", 4)));
        assert_eq!(m.lookup("scan"), Some(5));
        assert_eq!(m.lookup("nope"), None);
        assert_eq!(m.symbolize(6), "scan+1");
        assert_eq!(m.symbolize(0), "top");
        assert_eq!(SymbolMap::default().resolve(3), None);
        assert_eq!(SymbolMap::default().symbolize(3), "pc 3");
    }

    #[test]
    fn programs_carry_symbols() {
        let m = SymbolMap::new(vec![(1, "end".into())]);
        let p = Program::with_symbols("s", vec![Inst::Nop, Inst::Halt], m);
        assert_eq!(p.symbols().len(), 1);
        assert_eq!(p.symbols().symbolize(1), "end");
        assert!(p.to_string().contains("end:"));
    }
}
