//! Assembled programs.

use crate::inst::Inst;
use std::fmt;
use std::ops::Index;

/// An assembled, label-resolved program.
///
/// PCs are instruction indices (`0..len`). Programs are produced by
/// [`crate::Assembler::finish`] and are immutable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
}

impl Program {
    /// Creates a program from already-resolved instructions.
    ///
    /// # Panics
    ///
    /// Panics if any branch target is out of range.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        let len = insts.len();
        for (pc, inst) in insts.iter().enumerate() {
            if let Inst::B { target, .. } | Inst::J { target } = *inst {
                assert!(
                    target < len,
                    "branch at pc {pc} targets {target} but program has {len} instructions"
                );
            }
        }
        Program {
            name: name.into(),
            insts,
        }
    }

    /// The program's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn get(&self, pc: usize) -> Option<&Inst> {
        self.insts.get(pc)
    }

    /// Iterates over the static instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }
}

impl Index<usize> for Program {
    type Output = Inst;

    fn index(&self, pc: usize) -> &Inst {
        &self.insts[pc]
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program {}", self.name)?;
        for (pc, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{pc:4}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Cond;

    #[test]
    fn round_trip() {
        let p = Program::new("t", vec![Inst::Nop, Inst::Halt]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p[0], Inst::Nop);
        assert_eq!(p.get(2), None);
        assert_eq!(p.name(), "t");
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "targets")]
    fn rejects_out_of_range_branch() {
        let _ = Program::new(
            "bad",
            vec![Inst::B {
                cond: Cond::Eq,
                target: 7,
            }],
        );
    }

    #[test]
    fn display_lists_instructions() {
        let p = Program::new("d", vec![Inst::Nop, Inst::Halt]);
        let s = p.to_string();
        assert!(s.contains("nop"));
        assert!(s.contains("halt"));
    }
}
