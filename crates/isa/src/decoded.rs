//! Pre-decoded micro-op IR: the execution representation every core model
//! dispatches from.
//!
//! [`DecodedProgram::lower`] translates a [`Program`] once, at load time, into
//! a flat array of [`DecodedOp`]s with
//!
//! * register operands resolved to raw `u8` indices (no `Reg` unwrapping on
//!   the hot path),
//! * immediates pre-extended to `u64` (the `imm as u64` conversion in the old
//!   interpreter loop happens once here),
//! * branch targets pre-checked (`Program` validation guarantees
//!   `target < len`, so they fit in `u32` and need no bounds logic), and
//! * a fused compare+branch hint on every `cmp`/`cmpi` that immediately
//!   precedes a conditional branch.
//!
//! The ops are additionally grouped into basic blocks
//! ([`DecodedProgram::block_starts`]): a block leader is pc 0, any branch
//! target, or the fall-through successor of a control-flow instruction.
//! Timing models use the flat op array; warp mode
//! ([`ArchState::run_decoded`]) additionally exploits the fused hints.
//!
//! # Bit-identity contract
//!
//! [`ArchState::step_op`] is an exact port of the legacy per-`Inst`
//! interpreter: for every instruction it produces the same [`Outcome`], the
//! same register/flags/PC updates, and the same memory traffic. The fused
//! fast path is warp-only and still writes the flags register, so
//! architectural state never diverges between modes.

use crate::exec::{ArchState, DataMemory, Flags, MemAccessKind, Outcome};
use crate::inst::{eval_alu, eval_cond, AluOp, Cond, Inst};
use crate::program::Program;
use crate::reg::NUM_REGS;

/// Sentinel register index meaning "no destination" (covers both
/// destination-less instructions and writes to the hardwired-zero `x0`).
pub const NO_REG: u8 = 0xff;

/// A fully resolved micro-op: raw register indices, pre-extended immediates,
/// pre-computed branch targets. Mirrors [`Inst`] one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// `dst = imm` (`dst` is [`NO_REG`] when the write would hit `x0`).
    Li { dst: u8, imm: u64 },
    /// `dst = op(reg[a], reg[b])`.
    Alu { op: AluOp, dst: u8, a: u8, b: u8 },
    /// `dst = op(reg[src], imm)`.
    AluI { op: AluOp, dst: u8, src: u8, imm: u64 },
    /// `dst = mem[reg[base] + offset]`.
    Ld { dst: u8, base: u8, offset: u64 },
    /// `dst = mem[reg[base] + (reg[index] << shift)]`.
    LdX { dst: u8, base: u8, index: u8, shift: u8 },
    /// `mem[reg[base] + offset] = reg[src]`.
    St { src: u8, base: u8, offset: u64 },
    /// `mem[reg[base] + (reg[index] << shift)] = reg[src]`.
    StX { src: u8, base: u8, index: u8, shift: u8 },
    /// Set flags from `(reg[a], reg[b])`.
    Cmp { a: u8, b: u8 },
    /// Set flags from `(reg[a], imm)`.
    CmpI { a: u8, imm: u64 },
    /// Conditional branch on flags.
    B { cond: Cond, target: u32 },
    /// Unconditional jump.
    J { target: u32 },
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

/// Fused compare+branch hint attached to a `cmp`/`cmpi` whose fall-through
/// successor is a conditional branch. Warp mode executes both instructions in
/// one dispatch; timing models ignore the hint (each op is still scheduled
/// separately, preserving bit-identical reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedBranch {
    /// Condition of the following branch.
    pub cond: Cond,
    /// Taken target of the following branch.
    pub target: u32,
}

/// One pre-decoded instruction slot: the micro-op plus everything the timing
/// models used to recompute per cycle (source list, destination, watchdog
/// classification) and the original [`Inst`] for consumers that still pattern
/// match on it (the SVR engine, the tracer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedOp {
    /// The resolved micro-op.
    pub uop: MicroOp,
    /// The original instruction (SVR engine and trace consumers match on it).
    pub raw: Inst,
    /// Source register indices, in [`Inst::srcs`] order.
    pub srcs: [u8; 3],
    /// Number of valid entries in [`DecodedOp::srcs`].
    pub nsrcs: u8,
    /// Destination register index, or [`NO_REG`] (none, or `x0`).
    pub dst: u8,
    /// Fused compare+branch hint (warp-mode fast path), if any.
    pub fused: Option<FusedBranch>,
    /// Whether executing this op can change architectural state other than
    /// the PC — i.e. it is not a `j`/`b`/`nop`/`halt`. Watchdogs use this to
    /// detect livelock (a loop of effect-free ops makes no forward progress).
    pub has_effect: bool,
}

impl DecodedOp {
    /// Decodes a single instruction (no fusion — that needs the successor,
    /// see [`DecodedProgram::lower`]).
    pub fn from_inst(inst: Inst) -> DecodedOp {
        let uop = match inst {
            Inst::Li { imm, .. } => MicroOp::Li {
                dst: dst_idx(inst),
                imm: imm as u64,
            },
            Inst::Alu { op, a, b, .. } => MicroOp::Alu {
                op,
                dst: dst_idx(inst),
                a: a.index() as u8,
                b: b.index() as u8,
            },
            Inst::AluI { op, src, imm, .. } => MicroOp::AluI {
                op,
                dst: dst_idx(inst),
                src: src.index() as u8,
                imm: imm as u64,
            },
            Inst::Ld { base, offset, .. } => MicroOp::Ld {
                dst: dst_idx(inst),
                base: base.index() as u8,
                offset: offset as u64,
            },
            Inst::LdX {
                base, index, shift, ..
            } => MicroOp::LdX {
                dst: dst_idx(inst),
                base: base.index() as u8,
                index: index.index() as u8,
                shift,
            },
            Inst::St { src, base, offset } => MicroOp::St {
                src: src.index() as u8,
                base: base.index() as u8,
                offset: offset as u64,
            },
            Inst::StX {
                src,
                base,
                index,
                shift,
            } => MicroOp::StX {
                src: src.index() as u8,
                base: base.index() as u8,
                index: index.index() as u8,
                shift,
            },
            Inst::Cmp { a, b } => MicroOp::Cmp {
                a: a.index() as u8,
                b: b.index() as u8,
            },
            Inst::CmpI { a, imm } => MicroOp::CmpI {
                a: a.index() as u8,
                imm: imm as u64,
            },
            Inst::B { cond, target } => MicroOp::B {
                cond,
                target: target as u32,
            },
            Inst::J { target } => MicroOp::J {
                target: target as u32,
            },
            Inst::Nop => MicroOp::Nop,
            Inst::Halt => MicroOp::Halt,
        };
        let mut srcs = [0u8; 3];
        let mut nsrcs = 0u8;
        for (i, r) in inst.srcs().enumerate().take(3) {
            srcs[i] = r.index() as u8;
            nsrcs = i as u8 + 1;
        }
        DecodedOp {
            uop,
            raw: inst,
            srcs,
            nsrcs,
            dst: dst_idx(inst),
            fused: None,
            has_effect: !matches!(
                inst,
                Inst::B { .. } | Inst::J { .. } | Inst::Nop | Inst::Halt
            ),
        }
    }

    /// Source register indices as a slice (in [`Inst::srcs`] order).
    #[inline]
    pub fn src_indices(&self) -> &[u8] {
        &self.srcs[..self.nsrcs as usize]
    }
}

#[inline]
fn dst_idx(inst: Inst) -> u8 {
    match inst.dst() {
        Some(r) => r.index() as u8,
        None => NO_REG,
    }
}

/// A [`Program`] lowered to pre-decoded micro-ops grouped into basic blocks.
///
/// Lower once per run segment; the cores then dispatch by instruction index
/// with no per-cycle decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProgram {
    ops: Vec<DecodedOp>,
    block_starts: Vec<u32>,
    /// `block_end[pc]` = exclusive end of the basic block containing `pc`.
    /// Lets the warp loop retire a whole block off one budget check.
    block_end: Vec<u32>,
    /// `block_has_effect[pc]` = whether any op in `[pc, block_end[pc])` has
    /// an architectural effect. Lets the watched warp loop update its quiet
    /// counter once per block instead of once per op.
    block_has_effect: Vec<bool>,
}

impl DecodedProgram {
    /// Lowers `program` into micro-ops.
    ///
    /// Fusion rule: a `cmp`/`cmpi` at `pc` whose successor at `pc + 1` is a
    /// conditional branch gets a [`FusedBranch`] hint. The hint is always
    /// architecturally safe to take — flags are still written — and the
    /// branch op itself remains at `pc + 1` for direct jumps into it.
    pub fn lower(program: &Program) -> DecodedProgram {
        let mut ops: Vec<DecodedOp> = program.iter().map(|&i| DecodedOp::from_inst(i)).collect();
        for pc in 0..ops.len() {
            if !matches!(ops[pc].uop, MicroOp::Cmp { .. } | MicroOp::CmpI { .. }) {
                continue;
            }
            if let Some(next) = ops.get(pc + 1) {
                if let MicroOp::B { cond, target } = next.uop {
                    ops[pc].fused = Some(FusedBranch { cond, target });
                }
            }
        }

        // Basic-block leaders: entry, branch targets, fall-throughs after
        // control flow (b is conditional, so its fall-through is a leader
        // too; halt ends a block the same way).
        let mut starts: Vec<u32> = Vec::new();
        if !ops.is_empty() {
            starts.push(0);
        }
        for (pc, op) in ops.iter().enumerate() {
            match op.uop {
                MicroOp::B { target, .. } | MicroOp::J { target } => {
                    starts.push(target);
                    if pc + 1 < ops.len() {
                        starts.push(pc as u32 + 1);
                    }
                }
                MicroOp::Halt if pc + 1 < ops.len() => {
                    starts.push(pc as u32 + 1);
                }
                _ => {}
            }
        }
        starts.sort_unstable();
        starts.dedup();
        let mut block_end = vec![ops.len() as u32; ops.len()];
        for w in starts.windows(2) {
            for pc in w[0]..w[1] {
                block_end[pc as usize] = w[1];
            }
        }
        // Indexed by entry pc (not block leader): a run segment can resume
        // mid-block, and the suffix it actually executes is what matters.
        let block_has_effect = (0..ops.len())
            .map(|pc| ops[pc..block_end[pc] as usize].iter().any(|o| o.has_effect))
            .collect();
        DecodedProgram {
            ops,
            block_starts: starts,
            block_end,
            block_has_effect,
        }
    }

    /// The op at `pc`, or `None` past the end.
    #[inline]
    pub fn get(&self, pc: usize) -> Option<&DecodedOp> {
        self.ops.get(pc)
    }

    /// All ops in program order.
    #[inline]
    pub fn ops(&self) -> &[DecodedOp] {
        &self.ops
    }

    /// Number of static micro-ops (equals the source program's length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Basic-block leader PCs, ascending.
    pub fn block_starts(&self) -> &[u32] {
        &self.block_starts
    }

    /// Iterates basic blocks as `(start, end)` half-open pc ranges.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.ops.len();
        self.block_starts.iter().enumerate().map(move |(i, &s)| {
            let end = self
                .block_starts
                .get(i + 1)
                .map(|&e| e as usize)
                .unwrap_or(n);
            (s as usize, end)
        })
    }
}

impl ArchState {
    /// Reads the register at raw index `idx` (callers pass pre-resolved
    /// [`DecodedOp`] indices; `x0` reads 0 by construction).
    #[inline]
    pub fn reg_at(&self, idx: u8) -> u64 {
        self.regs[idx as usize]
    }

    #[inline]
    fn write_idx(&mut self, dst: u8, value: u64) {
        if dst != NO_REG {
            self.regs[dst as usize] = value;
        }
    }

    /// Hot-path source-register read. Source indices come from [`Reg`]
    /// (`< NUM_REGS`) by construction, so the mask is a no-op that lets the
    /// register file index without a bounds check.
    ///
    /// [`Reg`]: crate::reg::Reg
    #[inline(always)]
    fn rd(&self, idx: u8) -> u64 {
        debug_assert!((idx as usize) < NUM_REGS);
        self.regs[idx as usize & (NUM_REGS - 1)]
    }

    /// Executes the pre-decoded op — which must be the op at the current PC —
    /// and advances. This is the single decoded entry point all execution
    /// paths share; it reproduces the legacy interpreter's semantics exactly
    /// (same [`Outcome`], same state updates, same memory traffic).
    #[inline]
    pub fn step_op<M: DataMemory>(&mut self, op: &DecodedOp, mem: &mut M) -> Outcome {
        let pc = self.pc;
        let mut out = Outcome {
            pc,
            next_pc: pc + 1,
            mem: None,
            loaded: None,
            branch: None,
            halted: false,
        };
        match op.uop {
            MicroOp::Li { dst, imm } => self.write_idx(dst, imm),
            MicroOp::Alu { op, dst, a, b } => {
                let v = eval_alu(op, self.regs[a as usize], self.regs[b as usize]);
                self.write_idx(dst, v);
            }
            MicroOp::AluI { op, dst, src, imm } => {
                let v = eval_alu(op, self.regs[src as usize], imm);
                self.write_idx(dst, v);
            }
            MicroOp::Ld { dst, base, offset } => {
                let addr = self.regs[base as usize].wrapping_add(offset);
                let v = mem.read_u64(addr);
                self.write_idx(dst, v);
                out.mem = Some((MemAccessKind::Load, addr));
                out.loaded = Some(v);
            }
            MicroOp::LdX {
                dst,
                base,
                index,
                shift,
            } => {
                let addr = self.regs[base as usize].wrapping_add(self.regs[index as usize] << shift);
                let v = mem.read_u64(addr);
                self.write_idx(dst, v);
                out.mem = Some((MemAccessKind::Load, addr));
                out.loaded = Some(v);
            }
            MicroOp::St { src, base, offset } => {
                let addr = self.regs[base as usize].wrapping_add(offset);
                mem.write_u64(addr, self.regs[src as usize]);
                out.mem = Some((MemAccessKind::Store, addr));
            }
            MicroOp::StX {
                src,
                base,
                index,
                shift,
            } => {
                let addr = self.regs[base as usize].wrapping_add(self.regs[index as usize] << shift);
                mem.write_u64(addr, self.regs[src as usize]);
                out.mem = Some((MemAccessKind::Store, addr));
            }
            MicroOp::Cmp { a, b } => {
                self.flags = Flags {
                    a: self.regs[a as usize],
                    b: self.regs[b as usize],
                };
            }
            MicroOp::CmpI { a, imm } => {
                self.flags = Flags {
                    a: self.regs[a as usize],
                    b: imm,
                };
            }
            MicroOp::B { cond, target } => {
                let taken = eval_cond(cond, self.flags.a, self.flags.b);
                out.branch = Some((taken, target as usize));
                if taken {
                    out.next_pc = target as usize;
                }
            }
            MicroOp::J { target } => {
                out.branch = Some((true, target as usize));
                out.next_pc = target as usize;
            }
            MicroOp::Nop => {}
            MicroOp::Halt => {
                self.halted = true;
                out.halted = true;
                out.next_pc = pc;
            }
        }
        self.pc = out.next_pc;
        out
    }

    /// Warp-mode executor: pure-functional, no timing, no memory hierarchy.
    ///
    /// Runs until halt (explicit, or PC off the end of the program) or until
    /// `max_insts` instructions retire; returns the retired count. Retired
    /// counts match detailed mode exactly: `halt` retires, running off the
    /// end does not, and a fused compare+branch retires as two instructions
    /// (the fused path falls back to single-op dispatch when fewer than two
    /// budget slots remain, so capped runs stop at the same instruction in
    /// every mode).
    pub fn run_decoded<M: DataMemory>(
        &mut self,
        prog: &DecodedProgram,
        mem: &mut M,
        max_insts: u64,
    ) -> u64 {
        let mut quiet = 0;
        self.run_decoded_watched(prog, mem, max_insts, u64::MAX, &mut quiet)
            .0
    }

    /// [`Self::run_decoded`] with a forward-progress watchdog.
    ///
    /// `quiet` counts consecutive retired instructions with no architectural
    /// effect ([`DecodedOp::has_effect`]); any effectful retirement resets it
    /// to zero. When the count exceeds `window` the run stops and returns
    /// `Some(pc)` of the instruction about to dispatch — under warp there are
    /// no cycles, so a loop that retires only `j`/`b`/`nop` is the only way
    /// to spin without ever reaching `max_insts`' worth of *useful* work,
    /// and `window` bounds how long such a spin may run. The counter is
    /// caller-owned so it carries across segmented runs (sampling alternates
    /// many short warp segments; a livelock spanning segments still trips).
    pub fn run_decoded_watched<M: DataMemory>(
        &mut self,
        prog: &DecodedProgram,
        mem: &mut M,
        max_insts: u64,
        window: u64,
        quiet: &mut u64,
    ) -> (u64, Option<usize>) {
        // This is the warp-mode hot loop: it re-implements [`Self::step_op`]'s
        // state updates with the PC and flags in locals and no [`Outcome`]
        // construction (the struct exists for timing-model callers; building
        // and discarding it here costs ~2× on pure-functional throughput).
        // `step_op_matches_legacy_interpreter` and the lockstep tests below
        // pin the two paths to identical architectural behaviour. The quiet
        // counter is maintained per *block* on the fast path, so the
        // unwatched wrapper (window = `u64::MAX`) pays two or three extra
        // ops per block, not per instruction.
        if self.halted {
            return (0, None);
        }
        let ops = prog.ops();
        let mut pc = self.pc;
        let mut flags = self.flags;
        let mut n = 0;
        while n < max_insts {
            if pc >= ops.len() {
                self.halted = true;
                break;
            }
            if *quiet > window {
                self.pc = pc;
                self.flags = flags;
                return (n, Some(pc));
            }
            // Block fast path: when the rest of the current basic block fits
            // in the remaining budget, retire it off this one check — no
            // per-op budget or bounds tests, and fused pairs are always
            // eligible. Control flow only happens at a block's last op, so
            // straight-line ops need no PC bookkeeping either.
            let end = prog.block_end[pc] as usize;
            if n + (end - pc) as u64 <= max_insts {
                let base = pc;
                let block = &ops[base..end];
                n += block.len() as u64;
                pc = end; // fall-through default; control ops overwrite
                let mut i = 0;
                while i < block.len() {
                    let op = &block[i];
                    match op.uop {
                        MicroOp::Li { dst, imm } => self.write_idx(dst, imm),
                        MicroOp::Alu { op, dst, a, b } => {
                            let v = eval_alu(op, self.rd(a), self.rd(b));
                            self.write_idx(dst, v);
                        }
                        MicroOp::AluI { op, dst, src, imm } => {
                            let v = eval_alu(op, self.rd(src), imm);
                            self.write_idx(dst, v);
                        }
                        MicroOp::Ld { dst, base, offset } => {
                            let addr = self.rd(base).wrapping_add(offset);
                            let v = mem.read_u64(addr);
                            self.write_idx(dst, v);
                        }
                        MicroOp::LdX {
                            dst,
                            base,
                            index,
                            shift,
                        } => {
                            let addr = self.rd(base).wrapping_add(self.rd(index) << shift);
                            let v = mem.read_u64(addr);
                            self.write_idx(dst, v);
                        }
                        MicroOp::St { src, base, offset } => {
                            let addr = self.rd(base).wrapping_add(offset);
                            mem.write_u64(addr, self.rd(src));
                        }
                        MicroOp::StX {
                            src,
                            base,
                            index,
                            shift,
                        } => {
                            let addr = self.rd(base).wrapping_add(self.rd(index) << shift);
                            mem.write_u64(addr, self.rd(src));
                        }
                        MicroOp::Cmp { a, b } => {
                            let (va, vb) = (self.rd(a), self.rd(b));
                            flags = Flags { a: va, b: vb };
                            // The fused branch sits at i + 1; it is inside
                            // this block unless it is itself a jump target
                            // (then the block ends at the compare and the
                            // branch dispatches on the next outer iteration).
                            if i + 1 < block.len() {
                                if let Some(f) = op.fused {
                                    if eval_cond(f.cond, va, vb) {
                                        pc = f.target as usize;
                                    }
                                    break;
                                }
                            }
                        }
                        MicroOp::CmpI { a, imm } => {
                            let va = self.rd(a);
                            flags = Flags { a: va, b: imm };
                            if i + 1 < block.len() {
                                if let Some(f) = op.fused {
                                    if eval_cond(f.cond, va, imm) {
                                        pc = f.target as usize;
                                    }
                                    break;
                                }
                            }
                        }
                        MicroOp::B { cond, target } => {
                            if eval_cond(cond, flags.a, flags.b) {
                                pc = target as usize;
                            }
                        }
                        MicroOp::J { target } => pc = target as usize,
                        MicroOp::Nop => {}
                        MicroOp::Halt => {
                            self.halted = true;
                            pc = base + i;
                        }
                    }
                    i += 1;
                }
                if prog.block_has_effect[base] {
                    *quiet = 0;
                } else {
                    *quiet = quiet.saturating_add(block.len() as u64);
                }
                if self.halted {
                    break;
                }
                continue;
            }
            // Budget tail: fewer slots remain than the block needs, so fall
            // back to one-op-at-a-time dispatch with per-op budget checks
            // (and the fused fallback at the budget edge).
            let op = &ops[pc];
            let effect = op.has_effect;
            match op.uop {
                MicroOp::Li { dst, imm } => {
                    self.write_idx(dst, imm);
                    pc += 1;
                }
                MicroOp::Alu { op, dst, a, b } => {
                    let v = eval_alu(op, self.rd(a), self.rd(b));
                    self.write_idx(dst, v);
                    pc += 1;
                }
                MicroOp::AluI { op, dst, src, imm } => {
                    let v = eval_alu(op, self.rd(src), imm);
                    self.write_idx(dst, v);
                    pc += 1;
                }
                MicroOp::Ld { dst, base, offset } => {
                    let addr = self.rd(base).wrapping_add(offset);
                    let v = mem.read_u64(addr);
                    self.write_idx(dst, v);
                    pc += 1;
                }
                MicroOp::LdX {
                    dst,
                    base,
                    index,
                    shift,
                } => {
                    let addr = self.rd(base).wrapping_add(self.rd(index) << shift);
                    let v = mem.read_u64(addr);
                    self.write_idx(dst, v);
                    pc += 1;
                }
                MicroOp::St { src, base, offset } => {
                    let addr = self.rd(base).wrapping_add(offset);
                    mem.write_u64(addr, self.rd(src));
                    pc += 1;
                }
                MicroOp::StX {
                    src,
                    base,
                    index,
                    shift,
                } => {
                    let addr = self.rd(base).wrapping_add(self.rd(index) << shift);
                    mem.write_u64(addr, self.rd(src));
                    pc += 1;
                }
                MicroOp::Cmp { a, b } => {
                    let (va, vb) = (self.rd(a), self.rd(b));
                    flags = Flags { a: va, b: vb };
                    // Fused compare+branch: both instructions retire in one
                    // dispatch when two budget slots remain; otherwise fall
                    // back to the compare alone so capped runs stop at the
                    // same instruction as detailed mode.
                    if let Some(f) = op.fused {
                        if n + 2 <= max_insts {
                            pc = if eval_cond(f.cond, va, vb) {
                                f.target as usize
                            } else {
                                pc + 2
                            };
                            n += 2;
                            *quiet = 1; // effectful cmp resets; the branch adds one
                            continue;
                        }
                    }
                    pc += 1;
                }
                MicroOp::CmpI { a, imm } => {
                    let va = self.rd(a);
                    flags = Flags { a: va, b: imm };
                    if let Some(f) = op.fused {
                        if n + 2 <= max_insts {
                            pc = if eval_cond(f.cond, va, imm) {
                                f.target as usize
                            } else {
                                pc + 2
                            };
                            n += 2;
                            *quiet = 1;
                            continue;
                        }
                    }
                    pc += 1;
                }
                MicroOp::B { cond, target } => {
                    pc = if eval_cond(cond, flags.a, flags.b) {
                        target as usize
                    } else {
                        pc + 1
                    };
                }
                MicroOp::J { target } => pc = target as usize,
                MicroOp::Nop => pc += 1,
                MicroOp::Halt => {
                    self.halted = true;
                    n += 1;
                    break;
                }
            }
            n += 1;
            if effect {
                *quiet = 0;
            } else {
                *quiet = quiet.saturating_add(1);
            }
        }
        self.pc = pc;
        self.flags = flags;
        (n, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::exec::VecMemory;
    use crate::reg::Reg;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn sum_program() -> Program {
        let mut asm = Assembler::new("sum");
        let top = asm.label();
        asm.bind(top);
        asm.ldx(r(5), r(1), r(3), 3);
        asm.alu(AluOp::Add, r(4), r(4), r(5));
        asm.alui(AluOp::Add, r(3), r(3), 1);
        asm.cmp(r(3), r(2));
        asm.b(Cond::Ne, top);
        asm.halt();
        asm.finish()
    }

    #[test]
    fn lowering_resolves_operands_and_fuses() {
        let p = sum_program();
        let d = DecodedProgram::lower(&p);
        assert_eq!(d.len(), p.len());
        // ldx srcs = [base, index]
        let ldx = d.get(0).unwrap();
        assert_eq!(ldx.src_indices(), &[1, 3]);
        assert_eq!(ldx.dst, 5);
        assert!(ldx.has_effect);
        // cmp at pc 3 fuses with b at pc 4
        let cmp = d.get(3).unwrap();
        assert_eq!(
            cmp.fused,
            Some(FusedBranch {
                cond: Cond::Ne,
                target: 0
            })
        );
        // the branch op itself carries no fusion and no effect
        let b = d.get(4).unwrap();
        assert!(b.fused.is_none());
        assert!(!b.has_effect);
    }

    #[test]
    fn basic_blocks_cover_program() {
        let p = sum_program();
        let d = DecodedProgram::lower(&p);
        // leaders: 0 (entry + loop target), 5 (fall-through of b)
        assert_eq!(d.block_starts(), &[0, 5]);
        let blocks: Vec<_> = d.blocks().collect();
        assert_eq!(blocks, vec![(0, 5), (5, 6)]);
        // blocks tile the program exactly
        assert_eq!(blocks.iter().map(|(s, e)| e - s).sum::<usize>(), d.len());
    }

    #[test]
    fn step_op_matches_legacy_interpreter() {
        let p = sum_program();
        let d = DecodedProgram::lower(&p);
        let mut mem_a = VecMemory::from_words(vec![7, 11, 13, 17]);
        let mut mem_b = mem_a.clone();
        let mut legacy = ArchState::new();
        legacy.set_reg(r(2), 4);
        let mut decoded = legacy.clone();
        loop {
            let a = legacy.step(&p, &mut mem_a);
            let b = match d.get(decoded.pc()) {
                Some(op) if !decoded.halted() => Some(decoded.step_op(op, &mut mem_b)),
                _ => None,
            };
            assert_eq!(a, b);
            assert_eq!(legacy, decoded);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(mem_a, mem_b);
    }

    #[test]
    fn warp_matches_stepwise_execution_and_counts() {
        let p = sum_program();
        let d = DecodedProgram::lower(&p);
        let mut mem_a = VecMemory::from_words(vec![1, 2, 3, 4]);
        let mut mem_b = mem_a.clone();
        let mut slow = ArchState::new();
        slow.set_reg(r(2), 4);
        let mut fast = slow.clone();
        let slow_n = slow.run(&p, &mut mem_a, u64::MAX);
        let fast_n = fast.run_decoded(&d, &mut mem_b, u64::MAX);
        assert_eq!(slow_n, fast_n);
        assert_eq!(slow, fast);
        assert_eq!(mem_a, mem_b);
        assert_eq!(fast.reg(r(4)), 10);
    }

    #[test]
    fn warp_budget_parity_at_fused_boundary() {
        // Cap the run so it ends exactly on the cmp of a fused pair: the
        // fused path must fall back and retire the cmp alone.
        let p = sum_program();
        let d = DecodedProgram::lower(&p);
        for cap in 0..=12u64 {
            let mut mem_a = VecMemory::from_words(vec![1, 2, 3, 4]);
            let mut mem_b = mem_a.clone();
            let mut slow = ArchState::new();
            slow.set_reg(r(2), 4);
            let mut fast = slow.clone();
            let slow_n = slow.run(&p, &mut mem_a, cap);
            let fast_n = fast.run_decoded(&d, &mut mem_b, cap);
            assert_eq!(slow_n, fast_n, "cap {cap}");
            assert_eq!(slow, fast, "cap {cap}");
            assert_eq!(mem_a, mem_b, "cap {cap}");
        }
    }

    #[test]
    fn run_decoded_off_end_halts_uncounted() {
        let p = Program::new("end", vec![Inst::Nop]);
        let d = DecodedProgram::lower(&p);
        let mut mem = VecMemory::new();
        let mut st = ArchState::new();
        assert_eq!(st.run_decoded(&d, &mut mem, 10), 1);
        assert!(st.halted());
        // a halted state retires nothing more
        assert_eq!(st.run_decoded(&d, &mut mem, 10), 0);
    }

    #[test]
    fn watched_run_trips_on_effect_free_spin() {
        // `j @self`: the only block is effect-free, so the quiet counter
        // grows by one per retirement and trips just past the window.
        let p = Program::new("spin", vec![Inst::J { target: 0 }]);
        let d = DecodedProgram::lower(&p);
        let mut mem = VecMemory::new();
        let mut st = ArchState::new();
        let mut quiet = 0;
        let (n, trip) = st.run_decoded_watched(&d, &mut mem, u64::MAX, 100, &mut quiet);
        assert_eq!(trip, Some(0), "spin pc is reported");
        assert!(!st.halted());
        assert!((100..=102).contains(&n), "trips just past the window, not before: {n}");

        // The counter is caller-owned: a spin split across segments still
        // trips, even though each segment alone stays under the window.
        let mut st = ArchState::new();
        let mut quiet = 0;
        let mut tripped = None;
        for _ in 0..10 {
            let (_, trip) = st.run_decoded_watched(&d, &mut mem, 20, 100, &mut quiet);
            if trip.is_some() {
                tripped = trip;
                break;
            }
        }
        assert_eq!(tripped, Some(0), "quiet carries across segments");

        // A healthy loop (effectful body) never trips and matches the
        // unwatched path's retirement count.
        let p = sum_program();
        let d = DecodedProgram::lower(&p);
        let mut mem_a = VecMemory::from_words(vec![1, 2, 3, 4]);
        let mut mem_b = mem_a.clone();
        let mut watched = ArchState::new();
        watched.set_reg(r(2), 4);
        let mut plain = watched.clone();
        let mut quiet = 0;
        let (n, trip) = watched.run_decoded_watched(&d, &mut mem_a, u64::MAX, 2, &mut quiet);
        assert_eq!(trip, None, "effectful loops reset the quiet counter");
        assert_eq!(n, plain.run_decoded(&d, &mut mem_b, u64::MAX));
        assert_eq!(watched, plain);
    }

    #[test]
    fn x0_writes_discarded_in_decoded_path() {
        let p = Program::new(
            "z",
            vec![
                Inst::Li {
                    dst: Reg::new(0),
                    imm: 42,
                },
                Inst::Halt,
            ],
        );
        let d = DecodedProgram::lower(&p);
        assert_eq!(d.get(0).unwrap().dst, NO_REG);
        let mut mem = VecMemory::new();
        let mut st = ArchState::new();
        st.run_decoded(&d, &mut mem, 10);
        assert_eq!(st.reg(Reg::new(0)), 0);
    }
}
