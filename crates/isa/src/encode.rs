//! A fixed-width 64-bit binary encoding for the ISA.
//!
//! The simulator executes structured [`Inst`] values directly, but an
//! on-disk/program-image format is useful for tooling (dumping compiled
//! workloads, diffing programs, hashing program text) and pins down the
//! instruction-footprint numbers used by the I-side model. The encoding is
//! deliberately simple: one 64-bit word per instruction.
//!
//! Layout (LSB first):
//! `[7:0] opcode | [12:8] rd | [17:13] ra | [22:18] rb | [26:23] aluop |
//!  [31:27] shift/cond | [63:32] imm32 (sign-extended on decode)`
//!
//! Branch targets and large immediates must fit in 32 bits; encoding
//! returns an error otherwise.

use crate::inst::{AluOp, Cond, Inst};
use crate::program::Program;
use crate::reg::Reg;
use std::fmt;

/// Error produced when a program cannot be encoded losslessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// PC of the offending instruction.
    pub pc: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot encode instruction at pc {}: {}",
            self.pc, self.reason
        )
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when a word does not decode to a valid instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Index of the offending word.
    pub index: usize,
    /// The raw word.
    pub word: u64,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot decode word {:#018x} at index {}",
            self.word, self.index
        )
    }
}

impl std::error::Error for DecodeError {}

const OP_LI: u64 = 1;
const OP_ALU: u64 = 2;
const OP_ALUI: u64 = 3;
const OP_LD: u64 = 4;
const OP_LDX: u64 = 5;
const OP_ST: u64 = 6;
const OP_STX: u64 = 7;
const OP_CMP: u64 = 8;
const OP_CMPI: u64 = 9;
const OP_B: u64 = 10;
const OP_J: u64 = 11;
const OP_NOP: u64 = 12;
const OP_HALT: u64 = 13;

fn alu_code(op: AluOp) -> u64 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Divu => 3,
        AluOp::Remu => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Sll => 8,
        AluOp::Srl => 9,
        AluOp::Sra => 10,
        AluOp::Min => 11,
        AluOp::Max => 12,
        AluOp::Sltu => 13,
    }
}

fn alu_from(code: u64) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Divu,
        4 => AluOp::Remu,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Sll,
        9 => AluOp::Srl,
        10 => AluOp::Sra,
        11 => AluOp::Min,
        12 => AluOp::Max,
        13 => AluOp::Sltu,
        _ => return None,
    })
}

fn cond_code(c: Cond) -> u64 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Ltu => 4,
        Cond::Geu => 5,
    }
}

fn cond_from(code: u64) -> Option<Cond> {
    Some(match code {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Ge,
        4 => Cond::Ltu,
        5 => Cond::Geu,
        _ => return None,
    })
}

fn imm32(pc: usize, value: i64) -> Result<u64, EncodeError> {
    i32::try_from(value)
        .map(|v| (v as u32 as u64) << 32)
        .map_err(|_| EncodeError {
            pc,
            reason: format!("immediate {value} does not fit in 32 bits"),
        })
}

fn pack(op: u64, rd: u64, ra: u64, rb: u64, aux: u64, misc: u64) -> u64 {
    op | (rd << 8) | (ra << 13) | (rb << 18) | (aux << 23) | (misc << 27)
}

/// Encodes one instruction at `pc` into a 64-bit word.
///
/// # Errors
///
/// Returns [`EncodeError`] if an immediate or branch target exceeds the
/// 32-bit field.
pub fn encode_inst(pc: usize, inst: &Inst) -> Result<u64, EncodeError> {
    let r = |reg: Reg| reg.index() as u64;
    Ok(match *inst {
        Inst::Li { dst, imm } => pack(OP_LI, r(dst), 0, 0, 0, 0) | imm32(pc, imm)?,
        Inst::Alu { op, dst, a, b } => pack(OP_ALU, r(dst), r(a), r(b), alu_code(op), 0),
        Inst::AluI { op, dst, src, imm } => {
            pack(OP_ALUI, r(dst), r(src), 0, alu_code(op), 0) | imm32(pc, imm)?
        }
        Inst::Ld { dst, base, offset } => {
            pack(OP_LD, r(dst), r(base), 0, 0, 0) | imm32(pc, offset)?
        }
        Inst::LdX {
            dst,
            base,
            index,
            shift,
        } => pack(OP_LDX, r(dst), r(base), r(index), 0, shift as u64),
        Inst::St { src, base, offset } => {
            pack(OP_ST, r(src), r(base), 0, 0, 0) | imm32(pc, offset)?
        }
        Inst::StX {
            src,
            base,
            index,
            shift,
        } => pack(OP_STX, r(src), r(base), r(index), 0, shift as u64),
        Inst::Cmp { a, b } => pack(OP_CMP, 0, r(a), r(b), 0, 0),
        Inst::CmpI { a, imm } => pack(OP_CMPI, 0, r(a), 0, 0, 0) | imm32(pc, imm)?,
        Inst::B { cond, target } => {
            pack(OP_B, 0, 0, 0, 0, cond_code(cond)) | imm32(pc, target as i64)?
        }
        Inst::J { target } => pack(OP_J, 0, 0, 0, 0, 0) | imm32(pc, target as i64)?,
        Inst::Nop => pack(OP_NOP, 0, 0, 0, 0, 0),
        Inst::Halt => pack(OP_HALT, 0, 0, 0, 0, 0),
    })
}

/// Decodes one 64-bit word.
///
/// # Errors
///
/// Returns [`DecodeError`] for unknown opcodes or field values.
pub fn decode_inst(index: usize, word: u64) -> Result<Inst, DecodeError> {
    let err = || DecodeError { index, word };
    let op = word & 0xff;
    let rd = Reg::new(((word >> 8) & 31) as u8);
    let ra = Reg::new(((word >> 13) & 31) as u8);
    let rb = Reg::new(((word >> 18) & 31) as u8);
    let aux = (word >> 23) & 15;
    let misc = (word >> 27) & 31;
    let imm = (word >> 32) as u32 as i32 as i64;
    Ok(match op {
        OP_LI => Inst::Li { dst: rd, imm },
        OP_ALU => Inst::Alu {
            op: alu_from(aux).ok_or_else(err)?,
            dst: rd,
            a: ra,
            b: rb,
        },
        OP_ALUI => Inst::AluI {
            op: alu_from(aux).ok_or_else(err)?,
            dst: rd,
            src: ra,
            imm,
        },
        OP_LD => Inst::Ld {
            dst: rd,
            base: ra,
            offset: imm,
        },
        OP_LDX => Inst::LdX {
            dst: rd,
            base: ra,
            index: rb,
            shift: misc as u8,
        },
        OP_ST => Inst::St {
            src: rd,
            base: ra,
            offset: imm,
        },
        OP_STX => Inst::StX {
            src: rd,
            base: ra,
            index: rb,
            shift: misc as u8,
        },
        OP_CMP => Inst::Cmp { a: ra, b: rb },
        OP_CMPI => Inst::CmpI { a: ra, imm },
        OP_B => Inst::B {
            cond: cond_from(misc).ok_or_else(err)?,
            target: imm as usize,
        },
        OP_J => Inst::J {
            target: imm as usize,
        },
        OP_NOP => Inst::Nop,
        OP_HALT => Inst::Halt,
        _ => return Err(err()),
    })
}

/// Encodes a whole program into its binary image.
///
/// # Errors
///
/// Propagates the first [`EncodeError`].
pub fn encode_program(program: &Program) -> Result<Vec<u64>, EncodeError> {
    program
        .iter()
        .enumerate()
        .map(|(pc, i)| encode_inst(pc, i))
        .collect()
}

/// Decodes a binary image back into a program named `name`.
///
/// # Errors
///
/// Propagates the first [`DecodeError`].
pub fn decode_program(name: &str, words: &[u64]) -> Result<Program, DecodeError> {
    let insts: Result<Vec<Inst>, DecodeError> = words
        .iter()
        .enumerate()
        .map(|(i, &w)| decode_inst(i, w))
        .collect();
    Ok(Program::new(name, insts?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn all_instruction_kinds() -> Vec<Inst> {
        let r = |i: u8| Reg::new(i);
        vec![
            Inst::Li { dst: r(1), imm: -5 },
            Inst::Alu {
                op: AluOp::Xor,
                dst: r(2),
                a: r(3),
                b: r(4),
            },
            Inst::AluI {
                op: AluOp::Sll,
                dst: r(5),
                src: r(6),
                imm: 63,
            },
            Inst::Ld {
                dst: r(7),
                base: r(8),
                offset: -128,
            },
            Inst::LdX {
                dst: r(9),
                base: r(10),
                index: r(11),
                shift: 3,
            },
            Inst::St {
                src: r(12),
                base: r(13),
                offset: 4096,
            },
            Inst::StX {
                src: r(14),
                base: r(15),
                index: r(16),
                shift: 6,
            },
            Inst::Cmp { a: r(17), b: r(18) },
            Inst::CmpI {
                a: r(19),
                imm: 100_000,
            },
            Inst::B {
                cond: Cond::Geu,
                target: 0,
            },
            Inst::J { target: 1 },
            Inst::Nop,
            Inst::Halt,
        ]
    }

    #[test]
    fn round_trip_every_kind() {
        for (pc, inst) in all_instruction_kinds().into_iter().enumerate() {
            let w = encode_inst(pc, &inst).expect("encodable");
            let back = decode_inst(pc, w).expect("decodable");
            assert_eq!(back, inst, "word {w:#x}");
        }
    }

    #[test]
    fn round_trip_every_aluop_and_cond() {
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Divu,
            AluOp::Remu,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Min,
            AluOp::Max,
            AluOp::Sltu,
        ] {
            let i = Inst::Alu {
                op,
                dst: Reg::new(1),
                a: Reg::new(2),
                b: Reg::new(3),
            };
            assert_eq!(decode_inst(0, encode_inst(0, &i).unwrap()).unwrap(), i);
        }
        for cond in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu] {
            let i = Inst::B { cond, target: 7 };
            let w = encode_inst(0, &i).unwrap();
            // Target must be valid when decoding standalone.
            assert_eq!(decode_inst(0, w).unwrap(), i);
        }
    }

    #[test]
    fn program_round_trip() {
        let mut asm = Assembler::new("rt");
        let top = asm.label();
        asm.bind(top);
        asm.li(Reg::new(1), 42);
        asm.cmpi(Reg::new(1), 0);
        asm.b(Cond::Ne, top);
        asm.halt();
        let p = asm.finish();
        let words = encode_program(&p).expect("encodable");
        assert_eq!(words.len(), p.len());
        let back = decode_program("rt", &words).expect("decodable");
        assert_eq!(back, Program::new("rt", p.iter().copied().collect()));
    }

    #[test]
    fn oversized_immediate_rejected() {
        let i = Inst::Li {
            dst: Reg::new(1),
            imm: i64::MAX,
        };
        let e = encode_inst(3, &i).unwrap_err();
        assert_eq!(e.pc, 3);
        assert!(e.to_string().contains("32 bits"));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let e = decode_inst(0, 0xff).unwrap_err();
        assert_eq!(e.word, 0xff);
        assert!(e.to_string().contains("cannot decode"));
    }

    #[test]
    fn unknown_aluop_rejected() {
        // OP_ALU with aux = 15 (invalid).
        let w = OP_ALU | (15u64 << 23);
        assert!(decode_inst(0, w).is_err());
    }
}
