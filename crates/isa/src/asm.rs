//! A tiny assembler with forward/backward label resolution.

use crate::error::AsmError;
use crate::inst::{AluOp, Cond, Inst};
use crate::program::{Program, SymbolMap};
use crate::reg::Reg;

/// An opaque label handle produced by [`Assembler::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`Program`] instruction by instruction, resolving labels at
/// [`Assembler::finish`] time.
///
/// # Examples
///
/// ```
/// use svr_isa::{Assembler, Reg, Cond};
/// let mut asm = Assembler::new("spin");
/// let i = Reg::new(1);
/// asm.li(i, 3);
/// let top = asm.label();
/// asm.bind(top);
/// asm.alui(svr_isa::AluOp::Sub, i, i, 1);
/// asm.cmpi(i, 0);
/// asm.b(Cond::Ne, top);
/// asm.halt();
/// let p = asm.finish();
/// assert_eq!(p.len(), 5);
/// ```
#[derive(Debug)]
pub struct Assembler {
    name: String,
    insts: Vec<Inst>,
    /// For each instruction, the label it references (branches only).
    fixups: Vec<(usize, Label)>,
    /// Label id -> bound pc.
    bindings: Vec<Option<usize>>,
    /// Label id -> retained name ([`Assembler::named_label`] only); bound
    /// named labels become the program's [`SymbolMap`].
    names: Vec<Option<String>>,
}

impl Assembler {
    /// Creates an empty assembler for a program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Assembler {
            name: name.into(),
            insts: Vec::new(),
            fixups: Vec::new(),
            bindings: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.bindings.push(None);
        self.names.push(None);
        Label(self.bindings.len() - 1)
    }

    /// Allocates a fresh, unbound label whose name is retained: once bound,
    /// it appears in the finished program's [`SymbolMap`], so profilers can
    /// report `name+offset` instead of raw PCs.
    pub fn named_label(&mut self, name: impl Into<String>) -> Label {
        let l = self.label();
        self.names[l.0] = Some(name.into());
        l
    }

    /// Binds `label` to the current position (the next emitted instruction).
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound. Use [`Assembler::try_bind`]
    /// when the label comes from untrusted input.
    pub fn bind(&mut self, label: Label) {
        self.try_bind(label).unwrap_or_else(|e| panic!("{}", e.reason));
    }

    /// Fallible form of [`Assembler::bind`]: errors instead of panicking if
    /// the label was already bound.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] (with the current pc in `line`) on a double
    /// bind.
    pub fn try_bind(&mut self, label: Label) -> Result<(), AsmError> {
        if self.bindings[label.0].is_some() {
            return Err(AsmError::at_pc(
                self.insts.len(),
                format!("label bound twice at pc {}", self.insts.len()),
            ));
        }
        self.bindings[label.0] = Some(self.insts.len());
        Ok(())
    }

    /// The PC of the next emitted instruction.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Emits `li dst, imm`.
    pub fn li(&mut self, dst: Reg, imm: i64) {
        self.push(Inst::Li { dst, imm });
    }

    /// Emits a register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) {
        self.push(Inst::Alu { op, dst, a, b });
    }

    /// Emits a register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, dst: Reg, src: Reg, imm: i64) {
        self.push(Inst::AluI { op, dst, src, imm });
    }

    /// Emits `mv dst, src` (encoded as `addi dst, src, 0`).
    pub fn mv(&mut self, dst: Reg, src: Reg) {
        self.alui(AluOp::Add, dst, src, 0);
    }

    /// Emits `ld dst, offset(base)`.
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.push(Inst::Ld { dst, base, offset });
    }

    /// Emits `ldx dst, (base + index<<shift)`.
    pub fn ldx(&mut self, dst: Reg, base: Reg, index: Reg, shift: u8) {
        self.push(Inst::LdX {
            dst,
            base,
            index,
            shift,
        });
    }

    /// Emits `st src, offset(base)`.
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) {
        self.push(Inst::St { src, base, offset });
    }

    /// Emits `stx src, (base + index<<shift)`.
    pub fn stx(&mut self, src: Reg, base: Reg, index: Reg, shift: u8) {
        self.push(Inst::StX {
            src,
            base,
            index,
            shift,
        });
    }

    /// Emits `cmp a, b`.
    pub fn cmp(&mut self, a: Reg, b: Reg) {
        self.push(Inst::Cmp { a, b });
    }

    /// Emits `cmpi a, imm`.
    pub fn cmpi(&mut self, a: Reg, imm: i64) {
        self.push(Inst::CmpI { a, imm });
    }

    /// Emits a conditional branch to `label`.
    pub fn b(&mut self, cond: Cond, label: Label) {
        let pc = self.insts.len();
        self.fixups.push((pc, label));
        self.push(Inst::B { cond, target: 0 });
    }

    /// Emits an unconditional jump to `label`.
    pub fn j(&mut self, label: Label) {
        let pc = self.insts.len();
        self.fixups.push((pc, label));
        self.push(Inst::J { target: 0 });
    }

    /// Emits `nop`.
    pub fn nop(&mut self) {
        self.push(Inst::Nop);
    }

    /// Emits `halt`.
    pub fn halt(&mut self) {
        self.push(Inst::Halt);
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound. Use
    /// [`Assembler::try_finish`] when the program comes from untrusted input.
    pub fn finish(self) -> Program {
        self.try_finish().unwrap_or_else(|e| panic!("{}", e.reason))
    }

    /// Fallible form of [`Assembler::finish`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] (with the referencing pc in `line`) if any
    /// referenced label was never bound.
    pub fn try_finish(mut self) -> Result<Program, AsmError> {
        for &(pc, label) in &self.fixups {
            let Some(target) = self.bindings[label.0] else {
                return Err(AsmError::at_pc(
                    pc,
                    format!("unbound label referenced at pc {pc}"),
                ));
            };
            match &mut self.insts[pc] {
                Inst::B { target: t, .. } | Inst::J { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        let syms = self
            .names
            .iter()
            .enumerate()
            .filter_map(|(id, name)| Some((self.bindings[id]?, name.clone()?)))
            .collect();
        Ok(Program::with_symbols(
            self.name,
            self.insts,
            SymbolMap::new(syms),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn forward_and_backward_labels() {
        let mut asm = Assembler::new("t");
        let fwd = asm.label();
        let back = asm.label();
        asm.bind(back);
        asm.nop(); // pc 0
        asm.b(Cond::Eq, fwd); // pc 1 -> 4
        asm.j(back); // pc 2 -> 0
        asm.nop(); // pc 3
        asm.bind(fwd);
        asm.halt(); // pc 4
        let p = asm.finish();
        assert_eq!(
            p[1],
            Inst::B {
                cond: Cond::Eq,
                target: 4
            }
        );
        assert_eq!(p[2], Inst::J { target: 0 });
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut asm = Assembler::new("t");
        let l = asm.label();
        asm.j(l);
        let _ = asm.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new("t");
        let l = asm.label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn emit_helpers_produce_expected_instructions() {
        let mut asm = Assembler::new("t");
        asm.li(r(1), 7);
        asm.mv(r(2), r(1));
        asm.ld(r(3), r(2), 16);
        asm.stx(r(3), r(2), r(1), 3);
        asm.cmpi(r(1), 0);
        asm.halt();
        let p = asm.finish();
        assert_eq!(p.len(), 6);
        assert_eq!(
            p[1],
            Inst::AluI {
                op: AluOp::Add,
                dst: r(2),
                src: r(1),
                imm: 0
            }
        );
        assert!(p[2].is_load());
        assert!(p[3].is_store());
    }

    #[test]
    fn try_forms_return_structured_errors() {
        let mut asm = Assembler::new("t");
        let l = asm.label();
        asm.bind(l);
        let e = asm.try_bind(l).unwrap_err();
        assert_eq!((e.line, e.col), (0, 0));
        assert!(e.reason.contains("bound twice"));

        let mut asm = Assembler::new("t");
        let l = asm.label();
        asm.nop();
        asm.j(l);
        let e = asm.try_finish().unwrap_err();
        assert_eq!((e.line, e.col), (1, 0));
        assert!(e.to_string().contains("unbound label referenced at pc 1"));
    }

    #[test]
    fn named_labels_round_trip_through_the_symbol_map() {
        let mut asm = Assembler::new("t");
        let top = asm.named_label("top");
        let scan = asm.named_label("scan");
        let anon = asm.label();
        asm.bind(top);
        asm.nop(); // pc 0
        asm.bind(scan);
        asm.nop(); // pc 1
        asm.nop(); // pc 2
        asm.bind(anon);
        asm.halt(); // pc 3
        let p = asm.finish();
        // label -> pc -> label+offset round trip.
        let syms = p.symbols();
        let top_pc = syms.lookup("top").expect("top bound");
        let scan_pc = syms.lookup("scan").expect("scan bound");
        assert_eq!((top_pc, scan_pc), (0, 1));
        assert_eq!(syms.resolve(top_pc), Some(("top", 0)));
        assert_eq!(syms.symbolize(scan_pc + 1), "scan+1");
        // Anonymous labels stay out of the symbol table.
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn unbound_named_label_is_omitted_from_symbols() {
        let mut asm = Assembler::new("t");
        let _unused = asm.named_label("never_bound");
        asm.halt();
        let p = asm.finish();
        assert!(p.symbols().is_empty());
    }

    #[test]
    fn here_tracks_position() {
        let mut asm = Assembler::new("t");
        assert_eq!(asm.here(), 0);
        asm.nop();
        assert_eq!(asm.here(), 1);
    }
}
