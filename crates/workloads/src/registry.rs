//! The workload registry: the paper's suites as enumerable lists.

use crate::graph::GraphInput;
use crate::kernels;
use crate::workload::{Scale, Workload};

/// Workload grouping used by Figs. 3, 13 and 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// Betweenness centrality.
    Bc,
    /// Breadth-first search.
    Bfs,
    /// Connected components.
    Cc,
    /// PageRank.
    Pr,
    /// Single-source shortest paths.
    Sssp,
    /// The HPC/database set.
    HpcDb,
    /// SPEC-like regular workloads (Fig. 14 only).
    Regular,
}

impl Group {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Group::Bc => "BC",
            Group::Bfs => "BFS",
            Group::Cc => "CC",
            Group::Pr => "PR",
            Group::Sssp => "SSSP",
            Group::HpcDb => "HPC-DB",
            Group::Regular => "SPEC",
        }
    }
}

/// A buildable workload identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// GAP Betweenness Centrality on an input graph.
    Bc(GraphInput),
    /// GAP Breadth-First Search on an input graph.
    Bfs(GraphInput),
    /// GAP Connected Components on an input graph.
    Cc(GraphInput),
    /// GAP PageRank on an input graph.
    Pr(GraphInput),
    /// GAP Single-Source Shortest Paths on an input graph.
    Sssp(GraphInput),
    /// Camel stride-indirect microbenchmark.
    Camel,
    /// Graph500 seq-CSR (BFS on Kronecker).
    G500,
    /// Hash join with the given bucket size (2 or 8 in the paper).
    HashJoin(usize),
    /// Kangaroo double indirection.
    Kangaroo,
    /// NAS Conjugate Gradient SpMV.
    NasCg,
    /// NAS Integer Sort ranking.
    NasIs,
    /// HPCC RandomAccess.
    Randacc,
    /// SPEC-like regular kernel by name.
    Regular(&'static str),
    /// Diagnostic: a guest that livelocks (watchdog test target). Not part
    /// of any paper suite.
    DiagSpin,
    /// Diagnostic: a workload whose build panics (harness isolation test
    /// target). Not part of any paper suite.
    DiagPanic,
}

impl Kernel {
    /// Builds the workload at the given scale.
    pub fn build(self, scale: Scale) -> Workload {
        match self {
            Kernel::Bc(g) => kernels::bc(g, scale),
            Kernel::Bfs(g) => kernels::bfs(g, scale),
            Kernel::Cc(g) => kernels::cc(g, scale),
            Kernel::Pr(g) => kernels::pagerank(g, scale),
            Kernel::Sssp(g) => kernels::sssp(g, scale),
            Kernel::Camel => kernels::camel(scale),
            Kernel::G500 => kernels::graph500(scale),
            Kernel::HashJoin(b) => kernels::hashjoin(b, scale),
            Kernel::Kangaroo => kernels::kangaroo(scale),
            Kernel::NasCg => kernels::nas_cg(scale),
            Kernel::NasIs => kernels::nas_is(scale),
            Kernel::Regular(name) => kernels::spec_like(name, scale),
            Kernel::Randacc => kernels::randacc(scale),
            Kernel::DiagSpin => kernels::livelock(scale),
            Kernel::DiagPanic => kernels::panic_on_build(scale),
        }
    }

    /// Display name, matching the paper's x-axis labels.
    pub fn name(self) -> String {
        match self {
            Kernel::Bc(g) => format!("BC_{}", g.label()),
            Kernel::Bfs(g) => format!("BFS_{}", g.label()),
            Kernel::Cc(g) => format!("CC_{}", g.label()),
            Kernel::Pr(g) => format!("PR_{}", g.label()),
            Kernel::Sssp(g) => format!("SSSP_{}", g.label()),
            Kernel::Camel => "Camel".into(),
            Kernel::G500 => "G500".into(),
            Kernel::HashJoin(b) => format!("HJ{b}"),
            Kernel::Kangaroo => "Kangr".into(),
            Kernel::NasCg => "NAS-CG".into(),
            Kernel::NasIs => "NAS-IS".into(),
            Kernel::Randacc => "Randacc".into(),
            Kernel::Regular(name) => name.into(),
            Kernel::DiagSpin => "DiagSpin".into(),
            Kernel::DiagPanic => "DiagPanic".into(),
        }
    }

    /// Resolves a kernel from its display name (`PR_KR`, `Camel`, `HJ8`,
    /// ...), searching the irregular and regular suites plus the diagnostic
    /// kernels (`DiagSpin`, `DiagPanic`). This is the inverse of
    /// [`Kernel::name`] for every kernel the harness can address — CLI
    /// positional arguments and the simulation server's wire protocol both
    /// resolve through here.
    pub fn from_name(name: &str) -> Option<Kernel> {
        let mut all = irregular_suite();
        all.extend(regular_suite());
        all.push(Kernel::DiagSpin);
        all.push(Kernel::DiagPanic);
        all.into_iter().find(|k| k.name() == name)
    }

    /// The group this kernel is reported under.
    pub fn group(self) -> Group {
        match self {
            Kernel::Bc(_) => Group::Bc,
            Kernel::Bfs(_) => Group::Bfs,
            Kernel::Cc(_) => Group::Cc,
            Kernel::Pr(_) => Group::Pr,
            Kernel::Sssp(_) => Group::Sssp,
            Kernel::Regular(_) => Group::Regular,
            _ => Group::HpcDb,
        }
    }
}

/// The 25 GAP workload/input combinations (5 kernels × 5 graphs).
pub fn gap_suite() -> Vec<Kernel> {
    let mut v = Vec::new();
    for g in GraphInput::ALL {
        v.push(Kernel::Bc(g));
    }
    for g in GraphInput::ALL {
        v.push(Kernel::Bfs(g));
    }
    for g in GraphInput::ALL {
        v.push(Kernel::Cc(g));
    }
    for g in GraphInput::ALL {
        v.push(Kernel::Pr(g));
    }
    for g in GraphInput::ALL {
        v.push(Kernel::Sssp(g));
    }
    v
}

/// The 8 HPC/database workloads (§V, first set).
pub fn hpcdb_suite() -> Vec<Kernel> {
    vec![
        Kernel::Camel,
        Kernel::G500,
        Kernel::HashJoin(2),
        Kernel::HashJoin(8),
        Kernel::Kangaroo,
        Kernel::NasCg,
        Kernel::NasIs,
        Kernel::Randacc,
    ]
}

/// The full irregular suite of Figs. 1, 11 and 12 (33 workloads).
pub fn irregular_suite() -> Vec<Kernel> {
    let mut v = gap_suite();
    v.extend(hpcdb_suite());
    v
}

/// The SPEC-like regular suite of Fig. 14 (23 workloads).
pub fn regular_suite() -> Vec<Kernel> {
    kernels::SPEC_NAMES
        .iter()
        .map(|&n| Kernel::Regular(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(gap_suite().len(), 25);
        assert_eq!(hpcdb_suite().len(), 8);
        assert_eq!(irregular_suite().len(), 33);
        assert_eq!(regular_suite().len(), 23);
    }

    #[test]
    fn names_are_unique_across_suites() {
        let mut seen = std::collections::HashSet::new();
        for k in irregular_suite().into_iter().chain(regular_suite()) {
            assert!(seen.insert(k.name()), "duplicate {}", k.name());
        }
    }

    #[test]
    fn groups_partition_the_suite() {
        let groups: Vec<Group> = irregular_suite().iter().map(|k| k.group()).collect();
        assert_eq!(groups.iter().filter(|&&g| g == Group::Pr).count(), 5);
        assert_eq!(groups.iter().filter(|&&g| g == Group::HpcDb).count(), 8);
    }

    #[test]
    fn from_name_inverts_name_for_every_addressable_kernel() {
        for k in irregular_suite()
            .into_iter()
            .chain(regular_suite())
            .chain([Kernel::DiagSpin, Kernel::DiagPanic])
        {
            assert_eq!(Kernel::from_name(&k.name()), Some(k), "{}", k.name());
        }
        assert_eq!(Kernel::from_name("nope"), None);
    }

    #[test]
    fn all_kernels_build_at_tiny_scale() {
        for k in irregular_suite() {
            let w = k.build(Scale::Tiny);
            assert_eq!(w.name, k.name());
            assert!(!w.program.is_empty());
        }
    }
}
