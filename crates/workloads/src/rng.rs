//! A tiny deterministic PRNG for workload/graph generation.
//!
//! The registry is offline, so we cannot depend on the `rand` crate; this
//! SplitMix64 generator (Steele, Lea & Flood, OOPSLA'14) passes BigCrush,
//! needs eight lines of code, and — most importantly for reproducibility —
//! its streams are fully determined by the seed, with no platform or
//! version dependence.

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// # Examples
///
/// ```
/// use svr_workloads::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)` (widening-multiply reduction; the
    /// modulo bias is below 2⁻⁶⁴ · bound, irrelevant at our sizes).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(8);
        assert_ne!(Rng64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn f64_bounds_and_spread() {
        let mut r = Rng64::new(2);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn range_honors_endpoints() {
        let mut r = Rng64::new(3);
        for _ in 0..100 {
            let v = r.range(10, 12);
            assert!((10..12).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_bound_panics() {
        Rng64::new(0).below(0);
    }
}
