//! The [`Workload`] container: a program, its initialized memory image and
//! register state, and an optional architectural check.

use svr_isa::{ArchState, DataMemory, Program, Reg};
use svr_mem::MemImage;

/// How a workload's architectural correctness is validated after a full
/// functional run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// A register must hold the given value at halt.
    Reg(Reg, u64),
    /// A memory word must hold the given value at halt.
    Mem(u64, u64),
    /// No cheap check available (e.g. capped runs).
    None,
}

/// A ready-to-run workload: assembled program, initialized data, initial
/// registers. Instantiate per run — cores mutate the image.
///
/// # Examples
///
/// ```
/// use svr_workloads::{Scale, kernels};
/// let w = kernels::camel(Scale::Tiny);
/// let (program, mut image, mut arch) = w.instantiate();
/// arch.run(&program, &mut image, u64::MAX);
/// assert!(w.verify(&image, &arch));
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name ("PR_KR", "HJ2", ...).
    pub name: String,
    /// The assembled program.
    pub program: Program,
    /// Initialized data image (init phase done natively, as the paper skips
    /// initialization and simulates the region of interest).
    pub image: MemImage,
    /// Initial register state (base addresses, sizes).
    pub arch: ArchState,
    /// Post-run architectural check.
    pub check: Check,
}

impl Workload {
    /// Clones the pieces needed for one simulation run.
    pub fn instantiate(&self) -> (Program, MemImage, ArchState) {
        (self.program.clone(), self.image.clone(), self.arch.clone())
    }

    /// Validates a completed run against [`Workload::check`].
    pub fn verify(&self, image: &MemImage, arch: &ArchState) -> bool {
        match self.check {
            Check::Reg(r, v) => arch.reg(r) == v,
            Check::Mem(addr, v) => image.read_u64(addr) == v,
            Check::None => true,
        }
    }
}

/// Problem-size presets. Paper runs simulate 200 M instructions in the
/// region of interest; we scale the data so the working set exceeds the L2
/// at `Small`/`Full` while keeping simulation time practical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Unit-test sized (cache-resident, sub-second).
    Tiny,
    /// Integration-test / quick-bench sized (DRAM-resident, ~1 M insts).
    Small,
    /// Full experiment size used by the figure harnesses.
    Full,
}

impl Scale {
    /// Graph vertices for GAP workloads.
    pub fn nodes(self) -> usize {
        match self {
            Scale::Tiny => 512,
            Scale::Small => 100_000,
            Scale::Full => 400_000,
        }
    }

    /// Edges per vertex for GAP workloads.
    pub fn edge_factor(self) -> usize {
        match self {
            Scale::Tiny => 4,
            Scale::Small => 8,
            Scale::Full => 8,
        }
    }

    /// Element count for array-based kernels (hash join, IS, randacc, ...).
    pub fn elems(self) -> usize {
        match self {
            Scale::Tiny => 2_000,
            Scale::Small => 400_000,
            Scale::Full => 2_000_000,
        }
    }

    /// Instruction budget a harness should simulate at this scale.
    pub fn max_insts(self) -> u64 {
        match self {
            Scale::Tiny => 2_000_000,
            Scale::Small => 2_000_000,
            Scale::Full => 10_000_000,
        }
    }

    /// Canonical lowercase name (CLI flag value, cache-key component).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }

    /// Parses a [`Scale::name`] string (case-insensitive).
    pub fn from_name(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_isa::Assembler;

    #[test]
    fn verify_checks_register() {
        let mut asm = Assembler::new("t");
        asm.li(Reg::new(1), 9);
        asm.halt();
        let w = Workload {
            name: "t".into(),
            program: asm.finish(),
            image: MemImage::new(),
            arch: ArchState::new(),
            check: Check::Reg(Reg::new(1), 9),
        };
        let (p, mut img, mut arch) = w.instantiate();
        arch.run(&p, &mut img, 100);
        assert!(w.verify(&img, &arch));
        assert!(!Workload {
            check: Check::Reg(Reg::new(1), 10),
            ..w.clone()
        }
        .verify(&img, &arch));
    }

    #[test]
    fn verify_checks_memory() {
        let mut img = MemImage::new();
        img.write_u64(64, 5);
        let w = Workload {
            name: "m".into(),
            program: Program::new("m", vec![svr_isa::Inst::Halt]),
            image: img.clone(),
            arch: ArchState::new(),
            check: Check::Mem(64, 5),
        };
        assert!(w.verify(&img, &ArchState::new()));
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.nodes() < Scale::Small.nodes());
        assert!(Scale::Small.nodes() < Scale::Full.nodes());
        assert!(Scale::Tiny.elems() < Scale::Full.elems());
    }
}
