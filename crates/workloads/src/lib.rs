//! # svr-workloads — the paper's workloads as programs for the SVR ISA
//!
//! Everything §V of "Scalar Vector Runahead" evaluates, rebuilt for the
//! custom simulator: CSR graph containers and generators (Kronecker,
//! uniform-random, and stand-ins for the LiveJournal/Twitter/Orkut inputs),
//! the five GAP kernels across all five graphs, the HPC/database set
//! (Camel, Graph500, HashJoin-2/8, Kangaroo, NAS-CG, NAS-IS, Randacc), and
//! 23 SPEC-like regular kernels for the overhead study of Fig. 14.
//!
//! Each workload carries an initialized memory image, initial registers,
//! and an architectural check validated against a native Rust reference of
//! the same algorithm — so every simulator run doubles as a correctness
//! test of the core models.
//!
//! # Examples
//!
//! ```
//! use svr_workloads::{irregular_suite, Scale};
//!
//! let suite = irregular_suite();
//! assert_eq!(suite.len(), 33);
//! let w = suite[0].build(Scale::Tiny);
//! let (program, mut image, mut arch) = w.instantiate();
//! arch.run(&program, &mut image, 1_000_000);
//! ```

mod graph;
pub mod kernels;
mod registry;
mod rng;
mod workload;

pub use graph::{rmat, uniform, Csr, GraphInput};
pub use registry::{gap_suite, hpcdb_suite, irregular_suite, regular_suite, Group, Kernel};
pub use rng::Rng64;
pub use workload::{Check, Scale, Workload};
