//! CSR graphs and the paper's graph inputs (§V): synthetic Kronecker (KR)
//! and Uniform-Random (UR) generators as in GAP, plus degree-skewed RMAT
//! stand-ins for the LiveJournal / Twitter / Orkut real-world inputs
//! (substitution documented in DESIGN.md).

use crate::rng::Rng64;

/// A graph in compressed-sparse-row form (Fig. 2 of the paper).
///
/// `offsets` has `n + 1` entries; the neighbors of vertex `u` are
/// `neighbors[offsets[u] .. offsets[u+1]]`.
///
/// # Examples
///
/// ```
/// use svr_workloads::Csr;
/// let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors_of(0), &[1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<u64>,
}

impl Csr {
    /// Builds a CSR from an edge list (duplicates kept, self-loops dropped).
    pub fn from_edges(n: usize, edges: &[(u64, u64)]) -> Self {
        let mut degree = vec![0u64; n];
        for &(u, v) in edges {
            if u != v {
                degree[u as usize] += 1;
            }
            let _ = v;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u64; offsets[n] as usize];
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            let c = &mut cursor[u as usize];
            neighbors[*c as usize] = v;
            *c += 1;
        }
        Csr { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The offsets array (length `n + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The concatenated neighbor array.
    pub fn neighbors(&self) -> &[u64] {
        &self.neighbors
    }

    /// Neighbors of `u`.
    pub fn neighbors_of(&self, u: usize) -> &[u64] {
        let s = self.offsets[u] as usize;
        let e = self.offsets[u + 1] as usize;
        &self.neighbors[s..e]
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Basic structural invariants (used by property tests).
    pub fn check_invariants(&self) -> bool {
        let n = self.num_nodes() as u64;
        self.offsets.windows(2).all(|w| w[0] <= w[1])
            && *self.offsets.last().expect("nonempty") == self.neighbors.len() as u64
            && self.neighbors.iter().all(|&v| v < n)
    }
}

/// The paper's graph inputs (two synthetic, three real-world stand-ins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphInput {
    /// Kronecker/RMAT with Graph500 parameters.
    Kr,
    /// Uniform random (Erdős–Rényi style).
    Ur,
    /// LiveJournal stand-in: moderately skewed RMAT.
    Ljn,
    /// Twitter stand-in: heavily skewed RMAT (celebrity hubs).
    Tw,
    /// Orkut stand-in: denser, mildly skewed RMAT.
    Ork,
}

impl GraphInput {
    /// All five inputs in the paper's order.
    pub const ALL: [GraphInput; 5] = [
        GraphInput::Kr,
        GraphInput::Ur,
        GraphInput::Ljn,
        GraphInput::Tw,
        GraphInput::Ork,
    ];

    /// Short name used in result tables ("KR", "UR", ...).
    pub fn label(self) -> &'static str {
        match self {
            GraphInput::Kr => "KR",
            GraphInput::Ur => "UR",
            GraphInput::Ljn => "LJN",
            GraphInput::Tw => "TW",
            GraphInput::Ork => "ORK",
        }
    }

    /// Generates the input at `nodes` vertices with `edge_factor` edges per
    /// vertex, deterministically from `seed`.
    pub fn generate(self, nodes: usize, edge_factor: usize, seed: u64) -> Csr {
        match self {
            GraphInput::Kr => rmat(nodes, edge_factor, (0.57, 0.19, 0.19), seed),
            GraphInput::Ur => uniform(nodes, edge_factor, seed),
            GraphInput::Ljn => rmat(nodes, edge_factor, (0.48, 0.22, 0.22), seed ^ 0x11),
            GraphInput::Tw => rmat(nodes, edge_factor.max(2), (0.62, 0.18, 0.18), seed ^ 0x22),
            GraphInput::Ork => rmat(nodes, edge_factor * 2, (0.45, 0.22, 0.22), seed ^ 0x33),
        }
    }
}

/// Uniform-random digraph: `n * edge_factor` edges with i.i.d. endpoints.
pub fn uniform(n: usize, edge_factor: usize, seed: u64) -> Csr {
    let mut rng = Rng64::new(seed);
    let m = n * edge_factor;
    let edges: Vec<(u64, u64)> = (0..m)
        .map(|_| (rng.below(n as u64), rng.below(n as u64)))
        .collect();
    Csr::from_edges(n, &edges)
}

/// RMAT/Kronecker generator with recursive quadrant probabilities
/// `(a, b, c)` (d = 1 - a - b - c), Graph500-style.
pub fn rmat(n: usize, edge_factor: usize, abc: (f64, f64, f64), seed: u64) -> Csr {
    let n_pow2 = n.next_power_of_two();
    let levels = n_pow2.trailing_zeros();
    let (a, b, c) = abc;
    let mut rng = Rng64::new(seed);
    let m = n * edge_factor;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..levels {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.next_f64();
            if r < a {
                // top-left
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        // Permute to avoid locality artifacts of the bit construction and
        // fold into the requested vertex count.
        let u = scramble(u, seed) % n as u64;
        let v = scramble(v, seed.wrapping_add(1)) % n as u64;
        edges.push((u, v));
    }
    Csr::from_edges(n, &edges)
}

fn scramble(x: u64, seed: u64) -> u64 {
    let mut z = x ^ seed;
    z = z.wrapping_mul(0x9e3779b97f4a7c15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_edges_basics() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0), (1, 1)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4, "self loop dropped");
        assert_eq!(g.neighbors_of(0), &[1, 2]);
        assert_eq!(g.degree(1), 0);
        assert!(g.check_invariants());
    }

    #[test]
    fn generators_are_deterministic() {
        for input in GraphInput::ALL {
            let g1 = input.generate(512, 4, 42);
            let g2 = input.generate(512, 4, 42);
            assert_eq!(g1, g2, "{input:?} not deterministic");
            assert!(g1.check_invariants());
        }
    }

    #[test]
    fn uniform_has_uniform_degrees() {
        let g = uniform(1024, 8, 7);
        // Max degree of a balanced random graph stays near the mean.
        assert!(g.max_degree() < 8 * 5, "max degree {}", g.max_degree());
        // A few self-loops get dropped.
        assert!(g.num_edges() <= 1024 * 8);
        assert!(g.num_edges() >= 1024 * 8 - 100);
    }

    #[test]
    fn rmat_is_skewed() {
        let kr = GraphInput::Kr.generate(2048, 8, 3);
        let ur = GraphInput::Ur.generate(2048, 8, 3);
        assert!(
            kr.max_degree() > 2 * ur.max_degree(),
            "kr {} ur {}",
            kr.max_degree(),
            ur.max_degree()
        );
    }

    #[test]
    fn tw_is_most_skewed() {
        let tw = GraphInput::Tw.generate(4096, 8, 9);
        let ljn = GraphInput::Ljn.generate(4096, 8, 9);
        assert!(tw.max_degree() > ljn.max_degree());
    }

    #[test]
    fn edge_counts_scale() {
        let g = GraphInput::Ork.generate(256, 4, 1);
        // ORK doubles the edge factor.
        assert!(g.num_edges() >= 256 * 7);
    }
}
